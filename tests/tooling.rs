//! Integration tests for the tooling layer: content-carrying traces and
//! the filesystem checker, across crate boundaries.

use std::sync::Arc;

use prins_bench::{measure_traffic, TrafficConfig};
use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_core::{EngineBuilder, ReplicaEngine};
use prins_fs::Fs;
use prins_net::{channel_pair, LinkModel};
use prins_repl::ReplicationMode;
use prins_workloads::{capture_trace, RunConfig, Workload, WriteTrace};

/// A captured trace must contain exactly the information the live
/// measurement sees: replaying it through each strategy reproduces the
/// measured byte counts to the byte.
#[test]
fn trace_replay_matches_live_measurement_exactly() {
    let config = RunConfig::smoke(BlockSize::kb8());
    let trace = capture_trace(Workload::TpccOracle, &config).unwrap();

    // Round-trip the trace through its file format first.
    let trace = WriteTrace::from_bytes(&trace.to_bytes()).unwrap();

    let mut traffic_config = TrafficConfig::smoke(BlockSize::kb8());
    traffic_config.ops = config.ops;
    let live = measure_traffic(Workload::TpccOracle, &traffic_config).unwrap();

    for mode in ReplicationMode::PAPER {
        let replicator = mode.replicator();
        let mut replayed = 0u64;
        trace.replay(|lba, old, new| {
            replayed += replicator.encode_write(Lba(lba.index()), old, new).len() as u64;
        });
        assert_eq!(
            replayed,
            live.payload_bytes(mode),
            "{mode}: trace replay diverged from live measurement"
        );
    }
}

/// A replica volume produced by PRINS replication of filesystem traffic
/// must not just be byte-identical — it must pass a structural fsck.
#[test]
fn replica_of_a_filesystem_passes_fsck() {
    let (uplink, downlink) = channel_pair(LinkModel::t1());
    let replica_vol = Arc::new(MemDevice::new(BlockSize::kb4(), 4096));
    let replica = ReplicaEngine::spawn(Arc::clone(&replica_vol) as Arc<dyn BlockDevice>, downlink);

    let primary_vol = Arc::new(MemDevice::new(BlockSize::kb4(), 4096));
    let engine = EngineBuilder::new(Arc::clone(&primary_vol) as Arc<dyn BlockDevice>)
        .mode(ReplicationMode::Prins)
        .replica(Box::new(uplink))
        .build();

    let fs = Fs::format(Arc::new(engine) as Arc<dyn BlockDevice>, 256).unwrap();
    fs.create_dir("/data").unwrap();
    for i in 0..12 {
        fs.write_file(&format!("/data/f{i}"), &vec![i as u8; 9_000])
            .unwrap();
    }
    fs.rename("/data/f0", "/data/renamed").unwrap();
    fs.unlink("/data/f1").unwrap();
    fs.truncate("/data/f2", 100).unwrap();
    assert!(fs.check().unwrap().is_clean());

    // Drop the fs (and with it the engine) to hang up the link.
    fs.device().flush().unwrap();
    drop(fs);
    replica.join().unwrap().unwrap();

    // The replica mounts and fscks clean, with the same contents.
    let replica_fs = Fs::mount(replica_vol).unwrap();
    let report = replica_fs.check().unwrap();
    assert!(report.is_clean(), "{:?}", report.issues);
    assert_eq!(report.files, 11); // 12 created - 1 unlinked
    assert_eq!(
        replica_fs.read_file("/data/renamed").unwrap(),
        vec![0u8; 9_000]
    );
    assert_eq!(replica_fs.metadata("/data/f2").unwrap().size, 100);
}

/// Different workloads must produce different traces, and the same
/// workload + seed must produce the same trace bytes (full determinism
/// of the measurement pipeline).
#[test]
fn traces_are_deterministic_and_workload_specific() {
    let config = RunConfig::smoke(BlockSize::kb4());
    let a = capture_trace(Workload::FsMicro, &config)
        .unwrap()
        .to_bytes();
    let b = capture_trace(Workload::FsMicro, &config)
        .unwrap()
        .to_bytes();
    assert_eq!(a, b, "same workload + seed must capture identical traces");
    let c = capture_trace(Workload::TpcwMysql, &config)
        .unwrap()
        .to_bytes();
    assert_ne!(a, c);
}
