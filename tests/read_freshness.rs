//! Epoch-guarded read offload never serves stale bytes.
//!
//! Every read below goes through [`prins_sim::ClusterWorld::read_checked`],
//! which fails the test on the spot if the returned block differs from
//! the primary's current content (the freshness oracle) or is not a
//! state the primary ever held. The schedules are the two adversarial
//! shapes the guard exists for: a replica that missed writes rejoining
//! under a live read stream, and a link that corrupts frames — data
//! and read requests alike — in flight.

use std::time::Duration;

use prins_cluster::{ClusterConfig, ResyncStrategy};
use prins_net::Dir;
use prins_sim::ClusterWorld;

fn config(ack_window: usize) -> ClusterConfig {
    ClusterConfig {
        ack_timeout: Duration::from_millis(50),
        write_quorum: 0,
        offline_after: 2,
        ack_window,
        ..Default::default()
    }
}

/// A two-replica mirror loses one replica, keeps writing, then rejoins
/// it while reads race every resync step. The guard must route every
/// read around the lagging/syncing replica: zero oracle mismatches,
/// and the rejection counter proves the guard actually fired.
#[test]
fn rejoin_race_never_serves_pre_rejoin_state() {
    let blocks = 8u64;
    let mut w = ClusterWorld::new(blocks, 2, config(2), Duration::from_micros(200));
    let mut tag = 0u8;
    for lba in 0..blocks {
        tag = tag.wrapping_add(1);
        w.write_tag(lba, tag).unwrap();
        w.read_checked(lba).unwrap();
    }

    // Replica 0 misses a full round of overwrites.
    w.ctl(0).sever();
    for lba in 0..blocks {
        tag = tag.wrapping_add(1);
        w.write_tag(lba, tag).unwrap();
        // Its copy of `lba` is now one generation stale — a read that
        // reached it would fabricate time travel.
        w.read_checked(lba).unwrap();
    }
    w.check_historical().unwrap();

    // Rejoin with reads racing every step of the catch-up: the replica
    // is Syncing (and each block dirty) until its delta applies, so
    // the guard must keep rejecting it mid-resync.
    w.ctl(0).restore();
    w.cluster_mut()
        .rejoin(0, ResyncStrategy::ParityLog)
        .unwrap();
    loop {
        let remaining = w.cluster_mut().resync_step(0, 1).unwrap();
        for lba in 0..blocks {
            w.read_checked(lba).unwrap();
        }
        if remaining == 0 {
            break;
        }
    }
    w.quiesce(ResyncStrategy::ParityLog).unwrap();
    w.check_invariants().unwrap();

    // Fully caught up: reads offload to both replicas again.
    for lba in 0..blocks {
        w.read_checked(lba).unwrap();
    }
    let snap = w.registry().snapshot();
    assert!(
        snap.counters["read_rejected_stale"] > 0,
        "outage + rejoin produced no guard rejections"
    );
    assert!(snap.counters["reads_offloaded"] > 0);
}

/// A link flips bits in every frame toward replica 0 — write payloads
/// and sealed read requests alike. The seal turns each into a
/// `NAK_CORRUPT`; reads must fall through to a clean source and stay
/// byte-fresh throughout, and resync must repair the damage once the
/// link heals.
#[test]
fn corrupt_frames_never_leak_into_reads() {
    let blocks = 8u64;
    // Closed-loop window: a NAK lands before the next frame is sent,
    // so corruption can never skew a parity base (see the fuzzer's
    // module docs for why pipelined windows transiently can).
    let mut w = ClusterWorld::new(blocks, 3, config(1), Duration::from_micros(200));
    let mut tag = 0u8;
    for lba in 0..blocks {
        tag = tag.wrapping_add(1);
        w.write_tag(lba, tag).unwrap();
    }

    // Damage every frame toward replica 0 for the whole phase.
    w.ctl(0).corrupt_next(Dir::AtoB, u32::MAX);
    for round in 0..3 {
        for lba in 0..blocks {
            tag = tag.wrapping_add(1);
            let _ = w.write_tag(lba, tag);
            w.read_checked(lba).unwrap();
        }
        w.check_historical()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
    }

    // Heal, repair, and verify the full invariant set — then confirm
    // the guard rejected the corrupted path while it was live.
    w.quiesce(ResyncStrategy::ParityLog).unwrap();
    w.check_invariants().unwrap();
    for lba in 0..blocks {
        w.read_checked(lba).unwrap();
    }
    let snap = w.registry().snapshot();
    assert!(
        snap.counters["read_rejected_stale"] > 0,
        "corrupted link produced no guard rejections"
    );
    assert!(
        snap.counters["checksum_failures"] > 0,
        "corruption was never detected by the seal"
    );
}
