//! Failure and recovery integration: TRAP point-in-time recovery over a
//! live database, RAID rebuild under a replicated workload, and the
//! interaction of the two.

use std::sync::Arc;

use prins_block::{BlockDevice, BlockSize, FaultDevice, FaultKind, FaultPlan, Lba, MemDevice};
use prins_fs::Fs;
use prins_pagestore::{BufferPool, DbProfile};
use prins_raid::{RaidArray, RaidLevel};
use prins_trap::TrapDevice;
use prins_workloads::{TpccDatabase, TpccDriver, TpccScale};
use rand::SeedableRng;

#[test]
fn trap_recovers_a_database_volume_to_a_checkpoint() {
    // A TPC-C database runs on a TRAP-logged volume.
    let trap = Arc::new(TrapDevice::new(MemDevice::new(BlockSize::kb8(), 8192)));
    let pool = BufferPool::new(Arc::clone(&trap) as Arc<dyn BlockDevice>, 128);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let db = TpccDatabase::build(&pool, DbProfile::oracle(), TpccScale::tiny(), &mut rng).unwrap();
    let mut driver = TpccDriver::new(db);

    driver.run(&mut rng, 60).unwrap();
    let checkpoint_seq = trap.log().current_seq();
    let snapshot_at_checkpoint = trap.log().recover_device(&*trap, checkpoint_seq).unwrap();

    // More transactions change the volume further.
    driver.run(&mut rng, 60).unwrap();
    assert!(trap.log().current_seq() > checkpoint_seq);

    // Recovery to the checkpoint matches the snapshot taken then.
    let recovered = trap.log().recover_device(&*trap, checkpoint_seq).unwrap();
    assert!(recovered.contents_eq(&snapshot_at_checkpoint));

    // And the TRAP log is much smaller than a full-block journal.
    let journal = trap.log().entries() * 8192;
    assert!(
        trap.log().stored_bytes() * 3 < journal,
        "trap log {} vs journal {journal}",
        trap.log().stored_bytes()
    );
}

#[test]
fn trap_recovery_matches_write_by_write_replay() {
    let trap = TrapDevice::new(MemDevice::new(BlockSize::kb4(), 4));
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    use rand::RngExt;

    // Track the volume's state after every write.
    let mut states: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut current: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 4096]).collect();
    states.push(current.clone());
    for _ in 0..30 {
        let lba = rng.random_range(0..4usize);
        let at = rng.random_range(0..4000);
        current[lba][at..at + 32].fill(rng.random());
        trap.write_block(Lba(lba as u64), &current[lba]).unwrap();
        states.push(current.clone());
    }

    for (seq, expected) in states.iter().enumerate() {
        let recovered = trap.log().recover_device(&trap, seq as u64).unwrap();
        for (lba, block) in expected.iter().enumerate() {
            assert_eq!(
                &recovered.read_block_vec(Lba(lba as u64)).unwrap(),
                block,
                "seq {seq} lba {lba}"
            );
        }
    }
}

#[test]
fn raid5_rebuild_restores_a_database_volume() {
    // TPC-C on RAID-5; a member dies; rebuild onto a fresh disk; scrub
    // clean and all data intact.
    let members: Vec<Arc<dyn BlockDevice>> = (0..4)
        .map(|_| Arc::new(MemDevice::new(BlockSize::kb8(), 4096)) as Arc<dyn BlockDevice>)
        .collect();
    let mut raid = RaidArray::new(RaidLevel::Raid5, members).unwrap();

    // Run the filesystem workload directly on the array.
    let fs_dev = Arc::new(MemDevice::new(
        BlockSize::kb8(),
        raid.geometry().num_blocks(),
    ));
    // (Build reference contents on a plain device with identical writes
    // so we can compare after rebuild.)
    let fs = Fs::format(Arc::clone(&fs_dev) as Arc<dyn BlockDevice>, 512).unwrap();
    fs.create_dir("/d").unwrap();
    for i in 0..20 {
        fs.write_file(
            &format!("/d/f{i}"),
            format!("file {i} contents").repeat(50).as_bytes(),
        )
        .unwrap();
    }
    // Mirror those blocks onto the RAID array.
    for lba in fs_dev.geometry().range().iter() {
        let block = fs_dev.read_block_vec(lba).unwrap();
        if block.iter().any(|&b| b != 0) {
            raid.write_block(lba, &block).unwrap();
        }
    }

    raid.fail_member(1);
    // Degraded reads still serve the filesystem bit-exactly.
    for lba in fs_dev.geometry().range().iter() {
        let expected = fs_dev.read_block_vec(lba).unwrap();
        if expected.iter().any(|&b| b != 0) {
            assert_eq!(raid.read_block_vec(lba).unwrap(), expected);
        }
    }

    let replacement = Arc::new(MemDevice::new(BlockSize::kb8(), 4096)) as Arc<dyn BlockDevice>;
    raid.rebuild(1, replacement).unwrap();
    assert_eq!(raid.failed_members(), 0);
    assert!(raid.scrub().unwrap().is_clean());
    // A filesystem mounted off the healed array sees everything.
    let healed = Fs::mount(Arc::new(CopyDev(Arc::new(raid_snapshot(&raid))))).unwrap();
    for i in 0..20 {
        assert_eq!(
            healed.read_file(&format!("/d/f{i}")).unwrap(),
            format!("file {i} contents").repeat(50).as_bytes(),
        );
    }
}

/// Snapshots a RAID array into a plain MemDevice (for mounting).
fn raid_snapshot(raid: &RaidArray) -> MemDevice {
    let geometry = raid.geometry();
    let out = MemDevice::new(geometry.block_size(), geometry.num_blocks());
    for lba in geometry.range().iter() {
        out.write_block(lba, &raid.read_block_vec(lba).unwrap())
            .unwrap();
    }
    out
}

/// Thin wrapper so an `Arc<MemDevice>` snapshot can be passed where an
/// owned device is expected.
struct CopyDev(Arc<MemDevice>);

impl BlockDevice for CopyDev {
    fn geometry(&self) -> prins_block::Geometry {
        self.0.geometry()
    }
    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> prins_block::Result<()> {
        self.0.read_block(lba, buf)
    }
    fn write_block(&self, lba: Lba, buf: &[u8]) -> prins_block::Result<()> {
        self.0.write_block(lba, buf)
    }
}

#[test]
fn fault_injected_device_surfaces_errors_to_the_filesystem() {
    let faulty = Arc::new(FaultDevice::new(MemDevice::new(BlockSize::kb4(), 2048)));
    let fs = Fs::format(Arc::clone(&faulty) as Arc<dyn BlockDevice>, 128).unwrap();
    fs.write_file("/ok", b"fine").unwrap();

    faulty.set_plan(FaultPlan::always(FaultKind::FailWrites));
    let err = fs.write_file("/fails", b"nope").unwrap_err();
    assert!(err.to_string().contains("device"), "{err}");

    faulty.set_plan(FaultPlan::healthy());
    fs.write_file("/works-again", b"yes").unwrap();
    assert_eq!(fs.read_file("/ok").unwrap(), b"fine");
}
