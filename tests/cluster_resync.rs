//! Degraded-mode write-through and delta resync, end to end: a replica
//! is killed mid-trace (link severed), the primary keeps accepting
//! writes, the replica rejoins, and the parity-log catch-up leaves it
//! bit-identical for a small fraction of the full-image sync cost.

use std::collections::HashSet;
use std::sync::Arc;

use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_cluster::{ClusterConfig, ClusterGroup, ReplicaState, ResyncStrategy};
use prins_net::{channel_pair, FaultTransport, LinkModel};
use prins_repl::{run_replica, verify_consistent};
use prins_workloads::{capture_trace, RunConfig, Workload, WriteTrace};

/// A captured TPC-C trace flattened for replay.
struct TpccTrace {
    trace: WriteTrace,
    writes: Vec<(Lba, Vec<u8>)>,
    initial: Vec<(Lba, Vec<u8>)>,
    num_blocks: u64,
}

/// Captures a TPC-C write trace and flattens it to (lba, new-image)
/// writes plus the pre-trace image of every touched block.
fn tpcc_trace() -> TpccTrace {
    let mut config = RunConfig::smoke(BlockSize::kb8());
    config.ops = 80;
    let trace = capture_trace(Workload::TpccOracle, &config).expect("trace captures");
    let mut writes = Vec::with_capacity(trace.len());
    let mut initial = Vec::new();
    let mut seen = HashSet::new();
    let mut max_lba = 0u64;
    trace.replay(|lba, old, new| {
        if seen.insert(lba.index()) {
            initial.push((lba, old.to_vec()));
        }
        max_lba = max_lba.max(lba.index());
        writes.push((lba, new.to_vec()));
    });
    TpccTrace {
        trace,
        writes,
        initial,
        num_blocks: max_lba + 1,
    }
}

/// Replays the trace through a one-replica cluster with an outage over
/// `outage` (write indices), rejoining with `strategy`; returns the
/// resync bytes after verifying the replica is bit-identical.
fn outage_run(
    writes: &[(Lba, Vec<u8>)],
    initial: &[(Lba, Vec<u8>)],
    num_blocks: u64,
    outage: std::ops::Range<usize>,
    strategy: ResyncStrategy,
) -> u64 {
    let primary = MemDevice::new(BlockSize::kb8(), num_blocks);
    let replica = Arc::new(MemDevice::new(BlockSize::kb8(), num_blocks));
    for (lba, image) in initial {
        primary.write_block(*lba, image).unwrap();
        replica.write_block(*lba, image).unwrap();
    }

    let (primary_side, replica_side) = channel_pair(LinkModel::t1());
    let (faulty, link) = FaultTransport::new(primary_side);
    let dev = Arc::clone(&replica);
    let worker = std::thread::spawn(move || run_replica(&*dev, &replica_side));

    let config = ClusterConfig {
        offline_after: 1,
        ..ClusterConfig::default()
    };
    let mut cluster = ClusterGroup::new(primary, config, vec![Box::new(faulty)]);

    for (i, (lba, new)) in writes.iter().enumerate() {
        if i == outage.start {
            link.sever(); // kill the replica mid-trace
        }
        if i == outage.end && !outage.is_empty() {
            link.restore();
            cluster.rejoin(0, strategy).unwrap();
        }
        if cluster.state(0) == ReplicaState::Resyncing {
            // Resync runs concurrently with the remaining foreground
            // writes, a few frames at a time.
            cluster.resync_step(0, 4).unwrap();
        }
        let outcome = cluster.write(*lba, new).unwrap();
        if outage.contains(&i) {
            // Degraded mode: the write went through without the replica.
            assert_eq!(outcome.acked, 0, "write {i} acked during outage");
        }
    }
    if cluster.state(0) != ReplicaState::Online {
        if cluster.state(0) != ReplicaState::Resyncing {
            link.restore();
            cluster.rejoin(0, strategy).unwrap();
        }
        cluster.resync_to_completion(0, 32).unwrap();
    }
    assert_eq!(cluster.state(0), ReplicaState::Online);

    let resync_bytes = cluster.status(0).resync_bytes;
    assert!(
        verify_consistent(cluster.device(), &*replica).unwrap(),
        "{strategy}: replica diverged after resync"
    );
    drop(cluster);
    worker.join().expect("replica worker").unwrap();
    resync_bytes
}

#[test]
fn mid_trace_outage_recovers_with_cheap_delta_resync() {
    let TpccTrace {
        trace,
        writes,
        initial,
        num_blocks,
    } = tpcc_trace();
    assert!(trace.len() >= 40, "trace too short to stage an outage");

    // A 5-minute-equivalent outage: TPC-C here sustains roughly one
    // logged write per second of modeled time, so a quarter of the
    // trace (~40+ writes) stands in for minutes of missed updates.
    let outage_len = trace.len() / 4;
    let start = trace.len() / 4;
    let outage = start..start + outage_len;

    let full = outage_run(
        &writes,
        &initial,
        num_blocks,
        outage.clone(),
        ResyncStrategy::FullImage,
    );
    let parity = outage_run(
        &writes,
        &initial,
        num_blocks,
        outage,
        ResyncStrategy::ParityLog,
    );

    assert!(parity > 0, "outage must cost something to repair");
    assert!(
        (parity as f64) < 0.10 * full as f64,
        "parity-log resync sent {parity} B, full-image {full} B: not under 10%"
    );
}

#[test]
fn dirty_bitmap_sits_between_parity_log_and_full_image() {
    let TpccTrace {
        trace,
        writes,
        initial,
        num_blocks,
    } = tpcc_trace();
    let outage = trace.len() / 3..2 * trace.len() / 3;

    let full = outage_run(
        &writes,
        &initial,
        num_blocks,
        outage.clone(),
        ResyncStrategy::FullImage,
    );
    let bitmap = outage_run(
        &writes,
        &initial,
        num_blocks,
        outage.clone(),
        ResyncStrategy::DirtyBitmap,
    );
    let parity = outage_run(
        &writes,
        &initial,
        num_blocks,
        outage,
        ResyncStrategy::ParityLog,
    );

    assert!(parity < bitmap, "parity {parity} >= bitmap {bitmap}");
    assert!(bitmap < full, "bitmap {bitmap} >= full {full}");
}
