//! Allocation budget for the zero-copy hot path.
//!
//! A counting global allocator wraps [`System`] and tallies every
//! `alloc`/`realloc`/`alloc_zeroed` while a flag is raised. The test
//! drives a manually-stepped engine over a [`SinkTransport`] (sends
//! discarded, acks pre-loaded before the measured region) so the only
//! allocations in the loop are the engine's own — and asserts the
//! steady-state path stays within **2 heap allocations per admitted
//! write**. The slab pool makes block images, encoded payloads and
//! wire frames recycle; the one unavoidable allocation left is the
//! `Arc` created when the encoded payload is frozen for fan-out.
//!
//! Kept to a single `#[test]` so no sibling test's allocations leak
//! into the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_core::EngineBuilder;
use prins_net::SinkTransport;
use prins_repl::{encode_ack, ReplicationMode, ACK};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Writes + steps one round and returns the allocations it charged.
/// With `traced`, the flight recorder runs at its default 1-in-64
/// sampling — its fixed slot table and event arrays must add zero
/// allocations to the steady-state loop.
fn measure(mode: ReplicationMode, writes: u64, traced: bool) -> u64 {
    measure_with(writes, traced, vec![0xA5u8; 4096], |builder| {
        builder.mode(mode)
    })
}

/// Like [`measure`], with an arbitrary builder configuration and
/// initial block content — the adaptive policy engine rides through
/// here and must obey the same budget as the static strategies (its
/// classifier is atomics and a stack-only probe; decisions that stay
/// in the parity/full families never touch the compressor).
fn measure_with(
    writes: u64,
    traced: bool,
    payload: Vec<u8>,
    configure: impl FnOnce(EngineBuilder) -> EngineBuilder,
) -> u64 {
    const BLOCKS: u64 = 8;
    let device = Arc::new(MemDevice::new(BlockSize::kb4(), BLOCKS));
    let sink = Box::new(SinkTransport::new());
    // The whole ack script exists before the measured region: warmup
    // plus measured writes, one per-write ack each, with headroom.
    sink.preload((0..2 * writes + 64).map(|_| encode_ack(ACK, 1)));
    let mut builder = configure(EngineBuilder::new(
        Arc::clone(&device) as Arc<dyn BlockDevice>
    ))
    .replica(sink)
    .manual_stepping(true);
    if traced {
        builder = builder.flight_recorder(prins_obs::TraceConfig::default());
    }
    let engine = builder.build();

    let mut payload = payload;

    // Warmup: populate the pool's freelists, the lane queues and the
    // reorder map so every container reaches steady-state capacity.
    for i in 0..writes {
        payload[(i as usize * 7) % 4096] ^= 0x3C;
        engine.write_block(Lba(i % BLOCKS), &payload).unwrap();
        while engine.step() {}
    }
    engine.flush().unwrap();

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..writes {
        payload[(i as usize * 13) % 4096] ^= 0xC3;
        engine.write_block(Lba(i % BLOCKS), &payload).unwrap();
        while engine.step() {}
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    engine.flush().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.writes, 2 * writes);
    assert_eq!(stats.writes_replicated, 2 * writes);
    assert_eq!(stats.replication_errors, 0);
    engine.shutdown().unwrap();
    allocs
}

#[test]
fn steady_state_write_path_stays_under_two_allocations_per_write() {
    const WRITES: u64 = 64;
    for traced in [false, true] {
        for mode in [ReplicationMode::Traditional, ReplicationMode::Prins] {
            let allocs = measure(mode, WRITES, traced);
            eprintln!("{mode:?} (traced: {traced}): {allocs} allocations / {WRITES} writes");
            assert!(
                allocs <= 2 * WRITES,
                "{mode:?} (traced: {traced}): {allocs} allocations over {WRITES} \
                 writes exceeds the budget of 2 per write"
            );
        }
        // The adaptive policy engine: classification (region EWMAs,
        // compressibility probe, counterfactual estimates, phase
        // detection) must be free on the hot path. `min_compress_len`
        // covers this workload's tiny parity wires, so every decision
        // stays on the fused parity path — compression allocates only
        // when the policy deliberately trades an allocation for fewer
        // wire bytes, which this knob rules out up front. The loop even
        // crosses a phase commit (decision 128 = 2 × the 64-write
        // window), so the hook firing is inside the budget too.
        let policy = prins_policy::PolicyConfig {
            min_compress_len: 128,
            ..prins_policy::PolicyConfig::default()
        };
        let allocs = measure_with(WRITES, traced, vec![0xA5u8; 4096], |builder| {
            builder.adaptive(policy)
        });
        eprintln!("Adaptive (traced: {traced}): {allocs} allocations / {WRITES} writes");
        assert!(
            allocs <= 2 * WRITES,
            "Adaptive (traced: {traced}): {allocs} allocations over {WRITES} \
             writes exceeds the budget of 2 per write"
        );
    }
}
