//! Assertions that the reproduction exhibits the *shape* of every
//! result in the paper's evaluation: who wins, by roughly what factor,
//! and where the crossovers fall.

use prins_bench::{
    fig10_router_saturation, fig8_response_t1, measure_traffic, overhead_experiment,
    write_rate_experiment, TrafficConfig,
};
use prins_block::BlockSize;
use prins_repl::ReplicationMode;
use prins_workloads::Workload;

/// Figures 4-7, qualitative claim 1: on every workload, at every block
/// size, traffic orders traditional > compressed > prins.
#[test]
fn strategy_ordering_holds_everywhere() {
    for workload in Workload::ALL {
        for block_size in [BlockSize::kb4(), BlockSize::kb8(), BlockSize::kb64()] {
            let m = measure_traffic(workload, &TrafficConfig::smoke(block_size)).unwrap();
            let trad = m.payload_bytes(ReplicationMode::Traditional);
            let comp = m.payload_bytes(ReplicationMode::Compressed);
            let prins = m.payload_bytes(ReplicationMode::Prins);
            assert!(
                trad > comp && comp > prins,
                "{workload}@{block_size}: {trad} / {comp} / {prins}"
            );
        }
    }
}

/// Figures 4-7, qualitative claim 2: "the amount of data transferred
/// using PRINS is related to applications independent of data block
/// size" — while traditional replication scales with block size.
#[test]
fn prins_traffic_is_block_size_independent() {
    for workload in [Workload::TpccOracle, Workload::TpcwMysql, Workload::FsMicro] {
        let m4 = measure_traffic(workload, &TrafficConfig::smoke(BlockSize::kb4())).unwrap();
        let m64 = measure_traffic(workload, &TrafficConfig::smoke(BlockSize::kb64())).unwrap();
        let prins_growth = m64.traffic(ReplicationMode::Prins).mean_payload()
            / m4.traffic(ReplicationMode::Prins).mean_payload();
        let trad_growth = m64.traffic(ReplicationMode::Traditional).mean_payload()
            / m4.traffic(ReplicationMode::Traditional).mean_payload();
        assert!(
            (14.0..=18.0).contains(&trad_growth),
            "{workload}: traditional grew {trad_growth:.1}x from 4KB to 64KB"
        );
        assert!(
            prins_growth < 4.0,
            "{workload}: prins per-write payload grew {prins_growth:.1}x from 4KB to 64KB"
        );
    }
}

/// Figures 4-7, quantitative band: at 64 KB blocks the paper reports
/// one-to-two orders of magnitude over traditional replication.
#[test]
fn savings_reach_an_order_of_magnitude_at_64kb() {
    for workload in Workload::ALL {
        let m = measure_traffic(workload, &TrafficConfig::smoke(BlockSize::kb64())).unwrap();
        let ratio = m.ratio(ReplicationMode::Traditional, ReplicationMode::Prins);
        assert!(
            ratio > 10.0,
            "{workload}@64KB: only {ratio:.1}x over traditional"
        );
    }
}

/// The paper's premise (§1): real applications change 5-20% of a block
/// per write. Page checkpointing batches several row updates per block
/// write, so we accept a slightly wider band — but never full-block
/// rewrites.
#[test]
fn change_ratios_sit_in_the_partial_write_band() {
    for workload in Workload::ALL {
        let m = measure_traffic(workload, &TrafficConfig::smoke(BlockSize::kb8())).unwrap();
        let ratio = m.report.mean_change_ratio();
        assert!(
            ratio > 0.003 && ratio < 0.5,
            "{workload}: mean change ratio {ratio:.3}"
        );
    }
}

/// Figure 8 shape: traditional response time explodes with population,
/// PRINS stays near-flat, and the orderings never cross.
#[test]
fn figure8_traditional_explodes_prins_stays_flat() {
    let m = measure_traffic(
        Workload::TpccOracle,
        &TrafficConfig::smoke(BlockSize::kb8()),
    )
    .unwrap();
    let table = fig8_response_t1(Some(&m));
    let parse = |row: &Vec<String>, col: usize| row[col].parse::<f64>().unwrap();
    let first = &table.rows[0];
    let last = table.rows.last().unwrap();
    // Growth from population 1 to 100.
    let trad_growth = parse(last, 1) / parse(first, 1);
    assert!(
        trad_growth > 20.0,
        "traditional grew only {trad_growth:.1}x"
    );
    assert!(
        parse(last, 1) > 10.0 * parse(last, 3),
        "traditional must dominate prins at population 100"
    );
    // "The response time of PRINS stays relatively flat": under a
    // second at population 100, while traditional is deep in the
    // multi-second regime.
    assert!(parse(last, 3) < 1.0, "prins at 100: {}s", last[3]);
    assert!(parse(last, 1) > 4.0, "traditional at 100: {}s", last[1]);
    // Ordering at every sampled population.
    for row in &table.rows {
        assert!(parse(row, 1) >= parse(row, 2) && parse(row, 2) >= parse(row, 3));
    }
}

/// Figure 10 shape: traditional saturates the router first, then
/// compressed; PRINS sustains the full measured range.
#[test]
fn figure10_saturation_order() {
    let m = measure_traffic(
        Workload::TpccOracle,
        &TrafficConfig::smoke(BlockSize::kb8()),
    )
    .unwrap();
    let table = fig10_router_saturation(Some(&m));
    let saturation_row = |col: usize| {
        table
            .rows
            .iter()
            .position(|r| r[col] == "saturated")
            .unwrap_or(usize::MAX)
    };
    let trad = saturation_row(1);
    let comp = saturation_row(2);
    let prins = saturation_row(3);
    assert!(trad < comp, "traditional {trad} vs compressed {comp}");
    assert!(comp <= prins, "compressed {comp} vs prins {prins}");
    assert_eq!(prins, usize::MAX, "prins must not saturate in range");
}

/// §4's overhead measurement completes and the computation is small in
/// absolute terms (microseconds per write, versus milliseconds of T1
/// transmission per 8 KB block).
#[test]
fn overhead_is_cheap_compared_to_the_communication_it_saves() {
    let report = overhead_experiment(500, BlockSize::kb8()).unwrap();
    let per_write_overhead = report.overhead_time.as_secs_f64() / report.writes as f64;
    // One 8 KB block over T1 costs ~57 ms to transmit; PRINS's extra
    // compute must be orders of magnitude below that.
    assert!(
        per_write_overhead < 0.005,
        "prins compute {per_write_overhead:.6}s/write is not negligible vs 0.057s T1 transmit"
    );
}

/// §3.3's measured input to the queueing model: TPC-C produces a steady
/// block-write rate per transaction.
#[test]
fn tpcc_write_rate_is_stable_across_seeds() {
    let a = write_rate_experiment(80).unwrap();
    assert!(a.writes_per_txn > 0.2 && a.writes_per_txn < 50.0, "{a}");
}
