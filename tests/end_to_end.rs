//! Integration tests spanning the full stack: application substrates
//! (pagestore / filesystem / iSCSI) on top of a PRINS-replicated volume,
//! with bit-exact replica verification.

use std::sync::Arc;

use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_core::{EngineBuilder, ReplicaEngine};
use prins_fs::Fs;
use prins_iscsi::{Initiator, Target};
use prins_net::{channel_pair, LinkModel, Transport};
use prins_pagestore::{BufferPool, DbProfile};
use prins_raid::{RaidArray, RaidLevel};
use prins_repl::{verify_consistent, ReplicationMode};
use prins_workloads::{TpccDatabase, TpccDriver, TpccScale};
use rand::SeedableRng;

/// Builds a (engine, primary, replica, replica_thread) quad on an
/// in-memory link.
#[allow(clippy::type_complexity)]
fn replicated_engine(
    mode: ReplicationMode,
    blocks: u64,
) -> (
    Arc<prins_core::PrinsEngine>,
    Arc<MemDevice>,
    Arc<MemDevice>,
    std::thread::JoinHandle<Result<u64, prins_repl::ReplError>>,
    Arc<prins_net::TrafficMeter>,
) {
    let (uplink, downlink) = channel_pair(LinkModel::t1());
    let meter = Arc::clone(uplink.meter());
    let replica_volume = Arc::new(MemDevice::new(BlockSize::kb8(), blocks));
    let replica = ReplicaEngine::spawn(
        Arc::clone(&replica_volume) as Arc<dyn BlockDevice>,
        downlink,
    );
    let primary_volume = Arc::new(MemDevice::new(BlockSize::kb8(), blocks));
    let engine = Arc::new(
        EngineBuilder::new(Arc::clone(&primary_volume) as Arc<dyn BlockDevice>)
            .mode(mode)
            .replica(Box::new(uplink))
            .build(),
    );
    (engine, primary_volume, replica_volume, replica, meter)
}

fn shutdown(
    engine: Arc<prins_core::PrinsEngine>,
    replica: std::thread::JoinHandle<Result<u64, prins_repl::ReplError>>,
) {
    Arc::try_unwrap(engine)
        .expect("engine uniquely owned at shutdown")
        .shutdown()
        .expect("shutdown clean");
    replica.join().expect("replica thread").expect("replica ok");
}

#[test]
fn tpcc_database_on_prins_engine_mirrors_exactly() {
    let (engine, primary, replica_vol, replica, meter) =
        replicated_engine(ReplicationMode::Prins, 8192);

    let pool = BufferPool::new(Arc::clone(&engine) as Arc<dyn BlockDevice>, 128);
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let db = TpccDatabase::build(&pool, DbProfile::oracle(), TpccScale::tiny(), &mut rng)
        .expect("database builds");
    let mut driver = TpccDriver::new(db);
    driver.run(&mut rng, 150).expect("transactions run");
    engine.flush().expect("replication barrier");
    drop(driver); // releases the database's pool handle on the engine
    drop(pool);

    let stats = engine.stats();
    assert!(stats.writes > 100, "expected many block writes: {stats:?}");
    assert_eq!(stats.replication_errors, 0);
    // PRINS sent far less than the full blocks.
    assert!(
        meter.payload_bytes_sent() * 3 < stats.writes * 8192,
        "prins sent {} for {} writes",
        meter.payload_bytes_sent(),
        stats.writes
    );

    shutdown(engine, replica);
    assert!(verify_consistent(&*primary, &*replica_vol).unwrap());
}

#[test]
fn filesystem_on_prins_engine_mirrors_exactly() {
    let (engine, primary, replica_vol, replica, _meter) =
        replicated_engine(ReplicationMode::Prins, 4096);

    let fs = Fs::format(Arc::clone(&engine) as Arc<dyn BlockDevice>, 256).expect("format");
    fs.create_dir("/project").unwrap();
    fs.write_file("/project/readme.md", b"# PRINS reproduction\n")
        .unwrap();
    fs.write_file("/project/data.bin", &vec![0xa5u8; 100_000])
        .unwrap();
    fs.write_at("/project/data.bin", 50_000, b"patched-in-place")
        .unwrap();
    prins_fs::tar::create(&fs, &["/project"], "/backup.tar").unwrap();
    fs.unlink("/project/data.bin").unwrap();
    engine.flush().expect("replication barrier");
    drop(fs); // releases the filesystem's handle on the engine

    shutdown(engine, replica);
    assert!(verify_consistent(&*primary, &*replica_vol).unwrap());

    // The replica volume is a mountable filesystem with the same data.
    let replica_fs = Fs::mount(replica_vol).expect("replica mounts");
    assert_eq!(
        replica_fs.read_file("/project/readme.md").unwrap(),
        b"# PRINS reproduction\n"
    );
    assert!(!replica_fs.exists("/project/data.bin"));
    let entries = prins_fs::tar::list(&replica_fs, "/backup.tar").unwrap();
    assert!(entries.iter().any(|e| e.path == "/project/data.bin"));
}

#[test]
fn every_replication_mode_converges_under_mixed_io() {
    for mode in ReplicationMode::ALL {
        let (engine, primary, replica_vol, replica, _meter) = replicated_engine(mode, 256);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        use rand::RngExt;
        for _ in 0..200 {
            let lba = Lba(rng.random_range(0..256));
            let mut block = engine.read_block_vec(lba).unwrap();
            let at = rng.random_range(0..8000);
            for b in &mut block[at..at + 64] {
                *b = rng.random();
            }
            engine.write_block(lba, &block).unwrap();
        }
        engine.flush().unwrap();
        shutdown(engine, replica);
        assert!(
            verify_consistent(&*primary, &*replica_vol).unwrap(),
            "{mode} diverged"
        );
    }
}

#[test]
fn raid5_backed_engine_survives_member_failure_and_stays_consistent() {
    // Primary volume is a RAID-5 array; PRINS replicates on top.
    let members: Vec<Arc<dyn BlockDevice>> = (0..4)
        .map(|_| Arc::new(MemDevice::new(BlockSize::kb8(), 64)) as Arc<dyn BlockDevice>)
        .collect();
    let raid = Arc::new(RaidArray::new(RaidLevel::Raid5, members).unwrap());

    let (uplink, downlink) = channel_pair(LinkModel::t1());
    let replica_volume = Arc::new(MemDevice::new(
        BlockSize::kb8(),
        raid.geometry().num_blocks(),
    ));
    let replica = ReplicaEngine::spawn(
        Arc::clone(&replica_volume) as Arc<dyn BlockDevice>,
        downlink,
    );
    let engine = EngineBuilder::new(Arc::clone(&raid) as Arc<dyn BlockDevice>)
        .mode(ReplicationMode::Prins)
        .replica(Box::new(uplink))
        .build();

    for i in 0..96u64 {
        engine
            .write_block(Lba(i), &vec![(i % 250) as u8 + 1; 8192])
            .unwrap();
    }
    // A disk dies mid-run; the engine keeps serving and replicating.
    raid.fail_member(2);
    for i in 0..96u64 {
        let mut block = engine.read_block_vec(Lba(i)).unwrap();
        block[0] ^= 0xff;
        engine.write_block(Lba(i), &block).unwrap();
    }
    engine.flush().unwrap();
    engine.shutdown().unwrap();
    replica.join().unwrap().unwrap();

    // Replica matches the degraded-but-correct array contents.
    for i in 0..96u64 {
        assert_eq!(
            raid.read_block_vec(Lba(i)).unwrap(),
            replica_volume.read_block_vec(Lba(i)).unwrap(),
            "block {i}"
        );
    }
}

#[test]
fn iscsi_initiator_drives_a_prins_replicated_target() {
    let (engine, primary, replica_vol, replica, meter) =
        replicated_engine(ReplicationMode::Prins, 64);

    let (client_side, server_side) = channel_pair(LinkModel::gigabit_lan());
    let target = Target::spawn(Arc::clone(&engine) as Arc<dyn BlockDevice>, server_side);

    let mut initiator = Initiator::login(client_side, "iqn.test.integration").unwrap();
    assert_eq!(initiator.num_blocks(), 64);
    let bs = initiator.block_size() as usize;
    for lba in 0..48u64 {
        let mut block = initiator.read_blocks(lba, 1).unwrap();
        block[100..140].fill(lba as u8 + 1);
        initiator.write_blocks(lba, &block).unwrap();
    }
    initiator.synchronize_cache().unwrap();
    initiator.logout().unwrap();
    target.join().unwrap().unwrap();

    assert!(meter.payload_bytes_sent() < 48 * bs as u64 / 10);
    shutdown(engine, replica);
    assert!(verify_consistent(&*primary, &*replica_vol).unwrap());
}
