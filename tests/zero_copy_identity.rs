//! Byte-identity of the pooled zero-copy hot path.
//!
//! The arena-buffer rework changed *how* frames are built (pooled
//! buffers, fused delta encoding, batch-aware sealing) but must not
//! change a single wire byte. These tests capture every frame a
//! stepped engine puts on the wire and compare them against frames
//! assembled the classic way — `Replicator::encode_write` into a fresh
//! `Vec`, sealed with `seal_frame` — then replay the captured frames
//! through a [`ReplicaApplier`] and check the replica converges to the
//! primary's exact contents.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_core::EngineBuilder;
use prins_net::{LinkModel, NetError, TrafficMeter, Transport};
use prins_parity::encode_varint;
use prins_repl::{encode_ack, seal_frame, ReplicaApplier, ReplicationMode, ACK, BATCH_TAG};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The sealing epoch every sender lane stamps (pipeline's `LANE_EPOCH`).
const LANE_EPOCH: u64 = 1;

/// Records every sent frame and acks each one unconditionally.
struct RecordingTransport {
    sent: Arc<Mutex<Vec<Vec<u8>>>>,
    meter: Arc<TrafficMeter>,
}

impl RecordingTransport {
    fn new() -> (Self, Arc<Mutex<Vec<Vec<u8>>>>) {
        let sent = Arc::new(Mutex::new(Vec::new()));
        let transport = Self {
            sent: Arc::clone(&sent),
            meter: TrafficMeter::shared(LinkModel::gigabit_lan()),
        };
        (transport, sent)
    }
}

impl Transport for RecordingTransport {
    fn send(&self, msg: &[u8]) -> Result<(), NetError> {
        self.meter.record_send(msg.len());
        self.sent.lock().unwrap().push(msg.to_vec());
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, NetError> {
        Ok(encode_ack(ACK, LANE_EPOCH))
    }

    fn recv_timeout(&self, _timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.recv()
    }

    fn meter(&self) -> &Arc<TrafficMeter> {
        &self.meter
    }
}

/// Runs `writes` seeded writes through a stepped engine, returning the
/// captured wire frames, the classic per-write payloads (in admission
/// order) and the primary's final image.
fn run_engine(
    mode: ReplicationMode,
    batch: usize,
    writes: u64,
    step_each: bool,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>, Vec<u8>) {
    const BLOCKS: u64 = 8;
    let device = Arc::new(MemDevice::new(BlockSize::kb4(), BLOCKS));
    let (transport, sent) = RecordingTransport::new();
    let engine = EngineBuilder::new(Arc::clone(&device) as Arc<dyn BlockDevice>)
        .mode(mode)
        .replica(Box::new(transport))
        .batch_frames(batch)
        .manual_stepping(true)
        .build();

    // Shadow the classic path: encode each write against the same old
    // image the engine captured.
    let replicator = mode.replicator();
    let mut shadow = vec![vec![0u8; 4096]; BLOCKS as usize];
    let mut payloads = Vec::new();

    let mut rng = StdRng::seed_from_u64(42);
    for i in 0..writes {
        let lba = Lba(i % BLOCKS);
        let mut block = shadow[lba.index() as usize].clone();
        if rng.random_range(0..3) == 0 {
            // Full-block change: delta falls back to a Full payload.
            rng.fill_bytes(&mut block);
        } else {
            let at = rng.random_range(0..4096);
            block[at] ^= 0x5a;
        }
        payloads.push(replicator.encode_write(lba, &shadow[lba.index() as usize], &block));
        shadow[lba.index() as usize] = block.clone();
        engine.write_block(lba, &block).unwrap();
        if step_each {
            while engine.step() {}
        }
    }
    engine.flush().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.writes_replicated, writes);
    assert_eq!(stats.replication_errors, 0);
    engine.shutdown().unwrap();

    let frames = Arc::try_unwrap(sent).unwrap().into_inner().unwrap();
    (frames, payloads, device.snapshot())
}

/// Replays `frames` through a fresh applier and returns its image.
fn replay(frames: &[Vec<u8>]) -> Vec<u8> {
    let device = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
    let mut applier = ReplicaApplier::new(Arc::clone(&device));
    for frame in frames {
        applier.handle(frame).unwrap();
    }
    device.snapshot()
}

#[test]
fn per_write_frames_match_classic_seal_path() {
    for mode in [ReplicationMode::Traditional, ReplicationMode::Prins] {
        let (frames, payloads, primary) = run_engine(mode, 1, 48, true);
        assert_eq!(frames.len(), payloads.len());
        for (i, (frame, payload)) in frames.iter().zip(&payloads).enumerate() {
            let expected = seal_frame(LANE_EPOCH, payload);
            assert_eq!(frame, &expected, "{mode:?}: frame {i} diverged");
        }
        assert_eq!(replay(&frames), primary, "{mode:?}: applier state diverged");
    }
}

#[test]
fn batch_sealed_frames_match_classic_batch_assembly() {
    // All writes admitted before the flush steps the pipeline: a full
    // queue batches exactly `batch` payloads per frame.
    const BATCH: usize = 4;
    let (frames, payloads, primary) = run_engine(ReplicationMode::Prins, BATCH, 48, false);
    assert_eq!(frames.len(), payloads.len() / BATCH);
    for (i, (frame, group)) in frames.iter().zip(payloads.chunks(BATCH)).enumerate() {
        let mut inner = vec![BATCH_TAG];
        encode_varint(&mut inner, group.len() as u64);
        for payload in group {
            encode_varint(&mut inner, payload.len() as u64);
            inner.extend_from_slice(payload);
        }
        let expected = seal_frame(LANE_EPOCH, &inner);
        assert_eq!(frame, &expected, "batched frame {i} diverged");
    }
    assert_eq!(replay(&frames), primary, "applier state diverged");
}
