//! Named fault scenarios from the simulation harness, run as part of
//! the tier-1 suite.
//!
//! Each scenario drives the real engine/cluster/resync stack through a
//! [`prins_net::SimNet`] in virtual time and ends with the full
//! invariant set (bit-identity, historical states, per-LBA order, byte
//! conservation, resync convergence). On failure the returned string
//! names the violated invariant; replay interactively with
//! `cargo run -p prins-sim --bin sim-replay -- scenario <name>`.

use prins_sim::{run_scenario, SCENARIOS};

#[test]
fn flush_during_link_failure() {
    run_scenario("flush_during_link_failure").unwrap();
}

#[test]
fn coalescing_fold_then_crash() {
    run_scenario("fold_then_crash").unwrap();
}

#[test]
fn link_flap_with_delta_resync() {
    run_scenario("link_flap").unwrap();
}

#[test]
fn crash_mid_resync_falls_back_to_full_images() {
    run_scenario("crash_mid_resync").unwrap();
}

#[test]
fn quorum_loss_and_recovery() {
    run_scenario("quorum_loss").unwrap();
}

#[test]
fn lost_ack_never_double_applies_parity() {
    run_scenario("lost_ack_resync").unwrap();
}

#[test]
fn live_migration_survives_slow_links_and_node_kill() {
    run_scenario("migrate_under_faults").unwrap();
}

#[test]
fn offloaded_reads_stay_fresh_across_rejoin() {
    run_scenario("read_offload_rejoin").unwrap();
}

#[test]
fn the_whole_scenario_table_passes() {
    for (name, f) in SCENARIOS {
        f().unwrap_or_else(|e| panic!("scenario {name}: {e}"));
    }
}
