//! Run a TPC-C database on a remotely mirrored volume and compare what
//! each replication strategy puts on the network — the live version of
//! the paper's Figure 4 experiment.
//!
//! ```sh
//! cargo run --release --example tpcc_mirror
//! ```

use prins_bench::{measure_traffic, TrafficConfig};
use prins_block::BlockSize;
use prins_repl::ReplicationMode;
use prins_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TPC-C (Oracle profile) on a replicated volume");
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>11}",
        "block", "traditional", "compressed", "prins", "trad/prins"
    );
    for block_size in BlockSize::paper_sweep() {
        let m = measure_traffic(Workload::TpccOracle, &TrafficConfig::smoke(block_size))?;
        println!(
            "{:>7} {:>11} KB {:>11} KB {:>11} KB {:>10.1}x",
            block_size.to_string(),
            m.payload_bytes(ReplicationMode::Traditional) / 1024,
            m.payload_bytes(ReplicationMode::Compressed) / 1024,
            m.payload_bytes(ReplicationMode::Prins) / 1024,
            m.ratio(ReplicationMode::Traditional, ReplicationMode::Prins),
        );
    }
    println!();
    let m = measure_traffic(
        Workload::TpccOracle,
        &TrafficConfig::smoke(BlockSize::kb8()),
    )?;
    println!(
        "at 8 KB blocks each write changed {:.1}% of its block on average,",
        m.report.mean_change_ratio() * 100.0
    );
    println!(
        "so PRINS shipped {:.0} bytes/write instead of {:.0}.",
        m.traffic(ReplicationMode::Prins).mean_payload(),
        m.traffic(ReplicationMode::Traditional).mean_payload(),
    );
    Ok(())
}
