//! PRINS riding the RAID parity tap — the paper's headline integration.
//!
//! A RAID-4/5 small write must compute `P' = A_new ⊕ A_old` anyway to
//! update its parity disk. PRINS taps that by-product: the tap callback
//! only *encodes* the parity it is handed and ships it, so the marginal
//! cost over plain RAID is the zero-run encoding of a mostly-zero block
//! — "in this case, the overhead is completely negligible".
//!
//! ```sh
//! cargo run --example raid_tap
//! ```

use std::sync::Arc;
use std::time::Instant;

use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_net::{channel_pair, LinkModel, Transport};
use prins_parity::SparseCodec;
use prins_raid::{RaidArray, RaidLevel};
use prins_repl::{run_replica, Payload, PayloadBody};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Replica site.
    let (uplink, downlink) = channel_pair(LinkModel::t1());
    let meter = Arc::clone(uplink.meter());
    let replica_volume = Arc::new(MemDevice::new(BlockSize::kb8(), 96));
    let replica_volume2 = Arc::clone(&replica_volume);
    let replica = std::thread::spawn(move || run_replica(&*replica_volume2, &downlink));

    // Primary site: a 4-disk RAID-5 array (96 data blocks) whose parity
    // tap encodes and ships P' for every small write.
    let members: Vec<Arc<dyn BlockDevice>> = (0..4)
        .map(|_| Arc::new(MemDevice::new(BlockSize::kb8(), 32)) as Arc<dyn BlockDevice>)
        .collect();
    let raid = RaidArray::new(RaidLevel::Raid5, members)?;
    let codec = SparseCodec::default();
    raid.set_parity_tap(Box::new(move |lba, parity_delta| {
        let payload = Payload {
            lba,
            body: PayloadBody::Parity(codec.encode(parity_delta).to_bytes()),
        };
        uplink.send(&payload.to_bytes()).expect("replica link");
        let ack = uplink.recv().expect("replica ack");
        assert_eq!(ack, [0x06], "replica acknowledged");
    }));

    // The application writes through the array; PRINS replication is
    // an invisible side effect of RAID's own parity maintenance.
    let started = Instant::now();
    for i in 0..96u64 {
        let mut block = raid.read_block_vec(Lba(i))?;
        let at = (i as usize * 173) % 7500;
        block[at..at + 250].fill((i + 1) as u8);
        raid.write_block(Lba(i), &block)?;
    }
    let elapsed = started.elapsed();

    println!("96 RAID-5 small writes in {elapsed:.2?} (incl. synchronous replication)");
    println!(
        "replicated payload:   {:.1} KB for {} KB written",
        meter.payload_bytes_sent() as f64 / 1024.0,
        96 * 8
    );
    println!(
        "traffic reduction:    {:.1}x",
        (96.0 * 8192.0) / meter.payload_bytes_sent() as f64
    );

    // Verify: the array's parity is intact and the replica matches.
    assert!(raid.scrub()?.is_clean());
    raid.clear_parity_tap(); // drop the uplink; replica loop exits
    replica.join().expect("replica thread")?;
    for i in 0..96u64 {
        assert_eq!(
            raid.read_block_vec(Lba(i))?,
            replica_volume.read_block_vec(Lba(i))?
        );
    }
    println!("raid scrub clean and replica bit-identical ✓");
    Ok(())
}
