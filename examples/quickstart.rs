//! Quickstart: replicate block writes with PRINS and watch the traffic
//! savings.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_core::{EngineBuilder, ReplicaEngine};
use prins_net::{channel_pair, LinkModel, Transport};
use prins_repl::{verify_consistent, ReplicationMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A primary and a replica "site", connected by a simulated T1 line.
    let (uplink, downlink) = channel_pair(LinkModel::t1());
    let meter = Arc::clone(uplink.meter());

    let replica_volume = Arc::new(MemDevice::new(BlockSize::kb8(), 128));
    let replica = ReplicaEngine::spawn(
        Arc::clone(&replica_volume) as Arc<dyn BlockDevice>,
        downlink,
    );

    let primary_volume = Arc::new(MemDevice::new(BlockSize::kb8(), 128));
    let engine = EngineBuilder::new(Arc::clone(&primary_volume) as Arc<dyn BlockDevice>)
        .mode(ReplicationMode::Prins)
        .replica(Box::new(uplink))
        .build();

    // An application updates a few hundred bytes of each 8 KB block —
    // the regime the PRINS paper measures (5-20% of a block changes).
    for i in 0..64u64 {
        let mut block = engine.read_block_vec(Lba(i))?;
        let at = (i as usize * 131) % 7000;
        block[at..at + 400].fill(i as u8 + 1);
        engine.write_block(Lba(i), &block)?;
    }
    engine.flush()?;

    let stats = engine.stats();
    println!("writes replicated:     {}", stats.writes_replicated);
    println!("application payload:   {} KB (64 writes x 8 KB)", 64 * 8);
    println!(
        "bytes on the wire:     {:.1} KB ({} packets)",
        meter.wire_bytes_sent() as f64 / 1024.0,
        meter.packets_sent()
    );
    println!(
        "traffic reduction:     {:.1}x",
        (64.0 * 8192.0) / meter.payload_bytes_sent() as f64
    );
    // PRINS "trades off high-speed computation for communication that
    // is costly": the XOR+encode work is microseconds, the T1 time it
    // saves is seconds.
    let saved_bytes = 64 * 8192 - meter.wire_bytes_sent();
    let t1_seconds_saved = saved_bytes as f64 / 154_400.0;
    println!(
        "prins compute cost:    {:?} of XOR+encode vs {:.1}s of T1 transmission saved",
        stats.overhead_time(),
        t1_seconds_saved
    );

    engine.shutdown()?;
    replica.join().expect("replica thread")?;
    assert!(verify_consistent(&*primary_volume, &*replica_volume)?);
    println!("replica verified bit-identical to primary ✓");
    Ok(())
}
