//! TRAP in action: the parity log as a time machine.
//!
//! The PRINS authors' companion system (TRAP, ISCA'06) keeps the same
//! parities PRINS replicates in a log; XORing them backward recovers any
//! block at any past point in time. This example corrupts a "database"
//! and rolls it back.
//!
//! ```sh
//! cargo run --example point_in_time_recovery
//! ```

use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_trap::TrapDevice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = TrapDevice::new(MemDevice::new(BlockSize::kb4(), 16));

    // Day 1: the application writes clean data.
    for i in 0..16u64 {
        let mut block = vec![0u8; 4096];
        block[..20].copy_from_slice(format!("ledger entry {i:06}\n").as_bytes());
        dev.write_block(Lba(i), &block)?;
    }
    let checkpoint = dev.log().current_seq();
    println!("checkpoint taken at seq {checkpoint}");

    // Day 2: a buggy deploy scribbles over half the volume.
    for i in 0..8u64 {
        dev.write_block(Lba(i), &vec![0xde; 4096])?;
    }
    println!(
        "corruption applied; block 3 now starts with {:02x?}",
        &dev.read_block_vec(Lba(3))?[..4]
    );

    // Ops: roll the whole device back to the checkpoint.
    let recovered = dev.log().recover_device(&dev, checkpoint)?;
    let block3 = recovered.read_block_vec(Lba(3))?;
    println!(
        "recovered block 3:  {:?}",
        String::from_utf8_lossy(&block3[..20])
    );
    assert!(block3.starts_with(b"ledger entry 000003"));

    // The log cost a fraction of a full-block journal.
    let journal = dev.log().entries() * 4096;
    println!(
        "trap log size: {} B for {} writes (full-block journal: {} B, {:.1}x larger)",
        dev.log().stored_bytes(),
        dev.log().entries(),
        journal,
        journal as f64 / dev.log().stored_bytes() as f64
    );
    println!("point-in-time recovery verified ✓");
    Ok(())
}
