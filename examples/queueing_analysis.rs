//! Reproduce the paper's queueing analysis (Figures 8-10) from the
//! analytic models alone.
//!
//! ```sh
//! cargo run --example queueing_analysis
//! ```

use prins_queueing::figures::{
    paper_populations, paper_rates, response_vs_population, router_queueing_vs_rate, BytesPerWrite,
};
use prins_queueing::NodalDelay;

fn main() {
    let techniques = BytesPerWrite::paper_defaults();

    for (figure, link, name) in [(8, NodalDelay::t1(), "T1"), (9, NodalDelay::t3(), "T3")] {
        println!("Figure {figure}: response time vs population ({name}, 2 routers, 8KB)");
        let series = response_vs_population(link, &techniques, &paper_populations());
        print!("{:>12}", "population");
        for s in &series {
            print!("{:>14}", s.label);
        }
        println!();
        for n in [1usize, 20, 40, 60, 80, 100] {
            print!("{n:>12}");
            for s in &series {
                print!("{:>13.3}s", s.y[n - 1]);
            }
            println!();
        }
        println!();
    }

    println!("Figure 10: router queueing time vs write rate (T1, 8KB)");
    let series = router_queueing_vs_rate(NodalDelay::t1(), &techniques, &paper_rates());
    for s in &series {
        let saturation =
            s.y.iter()
                .position(|v| v.is_nan())
                .map(|i| format!("saturates at {} writes/s", s.x[i]))
                .unwrap_or_else(|| "never saturates in range".to_string());
        println!("  {:<12} {}", s.label, saturation);
    }
}
