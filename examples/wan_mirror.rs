//! The paper's full architecture over real sockets: an application
//! talks iSCSI to a storage node whose volume is a PRINS engine, which
//! mirrors every write — as encoded parity — over a second TCP
//! connection to a replica node.
//!
//! ```text
//!  app (iSCSI initiator) ──TCP──▶ target[PrinsEngine] ──TCP──▶ replica
//! ```
//!
//! ```sh
//! cargo run --example wan_mirror
//! ```

use std::net::TcpListener;
use std::sync::Arc;

use prins_block::{BlockDevice, BlockSize, MemDevice};
use prins_core::{EngineBuilder, ReplicaEngine};
use prins_iscsi::{Initiator, Target};
use prins_net::{LinkModel, TcpTransport, Transport};
use prins_repl::{verify_consistent, ReplicationMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Replica node: listens for the PRINS parity stream. ---
    let repl_listener = TcpListener::bind("127.0.0.1:0")?;
    let repl_addr = repl_listener.local_addr()?;
    let replica_volume = Arc::new(MemDevice::new(BlockSize::kb8(), 64));
    let replica_volume2 = Arc::clone(&replica_volume);
    let replica_thread = std::thread::spawn(move || {
        let conn = TcpTransport::accept(&repl_listener, LinkModel::t1()).expect("accept");
        ReplicaEngine::new(replica_volume2 as Arc<dyn BlockDevice>, conn).run()
    });

    // --- Primary storage node: iSCSI target over a PRINS engine. ---
    let uplink = TcpTransport::connect(repl_addr, LinkModel::t1())?;
    let wire_meter = Arc::clone(uplink.meter());
    let primary_volume = Arc::new(MemDevice::new(BlockSize::kb8(), 64));
    let engine = Arc::new(
        EngineBuilder::new(Arc::clone(&primary_volume) as Arc<dyn BlockDevice>)
            .mode(ReplicationMode::Prins)
            .replica(Box::new(uplink))
            .build(),
    );

    let iscsi_listener = TcpListener::bind("127.0.0.1:0")?;
    let iscsi_addr = iscsi_listener.local_addr()?;
    let engine_for_target = Arc::clone(&engine);
    let target_thread = std::thread::spawn(move || {
        let conn = TcpTransport::accept(&iscsi_listener, LinkModel::gigabit_lan()).expect("accept");
        Target::spawn(engine_for_target as Arc<dyn BlockDevice>, conn)
            .join()
            .expect("target thread")
    });

    // --- Application node: a plain iSCSI initiator. ---
    let conn = TcpTransport::connect(iscsi_addr, LinkModel::gigabit_lan())?;
    let mut initiator = Initiator::login(conn, "iqn.2026-07.example:app")?;
    println!(
        "logged in: {} blocks x {} B",
        initiator.num_blocks(),
        initiator.block_size()
    );

    let bs = initiator.block_size() as usize;
    let mut app_bytes = 0u64;
    for lba in 0..32u64 {
        let mut block = initiator.read_blocks(lba, 1)?;
        let at = (lba as usize * 211) % (bs - 300);
        block[at..at + 300].fill(lba as u8 + 1);
        initiator.write_blocks(lba, &block)?;
        app_bytes += bs as u64;
    }
    initiator.synchronize_cache()?; // barrier: engine flush via SCSI
    initiator.logout()?;
    target_thread.join().expect("join target")?;

    engine.flush()?;
    println!(
        "application wrote:       {} KB over iSCSI",
        app_bytes / 1024
    );
    println!(
        "parity sent to replica:  {:.1} KB over the WAN link",
        wire_meter.payload_bytes_sent() as f64 / 1024.0
    );
    println!(
        "wan traffic reduction:   {:.1}x",
        app_bytes as f64 / wire_meter.payload_bytes_sent() as f64
    );

    // Tear down and verify the mirror.
    let engine = Arc::try_unwrap(engine).map_err(|_| "engine still shared")?;
    engine.shutdown()?;
    replica_thread.join().expect("join replica")?;
    assert!(verify_consistent(&*primary_volume, &*replica_volume)?);
    println!("replica verified bit-identical to primary ✓");
    Ok(())
}
