//! Filesystem consistency checking (`fsck`).
//!
//! Walks the directory tree from the root inode, cross-checks every
//! reachable inode's block pointers against the on-disk bitmaps, and
//! reports the classic corruption classes:
//!
//! * **leaked blocks / inodes** — marked allocated but unreachable,
//! * **unallocated references** — reachable but not marked in a bitmap,
//! * **double references** — one data block claimed by two files,
//! * **structural damage** — pointers outside the data region,
//!   directory entries naming free inodes, size/pointer disagreement.

use std::collections::HashMap;

use crate::alloc::Bitmap;
use crate::fs::Fs;
use crate::layout::{Inode, InodeId, DIRECT_PTRS, ROOT_INODE};
use crate::FsError;

/// One consistency violation found by [`Fs::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsckIssue {
    /// A data block is marked allocated but no file references it.
    LeakedBlock {
        /// Data-region index of the block.
        index: u64,
    },
    /// A file references a block the bitmap says is free.
    UnallocatedBlock {
        /// Inode holding the reference.
        ino: InodeId,
        /// Data-region index of the block.
        index: u64,
    },
    /// Two references point at the same data block.
    DoubleReference {
        /// Data-region index of the block.
        index: u64,
        /// First referencing inode.
        first: InodeId,
        /// Second referencing inode.
        second: InodeId,
    },
    /// An inode is marked allocated but unreachable from the root.
    OrphanInode {
        /// The orphan inode.
        ino: InodeId,
    },
    /// A directory entry names an inode the bitmap says is free.
    DanglingEntry {
        /// Directory inode holding the entry.
        dir: InodeId,
        /// The named (free) inode.
        ino: InodeId,
    },
    /// A block pointer lies outside the data region.
    PointerOutOfRange {
        /// Inode holding the pointer.
        ino: InodeId,
        /// The raw pointer value.
        pointer: u32,
    },
    /// An inode's size requires more blocks than it has pointers for.
    SizeMismatch {
        /// The inconsistent inode.
        ino: InodeId,
        /// Size recorded in the inode.
        size: u64,
    },
}

impl std::fmt::Display for FsckIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsckIssue::LeakedBlock { index } => write!(f, "leaked data block {index}"),
            FsckIssue::UnallocatedBlock { ino, index } => {
                write!(f, "inode {ino} references unallocated block {index}")
            }
            FsckIssue::DoubleReference {
                index,
                first,
                second,
            } => {
                write!(f, "block {index} referenced by inodes {first} and {second}")
            }
            FsckIssue::OrphanInode { ino } => write!(f, "orphan inode {ino}"),
            FsckIssue::DanglingEntry { dir, ino } => {
                write!(f, "directory {dir} names free inode {ino}")
            }
            FsckIssue::PointerOutOfRange { ino, pointer } => {
                write!(f, "inode {ino} pointer {pointer} outside data region")
            }
            FsckIssue::SizeMismatch { ino, size } => {
                write!(f, "inode {ino} size {size} disagrees with its pointers")
            }
        }
    }
}

/// The result of a consistency check.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Violations found (empty = clean).
    pub issues: Vec<FsckIssue>,
    /// Reachable files.
    pub files: u64,
    /// Reachable directories (including the root).
    pub directories: u64,
    /// Data blocks referenced by reachable inodes.
    pub referenced_blocks: u64,
}

impl FsckReport {
    /// Whether the filesystem is fully consistent.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl Fs {
    /// Runs a full consistency check.
    ///
    /// # Errors
    ///
    /// Propagates device I/O failures; *logical* inconsistencies are
    /// reported in the [`FsckReport`], not as errors.
    pub fn check(&self) -> Result<FsckReport, FsError> {
        let layout = self.layout();
        let dev = self.device();
        let block_bits = Bitmap::blocks_of(&layout).snapshot(&**dev)?;
        let inode_bits = Bitmap::inodes_of(&layout).snapshot(&**dev)?;
        let mut report = FsckReport::default();
        // data-region index -> first referencing inode
        let mut block_owner: HashMap<u64, InodeId> = HashMap::new();
        let mut inode_reachable = vec![false; layout.inode_count as usize];

        // Walk the tree.
        let mut stack = vec![ROOT_INODE];
        while let Some(ino) = stack.pop() {
            let idx = (ino - 1) as usize;
            if inode_reachable[idx] {
                continue; // loop guard (should not happen; stay safe)
            }
            inode_reachable[idx] = true;
            let inode = self.read_inode_raw(ino)?;
            match inode.kind {
                2 => report.directories += 1,
                _ => report.files += 1,
            }
            self.audit_pointers(ino, &inode, &block_bits, &mut block_owner, &mut report)?;
            if inode.kind == 2 {
                for (child, _name) in self.dir_entries_raw(&inode)? {
                    let child_idx = (child - 1) as usize;
                    if child_idx >= inode_bits.len() || !inode_bits[child_idx] {
                        report.issues.push(FsckIssue::DanglingEntry {
                            dir: ino,
                            ino: child,
                        });
                        continue;
                    }
                    stack.push(child);
                }
            }
        }
        report.referenced_blocks = block_owner.len() as u64;

        // Bitmap cross-checks.
        for (index, &allocated) in block_bits.iter().enumerate() {
            let referenced = block_owner.contains_key(&(index as u64));
            if allocated && !referenced {
                report.issues.push(FsckIssue::LeakedBlock {
                    index: index as u64,
                });
            }
        }
        for (idx, &allocated) in inode_bits.iter().enumerate() {
            if allocated && !inode_reachable[idx] {
                report.issues.push(FsckIssue::OrphanInode {
                    ino: idx as u32 + 1,
                });
            }
        }
        Ok(report)
    }

    /// Audits one inode's pointer structure.
    fn audit_pointers(
        &self,
        ino: InodeId,
        inode: &Inode,
        block_bits: &[bool],
        block_owner: &mut HashMap<u64, InodeId>,
        report: &mut FsckReport,
    ) -> Result<(), FsError> {
        let layout = self.layout();
        let bs = layout.block_size.bytes() as u64;
        let data_blocks = layout.data_blocks();
        let mut claim = |ptr: u32, report: &mut FsckReport| {
            if ptr == 0 {
                return;
            }
            let index = (ptr - 1) as u64;
            if index >= data_blocks {
                report
                    .issues
                    .push(FsckIssue::PointerOutOfRange { ino, pointer: ptr });
                return;
            }
            if let Some(&first) = block_owner.get(&index) {
                report.issues.push(FsckIssue::DoubleReference {
                    index,
                    first,
                    second: ino,
                });
                return;
            }
            block_owner.insert(index, ino);
            if !block_bits[index as usize] {
                report
                    .issues
                    .push(FsckIssue::UnallocatedBlock { ino, index });
            }
        };
        for &ptr in &inode.direct {
            claim(ptr, report);
        }
        if inode.indirect != 0 {
            claim(inode.indirect, report);
            let entries = self.indirect_entries_raw(inode)?;
            for ptr in entries {
                claim(ptr, report);
            }
        }
        // A hole-free size bound: the file cannot need more than
        // 12 + bs/4 blocks.
        let max_blocks = DIRECT_PTRS as u64 + bs / 4;
        if inode.size.div_ceil(bs) > max_blocks {
            report.issues.push(FsckIssue::SizeMismatch {
                ino,
                size: inode.size,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
    use std::sync::Arc;

    fn build() -> (Arc<MemDevice>, Fs) {
        let dev = Arc::new(MemDevice::new(BlockSize::kb4(), 2048));
        let fs = Fs::format(Arc::clone(&dev) as Arc<dyn BlockDevice>, 128).unwrap();
        fs.create_dir("/a").unwrap();
        fs.create_dir("/a/b").unwrap();
        fs.write_file("/a/top.txt", b"hello").unwrap();
        fs.write_file("/a/b/big.bin", &vec![7u8; 80_000]).unwrap();
        fs.write_file("/loose", b"x").unwrap();
        (dev, fs)
    }

    #[test]
    fn healthy_filesystem_checks_clean() {
        let (_dev, fs) = build();
        let report = fs.check().unwrap();
        assert!(report.is_clean(), "{:?}", report.issues);
        assert_eq!(report.directories, 3); // root, /a, /a/b
        assert_eq!(report.files, 3);
        assert_eq!(report.referenced_blocks, fs.used_blocks().unwrap());
    }

    #[test]
    fn check_stays_clean_through_heavy_churn() {
        let (_dev, fs) = build();
        for i in 0..30 {
            fs.write_file(&format!("/churn{i}"), &vec![i as u8; 10_000])
                .unwrap();
        }
        for i in (0..30).step_by(2) {
            fs.unlink(&format!("/churn{i}")).unwrap();
        }
        fs.truncate("/a/b/big.bin", 100).unwrap();
        let report = fs.check().unwrap();
        assert!(report.is_clean(), "{:?}", report.issues);
    }

    #[test]
    fn leaked_block_is_detected() {
        let (dev, fs) = build();
        // Set a random unreferenced bit in the block bitmap directly.
        let layout = fs.layout();
        let mut bm = dev.read_block_vec(Lba(layout.block_bitmap_start)).unwrap();
        // Find a clear bit and set it.
        let byte = bm.iter().position(|&b| b != 0xff).unwrap();
        let bit = bm[byte].trailing_ones();
        bm[byte] |= 1 << bit;
        dev.write_block(Lba(layout.block_bitmap_start), &bm)
            .unwrap();
        let report = fs.check().unwrap();
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::LeakedBlock { .. })));
    }

    #[test]
    fn orphan_inode_is_detected() {
        let (dev, fs) = build();
        let layout = fs.layout();
        // Allocate an inode bit with no directory entry pointing at it.
        let mut bm = dev.read_block_vec(Lba(layout.inode_bitmap_start)).unwrap();
        let byte = bm.iter().position(|&b| b != 0xff).unwrap();
        let bit = bm[byte].trailing_ones();
        bm[byte] |= 1 << bit;
        dev.write_block(Lba(layout.inode_bitmap_start), &bm)
            .unwrap();
        let report = fs.check().unwrap();
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::OrphanInode { .. })));
    }

    #[test]
    fn unallocated_reference_is_detected() {
        let (dev, fs) = build();
        let layout = fs.layout();
        // Clear the bitmap bit for a block that /loose references.
        let report_before = fs.check().unwrap();
        assert!(report_before.is_clean());
        let mut bm = dev.read_block_vec(Lba(layout.block_bitmap_start)).unwrap();
        // Clear the highest set bit (belongs to the most recent file).
        let byte = bm.iter().rposition(|&b| b != 0).unwrap();
        let bit = 7 - bm[byte].leading_zeros() as u8 % 8;
        bm[byte] &= !(1 << bit);
        dev.write_block(Lba(layout.block_bitmap_start), &bm)
            .unwrap();
        let report = fs.check().unwrap();
        assert!(
            report
                .issues
                .iter()
                .any(|i| matches!(i, FsckIssue::UnallocatedBlock { .. })),
            "{:?}",
            report.issues
        );
    }

    #[test]
    fn issues_render_human_readably() {
        let issue = FsckIssue::DoubleReference {
            index: 9,
            first: 2,
            second: 5,
        };
        let text = issue.to_string();
        assert!(text.contains('9') && text.contains('2') && text.contains('5'));
    }
}
