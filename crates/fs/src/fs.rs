//! The filesystem proper: inodes, directories, files.

use std::sync::Arc;

use prins_block::{BlockDevice, Lba};

use crate::alloc::Bitmap;
use crate::layout::{Inode, InodeId, Layout, DIRECT_PTRS, INODE_SIZE, ROOT_INODE};
use crate::FsError;

const DIRENT_SIZE: usize = 64;
const NAME_MAX: usize = DIRENT_SIZE - 5;

const KIND_FILE: u16 = 1;
const KIND_DIR: u16 = 2;

/// What a directory entry points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Directory,
}

/// `stat`-style information about a path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Metadata {
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes (directories: size of the entry table).
    pub size: u64,
    /// Modification counter.
    pub mtime: u64,
}

/// An ext2-like filesystem over a shared block device.
///
/// All paths are absolute (`/a/b/c`). See the [crate docs](crate) for an
/// example. Methods take `&self`; the filesystem serializes access
/// through the device's own locking (single-writer workloads, as in the
/// paper's micro-benchmark).
pub struct Fs {
    dev: Arc<dyn BlockDevice>,
    layout: Layout,
}

impl Fs {
    /// Formats the device and returns the mounted filesystem.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] if the device cannot hold the metadata
    /// regions.
    pub fn format(dev: Arc<dyn BlockDevice>, inode_count: u32) -> Result<Self, FsError> {
        let layout = Layout::compute(dev.geometry(), inode_count)?;
        let bs = layout.block_size.bytes();
        let zero = vec![0u8; bs];
        for blk in 0..layout.data_start {
            dev.write_block(Lba(blk), &zero)?;
        }
        let mut sb = vec![0u8; bs];
        layout.encode_superblock(&mut sb);
        dev.write_block(Lba(0), &sb)?;

        let fs = Self { dev, layout };
        // Allocate the root inode (bitmap bit 0 -> inode 1).
        let idx = Bitmap::inodes_of(&fs.layout).allocate(&*fs.dev)?;
        debug_assert_eq!(idx as u32 + 1, ROOT_INODE);
        fs.write_inode(
            ROOT_INODE,
            &Inode {
                kind: KIND_DIR,
                links: 1,
                ..Inode::default()
            },
        )?;
        Ok(fs)
    }

    /// Mounts an already formatted device.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] when the superblock does not validate.
    pub fn mount(dev: Arc<dyn BlockDevice>) -> Result<Self, FsError> {
        let mut sb = dev.geometry().block_size().zeroed();
        dev.read_block(Lba(0), &mut sb)?;
        let layout = Layout::decode_superblock(dev.geometry(), &sb)?;
        Ok(Self { dev, layout })
    }

    /// The filesystem's on-disk layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The backing device (used by fsck and tests).
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.dev
    }

    pub(crate) fn read_inode_raw(&self, ino: InodeId) -> Result<Inode, FsError> {
        self.read_inode(ino)
    }

    pub(crate) fn dir_entries_raw(&self, dir: &Inode) -> Result<Vec<(InodeId, String)>, FsError> {
        self.dir_entries(dir)
    }

    /// All pointer slots of an inode's indirect block (zeros included).
    pub(crate) fn indirect_entries_raw(&self, inode: &Inode) -> Result<Vec<u32>, FsError> {
        if inode.indirect == 0 {
            return Ok(Vec::new());
        }
        let mut buf = self.layout.block_size.zeroed();
        self.dev
            .read_block(self.data_lba(inode.indirect), &mut buf)?;
        Ok(buf
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Data blocks currently allocated.
    ///
    /// # Errors
    ///
    /// Device failures.
    pub fn used_blocks(&self) -> Result<u64, FsError> {
        Bitmap::blocks_of(&self.layout).used(&*self.dev)
    }

    // ------------------------------------------------------------------
    // Inode I/O
    // ------------------------------------------------------------------

    fn read_inode(&self, ino: InodeId) -> Result<Inode, FsError> {
        let (blk, off) = self.layout.inode_location(ino);
        let mut buf = self.layout.block_size.zeroed();
        self.dev.read_block(Lba(blk), &mut buf)?;
        Ok(Inode::decode(&buf[off..off + INODE_SIZE]))
    }

    fn write_inode(&self, ino: InodeId, inode: &Inode) -> Result<(), FsError> {
        let (blk, off) = self.layout.inode_location(ino);
        let mut buf = self.layout.block_size.zeroed();
        self.dev.read_block(Lba(blk), &mut buf)?;
        inode.encode(&mut buf[off..off + INODE_SIZE]);
        self.dev.write_block(Lba(blk), &buf)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Block mapping
    // ------------------------------------------------------------------

    fn data_lba(&self, ptr: u32) -> Lba {
        Lba(self.layout.data_start + (ptr - 1) as u64)
    }

    /// Device block for file block `fblk`, or `None` if unallocated.
    fn block_of(&self, inode: &Inode, fblk: u64) -> Result<Option<Lba>, FsError> {
        let bs = self.layout.block_size.bytes() as u64;
        if fblk < DIRECT_PTRS as u64 {
            let ptr = inode.direct[fblk as usize];
            return Ok((ptr != 0).then(|| self.data_lba(ptr)));
        }
        let idx = fblk - DIRECT_PTRS as u64;
        if idx >= bs / 4 || inode.indirect == 0 {
            return Ok(None);
        }
        let mut buf = self.layout.block_size.zeroed();
        self.dev
            .read_block(self.data_lba(inode.indirect), &mut buf)?;
        let at = idx as usize * 4;
        let ptr = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
        Ok((ptr != 0).then(|| self.data_lba(ptr)))
    }

    fn allocate_data_block(&self) -> Result<u32, FsError> {
        let idx = Bitmap::blocks_of(&self.layout).allocate(&*self.dev)?;
        // Freshly allocated blocks must read as zeros even if recycled.
        let zero = self.layout.block_size.zeroed();
        self.dev
            .write_block(Lba(self.layout.data_start + idx), &zero)?;
        Ok(idx as u32 + 1)
    }

    /// Device block for file block `fblk`, allocating as needed.
    fn ensure_block(&self, inode: &mut Inode, fblk: u64) -> Result<Lba, FsError> {
        let bs = self.layout.block_size.bytes() as u64;
        if fblk < DIRECT_PTRS as u64 {
            if inode.direct[fblk as usize] == 0 {
                inode.direct[fblk as usize] = self.allocate_data_block()?;
            }
            return Ok(self.data_lba(inode.direct[fblk as usize]));
        }
        let idx = fblk - DIRECT_PTRS as u64;
        if idx >= bs / 4 {
            return Err(FsError::FileTooLarge {
                size: (fblk + 1) * bs,
                max: self.layout.max_file_size(),
            });
        }
        if inode.indirect == 0 {
            inode.indirect = self.allocate_data_block()?;
        }
        let ind_lba = self.data_lba(inode.indirect);
        let mut buf = self.layout.block_size.zeroed();
        self.dev.read_block(ind_lba, &mut buf)?;
        let at = idx as usize * 4;
        let mut ptr = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
        if ptr == 0 {
            ptr = self.allocate_data_block()?;
            buf[at..at + 4].copy_from_slice(&ptr.to_le_bytes());
            self.dev.write_block(ind_lba, &buf)?;
        }
        Ok(self.data_lba(ptr))
    }

    fn free_file_blocks(&self, inode: &mut Inode, from_fblk: u64) -> Result<(), FsError> {
        let bs = self.layout.block_size.bytes() as u64;
        let bitmap = Bitmap::blocks_of(&self.layout);
        for fblk in from_fblk..DIRECT_PTRS as u64 {
            let ptr = inode.direct[fblk as usize];
            if ptr != 0 {
                bitmap.free(&*self.dev, (ptr - 1) as u64)?;
                inode.direct[fblk as usize] = 0;
            }
        }
        if inode.indirect != 0 {
            let ind_lba = self.data_lba(inode.indirect);
            let mut buf = self.layout.block_size.zeroed();
            self.dev.read_block(ind_lba, &mut buf)?;
            let first_ind = from_fblk.saturating_sub(DIRECT_PTRS as u64);
            let mut any_left = false;
            for idx in 0..bs / 4 {
                let at = idx as usize * 4;
                let ptr = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
                if ptr == 0 {
                    continue;
                }
                if idx >= first_ind {
                    bitmap.free(&*self.dev, (ptr - 1) as u64)?;
                    buf[at..at + 4].copy_from_slice(&0u32.to_le_bytes());
                } else {
                    any_left = true;
                }
            }
            if any_left {
                self.dev.write_block(ind_lba, &buf)?;
            } else {
                bitmap.free(&*self.dev, (inode.indirect - 1) as u64)?;
                inode.indirect = 0;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Byte-granular file I/O on inodes
    // ------------------------------------------------------------------

    fn read_range(&self, inode: &Inode, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        let bs = self.layout.block_size.bytes() as u64;
        let mut pos = 0usize;
        let mut block = self.layout.block_size.zeroed();
        while pos < buf.len() {
            let at = offset + pos as u64;
            let fblk = at / bs;
            let in_block = (at % bs) as usize;
            let n = ((bs as usize) - in_block).min(buf.len() - pos);
            match self.block_of(inode, fblk)? {
                Some(lba) => {
                    self.dev.read_block(lba, &mut block)?;
                    buf[pos..pos + n].copy_from_slice(&block[in_block..in_block + n]);
                }
                None => buf[pos..pos + n].fill(0), // hole
            }
            pos += n;
        }
        Ok(())
    }

    fn write_range(&self, inode: &mut Inode, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let bs = self.layout.block_size.bytes() as u64;
        let end = offset + data.len() as u64;
        if end > self.layout.max_file_size() {
            return Err(FsError::FileTooLarge {
                size: end,
                max: self.layout.max_file_size(),
            });
        }
        let mut pos = 0usize;
        let mut block = self.layout.block_size.zeroed();
        while pos < data.len() {
            let at = offset + pos as u64;
            let fblk = at / bs;
            let in_block = (at % bs) as usize;
            let n = ((bs as usize) - in_block).min(data.len() - pos);
            let lba = self.ensure_block(inode, fblk)?;
            if n == bs as usize {
                self.dev.write_block(lba, &data[pos..pos + n])?;
            } else {
                self.dev.read_block(lba, &mut block)?;
                block[in_block..in_block + n].copy_from_slice(&data[pos..pos + n]);
                self.dev.write_block(lba, &block)?;
            }
            pos += n;
        }
        inode.size = inode.size.max(end);
        inode.mtime += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Directories
    // ------------------------------------------------------------------

    fn dir_entries(&self, dir: &Inode) -> Result<Vec<(InodeId, String)>, FsError> {
        let mut data = vec![0u8; dir.size as usize];
        self.read_range(dir, 0, &mut data)?;
        let mut out = Vec::new();
        for chunk in data.chunks_exact(DIRENT_SIZE) {
            let ino = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
            if ino == 0 {
                continue;
            }
            let len = chunk[4] as usize;
            let name =
                String::from_utf8(chunk[5..5 + len.min(NAME_MAX)].to_vec()).map_err(|_| {
                    FsError::Corrupt {
                        detail: "non-utf8 directory entry".into(),
                    }
                })?;
            out.push((ino, name));
        }
        Ok(out)
    }

    fn dir_find(&self, dir: &Inode, name: &str) -> Result<Option<InodeId>, FsError> {
        Ok(self
            .dir_entries(dir)?
            .into_iter()
            .find(|(_, n)| n == name)
            .map(|(ino, _)| ino))
    }

    fn dir_add(
        &self,
        dir_ino: InodeId,
        dir: &mut Inode,
        name: &str,
        ino: InodeId,
    ) -> Result<(), FsError> {
        if name.len() > NAME_MAX {
            return Err(FsError::NameTooLong { name: name.into() });
        }
        let mut entry = [0u8; DIRENT_SIZE];
        entry[0..4].copy_from_slice(&ino.to_le_bytes());
        entry[4] = name.len() as u8;
        entry[5..5 + name.len()].copy_from_slice(name.as_bytes());

        // Reuse a dead slot if one exists.
        let mut data = vec![0u8; dir.size as usize];
        self.read_range(dir, 0, &mut data)?;
        let slot = data
            .chunks_exact(DIRENT_SIZE)
            .position(|c| u32::from_le_bytes(c[0..4].try_into().unwrap()) == 0);
        let offset = match slot {
            Some(i) => (i * DIRENT_SIZE) as u64,
            None => dir.size,
        };
        self.write_range(dir, offset, &entry)?;
        self.write_inode(dir_ino, dir)?;
        Ok(())
    }

    fn dir_remove(
        &self,
        dir_ino: InodeId,
        dir: &mut Inode,
        name: &str,
    ) -> Result<InodeId, FsError> {
        let mut data = vec![0u8; dir.size as usize];
        self.read_range(dir, 0, &mut data)?;
        for (i, chunk) in data.chunks_exact(DIRENT_SIZE).enumerate() {
            let ino = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
            if ino == 0 {
                continue;
            }
            let len = chunk[4] as usize;
            if &chunk[5..5 + len.min(NAME_MAX)] == name.as_bytes() {
                self.write_range(dir, (i * DIRENT_SIZE) as u64, &[0u8; 4])?;
                self.write_inode(dir_ino, dir)?;
                return Ok(ino);
            }
        }
        Err(FsError::NotFound { path: name.into() })
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::InvalidPath { path: path.into() });
        }
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        Ok(parts)
    }

    fn resolve(&self, path: &str) -> Result<InodeId, FsError> {
        let parts = Self::split_path(path)?;
        let mut ino = ROOT_INODE;
        for part in parts {
            let inode = self.read_inode(ino)?;
            if inode.kind != KIND_DIR {
                return Err(FsError::NotADirectory { path: part.into() });
            }
            ino = self
                .dir_find(&inode, part)?
                .ok_or_else(|| FsError::NotFound { path: path.into() })?;
        }
        Ok(ino)
    }

    /// Resolves the parent directory of `path`, returning `(parent
    /// inode id, final component)`.
    fn resolve_parent<'p>(&self, path: &'p str) -> Result<(InodeId, &'p str), FsError> {
        let parts = Self::split_path(path)?;
        let Some((&name, dirs)) = parts.split_last() else {
            return Err(FsError::InvalidPath { path: path.into() });
        };
        let mut ino = ROOT_INODE;
        for part in dirs {
            let inode = self.read_inode(ino)?;
            if inode.kind != KIND_DIR {
                return Err(FsError::NotADirectory {
                    path: (*part).into(),
                });
            }
            ino = self
                .dir_find(&inode, part)?
                .ok_or_else(|| FsError::NotFound { path: path.into() })?;
        }
        Ok((ino, name))
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    /// `stat`-style metadata for `path`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] and device failures.
    pub fn metadata(&self, path: &str) -> Result<Metadata, FsError> {
        let inode = self.read_inode(self.resolve(path)?)?;
        Ok(Metadata {
            kind: if inode.kind == KIND_DIR {
                FileKind::Directory
            } else {
                FileKind::File
            },
            size: inode.size,
            mtime: inode.mtime,
        })
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`], [`FsError::NotFound`] for a missing
    /// parent, [`FsError::NoSpace`].
    pub fn create_dir(&self, path: &str) -> Result<(), FsError> {
        self.create_node(path, KIND_DIR).map(|_| ())
    }

    fn create_node(&self, path: &str, kind: u16) -> Result<InodeId, FsError> {
        let (parent_ino, name) = self.resolve_parent(path)?;
        let mut parent = self.read_inode(parent_ino)?;
        if parent.kind != KIND_DIR {
            return Err(FsError::NotADirectory { path: path.into() });
        }
        if self.dir_find(&parent, name)?.is_some() {
            return Err(FsError::AlreadyExists { path: path.into() });
        }
        let ino = Bitmap::inodes_of(&self.layout).allocate(&*self.dev)? as u32 + 1;
        self.write_inode(
            ino,
            &Inode {
                kind,
                links: 1,
                ..Inode::default()
            },
        )?;
        self.dir_add(parent_ino, &mut parent, name, ino)?;
        Ok(ino)
    }

    /// Lists the names in a directory, sorted.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] when `path` is a file.
    pub fn read_dir(&self, path: &str) -> Result<Vec<String>, FsError> {
        let inode = self.read_inode(self.resolve(path)?)?;
        if inode.kind != KIND_DIR {
            return Err(FsError::NotADirectory { path: path.into() });
        }
        let mut names: Vec<String> = self
            .dir_entries(&inode)?
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        names.sort();
        Ok(names)
    }

    /// Creates or replaces a file with `data`.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`], [`FsError::NoSpace`],
    /// [`FsError::FileTooLarge`].
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let ino = match self.resolve(path) {
            Ok(ino) => {
                let inode = self.read_inode(ino)?;
                if inode.kind == KIND_DIR {
                    return Err(FsError::IsADirectory { path: path.into() });
                }
                self.truncate_ino(ino, 0)?;
                ino
            }
            Err(FsError::NotFound { .. }) => self.create_node(path, KIND_FILE)?,
            Err(e) => return Err(e),
        };
        let mut inode = self.read_inode(ino)?;
        self.write_range(&mut inode, 0, data)?;
        self.write_inode(ino, &inode)
    }

    /// Writes `data` at `offset`, extending the file as needed (sparse
    /// holes read as zeros). The file must exist.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsADirectory`],
    /// [`FsError::FileTooLarge`].
    pub fn write_at(&self, path: &str, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let ino = self.resolve(path)?;
        let mut inode = self.read_inode(ino)?;
        if inode.kind == KIND_DIR {
            return Err(FsError::IsADirectory { path: path.into() });
        }
        self.write_range(&mut inode, offset, data)?;
        self.write_inode(ino, &inode)
    }

    /// Appends `data` to an existing file.
    ///
    /// # Errors
    ///
    /// As [`write_at`](Self::write_at).
    pub fn append(&self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let size = self.metadata(path)?.size;
        self.write_at(path, size, data)
    }

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsADirectory`].
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, FsError> {
        let inode = self.read_inode(self.resolve(path)?)?;
        if inode.kind == KIND_DIR {
            return Err(FsError::IsADirectory { path: path.into() });
        }
        let mut data = vec![0u8; inode.size as usize];
        self.read_range(&inode, 0, &mut data)?;
        Ok(data)
    }

    /// Reads `buf.len()` bytes starting at `offset` (zero-filled past
    /// EOF).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsADirectory`].
    pub fn read_at(&self, path: &str, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        let inode = self.read_inode(self.resolve(path)?)?;
        if inode.kind == KIND_DIR {
            return Err(FsError::IsADirectory { path: path.into() });
        }
        self.read_range(&inode, offset, buf)
    }

    fn truncate_ino(&self, ino: InodeId, size: u64) -> Result<(), FsError> {
        let bs = self.layout.block_size.bytes() as u64;
        let mut inode = self.read_inode(ino)?;
        if size < inode.size {
            self.free_file_blocks(&mut inode, size.div_ceil(bs))?;
        }
        inode.size = size;
        inode.mtime += 1;
        self.write_inode(ino, &inode)
    }

    /// Truncates (or extends with a hole) a file to `size`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsADirectory`].
    pub fn truncate(&self, path: &str, size: u64) -> Result<(), FsError> {
        let ino = self.resolve(path)?;
        if self.read_inode(ino)?.kind == KIND_DIR {
            return Err(FsError::IsADirectory { path: path.into() });
        }
        self.truncate_ino(ino, size)
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsADirectory`].
    pub fn unlink(&self, path: &str) -> Result<(), FsError> {
        let (parent_ino, name) = self.resolve_parent(path)?;
        let mut parent = self.read_inode(parent_ino)?;
        let ino = self
            .dir_find(&parent, name)?
            .ok_or_else(|| FsError::NotFound { path: path.into() })?;
        let mut inode = self.read_inode(ino)?;
        if inode.kind == KIND_DIR {
            return Err(FsError::IsADirectory { path: path.into() });
        }
        self.dir_remove(parent_ino, &mut parent, name)?;
        self.free_file_blocks(&mut inode, 0)?;
        self.write_inode(ino, &Inode::default())?;
        Bitmap::inodes_of(&self.layout).free(&*self.dev, (ino - 1) as u64)?;
        Ok(())
    }

    /// Renames/moves a file or directory to a new absolute path.
    ///
    /// The destination must not exist; its parent must be a directory.
    /// Moving a directory into its own subtree is rejected.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::AlreadyExists`],
    /// [`FsError::NotADirectory`], [`FsError::InvalidPath`].
    pub fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        let (from_parent, from_name) = self.resolve_parent(from)?;
        let ino = {
            let parent = self.read_inode(from_parent)?;
            self.dir_find(&parent, from_name)?
                .ok_or_else(|| FsError::NotFound { path: from.into() })?
        };
        if self.exists(to) {
            return Err(FsError::AlreadyExists { path: to.into() });
        }
        // Reject moving a directory under itself: "/a" -> "/a/b/c".
        let from_norm = from.trim_end_matches('/');
        if to.starts_with(&format!("{from_norm}/")) {
            return Err(FsError::InvalidPath { path: to.into() });
        }
        let (to_parent, to_name) = self.resolve_parent(to)?;
        if self.read_inode(to_parent)?.kind != KIND_DIR {
            return Err(FsError::NotADirectory { path: to.into() });
        }
        // Link at the destination first, then unlink the source entry;
        // a crash in between leaves an extra (harmless) link rather
        // than a lost file.
        let mut to_dir = self.read_inode(to_parent)?;
        self.dir_add(to_parent, &mut to_dir, to_name, ino)?;
        let mut from_dir = self.read_inode(from_parent)?;
        self.dir_remove(from_parent, &mut from_dir, from_name)?;
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::DirectoryNotEmpty`], [`FsError::NotADirectory`],
    /// [`FsError::NotFound`].
    pub fn remove_dir(&self, path: &str) -> Result<(), FsError> {
        let (parent_ino, name) = self.resolve_parent(path)?;
        let mut parent = self.read_inode(parent_ino)?;
        let ino = self
            .dir_find(&parent, name)?
            .ok_or_else(|| FsError::NotFound { path: path.into() })?;
        let mut inode = self.read_inode(ino)?;
        if inode.kind != KIND_DIR {
            return Err(FsError::NotADirectory { path: path.into() });
        }
        if !self.dir_entries(&inode)?.is_empty() {
            return Err(FsError::DirectoryNotEmpty { path: path.into() });
        }
        self.dir_remove(parent_ino, &mut parent, name)?;
        self.free_file_blocks(&mut inode, 0)?;
        self.write_inode(ino, &Inode::default())?;
        Bitmap::inodes_of(&self.layout).free(&*self.dev, (ino - 1) as u64)?;
        Ok(())
    }

    /// Walks the tree depth-first, returning every path under `root`
    /// (directories included, `root` excluded), sorted.
    ///
    /// # Errors
    ///
    /// Propagates resolution failures.
    pub fn walk(&self, root: &str) -> Result<Vec<String>, FsError> {
        let mut out = Vec::new();
        let mut stack = vec![root.trim_end_matches('/').to_string()];
        while let Some(dir) = stack.pop() {
            let list_path = if dir.is_empty() { "/" } else { &dir };
            for name in self.read_dir(list_path)? {
                let child = format!("{dir}/{name}");
                match self.metadata(&child)?.kind {
                    FileKind::Directory => {
                        out.push(child.clone());
                        stack.push(child);
                    }
                    FileKind::File => out.push(child),
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

impl std::fmt::Debug for Fs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fs").field("layout", &self.layout).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, MemDevice};
    use rand::{RngExt, SeedableRng};

    fn fresh(blocks: u64) -> Fs {
        Fs::format(Arc::new(MemDevice::new(BlockSize::kb4(), blocks)), 256).unwrap()
    }

    #[test]
    fn root_starts_empty() {
        let fs = fresh(1024);
        assert!(fs.read_dir("/").unwrap().is_empty());
        assert!(fs.exists("/"));
        assert_eq!(fs.metadata("/").unwrap().kind, FileKind::Directory);
    }

    #[test]
    fn file_write_read_roundtrip() {
        let fs = fresh(1024);
        fs.write_file("/hello.txt", b"hi there").unwrap();
        assert_eq!(fs.read_file("/hello.txt").unwrap(), b"hi there");
        let md = fs.metadata("/hello.txt").unwrap();
        assert_eq!(md.size, 8);
        assert_eq!(md.kind, FileKind::File);
    }

    #[test]
    fn nested_directories() {
        let fs = fresh(1024);
        fs.create_dir("/a").unwrap();
        fs.create_dir("/a/b").unwrap();
        fs.create_dir("/a/b/c").unwrap();
        fs.write_file("/a/b/c/deep.txt", b"deep").unwrap();
        assert_eq!(fs.read_file("/a/b/c/deep.txt").unwrap(), b"deep");
        assert_eq!(fs.read_dir("/a").unwrap(), vec!["b"]);
        assert!(matches!(
            fs.create_dir("/a/b"),
            Err(FsError::AlreadyExists { .. })
        ));
        assert!(matches!(
            fs.write_file("/missing/f", b"x"),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn large_file_uses_indirect_blocks() {
        let fs = fresh(4096);
        // > 12 * 4096 bytes forces the indirect path.
        let data: Vec<u8> = (0..80_000usize).map(|i| (i % 251) as u8).collect();
        fs.write_file("/big.bin", &data).unwrap();
        assert_eq!(fs.read_file("/big.bin").unwrap(), data);
    }

    #[test]
    fn file_too_large_is_rejected() {
        let fs = fresh(8192);
        let max = fs.layout().max_file_size();
        assert!(matches!(
            fs.write_at("/nope", 0, b"x"),
            Err(FsError::NotFound { .. })
        ));
        fs.write_file("/f", b"x").unwrap();
        assert!(matches!(
            fs.write_at("/f", max, b"x"),
            Err(FsError::FileTooLarge { .. })
        ));
    }

    #[test]
    fn partial_overwrite_touches_middle_of_file() {
        let fs = fresh(1024);
        fs.write_file("/f", &vec![1u8; 10_000]).unwrap();
        fs.write_at("/f", 5000, &[9u8; 100]).unwrap();
        let data = fs.read_file("/f").unwrap();
        assert_eq!(data.len(), 10_000);
        assert!(data[..5000].iter().all(|&b| b == 1));
        assert!(data[5000..5100].iter().all(|&b| b == 9));
        assert!(data[5100..].iter().all(|&b| b == 1));
    }

    #[test]
    fn sparse_holes_read_as_zero() {
        let fs = fresh(1024);
        fs.write_file("/s", b"").unwrap();
        fs.write_at("/s", 20_000, b"end").unwrap();
        let data = fs.read_file("/s").unwrap();
        assert_eq!(data.len(), 20_003);
        assert!(data[..20_000].iter().all(|&b| b == 0));
        assert_eq!(&data[20_000..], b"end");
    }

    #[test]
    fn append_grows_file() {
        let fs = fresh(1024);
        fs.write_file("/log", b"one\n").unwrap();
        fs.append("/log", b"two\n").unwrap();
        assert_eq!(fs.read_file("/log").unwrap(), b"one\ntwo\n");
    }

    #[test]
    fn unlink_frees_blocks() {
        let fs = fresh(1024);
        // Baseline includes the root directory's entry block, which
        // stays allocated after the unlink (as in ext2).
        fs.write_file("/warmup", b"x").unwrap();
        fs.unlink("/warmup").unwrap();
        let before = fs.used_blocks().unwrap();
        fs.write_file("/victim", &vec![7u8; 100_000]).unwrap();
        assert!(fs.used_blocks().unwrap() > before);
        fs.unlink("/victim").unwrap();
        assert_eq!(fs.used_blocks().unwrap(), before);
        assert!(!fs.exists("/victim"));
        assert!(matches!(
            fs.unlink("/victim"),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn truncate_shrinks_and_frees() {
        let fs = fresh(1024);
        fs.write_file("/t", &vec![5u8; 50_000]).unwrap();
        let used_full = fs.used_blocks().unwrap();
        fs.truncate("/t", 100).unwrap();
        assert!(fs.used_blocks().unwrap() < used_full);
        let data = fs.read_file("/t").unwrap();
        assert_eq!(data.len(), 100);
        assert!(data.iter().all(|&b| b == 5));
    }

    #[test]
    fn remove_dir_requires_empty() {
        let fs = fresh(1024);
        fs.create_dir("/d").unwrap();
        fs.write_file("/d/f", b"x").unwrap();
        assert!(matches!(
            fs.remove_dir("/d"),
            Err(FsError::DirectoryNotEmpty { .. })
        ));
        fs.unlink("/d/f").unwrap();
        fs.remove_dir("/d").unwrap();
        assert!(!fs.exists("/d"));
    }

    #[test]
    fn mount_sees_previous_contents() {
        let dev = Arc::new(MemDevice::new(BlockSize::kb4(), 1024));
        {
            let fs = Fs::format(Arc::clone(&dev) as Arc<dyn BlockDevice>, 128).unwrap();
            fs.create_dir("/persist").unwrap();
            fs.write_file("/persist/data", b"still here").unwrap();
        }
        let fs = Fs::mount(dev).unwrap();
        assert_eq!(fs.read_file("/persist/data").unwrap(), b"still here");
    }

    #[test]
    fn mount_rejects_unformatted_device() {
        let dev = Arc::new(MemDevice::new(BlockSize::kb4(), 1024));
        assert!(matches!(Fs::mount(dev), Err(FsError::Corrupt { .. })));
    }

    #[test]
    fn rename_moves_files_and_directories() {
        let fs = fresh(1024);
        fs.create_dir("/src").unwrap();
        fs.write_file("/src/f.txt", b"payload").unwrap();
        fs.create_dir("/dst").unwrap();

        fs.rename("/src/f.txt", "/dst/renamed.txt").unwrap();
        assert!(!fs.exists("/src/f.txt"));
        assert_eq!(fs.read_file("/dst/renamed.txt").unwrap(), b"payload");

        // Directory move carries its contents.
        fs.rename("/src", "/dst/srcdir").unwrap();
        assert!(fs.exists("/dst/srcdir"));
        assert!(!fs.exists("/src"));

        // Collision and cycle rejection.
        fs.write_file("/other", b"x").unwrap();
        assert!(matches!(
            fs.rename("/other", "/dst/renamed.txt"),
            Err(FsError::AlreadyExists { .. })
        ));
        assert!(matches!(
            fs.rename("/dst", "/dst/srcdir/inside"),
            Err(FsError::InvalidPath { .. })
        ));
        assert!(matches!(
            fs.rename("/missing", "/elsewhere"),
            Err(FsError::NotFound { .. })
        ));
        // The filesystem is still consistent after all of it.
        assert!(fs.check().unwrap().is_clean());
    }

    #[test]
    fn walk_lists_the_tree() {
        let fs = fresh(1024);
        fs.create_dir("/a").unwrap();
        fs.create_dir("/a/sub").unwrap();
        fs.write_file("/a/f1", b"1").unwrap();
        fs.write_file("/a/sub/f2", b"2").unwrap();
        fs.write_file("/top", b"t").unwrap();
        assert_eq!(
            fs.walk("/").unwrap(),
            vec!["/a", "/a/f1", "/a/sub", "/a/sub/f2", "/top"]
        );
        assert_eq!(fs.walk("/a/sub").unwrap(), vec!["/a/sub/f2"]);
    }

    #[test]
    fn relative_paths_are_rejected() {
        let fs = fresh(1024);
        assert!(matches!(
            fs.write_file("no-slash", b"x"),
            Err(FsError::InvalidPath { .. })
        ));
    }

    #[test]
    fn many_files_random_ops_stay_consistent() {
        let fs = fresh(8192);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut model: std::collections::HashMap<String, Vec<u8>> = Default::default();
        fs.create_dir("/w").unwrap();
        for step in 0..300 {
            let name = format!("/w/f{}", rng.random_range(0..30));
            match rng.random_range(0..4u8) {
                0 => {
                    let mut data = vec![0u8; rng.random_range(1..20_000)];
                    rng.fill_bytes(&mut data);
                    fs.write_file(&name, &data).unwrap();
                    model.insert(name, data);
                }
                1 => {
                    if let Some(content) = model.get_mut(&name) {
                        let at = rng.random_range(0..content.len()) as u64;
                        let mut patch = vec![0u8; rng.random_range(1..200)];
                        rng.fill_bytes(&mut patch);
                        fs.write_at(&name, at, &patch).unwrap();
                        let end = at as usize + patch.len();
                        if end > content.len() {
                            content.resize(end, 0);
                        }
                        content[at as usize..end].copy_from_slice(&patch);
                    }
                }
                2 => {
                    if model.remove(&name).is_some() {
                        fs.unlink(&name).unwrap();
                    }
                }
                _ => {
                    if let Some(content) = model.get(&name) {
                        assert_eq!(&fs.read_file(&name).unwrap(), content, "step {step}");
                    } else {
                        assert!(!fs.exists(&name));
                    }
                }
            }
        }
        for (name, content) in &model {
            assert_eq!(&fs.read_file(name).unwrap(), content);
        }
    }
}
