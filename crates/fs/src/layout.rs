//! On-disk layout arithmetic: superblock, bitmaps, inode table.

use prins_block::{BlockSize, Geometry};

use crate::FsError;

/// Inode number (1-based; 0 means "no inode" in directory entries).
pub type InodeId = u32;

/// Size of one on-disk inode.
pub const INODE_SIZE: usize = 128;
/// Number of direct block pointers per inode.
pub const DIRECT_PTRS: usize = 12;
/// Magic number in the superblock ("PFS1").
pub const MAGIC: u32 = 0x5046_5331;
/// Root directory inode.
pub const ROOT_INODE: InodeId = 1;

/// Where each on-disk region lives, derived from the device geometry and
/// the requested inode count (ext2-style fixed regions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Device block size.
    pub block_size: BlockSize,
    /// Total device blocks.
    pub total_blocks: u64,
    /// Number of inodes.
    pub inode_count: u32,
    /// First block of the block bitmap.
    pub block_bitmap_start: u64,
    /// Blocks in the block bitmap.
    pub block_bitmap_blocks: u64,
    /// First block of the inode bitmap.
    pub inode_bitmap_start: u64,
    /// Blocks in the inode bitmap.
    pub inode_bitmap_blocks: u64,
    /// First block of the inode table.
    pub inode_table_start: u64,
    /// Blocks in the inode table.
    pub inode_table_blocks: u64,
    /// First data block.
    pub data_start: u64,
}

impl Layout {
    /// Computes the layout for a device and inode budget.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] when the device is too small to hold the
    /// metadata regions plus at least one data block.
    pub fn compute(geometry: Geometry, inode_count: u32) -> Result<Self, FsError> {
        let bs = geometry.block_size().bytes() as u64;
        let total_blocks = geometry.num_blocks();
        let bits_per_block = bs * 8;
        let block_bitmap_blocks = total_blocks.div_ceil(bits_per_block);
        let inode_bitmap_blocks = (inode_count as u64).div_ceil(bits_per_block);
        let inodes_per_block = bs / INODE_SIZE as u64;
        let inode_table_blocks = (inode_count as u64).div_ceil(inodes_per_block);

        let block_bitmap_start = 1;
        let inode_bitmap_start = block_bitmap_start + block_bitmap_blocks;
        let inode_table_start = inode_bitmap_start + inode_bitmap_blocks;
        let data_start = inode_table_start + inode_table_blocks;
        if data_start + 1 >= total_blocks || inode_count < 2 {
            return Err(FsError::NoSpace);
        }
        Ok(Self {
            block_size: geometry.block_size(),
            total_blocks,
            inode_count,
            block_bitmap_start,
            block_bitmap_blocks,
            inode_bitmap_start,
            inode_bitmap_blocks,
            inode_table_start,
            inode_table_blocks,
            data_start,
        })
    }

    /// Number of data blocks available to files.
    pub fn data_blocks(&self) -> u64 {
        self.total_blocks - self.data_start
    }

    /// Maximum file size: 12 direct blocks + one indirect block of
    /// 4-byte pointers.
    pub fn max_file_size(&self) -> u64 {
        let bs = self.block_size.bytes() as u64;
        (DIRECT_PTRS as u64 + bs / 4) * bs
    }

    /// `(block, byte_offset)` of inode `ino` within the inode table.
    pub fn inode_location(&self, ino: InodeId) -> (u64, usize) {
        let per_block = self.block_size.bytes() / INODE_SIZE;
        let idx = (ino - 1) as u64;
        (
            self.inode_table_start + idx / per_block as u64,
            (idx as usize % per_block) * INODE_SIZE,
        )
    }

    /// Serializes the superblock into a block-sized buffer.
    pub fn encode_superblock(&self, buf: &mut [u8]) {
        buf.fill(0);
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&self.block_size.bytes_u32().to_le_bytes());
        buf[8..16].copy_from_slice(&self.total_blocks.to_le_bytes());
        buf[16..20].copy_from_slice(&self.inode_count.to_le_bytes());
    }

    /// Reconstructs the layout from a superblock read off the device.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] when the magic or geometry disagree.
    pub fn decode_superblock(geometry: Geometry, buf: &[u8]) -> Result<Self, FsError> {
        if buf.len() < 20 || u32::from_le_bytes(buf[0..4].try_into().unwrap()) != MAGIC {
            return Err(FsError::Corrupt {
                detail: "bad superblock magic".into(),
            });
        }
        let bs = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let total = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let inode_count = u32::from_le_bytes(buf[16..20].try_into().unwrap());
        if bs != geometry.block_size().bytes_u32() || total != geometry.num_blocks() {
            return Err(FsError::Corrupt {
                detail: format!(
                    "superblock geometry ({bs} B x {total}) disagrees with device ({})",
                    geometry
                ),
            });
        }
        Self::compute(geometry, inode_count)
    }
}

/// An in-memory inode image.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Inode {
    /// 0 = free, 1 = regular file, 2 = directory.
    pub kind: u16,
    /// Link count.
    pub links: u16,
    /// File size in bytes.
    pub size: u64,
    /// Direct block pointers (0 = unallocated; stored +data_start-free).
    pub direct: [u32; DIRECT_PTRS],
    /// Indirect pointer block (0 = none).
    pub indirect: u32,
    /// Modification counter (bumped per write, like mtime).
    pub mtime: u64,
}

impl Inode {
    /// Serializes into `INODE_SIZE` bytes.
    pub fn encode(&self, buf: &mut [u8]) {
        buf[..INODE_SIZE].fill(0);
        buf[0..2].copy_from_slice(&self.kind.to_le_bytes());
        buf[2..4].copy_from_slice(&self.links.to_le_bytes());
        buf[4..12].copy_from_slice(&self.size.to_le_bytes());
        for (i, ptr) in self.direct.iter().enumerate() {
            buf[12 + i * 4..16 + i * 4].copy_from_slice(&ptr.to_le_bytes());
        }
        buf[60..64].copy_from_slice(&self.indirect.to_le_bytes());
        buf[64..72].copy_from_slice(&self.mtime.to_le_bytes());
    }

    /// Deserializes from `INODE_SIZE` bytes.
    pub fn decode(buf: &[u8]) -> Self {
        let mut direct = [0u32; DIRECT_PTRS];
        for (i, ptr) in direct.iter_mut().enumerate() {
            *ptr = u32::from_le_bytes(buf[12 + i * 4..16 + i * 4].try_into().unwrap());
        }
        Self {
            kind: u16::from_le_bytes(buf[0..2].try_into().unwrap()),
            links: u16::from_le_bytes(buf[2..4].try_into().unwrap()),
            size: u64::from_le_bytes(buf[4..12].try_into().unwrap()),
            direct,
            indirect: u32::from_le_bytes(buf[60..64].try_into().unwrap()),
            mtime: u64::from_le_bytes(buf[64..72].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::BlockSize;

    fn geom(blocks: u64) -> Geometry {
        Geometry::new(BlockSize::kb4(), blocks)
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let l = Layout::compute(geom(10_000), 1024).unwrap();
        assert_eq!(l.block_bitmap_start, 1);
        assert!(l.inode_bitmap_start > l.block_bitmap_start);
        assert!(l.inode_table_start > l.inode_bitmap_start);
        assert!(l.data_start > l.inode_table_start);
        assert!(l.data_blocks() > 9000);
    }

    #[test]
    fn too_small_device_is_rejected() {
        assert!(Layout::compute(geom(4), 1024).is_err());
        assert!(Layout::compute(geom(1000), 1).is_err());
    }

    #[test]
    fn superblock_roundtrip() {
        let g = geom(5000);
        let l = Layout::compute(g, 256).unwrap();
        let mut buf = vec![0u8; 4096];
        l.encode_superblock(&mut buf);
        assert_eq!(Layout::decode_superblock(g, &buf).unwrap(), l);
        // Wrong geometry is rejected.
        assert!(Layout::decode_superblock(geom(4999), &buf).is_err());
        buf[0] ^= 0xff;
        assert!(Layout::decode_superblock(g, &buf).is_err());
    }

    #[test]
    fn inode_locations_do_not_collide() {
        let l = Layout::compute(geom(10_000), 512).unwrap();
        let mut seen = std::collections::HashSet::new();
        for ino in 1..=512u32 {
            let loc = l.inode_location(ino);
            assert!(seen.insert(loc), "inode {ino} collides");
            assert!(loc.0 >= l.inode_table_start);
            assert!(loc.0 < l.data_start);
            assert!(loc.1 + INODE_SIZE <= 4096);
        }
    }

    #[test]
    fn inode_roundtrip() {
        let mut ino = Inode {
            kind: 1,
            links: 2,
            size: 123_456,
            direct: [7; DIRECT_PTRS],
            indirect: 99,
            mtime: 42,
        };
        ino.direct[3] = 1234;
        let mut buf = vec![0u8; INODE_SIZE];
        ino.encode(&mut buf);
        assert_eq!(Inode::decode(&buf), ino);
    }

    #[test]
    fn max_file_size_matches_pointer_budget() {
        let l = Layout::compute(geom(10_000), 256).unwrap();
        // 12 direct + 1024 indirect pointers of 4 KB blocks.
        assert_eq!(l.max_file_size(), (12 + 1024) * 4096);
    }
}
