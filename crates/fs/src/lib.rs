//! An ext2-like filesystem on a [`BlockDevice`], plus a tar-style
//! archiver — the substrate of the paper's filesystem micro-benchmark.
//!
//! The paper's micro-benchmark "chooses five directories randomly on an
//! Ext2 file system and creates an archive file using the `tar` command";
//! before each run, files are randomly changed. Reproducing that requires
//! a filesystem whose on-disk structures behave like ext2's:
//!
//! * block 0 superblock, block/inode bitmaps, a fixed inode table, then
//!   data blocks ([`layout`] mirrors ext2's arithmetic),
//! * 128-byte inodes with 12 direct pointers and one indirect block,
//! * directories as files of fixed-width entries,
//! * in-place partial file writes (`write_at`) that dirty only the
//!   touched blocks — the behaviour that gives PRINS its small deltas —
//!   while bitmap and inode updates produce the small metadata writes
//!   real filesystems exhibit.
//!
//! [`tar`] implements enough of the ustar format to create and extract
//! archives inside the filesystem, generating the large sequential
//! writes of the benchmark's `tar` phase.
//!
//! # Example
//!
//! ```
//! use prins_block::{BlockSize, MemDevice};
//! use prins_fs::Fs;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), prins_fs::FsError> {
//! let device = Arc::new(MemDevice::new(BlockSize::kb4(), 4096));
//! let fs = Fs::format(device, 512)?;
//! fs.create_dir("/etc")?;
//! fs.write_file("/etc/motd", b"welcome to prins\n")?;
//! assert_eq!(fs.read_file("/etc/motd")?, b"welcome to prins\n");
//! assert_eq!(fs.read_dir("/")?, vec!["etc".to_string()]);
//! # Ok(())
//! # }
//! ```

mod alloc;
mod error;
mod fs;
mod fsck;
mod layout;
pub mod tar;

pub use error::FsError;
pub use fs::{FileKind, Fs, Metadata};
pub use fsck::{FsckIssue, FsckReport};
pub use layout::{InodeId, Layout};
