//! Filesystem error type.

use std::fmt;

use prins_block::BlockError;

/// Errors from filesystem operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum FsError {
    /// The underlying device failed.
    Block(BlockError),
    /// Path (or a component of it) does not exist.
    NotFound {
        /// The offending path.
        path: String,
    },
    /// Creation target already exists.
    AlreadyExists {
        /// The offending path.
        path: String,
    },
    /// A path component that must be a directory is a file.
    NotADirectory {
        /// The offending path component.
        path: String,
    },
    /// A file operation was attempted on a directory.
    IsADirectory {
        /// The offending path.
        path: String,
    },
    /// A directory being removed still has entries.
    DirectoryNotEmpty {
        /// The offending path.
        path: String,
    },
    /// No free data blocks or inodes remain.
    NoSpace,
    /// A file name exceeds the 58-byte directory entry limit.
    NameTooLong {
        /// The offending name.
        name: String,
    },
    /// A file would exceed the maximum size (12 direct + 1 indirect
    /// block of pointers).
    FileTooLarge {
        /// The requested size.
        size: u64,
        /// The maximum representable size.
        max: u64,
    },
    /// On-disk structures are inconsistent.
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
    /// A path is syntactically invalid (empty, not absolute, or has
    /// empty components).
    InvalidPath {
        /// The offending path.
        path: String,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Block(e) => write!(f, "device error: {e}"),
            FsError::NotFound { path } => write!(f, "no such file or directory: {path}"),
            FsError::AlreadyExists { path } => write!(f, "already exists: {path}"),
            FsError::NotADirectory { path } => write!(f, "not a directory: {path}"),
            FsError::IsADirectory { path } => write!(f, "is a directory: {path}"),
            FsError::DirectoryNotEmpty { path } => write!(f, "directory not empty: {path}"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NameTooLong { name } => write!(f, "file name too long: {name}"),
            FsError::FileTooLarge { size, max } => {
                write!(f, "file size {size} exceeds maximum {max}")
            }
            FsError::Corrupt { detail } => write!(f, "filesystem corrupt: {detail}"),
            FsError::InvalidPath { path } => write!(f, "invalid path: {path}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Block(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BlockError> for FsError {
    fn from(e: BlockError) -> Self {
        FsError::Block(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_path() {
        let e = FsError::NotFound {
            path: "/a/b".into(),
        };
        assert!(e.to_string().contains("/a/b"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FsError>();
    }
}
