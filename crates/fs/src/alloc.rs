//! Bitmap allocators for blocks and inodes.
//!
//! Bitmaps live on the device (like ext2's block groups), so every
//! allocation produces the small metadata write a real filesystem makes
//! — one changed byte in a bitmap block.

use prins_block::{BlockDevice, Lba};

use crate::layout::Layout;
use crate::FsError;

/// Allocates and frees bits in an on-device bitmap region.
pub(crate) struct Bitmap {
    start: u64,
    blocks: u64,
    bits: u64,
}

impl Bitmap {
    pub(crate) fn blocks_of(layout: &Layout) -> Self {
        Self {
            start: layout.block_bitmap_start,
            blocks: layout.block_bitmap_blocks,
            bits: layout.data_blocks(),
        }
    }

    pub(crate) fn inodes_of(layout: &Layout) -> Self {
        Self {
            start: layout.inode_bitmap_start,
            blocks: layout.inode_bitmap_blocks,
            bits: layout.inode_count as u64,
        }
    }

    /// Finds a clear bit, sets it, and returns its index.
    pub(crate) fn allocate<D: BlockDevice + ?Sized>(&self, dev: &D) -> Result<u64, FsError> {
        let bs = dev.geometry().block_size().bytes();
        let mut buf = vec![0u8; bs];
        for blk in 0..self.blocks {
            dev.read_block(Lba(self.start + blk), &mut buf)?;
            for (byte_idx, byte) in buf.iter_mut().enumerate() {
                if *byte == 0xff {
                    continue;
                }
                let bit = byte.trailing_ones() as u64;
                let index = blk * bs as u64 * 8 + byte_idx as u64 * 8 + bit;
                if index >= self.bits {
                    return Err(FsError::NoSpace);
                }
                *byte |= 1 << bit;
                dev.write_block(Lba(self.start + blk), &buf)?;
                return Ok(index);
            }
        }
        Err(FsError::NoSpace)
    }

    /// Clears a previously allocated bit.
    pub(crate) fn free<D: BlockDevice + ?Sized>(&self, dev: &D, index: u64) -> Result<(), FsError> {
        if index >= self.bits {
            return Err(FsError::Corrupt {
                detail: format!("freeing bit {index} beyond bitmap of {} bits", self.bits),
            });
        }
        let bs = dev.geometry().block_size().bytes() as u64;
        let blk = index / (bs * 8);
        let byte = ((index / 8) % bs) as usize;
        let bit = (index % 8) as u8;
        let mut buf = vec![0u8; bs as usize];
        dev.read_block(Lba(self.start + blk), &mut buf)?;
        if buf[byte] & (1 << bit) == 0 {
            return Err(FsError::Corrupt {
                detail: format!("double free of bit {index}"),
            });
        }
        buf[byte] &= !(1 << bit);
        dev.write_block(Lba(self.start + blk), &buf)?;
        Ok(())
    }

    /// Counts set bits (used by tests and `statfs`-style reporting).
    pub(crate) fn used<D: BlockDevice + ?Sized>(&self, dev: &D) -> Result<u64, FsError> {
        let bs = dev.geometry().block_size().bytes();
        let mut buf = vec![0u8; bs];
        let mut used = 0u64;
        for blk in 0..self.blocks {
            dev.read_block(Lba(self.start + blk), &mut buf)?;
            used += buf.iter().map(|b| b.count_ones() as u64).sum::<u64>();
        }
        Ok(used)
    }

    /// Snapshots the whole bitmap as a boolean vector (used by fsck).
    pub(crate) fn snapshot<D: BlockDevice + ?Sized>(&self, dev: &D) -> Result<Vec<bool>, FsError> {
        let bs = dev.geometry().block_size().bytes();
        let mut buf = vec![0u8; bs];
        let mut bits = Vec::with_capacity(self.bits as usize);
        for blk in 0..self.blocks {
            dev.read_block(Lba(self.start + blk), &mut buf)?;
            for byte in &buf {
                for bit in 0..8 {
                    if bits.len() as u64 == self.bits {
                        return Ok(bits);
                    }
                    bits.push(byte & (1 << bit) != 0);
                }
            }
        }
        Ok(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, Geometry, MemDevice};

    fn setup() -> (MemDevice, Bitmap) {
        let dev = MemDevice::new(BlockSize::kb4(), 256);
        let layout = Layout::compute(Geometry::new(BlockSize::kb4(), 256), 64).unwrap();
        (dev, Bitmap::blocks_of(&layout))
    }

    #[test]
    fn allocations_are_distinct_and_freeable() {
        let (dev, bm) = setup();
        let a = bm.allocate(&dev).unwrap();
        let b = bm.allocate(&dev).unwrap();
        let c = bm.allocate(&dev).unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(bm.used(&dev).unwrap(), 3);
        bm.free(&dev, b).unwrap();
        assert_eq!(bm.used(&dev).unwrap(), 2);
        // Freed bit is reused first.
        assert_eq!(bm.allocate(&dev).unwrap(), 1);
    }

    #[test]
    fn exhaustion_reports_no_space() {
        let dev = MemDevice::new(BlockSize::kb4(), 64);
        let layout = Layout::compute(Geometry::new(BlockSize::kb4(), 64), 16).unwrap();
        let bm = Bitmap::blocks_of(&layout);
        let capacity = layout.data_blocks();
        for _ in 0..capacity {
            bm.allocate(&dev).unwrap();
        }
        assert!(matches!(bm.allocate(&dev), Err(FsError::NoSpace)));
    }

    #[test]
    fn double_free_is_detected() {
        let (dev, bm) = setup();
        let a = bm.allocate(&dev).unwrap();
        bm.free(&dev, a).unwrap();
        assert!(matches!(bm.free(&dev, a), Err(FsError::Corrupt { .. })));
        assert!(bm.free(&dev, 1 << 40).is_err());
    }

    #[test]
    fn inode_bitmap_respects_inode_count() {
        let dev = MemDevice::new(BlockSize::kb4(), 256);
        let layout = Layout::compute(Geometry::new(BlockSize::kb4(), 256), 8).unwrap();
        let bm = Bitmap::inodes_of(&layout);
        for _ in 0..8 {
            bm.allocate(&dev).unwrap();
        }
        assert!(matches!(bm.allocate(&dev), Err(FsError::NoSpace)));
    }
}
