//! A ustar-style archiver operating inside the filesystem.
//!
//! Implements the part of POSIX tar the micro-benchmark needs: 512-byte
//! headers with octal sizes and checksums, file data padded to 512-byte
//! records, directory entries, and a two-record zero terminator. Archives
//! are created *inside* the [`Fs`] (like running `tar` on the paper's
//! Ext2 volume), producing the large sequential write burst the
//! benchmark measures.

use crate::{FileKind, Fs, FsError};

const RECORD: usize = 512;

/// Builds a ustar header record.
fn header(name: &str, size: u64, is_dir: bool) -> Result<[u8; RECORD], FsError> {
    let mut h = [0u8; RECORD];
    let stored = name.trim_start_matches('/');
    let stored = if is_dir {
        format!("{stored}/")
    } else {
        stored.to_string()
    };
    if stored.len() > 100 {
        return Err(FsError::NameTooLong { name: stored });
    }
    h[0..stored.len()].copy_from_slice(stored.as_bytes());
    h[100..107].copy_from_slice(b"0000644"); // mode
    h[108..115].copy_from_slice(b"0000000"); // uid
    h[116..123].copy_from_slice(b"0000000"); // gid
    let size_field = format!("{:011o}", if is_dir { 0 } else { size });
    h[124..135].copy_from_slice(size_field.as_bytes());
    h[136..147].copy_from_slice(b"00000000000"); // mtime
    h[156] = if is_dir { b'5' } else { b'0' }; // typeflag
    h[257..262].copy_from_slice(b"ustar");
    h[263..265].copy_from_slice(b"00");
    // Checksum: spaces while summing, then written in octal.
    h[148..156].copy_from_slice(b"        ");
    let sum: u32 = h.iter().map(|&b| b as u32).sum();
    let chk = format!("{sum:06o}\0 ");
    h[148..156].copy_from_slice(chk.as_bytes());
    Ok(h)
}

/// One entry parsed out of an archive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Path, absolute (leading `/` restored).
    pub path: String,
    /// Entry kind.
    pub kind: FileKind,
    /// File contents (empty for directories).
    pub data: Vec<u8>,
}

/// Archives `roots` (files or directory trees) into `dest` inside the
/// same filesystem.
///
/// Returns the archive size in bytes.
///
/// # Errors
///
/// Propagates traversal and write failures; fails if any member path
/// exceeds the 100-byte ustar name field.
pub fn create(fs: &Fs, roots: &[&str], dest: &str) -> Result<u64, FsError> {
    fs.write_file(dest, b"")?;
    create_over(fs, roots, dest)
}

/// Like [`create`], but overwrites an existing `dest` *in place*:
/// blocks keep their LBAs and only bytes that actually differ between
/// the old and new archive change on disk.
///
/// This matters for replication experiments: re-running `tar` over
/// lightly edited files produces an almost identical archive, so an
/// in-place overwrite generates tiny block deltas (which PRINS ships as
/// tiny parities) where a truncate-and-rewrite would look like fresh
/// data.
///
/// # Errors
///
/// Same conditions as [`create`].
pub fn create_over(fs: &Fs, roots: &[&str], dest: &str) -> Result<u64, FsError> {
    // Collect members first (walk each root).
    let mut members: Vec<(String, FileKind)> = Vec::new();
    for root in roots {
        match fs.metadata(root)?.kind {
            FileKind::File => members.push(((*root).to_string(), FileKind::File)),
            FileKind::Directory => {
                members.push(((*root).to_string(), FileKind::Directory));
                for path in fs.walk(root)? {
                    members.push((path.clone(), fs.metadata(&path)?.kind));
                }
            }
        }
    }

    if !fs.exists(dest) {
        fs.write_file(dest, b"")?;
    }
    let mut offset = 0u64;
    let write = |data: &[u8], offset: &mut u64| -> Result<(), FsError> {
        fs.write_at(dest, *offset, data)?;
        *offset += data.len() as u64;
        Ok(())
    };

    for (path, kind) in members {
        match kind {
            FileKind::Directory => {
                write(&header(&path, 0, true)?, &mut offset)?;
            }
            FileKind::File => {
                let data = fs.read_file(&path)?;
                write(&header(&path, data.len() as u64, false)?, &mut offset)?;
                write(&data, &mut offset)?;
                let pad = (RECORD - data.len() % RECORD) % RECORD;
                if pad > 0 {
                    write(&vec![0u8; pad], &mut offset)?;
                }
            }
        }
    }
    // Two zero records terminate the archive; drop any stale tail from
    // a longer previous archive.
    write(&[0u8; 2 * RECORD], &mut offset)?;
    if fs.metadata(dest)?.size > offset {
        fs.truncate(dest, offset)?;
    }
    Ok(offset)
}

/// Parses an archive created by [`create`].
///
/// # Errors
///
/// [`FsError::Corrupt`] on malformed headers or bad checksums.
pub fn list(fs: &Fs, archive: &str) -> Result<Vec<Entry>, FsError> {
    let data = fs.read_file(archive)?;
    let mut entries = Vec::new();
    let mut pos = 0usize;
    while pos + RECORD <= data.len() {
        let h = &data[pos..pos + RECORD];
        pos += RECORD;
        if h.iter().all(|&b| b == 0) {
            break; // terminator
        }
        // Verify checksum.
        let stored_chk = parse_octal(&h[148..156])?;
        let mut sum = 0u32;
        for (i, &b) in h.iter().enumerate() {
            sum += if (148..156).contains(&i) {
                32
            } else {
                b as u32
            };
        }
        if sum != stored_chk as u32 {
            return Err(FsError::Corrupt {
                detail: format!("tar checksum mismatch at offset {}", pos - RECORD),
            });
        }
        let name_end = h[..100].iter().position(|&b| b == 0).unwrap_or(100);
        let raw_name = std::str::from_utf8(&h[..name_end]).map_err(|_| FsError::Corrupt {
            detail: "non-utf8 tar member name".into(),
        })?;
        let size = parse_octal(&h[124..136])? as usize;
        let is_dir = h[156] == b'5' || raw_name.ends_with('/');
        let path = format!("/{}", raw_name.trim_end_matches('/'));
        let file_data = if is_dir {
            Vec::new()
        } else {
            if pos + size > data.len() {
                return Err(FsError::Corrupt {
                    detail: "tar member data truncated".into(),
                });
            }
            let d = data[pos..pos + size].to_vec();
            pos += size + (RECORD - size % RECORD) % RECORD;
            d
        };
        entries.push(Entry {
            path,
            kind: if is_dir {
                FileKind::Directory
            } else {
                FileKind::File
            },
            data: file_data,
        });
    }
    Ok(entries)
}

/// Extracts an archive under `prefix` (a directory that must exist).
///
/// # Errors
///
/// Propagates parse and write failures.
pub fn extract(fs: &Fs, archive: &str, prefix: &str) -> Result<usize, FsError> {
    let entries = list(fs, archive)?;
    let prefix = prefix.trim_end_matches('/');
    let mut count = 0usize;
    for entry in &entries {
        let dest = format!("{prefix}{}", entry.path);
        match entry.kind {
            FileKind::Directory => {
                if !fs.exists(&dest) {
                    fs.create_dir(&dest)?;
                }
            }
            FileKind::File => {
                fs.write_file(&dest, &entry.data)?;
                count += 1;
            }
        }
    }
    Ok(count)
}

fn parse_octal(field: &[u8]) -> Result<u64, FsError> {
    let s: String = field
        .iter()
        .take_while(|&&b| b != 0 && b != b' ')
        .map(|&b| b as char)
        .collect();
    u64::from_str_radix(s.trim(), 8).map_err(|_| FsError::Corrupt {
        detail: format!("bad octal field {s:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, MemDevice};
    use std::sync::Arc;

    fn fresh() -> Fs {
        Fs::format(Arc::new(MemDevice::new(BlockSize::kb4(), 8192)), 512).unwrap()
    }

    #[test]
    fn archive_and_list_roundtrip() {
        let fs = fresh();
        fs.create_dir("/src").unwrap();
        fs.write_file("/src/a.txt", b"alpha").unwrap();
        fs.write_file("/src/b.txt", &vec![7u8; 1000]).unwrap();
        fs.create_dir("/src/sub").unwrap();
        fs.write_file("/src/sub/c.txt", b"gamma").unwrap();

        let size = create(&fs, &["/src"], "/out.tar").unwrap();
        assert_eq!(size % 512, 0);
        assert_eq!(fs.metadata("/out.tar").unwrap().size, size);

        let entries = list(&fs, "/out.tar").unwrap();
        let files: Vec<&Entry> = entries
            .iter()
            .filter(|e| e.kind == FileKind::File)
            .collect();
        assert_eq!(files.len(), 3);
        let a = files.iter().find(|e| e.path == "/src/a.txt").unwrap();
        assert_eq!(a.data, b"alpha");
        let b = files.iter().find(|e| e.path == "/src/b.txt").unwrap();
        assert_eq!(b.data, vec![7u8; 1000]);
    }

    #[test]
    fn extract_restores_byte_identical_tree() {
        let fs = fresh();
        fs.create_dir("/data").unwrap();
        for i in 0..5 {
            fs.write_file(
                &format!("/data/file{i}"),
                format!("contents of file {i}\n").repeat(i + 1).as_bytes(),
            )
            .unwrap();
        }
        create(&fs, &["/data"], "/backup.tar").unwrap();
        fs.create_dir("/restore").unwrap();
        let extracted = extract(&fs, "/backup.tar", "/restore").unwrap();
        assert_eq!(extracted, 5);
        for i in 0..5 {
            assert_eq!(
                fs.read_file(&format!("/restore/data/file{i}")).unwrap(),
                fs.read_file(&format!("/data/file{i}")).unwrap()
            );
        }
    }

    #[test]
    fn multiple_roots() {
        let fs = fresh();
        fs.create_dir("/d1").unwrap();
        fs.create_dir("/d2").unwrap();
        fs.write_file("/d1/x", b"x").unwrap();
        fs.write_file("/d2/y", b"y").unwrap();
        fs.write_file("/plain", b"p").unwrap();
        create(&fs, &["/d1", "/d2", "/plain"], "/all.tar").unwrap();
        let entries = list(&fs, "/all.tar").unwrap();
        let paths: Vec<&str> = entries.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"/d1/x"));
        assert!(paths.contains(&"/d2/y"));
        assert!(paths.contains(&"/plain"));
    }

    #[test]
    fn corrupted_checksum_is_detected() {
        let fs = fresh();
        fs.write_file("/f", b"data").unwrap();
        create(&fs, &["/f"], "/t.tar").unwrap();
        // Flip a byte inside the first header.
        fs.write_at("/t.tar", 10, b"X").unwrap();
        assert!(matches!(list(&fs, "/t.tar"), Err(FsError::Corrupt { .. })));
    }

    #[test]
    fn empty_file_archives_cleanly() {
        let fs = fresh();
        fs.write_file("/empty", b"").unwrap();
        create(&fs, &["/empty"], "/e.tar").unwrap();
        let entries = list(&fs, "/e.tar").unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].data.is_empty());
    }

    #[test]
    fn archive_size_accounts_headers_and_padding() {
        let fs = fresh();
        fs.write_file("/f", &vec![1u8; 600]).unwrap(); // 600 -> 1024 padded
        let size = create(&fs, &["/f"], "/t.tar").unwrap();
        // header 512 + data 1024 + terminator 1024
        assert_eq!(size, 512 + 1024 + 1024);
    }
}
