//! XOR parity computation and sparse parity encoding — the arithmetic
//! core of PRINS (Parity Replication in IP-Network Storages).
//!
//! PRINS replicates, for every block write, the parity
//!
//! ```text
//! P' = A_new ⊕ A_old          (forward parity, primary site)
//! ```
//!
//! instead of the block itself. The replica, which holds `A_old` after the
//! initial sync, recovers the data with
//!
//! ```text
//! A_new = P' ⊕ A_old          (backward parity, replica site)
//! ```
//!
//! Because real applications modify only 5–20 % of a block per write, `P'`
//! is mostly zero bytes; [`SparseCodec`] run-length-encodes the zeros so
//! that only the changed extents (plus tiny metadata) travel over the
//! network.
//!
//! This crate provides:
//!
//! * [`xor_into`] / [`xor_in_place`] / [`xor_bytes`] — word-at-a-time XOR
//!   kernels,
//! * [`forward_parity`] / [`apply_parity`] — the two PRINS computations,
//! * [`SparseCodec`] and [`SparseParity`] — the zero-suppressing encoding,
//! * [`DeltaStats`] — change-ratio measurement used throughout the
//!   evaluation.
//!
//! # Example
//!
//! ```
//! use prins_parity::{forward_parity, apply_parity, SparseCodec};
//!
//! # fn main() -> Result<(), prins_parity::CodecError> {
//! let old = vec![0u8; 4096];
//! let mut new = old.clone();
//! new[100..200].fill(0xaa); // application changes 100 bytes of the block
//!
//! let parity = forward_parity(&old, &new);
//! let encoded = SparseCodec::default().encode(&parity);
//! assert!(encoded.wire_size() < 200); // ~100 bytes payload + metadata
//!
//! // At the replica:
//! let decoded = SparseCodec::default().decode(&encoded.to_bytes(), old.len())?;
//! let recovered = apply_parity(&old, &decoded.to_dense(old.len()));
//! assert_eq!(recovered, new);
//! # Ok(())
//! # }
//! ```

mod codec;
mod delta;
mod erasure;
mod varint;
mod xor;

pub use codec::{CodecError, Segment, SparseCodec, SparseParity};
pub use delta::{apply_parity, apply_parity_in_place, forward_parity, DeltaStats};
pub use erasure::{EcError, ErasureCodec, XorCodec};
pub use varint::{decode_varint, encode_varint};
pub use xor::{
    scan_mismatch, scan_nonzero, xor_bytes, xor_in_place, xor_in_place_scalar, xor_into,
};
