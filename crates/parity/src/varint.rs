//! LEB128-style variable-length integer encoding used by the sparse
//! parity codec and the LZSS token stream.

/// Appends `value` to `out` as an LEB128 varint (7 bits per byte, MSB set
/// on continuation bytes).
///
/// # Example
///
/// ```
/// use prins_parity::{encode_varint, decode_varint};
///
/// let mut buf = Vec::new();
/// encode_varint(&mut buf, 300);
/// assert_eq!(buf.len(), 2);
/// assert_eq!(decode_varint(&buf), Some((300, 2)));
/// ```
pub fn encode_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a varint from the front of `buf`, returning `(value,
/// bytes_consumed)`, or `None` when the buffer is truncated or the value
/// would overflow `u64`.
pub fn decode_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in buf.iter().enumerate().take(10) {
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute the single remaining bit.
        if i == 9 && byte > 0x01 {
            return None;
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_take_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            encode_varint(&mut buf, v);
            assert_eq!(buf.len(), 1);
            assert_eq!(decode_varint(&buf), Some((v, 1)));
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            encode_varint(&mut buf, v);
            assert_eq!(decode_varint(&buf), Some((v, buf.len())), "v={v}");
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        encode_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert_eq!(decode_varint(&buf[..cut]), None, "cut={cut}");
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0xffu8; 11];
        assert_eq!(decode_varint(&buf), None);
        // A 10th byte with more than one bit set would overflow u64.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(decode_varint(&buf), None);
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let mut buf = Vec::new();
        encode_varint(&mut buf, 5);
        buf.extend_from_slice(&[0xde, 0xad]);
        assert_eq!(decode_varint(&buf), Some((5, 1)));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            encode_varint(&mut buf, v);
            prop_assert!(buf.len() <= 10);
            prop_assert_eq!(decode_varint(&buf), Some((v, buf.len())));
        }
    }
}
