//! Zero-suppressing sparse encoding of parity blocks.
//!
//! A PRINS parity block `P' = A_new ⊕ A_old` is zero everywhere the write
//! did not change the block. The paper: "this parity block contains mostly
//! zeros with a very small portion of bit stream that is nonzero.
//! Therefore, it can be easily encoded to a small size parity block."
//!
//! [`SparseCodec`] extracts the maximal nonzero extents and serializes
//! them as `(gap, length, bytes)` triples with varint integers. Extents
//! separated by fewer than `min_gap` zero bytes are merged, trading a few
//! transmitted zeros for less per-segment metadata.

use std::fmt;

use crate::varint::{decode_varint, encode_varint};
use crate::xor::xor_in_place;

/// One contiguous nonzero extent of a parity block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Byte offset of the extent within the block.
    pub offset: usize,
    /// The extent's bytes (never empty for codec-produced segments).
    pub data: Vec<u8>,
}

impl Segment {
    /// One past the last byte covered by this segment.
    pub fn end(&self) -> usize {
        self.offset + self.data.len()
    }
}

/// Errors from decoding a serialized sparse parity.
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The byte stream ended before the structure was complete.
    Truncated,
    /// A segment lies (partly) outside the declared block length.
    SegmentOutOfBounds {
        /// Offset of the offending segment.
        offset: usize,
        /// End of the offending segment.
        end: usize,
        /// Declared block length.
        block_len: usize,
    },
    /// The declared block length does not match the expectation of the
    /// caller (a replica must apply parity to a same-sized block).
    BlockLenMismatch {
        /// Length encoded in the stream.
        encoded: usize,
        /// Length the caller expected.
        expected: usize,
    },
    /// Segments are not in strictly increasing, non-overlapping order.
    SegmentOrder,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "sparse parity stream truncated"),
            CodecError::SegmentOutOfBounds {
                offset,
                end,
                block_len,
            } => write!(
                f,
                "segment [{offset}, {end}) exceeds block length {block_len}"
            ),
            CodecError::BlockLenMismatch { encoded, expected } => write!(
                f,
                "encoded block length {encoded} does not match expected {expected}"
            ),
            CodecError::SegmentOrder => write!(f, "segments out of order or overlapping"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A parity block represented by its nonzero extents only.
///
/// Produced by [`SparseCodec::encode`]; this is what PRINS puts on the
/// wire (after framing) instead of the full data block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseParity {
    block_len: usize,
    segments: Vec<Segment>,
}

impl SparseParity {
    /// An all-zero parity (the write did not change the block).
    pub fn empty(block_len: usize) -> Self {
        Self {
            block_len,
            segments: Vec::new(),
        }
    }

    /// Length of the dense block this parity describes.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// The nonzero extents, ordered by offset.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Whether the parity is all zeros.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total bytes of extent payload (excluding metadata).
    pub fn payload_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum()
    }

    /// Exact size of [`to_bytes`](Self::to_bytes) output without
    /// allocating it. This is the number PRINS reports as replication
    /// traffic for one write.
    pub fn wire_size(&self) -> usize {
        let mut n = varint_len(self.block_len as u64) + varint_len(self.segments.len() as u64);
        let mut prev_end = 0usize;
        for s in &self.segments {
            n += varint_len((s.offset - prev_end) as u64);
            n += varint_len(s.data.len() as u64);
            n += s.data.len();
            prev_end = s.end();
        }
        n
    }

    /// Serializes to the wire format:
    /// `varint(block_len) varint(n) { varint(gap) varint(len) bytes }*n`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        encode_varint(&mut out, self.block_len as u64);
        encode_varint(&mut out, self.segments.len() as u64);
        let mut prev_end = 0usize;
        for s in &self.segments {
            encode_varint(&mut out, (s.offset - prev_end) as u64);
            encode_varint(&mut out, s.data.len() as u64);
            out.extend_from_slice(&s.data);
            prev_end = s.end();
        }
        out
    }

    /// Expands back to a dense parity block of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` differs from the encoded block length; replicas
    /// must operate on the same block size as the primary.
    pub fn to_dense(&self, len: usize) -> Vec<u8> {
        assert_eq!(len, self.block_len, "dense expansion length mismatch");
        let mut out = vec![0u8; len];
        for s in &self.segments {
            out[s.offset..s.end()].copy_from_slice(&s.data);
        }
        out
    }

    /// XOR-composition with `other`: applying the result once equals
    /// applying `self` then `other`. XOR is associative, so a whole
    /// same-block parity chain folds into a single parity — what PRINS
    /// ships for a delta resync instead of replaying the chain frame by
    /// frame (extents that cancel vanish from the fold entirely).
    ///
    /// # Panics
    ///
    /// Panics if the two parities describe different block lengths.
    pub fn fold(&self, other: &SparseParity) -> SparseParity {
        assert_eq!(
            self.block_len, other.block_len,
            "folding parities of different block lengths"
        );
        let mut dense = vec![0u8; self.block_len];
        self.apply_to(&mut dense);
        other.apply_to(&mut dense);
        SparseCodec::default().encode(&dense)
    }

    /// Applies this parity to `block` in place (`block ^= P'`), i.e. the
    /// replica-side backward computation, touching only the changed
    /// extents.
    ///
    /// # Panics
    ///
    /// Panics if `block.len()` differs from the encoded block length.
    pub fn apply_to(&self, block: &mut [u8]) {
        assert_eq!(
            block.len(),
            self.block_len,
            "parity applied to wrong-sized block"
        );
        for s in &self.segments {
            xor_in_place(&mut block[s.offset..s.offset + s.data.len()], &s.data);
        }
    }
}

fn varint_len(v: u64) -> usize {
    ((64 - v.leading_zeros()).max(1) as usize).div_ceil(7)
}

/// Encoder/decoder between dense parity blocks and [`SparseParity`].
///
/// `min_gap` controls extent merging: runs of fewer than `min_gap` zero
/// bytes between two nonzero extents are kept inline rather than paying
/// for a fresh `(gap, len)` header. The default of 8 is near-optimal for
/// varint metadata of 2–4 bytes per segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SparseCodec {
    min_gap: usize,
}

impl SparseCodec {
    /// Creates a codec with the given merge threshold.
    pub fn new(min_gap: usize) -> Self {
        Self { min_gap }
    }

    /// The configured merge threshold.
    pub fn min_gap(&self) -> usize {
        self.min_gap
    }

    /// Extracts the nonzero extents of `parity`.
    ///
    /// Zero runs — the bulk of a PRINS parity — are skipped with the
    /// word-at-a-time [`scan_nonzero`](crate::scan_nonzero), so a
    /// mostly-zero block is scanned at memory bandwidth rather than one
    /// byte-compare per position.
    pub fn encode(&self, parity: &[u8]) -> SparseParity {
        let mut segments: Vec<Segment> = Vec::new();
        let n = parity.len();
        let mut next = crate::scan_nonzero(parity, 0);
        while let Some(start) = next {
            // Grow the segment: alternate nonzero stretches with zero
            // gaps shorter than `min_gap`, which stay inline.
            let mut last_nonzero = start + 1;
            loop {
                while last_nonzero < n && parity[last_nonzero] != 0 {
                    last_nonzero += 1;
                }
                match crate::scan_nonzero(parity, last_nonzero) {
                    Some(nz) if nz - last_nonzero < self.min_gap => last_nonzero = nz + 1,
                    later => {
                        next = later;
                        break;
                    }
                }
            }
            segments.push(Segment {
                offset: start,
                data: parity[start..last_nonzero].to_vec(),
            });
        }
        SparseParity {
            block_len: n,
            segments,
        }
    }

    /// Walks the merged nonzero extents of the *virtual* parity
    /// `old ⊕ new` without materializing it, invoking `emit(start, end)`
    /// for each extent in offset order. Extent boundaries are exactly
    /// those [`encode`](Self::encode) would produce on
    /// `forward_parity(old, new)` — the merge logic is byte-for-byte the
    /// same, but driven by [`scan_mismatch`](crate::scan_mismatch)
    /// instead of a dense scratch block.
    fn delta_segments(&self, old: &[u8], new: &[u8], mut emit: impl FnMut(usize, usize)) {
        let n = old.len();
        let mut next = crate::scan_mismatch(old, new, 0);
        while let Some(start) = next {
            let mut last = start + 1;
            loop {
                while last < n && old[last] != new[last] {
                    last += 1;
                }
                match crate::scan_mismatch(old, new, last) {
                    Some(nz) if nz - last < self.min_gap => last = nz + 1,
                    later => {
                        next = later;
                        break;
                    }
                }
            }
            emit(start, last);
        }
    }

    /// Segment count and exact wire size of the sparse encoding of
    /// `old ⊕ new`, computed without allocating the parity or the
    /// encoding. This is what the hot path uses to decide between a
    /// sparse-parity payload and a full-block fallback before writing a
    /// single byte.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn delta_wire_info(&self, old: &[u8], new: &[u8]) -> (usize, usize) {
        assert_eq!(old.len(), new.len(), "delta of different-sized blocks");
        let mut count = 0usize;
        let mut payload = 0usize;
        let mut prev_end = 0usize;
        self.delta_segments(old, new, |start, end| {
            count += 1;
            payload += varint_len((start - prev_end) as u64);
            payload += varint_len((end - start) as u64);
            payload += end - start;
            prev_end = end;
        });
        let total = varint_len(old.len() as u64) + varint_len(count as u64) + payload;
        (count, total)
    }

    /// Appends the sparse encoding of `old ⊕ new` directly to `out`,
    /// byte-identical to
    /// `self.encode(&forward_parity(old, new)).to_bytes()` but with zero
    /// intermediate allocations: segment XOR results are computed
    /// straight into the output buffer.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn encode_delta_into(&self, old: &[u8], new: &[u8], out: &mut Vec<u8>) {
        assert_eq!(old.len(), new.len(), "delta of different-sized blocks");
        let mut count = 0usize;
        self.delta_segments(old, new, |_, _| count += 1);
        encode_varint(out, old.len() as u64);
        encode_varint(out, count as u64);
        let mut prev_end = 0usize;
        self.delta_segments(old, new, |start, end| {
            encode_varint(out, (start - prev_end) as u64);
            encode_varint(out, (end - start) as u64);
            let at = out.len();
            out.resize(at + (end - start), 0);
            crate::xor_into(&mut out[at..], &old[start..end], &new[start..end]);
            prev_end = end;
        });
    }

    /// Parses the wire format produced by [`SparseParity::to_bytes`].
    ///
    /// # Errors
    ///
    /// * [`CodecError::Truncated`] if the stream ends early,
    /// * [`CodecError::BlockLenMismatch`] if the encoded block length is
    ///   not `expected_block_len`,
    /// * [`CodecError::SegmentOutOfBounds`] /
    ///   [`CodecError::SegmentOrder`] on malformed structure.
    pub fn decode(
        &self,
        bytes: &[u8],
        expected_block_len: usize,
    ) -> Result<SparseParity, CodecError> {
        let mut pos = 0usize;
        let (block_len, used) = decode_varint(&bytes[pos..]).ok_or(CodecError::Truncated)?;
        pos += used;
        let block_len = block_len as usize;
        if block_len != expected_block_len {
            return Err(CodecError::BlockLenMismatch {
                encoded: block_len,
                expected: expected_block_len,
            });
        }
        let (count, used) = decode_varint(&bytes[pos..]).ok_or(CodecError::Truncated)?;
        pos += used;
        let mut segments = Vec::with_capacity(count as usize);
        let mut prev_end = 0usize;
        for _ in 0..count {
            let (gap, used) = decode_varint(&bytes[pos..]).ok_or(CodecError::Truncated)?;
            pos += used;
            let (len, used) = decode_varint(&bytes[pos..]).ok_or(CodecError::Truncated)?;
            pos += used;
            let len = len as usize;
            if len == 0 {
                return Err(CodecError::SegmentOrder);
            }
            let offset = prev_end
                .checked_add(gap as usize)
                .ok_or(CodecError::SegmentOrder)?;
            let end = offset.checked_add(len).ok_or(CodecError::SegmentOrder)?;
            if end > block_len {
                return Err(CodecError::SegmentOutOfBounds {
                    offset,
                    end,
                    block_len,
                });
            }
            if pos + len > bytes.len() {
                return Err(CodecError::Truncated);
            }
            segments.push(Segment {
                offset,
                data: bytes[pos..pos + len].to_vec(),
            });
            pos += len;
            prev_end = end;
        }
        Ok(SparseParity {
            block_len,
            segments,
        })
    }
}

impl Default for SparseCodec {
    /// A codec with `min_gap = 8`.
    fn default() -> Self {
        Self::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward_parity;
    use proptest::prelude::*;

    fn roundtrip(codec: SparseCodec, parity: &[u8]) {
        let sp = codec.encode(parity);
        let bytes = sp.to_bytes();
        assert_eq!(bytes.len(), sp.wire_size(), "wire_size must be exact");
        let back = codec.decode(&bytes, parity.len()).unwrap();
        assert_eq!(back.to_dense(parity.len()), parity);
    }

    #[test]
    fn all_zero_parity_is_tiny() {
        let parity = vec![0u8; 8192];
        let sp = SparseCodec::default().encode(&parity);
        assert!(sp.is_empty());
        assert!(sp.wire_size() <= 3);
        roundtrip(SparseCodec::default(), &parity);
    }

    #[test]
    fn single_extent() {
        let mut parity = vec![0u8; 4096];
        parity[100..228].fill(0x55);
        let sp = SparseCodec::default().encode(&parity);
        assert_eq!(sp.segments().len(), 1);
        assert_eq!(sp.payload_bytes(), 128);
        // metadata is a handful of bytes
        assert!(sp.wire_size() < 128 + 10);
        roundtrip(SparseCodec::default(), &parity);
    }

    #[test]
    fn nearby_extents_are_merged_by_min_gap() {
        let mut parity = vec![0u8; 1024];
        parity[10] = 1;
        parity[14] = 1; // 3 zero gap < min_gap=8 → merged
        parity[500] = 1; // far away → separate segment
        let sp = SparseCodec::default().encode(&parity);
        assert_eq!(sp.segments().len(), 2);
        assert_eq!(sp.segments()[0].offset, 10);
        assert_eq!(sp.segments()[0].data.len(), 5);
        roundtrip(SparseCodec::default(), &parity);
    }

    #[test]
    fn fold_with_self_cancels() {
        let mut parity = vec![0u8; 256];
        parity[40..72].fill(0xAA);
        let sp = SparseCodec::default().encode(&parity);
        assert!(sp.fold(&sp).is_empty(), "X ^ X must fold to nothing");
    }

    #[test]
    fn min_gap_one_splits_every_run() {
        let mut parity = vec![0u8; 64];
        parity[1] = 1;
        parity[3] = 1;
        let sp = SparseCodec::new(1).encode(&parity);
        assert_eq!(sp.segments().len(), 2);
        roundtrip(SparseCodec::new(1), &parity);
    }

    #[test]
    fn trailing_zeros_are_not_included() {
        let mut parity = vec![0u8; 32];
        parity[0] = 9;
        parity[2] = 9; // merged with gap 1, then 29 zeros follow
        let sp = SparseCodec::default().encode(&parity);
        assert_eq!(sp.segments().len(), 1);
        assert_eq!(sp.segments()[0].data, vec![9, 0, 9]);
    }

    #[test]
    fn apply_to_equals_dense_xor() {
        let old: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
        let mut new = old.clone();
        new[50..60].fill(0);
        new[400] = 7;
        let parity = forward_parity(&old, &new);
        let sp = SparseCodec::default().encode(&parity);
        let mut block = old.clone();
        sp.apply_to(&mut block);
        assert_eq!(block, new);
    }

    #[test]
    fn decode_rejects_wrong_block_len() {
        let sp = SparseCodec::default().encode(&[0u8; 100]);
        let bytes = sp.to_bytes();
        assert_eq!(
            SparseCodec::default().decode(&bytes, 200),
            Err(CodecError::BlockLenMismatch {
                encoded: 100,
                expected: 200
            })
        );
    }

    #[test]
    fn decode_rejects_truncation_at_every_cut() {
        let mut parity = vec![0u8; 256];
        parity[3..10].fill(1);
        parity[100..120].fill(2);
        let bytes = SparseCodec::default().encode(&parity).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SparseCodec::default().decode(&bytes[..cut], 256).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_out_of_bounds_segment() {
        // Hand-craft: block_len=4, 1 segment, gap=0, len=8.
        let mut bytes = Vec::new();
        crate::encode_varint(&mut bytes, 4);
        crate::encode_varint(&mut bytes, 1);
        crate::encode_varint(&mut bytes, 0);
        crate::encode_varint(&mut bytes, 8);
        bytes.extend_from_slice(&[1u8; 8]);
        assert!(matches!(
            SparseCodec::default().decode(&bytes, 4),
            Err(CodecError::SegmentOutOfBounds { .. })
        ));
    }

    #[test]
    fn decode_rejects_zero_length_segment() {
        let mut bytes = Vec::new();
        crate::encode_varint(&mut bytes, 16);
        crate::encode_varint(&mut bytes, 1);
        crate::encode_varint(&mut bytes, 0);
        crate::encode_varint(&mut bytes, 0);
        assert_eq!(
            SparseCodec::default().decode(&bytes, 16),
            Err(CodecError::SegmentOrder)
        );
    }

    #[test]
    fn wire_size_beats_dense_for_sparse_changes() {
        // The headline PRINS scenario: 8KB block, ~10% changed.
        let old = vec![0xabu8; 8192];
        let mut new = old.clone();
        new[1000..1800].fill(0xcd);
        let parity = forward_parity(&old, &new);
        let sp = SparseCodec::default().encode(&parity);
        assert!(sp.wire_size() < 8192 / 9, "expected ~10x reduction");
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_parity(parity in proptest::collection::vec(any::<u8>(), 0..2048),
                                           min_gap in 1usize..32) {
            let codec = SparseCodec::new(min_gap);
            let sp = codec.encode(&parity);
            let bytes = sp.to_bytes();
            prop_assert_eq!(bytes.len(), sp.wire_size());
            let back = codec.decode(&bytes, parity.len()).unwrap();
            prop_assert_eq!(back.to_dense(parity.len()), parity);
        }

        #[test]
        fn prop_fold_composes(base in proptest::collection::vec(any::<u8>(), 1..512),
                              p1 in proptest::collection::vec(any::<u8>(), 1..512),
                              p2 in proptest::collection::vec(any::<u8>(), 1..512)) {
            let n = base.len().min(p1.len()).min(p2.len());
            let codec = SparseCodec::default();
            let (a, b) = (codec.encode(&p1[..n]), codec.encode(&p2[..n]));
            let mut chained = base[..n].to_vec();
            a.apply_to(&mut chained);
            b.apply_to(&mut chained);
            let mut folded = base[..n].to_vec();
            a.fold(&b).apply_to(&mut folded);
            prop_assert_eq!(chained, folded);
        }

        #[test]
        fn prop_sparse_apply_matches_dense(old in proptest::collection::vec(any::<u8>(), 1..1024),
                                           flips in proptest::collection::vec((any::<prop::sample::Index>(), 1u8..), 0..16)) {
            let mut new = old.clone();
            for (idx, v) in &flips {
                new[idx.index(old.len())] ^= v;
            }
            let parity = forward_parity(&old, &new);
            let sp = SparseCodec::default().encode(&parity);
            let mut block = old.clone();
            sp.apply_to(&mut block);
            prop_assert_eq!(block, new);
        }

        /// Correctness of XOR-folding write coalescing: for any chain
        /// old → mid → new, applying the folded parity
        /// `old ⊕ new = (old ⊕ mid) ⊕ (mid ⊕ new)` in one step leaves
        /// the block exactly where applying the two per-write parities
        /// in sequence would.
        #[test]
        fn prop_folded_parity_equals_sequential_application(
            old in proptest::collection::vec(any::<u8>(), 1..1024),
            mid_seed in any::<u64>(),
            new_seed in any::<u64>()) {
            let mutate = |base: &[u8], seed: u64| -> Vec<u8> {
                // Sparse-ish mutation: flip a few regions.
                let mut out = base.to_vec();
                let n = out.len();
                for k in 0..1 + (seed % 4) as usize {
                    let at = (seed.wrapping_mul(k as u64 * 2 + 7) as usize) % n;
                    let len = 1 + (seed.wrapping_shr(8) as usize + k) % 32;
                    for b in &mut out[at..(at + len).min(n)] {
                        *b ^= (seed.wrapping_shr(16) as u8) | 1;
                    }
                }
                out
            };
            let mid = mutate(&old, mid_seed);
            let new = mutate(&mid, new_seed);
            let codec = SparseCodec::default();

            let p1 = codec.encode(&forward_parity(&old, &mid));
            let p2 = codec.encode(&forward_parity(&mid, &new));
            let folded = codec.encode(&forward_parity(&old, &new));

            let mut sequential = old.clone();
            p1.apply_to(&mut sequential);
            p2.apply_to(&mut sequential);

            let mut one_shot = old.clone();
            folded.apply_to(&mut one_shot);

            prop_assert_eq!(&sequential, &new);
            prop_assert_eq!(one_shot, sequential);
        }

        /// The fused delta encoder must be byte-identical to the
        /// materialize-then-encode path — frames built on the pooled hot
        /// path and the classic path are indistinguishable on the wire.
        #[test]
        fn prop_encode_delta_into_is_byte_identical(
            old in proptest::collection::vec(any::<u8>(), 0..1024),
            flips in proptest::collection::vec((any::<prop::sample::Index>(), 1u8..), 0..16),
            min_gap in 1usize..32) {
            let mut new = old.clone();
            for (idx, v) in &flips {
                if !new.is_empty() {
                    let at = idx.index(new.len());
                    new[at] ^= v;
                }
            }
            let codec = SparseCodec::new(min_gap);
            let classic = codec.encode(&forward_parity(&old, &new));
            let want = classic.to_bytes();

            let mut fused = vec![0xEEu8; 3]; // pre-existing bytes must be preserved
            codec.encode_delta_into(&old, &new, &mut fused);
            prop_assert_eq!(&fused[..3], &[0xEEu8; 3][..]);
            prop_assert_eq!(&fused[3..], want.as_slice());

            let (count, wire) = codec.delta_wire_info(&old, &new);
            prop_assert_eq!(count, classic.segments().len());
            prop_assert_eq!(wire, classic.wire_size());
        }

        #[test]
        fn prop_segments_sorted_nonoverlapping(parity in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let sp = SparseCodec::default().encode(&parity);
            let mut prev_end = 0usize;
            for s in sp.segments() {
                prop_assert!(s.offset >= prev_end);
                prop_assert!(!s.data.is_empty());
                prop_assert!(*s.data.first().unwrap() != 0);
                prop_assert!(*s.data.last().unwrap() != 0);
                prev_end = s.end();
            }
        }
    }
}
