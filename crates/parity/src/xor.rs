//! Word-at-a-time XOR kernels.
//!
//! XOR is the only arithmetic PRINS and RAID parity need. The kernels
//! below process eight bytes per iteration on the aligned middle of the
//! buffers; the compiler auto-vectorizes the `u64` loop on every target we
//! care about, which keeps the "computation is much cheaper than
//! communication" premise of the paper honest.

/// XORs `src` into `dst` (`dst[i] ^= src[i]`).
///
/// # Panics
///
/// Panics if the slices have different lengths — calling code always
/// operates on whole blocks of a single device, so a mismatch is a logic
/// error, not an I/O condition.
///
/// # Example
///
/// ```
/// use prins_parity::xor_in_place;
///
/// let mut a = vec![0b1100u8; 16];
/// xor_in_place(&mut a, &vec![0b1010u8; 16]);
/// assert!(a.iter().all(|&b| b == 0b0110));
/// ```
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor operands must be equal length");
    // Split both slices into a u64-aligned middle plus byte prefix/suffix.
    let n = dst.len();
    let chunk = 8;
    let main = n - (n % chunk);
    for i in (0..main).step_by(chunk) {
        let a = u64::from_ne_bytes(dst[i..i + chunk].try_into().unwrap());
        let b = u64::from_ne_bytes(src[i..i + chunk].try_into().unwrap());
        dst[i..i + chunk].copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    for i in main..n {
        dst[i] ^= src[i];
    }
}

/// Writes `a ^ b` into `out`.
///
/// # Panics
///
/// Panics if the three slices are not all the same length.
pub fn xor_into(out: &mut [u8], a: &[u8], b: &[u8]) {
    assert_eq!(a.len(), b.len(), "xor operands must be equal length");
    assert_eq!(out.len(), a.len(), "xor output must match operand length");
    out.copy_from_slice(a);
    xor_in_place(out, b);
}

/// Returns `a ^ b` as a freshly allocated buffer.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
///
/// # Example
///
/// ```
/// use prins_parity::xor_bytes;
///
/// assert_eq!(xor_bytes(&[1, 2, 3], &[1, 2, 3]), vec![0, 0, 0]);
/// ```
pub fn xor_bytes(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = a.to_vec();
    xor_in_place(&mut out, b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn xor_with_self_is_zero() {
        let a: Vec<u8> = (0..=255).collect();
        assert!(xor_bytes(&a, &a).iter().all(|&b| b == 0));
    }

    #[test]
    fn xor_with_zero_is_identity() {
        let a: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
        let z = vec![0u8; 100];
        assert_eq!(xor_bytes(&a, &z), a);
    }

    #[test]
    fn handles_lengths_that_are_not_multiples_of_eight() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 65] {
            let a: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 3 + 1) as u8).collect();
            let naive: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            assert_eq!(xor_bytes(&a, &b), naive, "len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        xor_bytes(&[1, 2], &[1]);
    }

    #[test]
    fn xor_into_matches_xor_bytes() {
        let a = vec![0xF0u8; 33];
        let b = vec![0x0Fu8; 33];
        let mut out = vec![0u8; 33];
        xor_into(&mut out, &a, &b);
        assert_eq!(out, xor_bytes(&a, &b));
    }

    proptest! {
        #[test]
        fn prop_xor_is_involutive(a in proptest::collection::vec(any::<u8>(), 0..512),
                                  b_seed in any::<u64>()) {
            let b: Vec<u8> = a.iter().enumerate()
                .map(|(i, _)| (b_seed.wrapping_mul(i as u64 + 1) >> 32) as u8)
                .collect();
            let x = xor_bytes(&a, &b);
            prop_assert_eq!(xor_bytes(&x, &b), a);
        }

        #[test]
        fn prop_xor_commutes(a in proptest::collection::vec(any::<u8>(), 0..256),
                             b in proptest::collection::vec(any::<u8>(), 0..256)) {
            let n = a.len().min(b.len());
            prop_assert_eq!(xor_bytes(&a[..n], &b[..n]), xor_bytes(&b[..n], &a[..n]));
        }

        #[test]
        fn prop_xor_associates(bytes in proptest::collection::vec(any::<(u8, u8, u8)>(), 0..256)) {
            let a: Vec<u8> = bytes.iter().map(|t| t.0).collect();
            let b: Vec<u8> = bytes.iter().map(|t| t.1).collect();
            let c: Vec<u8> = bytes.iter().map(|t| t.2).collect();
            prop_assert_eq!(
                xor_bytes(&xor_bytes(&a, &b), &c),
                xor_bytes(&a, &xor_bytes(&b, &c))
            );
        }
    }
}
