//! Wide XOR kernels.
//!
//! XOR is the only arithmetic PRINS and RAID parity need. The kernels
//! below walk the buffers in 64-byte chunks via `chunks_exact`, so the
//! optimizer sees fixed-size windows with no per-iteration bounds checks
//! and emits wide (SSE/AVX/NEON) loads; an 8-byte pass and a byte-wise
//! tail mop up the remainder. This keeps the "computation is much
//! cheaper than communication" premise of the paper honest.

/// Bytes per wide chunk: one cache line, eight `u64` lanes.
const WIDE: usize = 64;

/// XORs `src` into `dst` (`dst[i] ^= src[i]`).
///
/// # Panics
///
/// Panics if the slices have different lengths — calling code always
/// operates on whole blocks of a single device, so a mismatch is a logic
/// error, not an I/O condition.
///
/// # Example
///
/// ```
/// use prins_parity::xor_in_place;
///
/// let mut a = vec![0b1100u8; 16];
/// xor_in_place(&mut a, &vec![0b1010u8; 16]);
/// assert!(a.iter().all(|&b| b == 0b0110));
/// ```
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor operands must be equal length");
    let mut d_wide = dst.chunks_exact_mut(WIDE);
    let mut s_wide = src.chunks_exact(WIDE);
    for (d, s) in d_wide.by_ref().zip(s_wide.by_ref()) {
        // Eight independent u64 lanes per chunk: the fixed-size
        // subslices compile to unchecked wide loads/stores.
        for lane in 0..WIDE / 8 {
            let at = lane * 8;
            let a = u64::from_ne_bytes(d[at..at + 8].try_into().unwrap());
            let b = u64::from_ne_bytes(s[at..at + 8].try_into().unwrap());
            d[at..at + 8].copy_from_slice(&(a ^ b).to_ne_bytes());
        }
    }
    let d_rem = d_wide.into_remainder();
    let s_rem = s_wide.remainder();
    let mut d8 = d_rem.chunks_exact_mut(8);
    let mut s8 = s_rem.chunks_exact(8);
    for (d, s) in d8.by_ref().zip(s8.by_ref()) {
        let a = u64::from_ne_bytes(d[..].try_into().unwrap());
        let b = u64::from_ne_bytes(s[..].try_into().unwrap());
        d.copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    for (d, s) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
        *d ^= s;
    }
}

/// Reference byte-at-a-time XOR, kept for the kernel benchmarks (wide
/// vs scalar series) and as an executable specification of
/// [`xor_in_place`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_in_place_scalar(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor operands must be equal length");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Index of the first nonzero byte at or after `from`, scanning a word
/// at a time.
///
/// The hot caller is [`SparseCodec::encode`](crate::SparseCodec): a
/// PRINS parity block is mostly zeros, and this scan skips the zero
/// runs eight bytes per comparison (memory bandwidth) instead of one.
///
/// # Example
///
/// ```
/// use prins_parity::scan_nonzero;
///
/// let mut buf = vec![0u8; 100];
/// buf[70] = 9;
/// assert_eq!(scan_nonzero(&buf, 0), Some(70));
/// assert_eq!(scan_nonzero(&buf, 71), None);
/// ```
pub fn scan_nonzero(buf: &[u8], from: usize) -> Option<usize> {
    if from >= buf.len() {
        return None;
    }
    let tail = &buf[from..];
    let mut words = tail.chunks_exact(8);
    let mut offset = 0usize;
    for w in words.by_ref() {
        let word = u64::from_ne_bytes(w.try_into().unwrap());
        if word != 0 {
            // Locate the nonzero byte within the word; byte order does
            // not matter for a linear scan of 8 bytes.
            let at = w.iter().position(|&b| b != 0).unwrap();
            return Some(from + offset + at);
        }
        offset += 8;
    }
    words
        .remainder()
        .iter()
        .position(|&b| b != 0)
        .map(|at| from + offset + at)
}

/// Index of the first position at or after `from` where `a` and `b`
/// differ, scanning a word at a time.
///
/// This is [`scan_nonzero`] over the *virtual* parity `a ⊕ b` without
/// materializing it: the hot caller is the pooled encode path
/// (`SparseCodec::encode_delta_into`), which walks the old/new images
/// directly instead of allocating a dense parity block first.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use prins_parity::scan_mismatch;
///
/// let a = vec![7u8; 100];
/// let mut b = a.clone();
/// b[70] ^= 1;
/// assert_eq!(scan_mismatch(&a, &b, 0), Some(70));
/// assert_eq!(scan_mismatch(&a, &b, 71), None);
/// ```
pub fn scan_mismatch(a: &[u8], b: &[u8], from: usize) -> Option<usize> {
    assert_eq!(a.len(), b.len(), "scan operands must be equal length");
    if from >= a.len() {
        return None;
    }
    let (ta, tb) = (&a[from..], &b[from..]);
    let mut wa = ta.chunks_exact(8);
    let mut wb = tb.chunks_exact(8);
    let mut offset = 0usize;
    for (ca, cb) in wa.by_ref().zip(wb.by_ref()) {
        let x =
            u64::from_ne_bytes(ca.try_into().unwrap()) ^ u64::from_ne_bytes(cb.try_into().unwrap());
        if x != 0 {
            let at = ca.iter().zip(cb).position(|(p, q)| p != q).unwrap();
            return Some(from + offset + at);
        }
        offset += 8;
    }
    wa.remainder()
        .iter()
        .zip(wb.remainder())
        .position(|(p, q)| p != q)
        .map(|at| from + offset + at)
}

/// Writes `a ^ b` into `out`.
///
/// # Panics
///
/// Panics if the three slices are not all the same length.
pub fn xor_into(out: &mut [u8], a: &[u8], b: &[u8]) {
    assert_eq!(a.len(), b.len(), "xor operands must be equal length");
    assert_eq!(out.len(), a.len(), "xor output must match operand length");
    out.copy_from_slice(a);
    xor_in_place(out, b);
}

/// Returns `a ^ b` as a freshly allocated buffer.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
///
/// # Example
///
/// ```
/// use prins_parity::xor_bytes;
///
/// assert_eq!(xor_bytes(&[1, 2, 3], &[1, 2, 3]), vec![0, 0, 0]);
/// ```
pub fn xor_bytes(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = a.to_vec();
    xor_in_place(&mut out, b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn xor_with_self_is_zero() {
        let a: Vec<u8> = (0..=255).collect();
        assert!(xor_bytes(&a, &a).iter().all(|&b| b == 0));
    }

    #[test]
    fn xor_with_zero_is_identity() {
        let a: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
        let z = vec![0u8; 100];
        assert_eq!(xor_bytes(&a, &z), a);
    }

    #[test]
    fn handles_lengths_that_are_not_multiples_of_eight() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 65] {
            let a: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 3 + 1) as u8).collect();
            let naive: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            assert_eq!(xor_bytes(&a, &b), naive, "len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        xor_bytes(&[1, 2], &[1]);
    }

    #[test]
    fn wide_kernel_matches_scalar_reference() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 127, 128, 129, 4096] {
            let a: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 31 + 1) as u8).collect();
            let mut wide = a.clone();
            xor_in_place(&mut wide, &b);
            let mut scalar = a.clone();
            xor_in_place_scalar(&mut scalar, &b);
            assert_eq!(wide, scalar, "len={len}");
        }
    }

    #[test]
    fn scan_nonzero_finds_first_set_byte() {
        let mut buf = vec![0u8; 300];
        assert_eq!(scan_nonzero(&buf, 0), None);
        assert_eq!(scan_nonzero(&buf, 300), None);
        assert_eq!(scan_nonzero(&buf, 999), None);
        for at in [0usize, 1, 7, 8, 9, 63, 64, 255, 296, 299] {
            buf.fill(0);
            buf[at] = 1;
            assert_eq!(scan_nonzero(&buf, 0), Some(at), "at={at}");
            assert_eq!(scan_nonzero(&buf, at), Some(at), "at={at}");
            assert_eq!(scan_nonzero(&buf, at + 1), None, "at={at}");
        }
    }

    #[test]
    fn scan_mismatch_equals_scan_nonzero_of_the_parity() {
        let a: Vec<u8> = (0..300).map(|i| (i % 7) as u8).collect();
        for at in [0usize, 1, 7, 8, 9, 63, 64, 255, 296, 299] {
            let mut b = a.clone();
            b[at] ^= 0x80;
            let parity = xor_bytes(&a, &b);
            for from in [0usize, 1, at, at + 1, 300, 999] {
                assert_eq!(
                    scan_mismatch(&a, &b, from),
                    scan_nonzero(&parity, from),
                    "at={at} from={from}"
                );
            }
        }
        assert_eq!(scan_mismatch(&a, &a, 0), None);
    }

    #[test]
    fn xor_into_matches_xor_bytes() {
        let a = vec![0xF0u8; 33];
        let b = vec![0x0Fu8; 33];
        let mut out = vec![0u8; 33];
        xor_into(&mut out, &a, &b);
        assert_eq!(out, xor_bytes(&a, &b));
    }

    proptest! {
        #[test]
        fn prop_xor_is_involutive(a in proptest::collection::vec(any::<u8>(), 0..512),
                                  b_seed in any::<u64>()) {
            let b: Vec<u8> = a.iter().enumerate()
                .map(|(i, _)| (b_seed.wrapping_mul(i as u64 + 1) >> 32) as u8)
                .collect();
            let x = xor_bytes(&a, &b);
            prop_assert_eq!(xor_bytes(&x, &b), a);
        }

        #[test]
        fn prop_wide_matches_scalar(a in proptest::collection::vec(any::<u8>(), 0..600),
                                    seed in any::<u64>()) {
            let b: Vec<u8> = a.iter().enumerate()
                .map(|(i, _)| (seed.wrapping_mul(i as u64 + 3) >> 24) as u8)
                .collect();
            let mut wide = a.clone();
            xor_in_place(&mut wide, &b);
            let mut scalar = a.clone();
            xor_in_place_scalar(&mut scalar, &b);
            prop_assert_eq!(wide, scalar);
        }

        #[test]
        fn prop_scan_nonzero_matches_position(raw in proptest::collection::vec(any::<u8>(), 0..256),
                                              from in 0usize..300) {
            // Bias towards zeros so runs of all shapes appear.
            let buf: Vec<u8> = raw.iter().map(|&b| if b < 224 { 0 } else { b }).collect();
            let expected = buf.iter().enumerate().skip(from.min(buf.len()))
                .find(|(_, &b)| b != 0).map(|(i, _)| i);
            prop_assert_eq!(scan_nonzero(&buf, from), expected);
        }

        #[test]
        fn prop_scan_mismatch_matches_parity_scan(
                a in proptest::collection::vec(any::<u8>(), 0..256),
                flips in proptest::collection::vec((any::<prop::sample::Index>(), 1u8..), 0..6),
                from in 0usize..300) {
            let mut b = a.clone();
            for (idx, v) in &flips {
                if !b.is_empty() {
                    let at = idx.index(b.len());
                    b[at] ^= v;
                }
            }
            let parity = xor_bytes(&a, &b);
            prop_assert_eq!(scan_mismatch(&a, &b, from), scan_nonzero(&parity, from));
        }

        #[test]
        fn prop_xor_commutes(a in proptest::collection::vec(any::<u8>(), 0..256),
                             b in proptest::collection::vec(any::<u8>(), 0..256)) {
            let n = a.len().min(b.len());
            prop_assert_eq!(xor_bytes(&a[..n], &b[..n]), xor_bytes(&b[..n], &a[..n]));
        }

        #[test]
        fn prop_xor_associates(bytes in proptest::collection::vec(any::<(u8, u8, u8)>(), 0..256)) {
            let a: Vec<u8> = bytes.iter().map(|t| t.0).collect();
            let b: Vec<u8> = bytes.iter().map(|t| t.1).collect();
            let c: Vec<u8> = bytes.iter().map(|t| t.2).collect();
            prop_assert_eq!(
                xor_bytes(&xor_bytes(&a, &b), &c),
                xor_bytes(&a, &xor_bytes(&b, &c))
            );
        }
    }
}
