//! The erasure-codec seam: k-of-n strip coding behind one trait.
//!
//! PRINS's delta algebra generalizes beyond mirroring: a write that
//! changes a data strip by `Δd` changes parity strip `i` by
//! `Δp_i = c_i · Δd`, where `c_i` is the codec's generator coefficient
//! for that (parity, data) pair and `·` is multiplication in the
//! codec's field. Mirroring is the degenerate code (`k = 1`, every
//! coefficient 1, the field is GF(2) applied bytewise — plain XOR);
//! Reed–Solomon over GF(256) lives in `prins-ec` and plugs in through
//! the same trait.
//!
//! Consumers (the replica applier, the EC cluster group) depend on
//! [`ErasureCodec`], not on XOR free functions, so swapping the code
//! never touches the wire or apply paths.

use std::fmt;

use crate::xor::{xor_bytes, xor_in_place};

/// Errors from erasure encode/apply/reconstruct.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EcError {
    /// A delta-apply coefficient the codec cannot multiply by (the XOR
    /// codec only knows 0 and 1).
    BadCoefficient(u8),
    /// Strip or delta lengths disagree.
    LenMismatch {
        /// Expected length in bytes.
        expected: usize,
        /// Offending length in bytes.
        got: usize,
    },
    /// A strip-array length that is not `k + m`.
    WrongStripCount {
        /// Strips handed in.
        got: usize,
        /// Strips the codec works over.
        want: usize,
    },
    /// More strips missing than the code tolerates.
    TooManyErasures {
        /// Missing strips.
        missing: usize,
        /// Erasures the code can decode through.
        tolerated: usize,
    },
    /// The decode matrix was singular — the chosen survivor set cannot
    /// express the lost strip (never happens for an MDS code given
    /// `k` distinct survivors).
    Singular,
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcError::BadCoefficient(c) => write!(f, "unsupported coefficient {c:#04x}"),
            EcError::LenMismatch { expected, got } => {
                write!(f, "strip length mismatch: expected {expected}, got {got}")
            }
            EcError::WrongStripCount { got, want } => {
                write!(f, "strip count {got} != k+m = {want}")
            }
            EcError::TooManyErasures { missing, tolerated } => {
                write!(f, "{missing} strips missing, only {tolerated} tolerated")
            }
            EcError::Singular => write!(f, "decode matrix is singular"),
        }
    }
}

impl std::error::Error for EcError {}

/// A systematic k-of-(k+m) erasure code over byte strips.
///
/// Strip positions are codeword positions: `0..k` are the data strips,
/// `k..k+m` the parity strips. The contract every implementation keeps:
///
/// * `parity_i = Σ_j coefficient(i, j) · data_j` (encode),
/// * updating data strip `j` by `Δd` updates parity `i` by
///   `coefficient(i, j) · Δd` ([`apply_delta`](Self::apply_delta) with
///   that coefficient lands exactly that), and
/// * any `k` of the `k + m` strips reconstruct the rest
///   ([`reconstruct`](Self::reconstruct)).
pub trait ErasureCodec: Send + Sync {
    /// Number of data strips `k`.
    fn data_strips(&self) -> usize;

    /// Number of parity strips `m`.
    fn parity_strips(&self) -> usize;

    /// Total codeword width `n = k + m`.
    fn total_strips(&self) -> usize {
        self.data_strips() + self.parity_strips()
    }

    /// Generator coefficient `c` of parity strip `parity` (0-based,
    /// `< m`) over data strip `data` (`< k`).
    fn coefficient(&self, parity: usize, data: usize) -> u8;

    /// The write delta `Δ = new − old`. Subtraction is XOR in every
    /// GF(2^w), so all codecs share this — it is the PRINS forward
    /// parity computation.
    fn delta(&self, old: &[u8], new: &[u8]) -> Vec<u8> {
        xor_bytes(old, new)
    }

    /// RMW-applies `base ^= coeff · delta` in the codec's field.
    ///
    /// # Errors
    ///
    /// [`EcError::LenMismatch`] when slices disagree, or
    /// [`EcError::BadCoefficient`] if the codec cannot scale by
    /// `coeff`.
    fn apply_delta(&self, base: &mut [u8], coeff: u8, delta: &[u8]) -> Result<(), EcError>;

    /// Encodes `m` parity strips over `k` equal-length data strips.
    ///
    /// # Errors
    ///
    /// [`EcError::WrongStripCount`] / [`EcError::LenMismatch`] on a
    /// malformed strip set.
    fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError>;

    /// Fills in every `None` strip from the `Some` survivors, in place.
    /// `strips` must hold `k + m` positions in codeword order.
    ///
    /// # Errors
    ///
    /// [`EcError::TooManyErasures`] with fewer than `k` survivors,
    /// [`EcError::WrongStripCount`] / [`EcError::LenMismatch`] on a
    /// malformed strip set.
    fn reconstruct(&self, strips: &mut [Option<Vec<u8>>]) -> Result<(), EcError>;

    /// Short name for reports ("xor", "rs(4+2)", …).
    fn name(&self) -> &'static str;
}

fn check_strip_lens(strips: &[&[u8]]) -> Result<usize, EcError> {
    let len = strips.first().map_or(0, |s| s.len());
    for s in strips {
        if s.len() != len {
            return Err(EcError::LenMismatch {
                expected: len,
                got: s.len(),
            });
        }
    }
    Ok(len)
}

/// The trivial codec: single XOR parity (`m = 1`), the RAID-4/5 and
/// mirroring fast path. With `k = 1` the parity strip is a byte-exact
/// copy of the data strip — classic PRINS mirroring expressed as an
/// erasure code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XorCodec {
    k: usize,
}

impl XorCodec {
    /// An XOR code over `k` data strips (`k ≥ 1`).
    ///
    /// # Panics
    ///
    /// If `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "XOR code needs at least one data strip");
        Self { k }
    }

    /// The mirroring configuration: one data strip, one copy.
    pub fn mirror() -> Self {
        Self::new(1)
    }
}

impl Default for XorCodec {
    fn default() -> Self {
        Self::mirror()
    }
}

impl ErasureCodec for XorCodec {
    fn data_strips(&self) -> usize {
        self.k
    }

    fn parity_strips(&self) -> usize {
        1
    }

    fn coefficient(&self, _parity: usize, _data: usize) -> u8 {
        1
    }

    fn apply_delta(&self, base: &mut [u8], coeff: u8, delta: &[u8]) -> Result<(), EcError> {
        if base.len() != delta.len() {
            return Err(EcError::LenMismatch {
                expected: base.len(),
                got: delta.len(),
            });
        }
        match coeff {
            0 => Ok(()),
            1 => {
                xor_in_place(base, delta);
                Ok(())
            }
            other => Err(EcError::BadCoefficient(other)),
        }
    }

    fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        if data.len() != self.k {
            return Err(EcError::WrongStripCount {
                got: data.len(),
                want: self.k,
            });
        }
        let len = check_strip_lens(data)?;
        let mut parity = vec![0u8; len];
        for strip in data {
            xor_in_place(&mut parity, strip);
        }
        Ok(vec![parity])
    }

    fn reconstruct(&self, strips: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let n = self.total_strips();
        if strips.len() != n {
            return Err(EcError::WrongStripCount {
                got: strips.len(),
                want: n,
            });
        }
        let missing: Vec<usize> = (0..n).filter(|&i| strips[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > 1 {
            return Err(EcError::TooManyErasures {
                missing: missing.len(),
                tolerated: 1,
            });
        }
        let present: Vec<&[u8]> = strips.iter().filter_map(|s| s.as_deref()).collect();
        let len = check_strip_lens(&present)?;
        // Sum of every survivor: data ⊕ parity cancels to the missing
        // strip, whichever position it held.
        let mut out = vec![0u8; len];
        for s in &present {
            xor_in_place(&mut out, s);
        }
        strips[missing[0]] = Some(out);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "xor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_parity_is_a_copy() {
        let codec = XorCodec::mirror();
        let data = vec![1u8, 2, 3, 4];
        let parity = codec.encode(&[&data]).unwrap();
        assert_eq!(parity, vec![data.clone()]);
        assert_eq!(codec.name(), "xor");
        assert_eq!((codec.data_strips(), codec.parity_strips()), (1, 1));
    }

    #[test]
    fn delta_is_forward_parity() {
        let codec = XorCodec::mirror();
        let old = vec![0u8, 0xff, 0x55];
        let new = vec![1u8, 0xff, 0xaa];
        assert_eq!(codec.delta(&old, &new), vec![1, 0, 0xff]);
    }

    #[test]
    fn apply_delta_supports_only_zero_and_one() {
        let codec = XorCodec::new(3);
        let mut base = vec![0x0fu8; 4];
        codec.apply_delta(&mut base, 0, &[0xff; 4]).unwrap();
        assert_eq!(base, vec![0x0f; 4]);
        codec.apply_delta(&mut base, 1, &[0xf0; 4]).unwrap();
        assert_eq!(base, vec![0xff; 4]);
        assert_eq!(
            codec.apply_delta(&mut base, 2, &[0; 4]),
            Err(EcError::BadCoefficient(2))
        );
        assert!(matches!(
            codec.apply_delta(&mut base, 1, &[0; 3]),
            Err(EcError::LenMismatch { .. })
        ));
    }

    #[test]
    fn any_single_erasure_reconstructs() {
        let codec = XorCodec::new(3);
        let strips: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let refs: Vec<&[u8]> = strips.iter().map(|s| s.as_slice()).collect();
        let parity = codec.encode(&refs).unwrap().remove(0);
        let mut full: Vec<Vec<u8>> = strips.clone();
        full.push(parity);
        for lost in 0..4 {
            let mut view: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            view[lost] = None;
            codec.reconstruct(&mut view).unwrap();
            assert_eq!(view[lost].as_ref().unwrap(), &full[lost], "strip {lost}");
        }
    }

    #[test]
    fn double_erasure_is_rejected() {
        let codec = XorCodec::new(2);
        let mut view = vec![None, None, Some(vec![0u8; 4])];
        assert!(matches!(
            codec.reconstruct(&mut view),
            Err(EcError::TooManyErasures {
                missing: 2,
                tolerated: 1
            })
        ));
        let mut short = vec![Some(vec![0u8; 4])];
        assert!(matches!(
            codec.reconstruct(&mut short),
            Err(EcError::WrongStripCount { .. })
        ));
    }

    #[test]
    fn rmw_update_equals_reencode() {
        // The satellite equivalence at its simplest: XOR-update the
        // parity by coefficient(0, j)·Δ and compare with re-encoding.
        let codec = XorCodec::new(4);
        let mut strips: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 16]).collect();
        let refs: Vec<&[u8]> = strips.iter().map(|s| s.as_slice()).collect();
        let mut parity = codec.encode(&refs).unwrap().remove(0);
        let mut new_strip = strips[2].clone();
        new_strip[3] ^= 0x77;
        let delta = codec.delta(&strips[2], &new_strip);
        codec
            .apply_delta(&mut parity, codec.coefficient(0, 2), &delta)
            .unwrap();
        strips[2] = new_strip;
        let refs: Vec<&[u8]> = strips.iter().map(|s| s.as_slice()).collect();
        assert_eq!(parity, codec.encode(&refs).unwrap().remove(0));
    }

    #[test]
    fn trait_objects_compose() {
        let codec: Box<dyn ErasureCodec> = Box::new(XorCodec::mirror());
        assert_eq!(codec.total_strips(), 2);
        assert_eq!(codec.coefficient(0, 0), 1);
    }
}
