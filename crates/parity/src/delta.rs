//! Forward and backward parity computation (Equations (1)/(2) of the
//! paper) and change-ratio statistics.

use crate::xor::{xor_bytes, xor_in_place};

/// Computes the forward parity `P' = A_new ⊕ A_old` at the primary site.
///
/// In a RAID-4/5 array this value is already produced by the small-write
/// read-modify-write path (see `prins-raid`), so PRINS gets it for free;
/// without RAID it costs one XOR pass over the block.
///
/// # Panics
///
/// Panics if the images have different lengths.
///
/// # Example
///
/// ```
/// use prins_parity::forward_parity;
///
/// let old = [0u8; 8];
/// let mut new = old;
/// new[3] = 0xff;
/// let p = forward_parity(&old, &new);
/// assert_eq!(p.iter().filter(|&&b| b != 0).count(), 1);
/// ```
pub fn forward_parity(old: &[u8], new: &[u8]) -> Vec<u8> {
    xor_bytes(old, new)
}

/// Computes the backward parity `A_new = P' ⊕ A_old` at the replica site.
///
/// # Panics
///
/// Panics if the images have different lengths.
pub fn apply_parity(old: &[u8], parity: &[u8]) -> Vec<u8> {
    xor_bytes(old, parity)
}

/// In-place variant of [`apply_parity`]: `block ^= parity`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn apply_parity_in_place(block: &mut [u8], parity: &[u8]) {
    xor_in_place(block, parity);
}

/// Statistics about how much of a block a write actually changed.
///
/// The paper's premise (from the authors' earlier measurement studies) is
/// that real applications change only 5–20 % of a block per write; these
/// statistics let the workloads verify they reproduce that regime.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeltaStats {
    /// Total bytes in the block.
    pub block_bytes: usize,
    /// Bytes whose value differs between old and new image.
    pub changed_bytes: usize,
    /// Number of maximal contiguous runs of changed bytes.
    pub changed_extents: usize,
}

impl DeltaStats {
    /// Measures the delta between two images.
    ///
    /// # Panics
    ///
    /// Panics if the images have different lengths.
    pub fn measure(old: &[u8], new: &[u8]) -> Self {
        assert_eq!(old.len(), new.len(), "delta operands must be equal length");
        let mut changed_bytes = 0usize;
        let mut changed_extents = 0usize;
        let mut in_run = false;
        for (a, b) in old.iter().zip(new) {
            if a != b {
                changed_bytes += 1;
                if !in_run {
                    changed_extents += 1;
                    in_run = true;
                }
            } else {
                in_run = false;
            }
        }
        Self {
            block_bytes: old.len(),
            changed_bytes,
            changed_extents,
        }
    }

    /// Fraction of the block that changed, in `[0, 1]`.
    pub fn change_ratio(&self) -> f64 {
        if self.block_bytes == 0 {
            0.0
        } else {
            self.changed_bytes as f64 / self.block_bytes as f64
        }
    }

    /// Whether the write left the block bit-identical.
    pub fn is_unchanged(&self) -> bool {
        self.changed_bytes == 0
    }

    /// Merges two measurements (e.g. accumulating over a whole trace).
    pub fn merge(&mut self, other: &DeltaStats) {
        self.block_bytes += other.block_bytes;
        self.changed_bytes += other.changed_bytes;
        self.changed_extents += other.changed_extents;
    }
}

impl std::fmt::Display for DeltaStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} bytes changed ({:.1}%) in {} extents",
            self.changed_bytes,
            self.block_bytes,
            self.change_ratio() * 100.0,
            self.changed_extents
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn forward_then_apply_recovers_new_image() {
        let old: Vec<u8> = (0..97).map(|i| (i * 13) as u8).collect();
        let mut new = old.clone();
        new[10..20].fill(0);
        new[90] = 0xee;
        let p = forward_parity(&old, &new);
        assert_eq!(apply_parity(&old, &p), new);
    }

    #[test]
    fn apply_in_place_matches_functional_form() {
        let old = vec![5u8; 64];
        let new = vec![9u8; 64];
        let p = forward_parity(&old, &new);
        let mut block = old.clone();
        apply_parity_in_place(&mut block, &p);
        assert_eq!(block, new);
    }

    #[test]
    fn delta_stats_counts_bytes_and_extents() {
        let old = vec![0u8; 100];
        let mut new = old.clone();
        new[5..10].fill(1); // extent 1: 5 bytes
        new[50] = 2; // extent 2: 1 byte
        new[98..100].fill(3); // extent 3: 2 bytes
        let d = DeltaStats::measure(&old, &new);
        assert_eq!(d.changed_bytes, 8);
        assert_eq!(d.changed_extents, 3);
        assert!((d.change_ratio() - 0.08).abs() < 1e-12);
        assert!(!d.is_unchanged());
    }

    #[test]
    fn unchanged_write_has_zero_delta() {
        let img = vec![42u8; 10];
        let d = DeltaStats::measure(&img, &img);
        assert!(d.is_unchanged());
        assert_eq!(d.changed_extents, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut acc = DeltaStats::default();
        acc.merge(&DeltaStats {
            block_bytes: 100,
            changed_bytes: 10,
            changed_extents: 2,
        });
        acc.merge(&DeltaStats {
            block_bytes: 100,
            changed_bytes: 30,
            changed_extents: 1,
        });
        assert_eq!(acc.block_bytes, 200);
        assert_eq!(acc.changed_bytes, 40);
        assert_eq!(acc.changed_extents, 3);
        assert!((acc.change_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_block_ratio_is_zero() {
        assert_eq!(DeltaStats::measure(&[], &[]).change_ratio(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_forward_apply_roundtrip(old in proptest::collection::vec(any::<u8>(), 0..1024),
                                        mask in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let n = old.len().min(mask.len());
            let old = &old[..n];
            let new: Vec<u8> = old.iter().zip(&mask[..n]).map(|(a, m)| a ^ m).collect();
            let p = forward_parity(old, &new);
            prop_assert_eq!(apply_parity(old, &p), new);
        }

        #[test]
        fn prop_parity_nonzero_iff_changed(old in proptest::collection::vec(any::<u8>(), 1..256),
                                           idx in any::<prop::sample::Index>()) {
            let mut new = old.clone();
            let i = idx.index(old.len());
            new[i] ^= 0x01;
            let p = forward_parity(&old, &new);
            let nonzero = p.iter().filter(|&&b| b != 0).count();
            prop_assert_eq!(nonzero, 1);
            let d = DeltaStats::measure(&old, &new);
            prop_assert_eq!(d.changed_bytes, 1);
        }
    }
}
