//! Pure stripe-layout arithmetic: mapping array LBAs to member devices.

use prins_block::Lba;

/// The RAID organization of an array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaidLevel {
    /// Striping, no redundancy.
    Raid0,
    /// N-way mirroring.
    Raid1,
    /// Block striping with a dedicated parity disk (the last member).
    Raid4,
    /// Block striping with left-symmetric rotated parity.
    Raid5,
}

impl RaidLevel {
    /// Minimum number of member devices the level requires.
    pub fn min_members(self) -> usize {
        match self {
            RaidLevel::Raid0 => 1,
            RaidLevel::Raid1 => 2,
            RaidLevel::Raid4 | RaidLevel::Raid5 => 3,
        }
    }

    /// Whether the level maintains parity (and therefore feeds the PRINS
    /// parity tap from its own read-modify-write path).
    pub fn has_parity(self) -> bool {
        matches!(self, RaidLevel::Raid4 | RaidLevel::Raid5)
    }

    /// Number of data blocks per stripe for an `n`-member array.
    pub fn data_per_stripe(self, n: usize) -> usize {
        match self {
            RaidLevel::Raid0 => n,
            RaidLevel::Raid1 => 1,
            RaidLevel::Raid4 | RaidLevel::Raid5 => n - 1,
        }
    }

    /// How many single-member failures the level tolerates.
    pub fn fault_tolerance(self, n: usize) -> usize {
        match self {
            RaidLevel::Raid0 => 0,
            RaidLevel::Raid1 => n - 1,
            RaidLevel::Raid4 | RaidLevel::Raid5 => 1,
        }
    }
}

impl std::fmt::Display for RaidLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RaidLevel::Raid0 => "RAID-0",
            RaidLevel::Raid1 => "RAID-1",
            RaidLevel::Raid4 => "RAID-4",
            RaidLevel::Raid5 => "RAID-5",
        };
        f.write_str(s)
    }
}

/// Where one array block lives physically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// Stripe number (== member LBA for all members of the stripe).
    pub stripe: u64,
    /// Member index holding the data block.
    pub data_member: usize,
    /// LBA on the data member.
    pub member_lba: Lba,
    /// Member index holding the stripe's parity, for parity levels.
    pub parity_member: Option<usize>,
}

/// Stripe layout calculator for an `n`-member array.
///
/// # Example
///
/// ```
/// use prins_raid::{Layout, RaidLevel};
/// use prins_block::Lba;
///
/// let l = Layout::new(RaidLevel::Raid5, 4);
/// let m = l.map(Lba(0));
/// assert_eq!(m.stripe, 0);
/// // Left-symmetric: stripe 0 parity on the last member.
/// assert_eq!(m.parity_member, Some(3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    level: RaidLevel,
    members: usize,
}

impl Layout {
    /// Creates a layout for `members` devices.
    ///
    /// # Panics
    ///
    /// Panics if `members` is below the level's minimum; arrays are
    /// constructed through [`RaidArray::new`](crate::RaidArray::new),
    /// which validates first.
    pub fn new(level: RaidLevel, members: usize) -> Self {
        assert!(
            members >= level.min_members(),
            "{level} requires at least {} members, got {members}",
            level.min_members()
        );
        Self { level, members }
    }

    /// The array's RAID level.
    pub fn level(&self) -> RaidLevel {
        self.level
    }

    /// Number of member devices.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Usable array capacity in blocks, given per-member capacity.
    pub fn array_blocks(&self, member_blocks: u64) -> u64 {
        self.level.data_per_stripe(self.members) as u64 * member_blocks
    }

    /// Member index holding parity for `stripe`, if the level has parity.
    pub fn parity_member(&self, stripe: u64) -> Option<usize> {
        match self.level {
            RaidLevel::Raid4 => Some(self.members - 1),
            // Left-symmetric ("backward parity") rotation, as used by
            // Linux md: parity walks from the last disk downward.
            RaidLevel::Raid5 => Some(self.members - 1 - (stripe % self.members as u64) as usize),
            _ => None,
        }
    }

    /// Maps an array LBA to its physical location.
    pub fn map(&self, lba: Lba) -> Mapping {
        let n = self.members;
        match self.level {
            RaidLevel::Raid0 => Mapping {
                stripe: lba.index() / n as u64,
                data_member: (lba.index() % n as u64) as usize,
                member_lba: Lba(lba.index() / n as u64),
                parity_member: None,
            },
            RaidLevel::Raid1 => Mapping {
                stripe: lba.index(),
                data_member: 0,
                member_lba: lba,
                parity_member: None,
            },
            RaidLevel::Raid4 => {
                let data = (n - 1) as u64;
                let stripe = lba.index() / data;
                Mapping {
                    stripe,
                    data_member: (lba.index() % data) as usize,
                    member_lba: Lba(stripe),
                    parity_member: Some(n - 1),
                }
            }
            RaidLevel::Raid5 => {
                let data = (n - 1) as u64;
                let stripe = lba.index() / data;
                let p = self.parity_member(stripe).expect("raid5 has parity");
                let d = (lba.index() % data) as usize;
                // Left-symmetric: data blocks start just after the parity
                // disk and wrap around.
                let member = (p + 1 + d) % n;
                Mapping {
                    stripe,
                    data_member: member,
                    member_lba: Lba(stripe),
                    parity_member: Some(p),
                }
            }
        }
    }

    /// The member indices holding data for `stripe`, in array order.
    pub fn data_members(&self, stripe: u64) -> Vec<usize> {
        match self.level {
            RaidLevel::Raid0 => (0..self.members).collect(),
            RaidLevel::Raid1 => vec![0],
            RaidLevel::Raid4 => (0..self.members - 1).collect(),
            RaidLevel::Raid5 => {
                let p = self.parity_member(stripe).expect("raid5 has parity");
                (0..self.members - 1)
                    .map(|d| (p + 1 + d) % self.members)
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn raid0_round_robins_members() {
        let l = Layout::new(RaidLevel::Raid0, 3);
        assert_eq!(l.map(Lba(0)).data_member, 0);
        assert_eq!(l.map(Lba(1)).data_member, 1);
        assert_eq!(l.map(Lba(2)).data_member, 2);
        assert_eq!(l.map(Lba(3)).data_member, 0);
        assert_eq!(l.map(Lba(3)).member_lba, Lba(1));
        assert_eq!(l.array_blocks(100), 300);
    }

    #[test]
    fn raid1_maps_identity() {
        let l = Layout::new(RaidLevel::Raid1, 2);
        let m = l.map(Lba(42));
        assert_eq!(m.member_lba, Lba(42));
        assert_eq!(m.parity_member, None);
        assert_eq!(l.array_blocks(100), 100);
    }

    #[test]
    fn raid4_parity_is_always_last_member() {
        let l = Layout::new(RaidLevel::Raid4, 4);
        for lba in 0..30u64 {
            let m = l.map(Lba(lba));
            assert_eq!(m.parity_member, Some(3));
            assert!(m.data_member < 3);
        }
        assert_eq!(l.array_blocks(100), 300);
    }

    #[test]
    fn raid5_rotates_parity_across_all_members() {
        let l = Layout::new(RaidLevel::Raid5, 4);
        let parity_members: Vec<_> = (0..4u64).map(|s| l.parity_member(s).unwrap()).collect();
        assert_eq!(parity_members, vec![3, 2, 1, 0]);
        assert_eq!(l.parity_member(4), Some(3)); // cycle repeats
    }

    #[test]
    fn raid5_data_never_lands_on_parity() {
        let l = Layout::new(RaidLevel::Raid5, 5);
        for lba in 0..200u64 {
            let m = l.map(Lba(lba));
            assert_ne!(Some(m.data_member), m.parity_member, "lba={lba}");
        }
    }

    #[test]
    fn raid5_stripe_members_partition_the_array() {
        let l = Layout::new(RaidLevel::Raid5, 4);
        for stripe in 0..8u64 {
            let mut all = l.data_members(stripe);
            all.push(l.parity_member(stripe).unwrap());
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3], "stripe={stripe}");
        }
    }

    #[test]
    fn min_members_enforced() {
        assert_eq!(RaidLevel::Raid5.min_members(), 3);
        assert_eq!(RaidLevel::Raid1.fault_tolerance(3), 2);
        assert_eq!(RaidLevel::Raid0.fault_tolerance(8), 0);
        assert_eq!(RaidLevel::Raid5.fault_tolerance(8), 1);
    }

    #[test]
    #[should_panic(expected = "requires at least")]
    fn too_few_members_panics() {
        let _ = Layout::new(RaidLevel::Raid5, 2);
    }

    proptest! {
        #[test]
        fn prop_mapping_is_injective(members in 3usize..8, lbas in proptest::collection::hash_set(0u64..10_000, 2..50)) {
            for level in [RaidLevel::Raid0, RaidLevel::Raid4, RaidLevel::Raid5] {
                let l = Layout::new(level, members);
                let mut seen = std::collections::HashSet::new();
                for &lba in &lbas {
                    let m = l.map(Lba(lba));
                    prop_assert!(seen.insert((m.data_member, m.member_lba.index())),
                                 "collision at lba {lba} for {level}");
                }
            }
        }

        #[test]
        fn prop_raid5_data_members_consistent_with_map(members in 3usize..8, lba in 0u64..10_000) {
            let l = Layout::new(RaidLevel::Raid5, members);
            let m = l.map(Lba(lba));
            let dm = l.data_members(m.stripe);
            // The d-th data slot of the stripe is this LBA's member.
            let d = (lba % (members as u64 - 1)) as usize;
            prop_assert_eq!(dm[d], m.data_member);
        }
    }
}
