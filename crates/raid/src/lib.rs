//! Software RAID over [`BlockDevice`]s — the storage substrate whose
//! parity computation PRINS piggybacks on.
//!
//! The paper (§2): *"Consider a RAID 4 or RAID 5 storage system. Upon a
//! write into a data block Ai … the following computation is necessary to
//! update the parity disk: `Pnew = Ainew ⊕ Aiold ⊕ Pold`. PRINS leverages
//! this computation in storage to replicate the first part of the above
//! equation, i.e. `P' = Ainew ⊕ Aiold`."*
//!
//! [`RaidArray`] implements exactly that small-write read-modify-write
//! path for RAID-4 (dedicated parity disk) and RAID-5 (left-symmetric
//! rotated parity), plus RAID-0 striping and RAID-1 mirroring for
//! completeness. Every small write exposes `P'` through a **parity tap**
//! ([`RaidArray::set_parity_tap`]) — the hook the PRINS engine uses to get
//! its replication parity at zero additional cost.
//!
//! The array itself is a [`BlockDevice`], so databases, filesystems and
//! iSCSI targets can run on top of it unchanged. Degraded reads,
//! member-failure handling, full rebuild onto a replacement device, and
//! parity scrubbing are implemented and tested.
//!
//! # Example
//!
//! ```
//! use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
//! use prins_raid::{RaidArray, RaidLevel};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), prins_block::BlockError> {
//! let members: Vec<Arc<dyn BlockDevice>> = (0..4)
//!     .map(|_| Arc::new(MemDevice::new(BlockSize::kb4(), 64)) as Arc<dyn BlockDevice>)
//!     .collect();
//! let raid = RaidArray::new(RaidLevel::Raid5, members)?;
//! // 4 members, one parity per stripe => 3/4 of raw capacity.
//! assert_eq!(raid.geometry().num_blocks(), 3 * 64);
//! raid.write_block(Lba(17), &vec![0x5au8; 4096])?;
//! assert_eq!(raid.read_block_vec(Lba(17))?[0], 0x5a);
//! # Ok(())
//! # }
//! ```

mod array;
mod layout;

pub use array::{ParityTap, RaidArray, ScrubReport};
pub use layout::{Layout, Mapping, RaidLevel};

pub use prins_block::BlockDevice;
