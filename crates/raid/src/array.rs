//! The RAID array device: small-write RMW, degraded reads, rebuild and
//! scrub.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use prins_block::{BlockDevice, BlockError, Geometry, Lba, Result};
use prins_parity::{forward_parity, xor_in_place};

use crate::layout::{Layout, RaidLevel};

/// Callback receiving `(array_lba, parity_delta)` for every small write.
///
/// `parity_delta` is `P' = A_new ⊕ A_old` — the quantity PRINS replicates.
/// The tap fires *after* the write has been applied to the members.
pub type ParityTap = Box<dyn FnMut(Lba, &[u8]) + Send>;

struct Member {
    dev: Arc<dyn BlockDevice>,
    failed: AtomicBool,
}

/// Outcome of a parity scrub pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripes checked.
    pub stripes_checked: u64,
    /// Stripes whose parity did not match the XOR of their data blocks.
    pub mismatched_stripes: Vec<u64>,
}

impl ScrubReport {
    /// Whether the scrub found the array fully consistent.
    pub fn is_clean(&self) -> bool {
        self.mismatched_stripes.is_empty()
    }
}

/// A software RAID array exposing its members as one [`BlockDevice`].
///
/// See the [crate docs](crate) for the role this plays in PRINS. The
/// write path for RAID-4/5 is the classic small-write read-modify-write:
///
/// 1. read `A_old` from the data member and `P_old` from the parity
///    member,
/// 2. compute `P' = A_new ⊕ A_old`,
/// 3. write `A_new`, write `P_new = P_old ⊕ P'`,
/// 4. fire the parity tap with `P'`.
///
/// Single-member failures are tolerated (RAID-1/4/5): reads reconstruct
/// from the surviving members and writes keep parity consistent so a
/// later [`rebuild`](Self::rebuild) restores the lost disk exactly.
pub struct RaidArray {
    layout: Layout,
    members: Vec<Member>,
    geometry: Geometry,
    member_blocks: u64,
    tap: Mutex<Option<ParityTap>>,
}

impl RaidArray {
    /// Assembles an array from identical member devices.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::DeviceFailed`] if fewer members than the
    /// level's minimum are supplied, or if members disagree on geometry.
    pub fn new(level: RaidLevel, members: Vec<Arc<dyn BlockDevice>>) -> Result<Self> {
        if members.len() < level.min_members() {
            return Err(BlockError::DeviceFailed {
                device: format!(
                    "{level} needs >= {} members, got {}",
                    level.min_members(),
                    members.len()
                ),
            });
        }
        let g0 = members[0].geometry();
        for (i, m) in members.iter().enumerate() {
            if m.geometry() != g0 {
                return Err(BlockError::DeviceFailed {
                    device: format!(
                        "member {i} geometry {:?} differs from member 0 {:?}",
                        m.geometry(),
                        g0
                    ),
                });
            }
        }
        let layout = Layout::new(level, members.len());
        let geometry = Geometry::new(g0.block_size(), layout.array_blocks(g0.num_blocks()));
        Ok(Self {
            layout,
            members: members
                .into_iter()
                .map(|dev| Member {
                    dev,
                    failed: AtomicBool::new(false),
                })
                .collect(),
            geometry,
            member_blocks: g0.num_blocks(),
            tap: Mutex::new(None),
        })
    }

    /// The array's stripe layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Installs the parity-delta tap (replacing any previous one).
    ///
    /// Only arrays with parity (RAID-4/5) fire the tap; see
    /// [`RaidLevel::has_parity`].
    pub fn set_parity_tap(&self, tap: ParityTap) {
        *self.tap.lock() = Some(tap);
    }

    /// Removes the parity tap, returning it if present.
    pub fn clear_parity_tap(&self) -> Option<ParityTap> {
        self.tap.lock().take()
    }

    /// Marks member `idx` as failed; subsequent I/O avoids it.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn fail_member(&self, idx: usize) {
        self.members[idx].failed.store(true, Ordering::SeqCst);
    }

    /// Whether member `idx` is currently marked failed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn member_failed(&self, idx: usize) -> bool {
        self.members[idx].failed.load(Ordering::SeqCst)
    }

    /// Number of members currently marked failed.
    pub fn failed_members(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.failed.load(Ordering::SeqCst))
            .count()
    }

    fn member_read(&self, idx: usize, lba: Lba, buf: &mut [u8]) -> Result<()> {
        if self.members[idx].failed.load(Ordering::SeqCst) {
            return Err(BlockError::DeviceFailed {
                device: format!("member {idx} is failed"),
            });
        }
        self.members[idx].dev.read_block(lba, buf)
    }

    fn member_write(&self, idx: usize, lba: Lba, buf: &[u8]) -> Result<()> {
        if self.members[idx].failed.load(Ordering::SeqCst) {
            return Err(BlockError::DeviceFailed {
                device: format!("member {idx} is failed"),
            });
        }
        self.members[idx].dev.write_block(lba, buf)
    }

    /// Reconstructs the block `member_lba` of member `missing` by XORing
    /// every other member of the stripe (valid for RAID-4/5).
    fn reconstruct(&self, missing: usize, member_lba: Lba, out: &mut [u8]) -> Result<()> {
        out.fill(0);
        let mut tmp = self.geometry.block_size().zeroed();
        for idx in 0..self.members.len() {
            if idx == missing {
                continue;
            }
            self.member_read(idx, member_lba, &mut tmp)
                .map_err(|_| BlockError::DeviceFailed {
                    device: format!(
                        "cannot reconstruct member {missing}: member {idx} also unavailable"
                    ),
                })?;
            xor_in_place(out, &tmp);
        }
        Ok(())
    }

    /// Rebuilds the full contents of member `idx` onto `replacement` and
    /// swaps it in as a healthy member.
    ///
    /// # Errors
    ///
    /// * [`BlockError::DeviceFailed`] if the level has no redundancy, the
    ///   replacement geometry differs, or another member fails mid-rebuild.
    pub fn rebuild(&mut self, idx: usize, replacement: Arc<dyn BlockDevice>) -> Result<()> {
        if replacement.geometry() != self.members[idx].dev.geometry() {
            return Err(BlockError::DeviceFailed {
                device: "replacement geometry mismatch".to_string(),
            });
        }
        match self.layout.level() {
            RaidLevel::Raid0 => {
                return Err(BlockError::DeviceFailed {
                    device: "RAID-0 cannot rebuild a lost member".to_string(),
                })
            }
            RaidLevel::Raid1 => {
                // Copy from any healthy mirror.
                let src = (0..self.members.len())
                    .find(|&i| i != idx && !self.members[i].failed.load(Ordering::SeqCst))
                    .ok_or_else(|| BlockError::DeviceFailed {
                        device: "no healthy mirror to rebuild from".to_string(),
                    })?;
                let mut buf = self.geometry.block_size().zeroed();
                for b in 0..self.member_blocks {
                    self.member_read(src, Lba(b), &mut buf)?;
                    replacement.write_block(Lba(b), &buf)?;
                }
            }
            RaidLevel::Raid4 | RaidLevel::Raid5 => {
                let mut buf = self.geometry.block_size().zeroed();
                for b in 0..self.member_blocks {
                    self.reconstruct(idx, Lba(b), &mut buf)?;
                    replacement.write_block(Lba(b), &buf)?;
                }
            }
        }
        self.members[idx] = Member {
            dev: replacement,
            failed: AtomicBool::new(false),
        };
        Ok(())
    }

    /// Verifies parity consistency of every stripe (RAID-4/5) or mirror
    /// agreement (RAID-1).
    ///
    /// # Errors
    ///
    /// Propagates member I/O failures; a *clean* pass with inconsistent
    /// stripes is reported in the [`ScrubReport`], not as an error.
    pub fn scrub(&self) -> Result<ScrubReport> {
        let mut report = ScrubReport::default();
        let bs = self.geometry.block_size();
        match self.layout.level() {
            RaidLevel::Raid0 => {}
            RaidLevel::Raid1 => {
                let mut first = bs.zeroed();
                let mut other = bs.zeroed();
                for b in 0..self.member_blocks {
                    self.member_read(0, Lba(b), &mut first)?;
                    let mut ok = true;
                    for idx in 1..self.members.len() {
                        self.member_read(idx, Lba(b), &mut other)?;
                        if other != first {
                            ok = false;
                        }
                    }
                    report.stripes_checked += 1;
                    if !ok {
                        report.mismatched_stripes.push(b);
                    }
                }
            }
            RaidLevel::Raid4 | RaidLevel::Raid5 => {
                let mut acc = bs.zeroed();
                let mut tmp = bs.zeroed();
                for stripe in 0..self.member_blocks {
                    acc.fill(0);
                    for idx in 0..self.members.len() {
                        self.member_read(idx, Lba(stripe), &mut tmp)?;
                        xor_in_place(&mut acc, &tmp);
                    }
                    report.stripes_checked += 1;
                    if acc.iter().any(|&b| b != 0) {
                        report.mismatched_stripes.push(stripe);
                    }
                }
            }
        }
        Ok(report)
    }

    fn fire_tap(&self, lba: Lba, parity_delta: &[u8]) {
        if let Some(tap) = self.tap.lock().as_mut() {
            tap(lba, parity_delta);
        }
    }

    fn write_parity_level(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        let m = self.layout.map(lba);
        let p = m.parity_member.expect("parity level");
        let bs = self.geometry.block_size();
        let data_failed = self.members[m.data_member].failed.load(Ordering::SeqCst);
        let parity_failed = self.members[p].failed.load(Ordering::SeqCst);
        if data_failed && parity_failed {
            return Err(BlockError::DeviceFailed {
                device: "both data and parity members failed".to_string(),
            });
        }

        // Obtain the old data image (reading or reconstructing).
        let mut old = bs.zeroed();
        if data_failed {
            self.reconstruct(m.data_member, m.member_lba, &mut old)?;
        } else {
            self.member_read(m.data_member, m.member_lba, &mut old)?;
        }

        // P' = new ^ old — the PRINS parity delta.
        let pdelta = forward_parity(&old, buf);

        if !data_failed {
            self.member_write(m.data_member, m.member_lba, buf)?;
        }
        if !parity_failed {
            let mut parity = bs.zeroed();
            self.member_read(p, m.member_lba, &mut parity)?;
            xor_in_place(&mut parity, &pdelta);
            self.member_write(p, m.member_lba, &parity)?;
        }
        self.fire_tap(lba, &pdelta);
        Ok(())
    }
}

impl BlockDevice for RaidArray {
    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.geometry.check_lba(lba)?;
        self.geometry.check_buf(buf)?;
        let m = self.layout.map(lba);
        match self.layout.level() {
            RaidLevel::Raid0 => self.member_read(m.data_member, m.member_lba, buf),
            RaidLevel::Raid1 => {
                let mut last_err = None;
                for idx in 0..self.members.len() {
                    match self.member_read(idx, m.member_lba, buf) {
                        Ok(()) => return Ok(()),
                        Err(e) => last_err = Some(e),
                    }
                }
                Err(last_err.expect("raid1 has at least two members"))
            }
            RaidLevel::Raid4 | RaidLevel::Raid5 => {
                match self.member_read(m.data_member, m.member_lba, buf) {
                    Ok(()) => Ok(()),
                    Err(_) => self.reconstruct(m.data_member, m.member_lba, buf),
                }
            }
        }
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        self.geometry.check_lba(lba)?;
        self.geometry.check_buf(buf)?;
        let m = self.layout.map(lba);
        match self.layout.level() {
            RaidLevel::Raid0 => self.member_write(m.data_member, m.member_lba, buf),
            RaidLevel::Raid1 => {
                let mut wrote = 0usize;
                let mut last_err = None;
                for idx in 0..self.members.len() {
                    match self.member_write(idx, m.member_lba, buf) {
                        Ok(()) => wrote += 1,
                        Err(e) => last_err = Some(e),
                    }
                }
                if wrote == 0 {
                    Err(last_err.expect("raid1 has members"))
                } else {
                    Ok(())
                }
            }
            RaidLevel::Raid4 | RaidLevel::Raid5 => self.write_parity_level(lba, buf),
        }
    }

    fn flush(&self) -> Result<()> {
        for m in &self.members {
            if !m.failed.load(Ordering::SeqCst) {
                m.dev.flush()?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for RaidArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaidArray")
            .field("level", &self.layout.level())
            .field("members", &self.members.len())
            .field("geometry", &self.geometry)
            .field("failed_members", &self.failed_members())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, MemDevice};
    use rand::{RngExt, SeedableRng};

    fn mems(n: usize, blocks: u64) -> Vec<Arc<dyn BlockDevice>> {
        (0..n)
            .map(|_| Arc::new(MemDevice::new(BlockSize::kb4(), blocks)) as Arc<dyn BlockDevice>)
            .collect()
    }

    fn random_writes(raid: &RaidArray, seed: u64, count: usize) -> Vec<(Lba, Vec<u8>)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = raid.geometry().num_blocks();
        let bs = raid.geometry().block_size().bytes();
        let mut writes = Vec::new();
        for _ in 0..count {
            let lba = Lba(rng.random_range(0..n));
            let mut buf = vec![0u8; bs];
            rng.fill_bytes(&mut buf);
            raid.write_block(lba, &buf).unwrap();
            writes.push((lba, buf));
        }
        writes
    }

    #[test]
    fn all_levels_round_trip() {
        for (level, n) in [
            (RaidLevel::Raid0, 3),
            (RaidLevel::Raid1, 2),
            (RaidLevel::Raid4, 4),
            (RaidLevel::Raid5, 5),
        ] {
            let raid = RaidArray::new(level, mems(n, 32)).unwrap();
            let writes = random_writes(&raid, 1, 50);
            let mut latest = std::collections::HashMap::new();
            for (lba, buf) in writes {
                latest.insert(lba, buf);
            }
            for (lba, buf) in latest {
                assert_eq!(raid.read_block_vec(lba).unwrap(), buf, "{level}");
            }
        }
    }

    #[test]
    fn construction_validates_members() {
        assert!(RaidArray::new(RaidLevel::Raid5, mems(2, 8)).is_err());
        let mut mixed = mems(2, 8);
        mixed.push(Arc::new(MemDevice::new(BlockSize::kb4(), 16)) as Arc<dyn BlockDevice>);
        assert!(RaidArray::new(RaidLevel::Raid5, mixed).is_err());
    }

    #[test]
    fn scrub_is_clean_after_random_writes() {
        for level in [RaidLevel::Raid4, RaidLevel::Raid5] {
            let raid = RaidArray::new(level, mems(4, 16)).unwrap();
            random_writes(&raid, 2, 100);
            let report = raid.scrub().unwrap();
            assert!(
                report.is_clean(),
                "{level}: {:?}",
                report.mismatched_stripes
            );
            assert_eq!(report.stripes_checked, 16);
        }
    }

    #[test]
    fn scrub_detects_silent_corruption() {
        let members = mems(4, 8);
        let direct = Arc::clone(&members[1]);
        let raid = RaidArray::new(RaidLevel::Raid5, members).unwrap();
        random_writes(&raid, 3, 40);
        // Corrupt a member block behind the array's back.
        let mut blk = direct.read_block_vec(Lba(3)).unwrap();
        blk[17] ^= 0xff;
        direct.write_block(Lba(3), &blk).unwrap();
        let report = raid.scrub().unwrap();
        assert_eq!(report.mismatched_stripes, vec![3]);
    }

    #[test]
    fn degraded_read_reconstructs_lost_member() {
        for level in [RaidLevel::Raid4, RaidLevel::Raid5] {
            let raid = RaidArray::new(level, mems(4, 16)).unwrap();
            let writes = random_writes(&raid, 4, 80);
            raid.fail_member(1);
            assert_eq!(raid.failed_members(), 1);
            let mut latest = std::collections::HashMap::new();
            for (lba, buf) in writes {
                latest.insert(lba, buf);
            }
            for (lba, buf) in latest {
                assert_eq!(raid.read_block_vec(lba).unwrap(), buf, "{level}");
            }
        }
    }

    #[test]
    fn raid1_survives_all_but_one_mirror() {
        let raid = RaidArray::new(RaidLevel::Raid1, mems(3, 8)).unwrap();
        raid.write_block(Lba(5), &vec![7u8; 4096]).unwrap();
        raid.fail_member(0);
        raid.fail_member(2);
        assert_eq!(raid.read_block_vec(Lba(5)).unwrap(), vec![7u8; 4096]);
        // Writes continue on the surviving mirror.
        raid.write_block(Lba(5), &vec![8u8; 4096]).unwrap();
        assert_eq!(raid.read_block_vec(Lba(5)).unwrap(), vec![8u8; 4096]);
    }

    #[test]
    fn writes_in_degraded_mode_then_rebuild_restores_everything() {
        let mut raid = RaidArray::new(RaidLevel::Raid5, mems(4, 16)).unwrap();
        random_writes(&raid, 5, 60);
        raid.fail_member(2);
        // Keep writing while degraded — including blocks mapped to the
        // failed member.
        let writes = random_writes(&raid, 6, 60);
        let replacement = Arc::new(MemDevice::new(BlockSize::kb4(), 16)) as Arc<dyn BlockDevice>;
        raid.rebuild(2, replacement).unwrap();
        assert_eq!(raid.failed_members(), 0);
        let report = raid.scrub().unwrap();
        assert!(report.is_clean(), "{:?}", report.mismatched_stripes);
        let mut latest = std::collections::HashMap::new();
        for (lba, buf) in writes {
            latest.insert(lba, buf);
        }
        for (lba, buf) in latest {
            assert_eq!(raid.read_block_vec(lba).unwrap(), buf);
        }
    }

    #[test]
    fn raid0_cannot_rebuild() {
        let mut raid = RaidArray::new(RaidLevel::Raid0, mems(3, 8)).unwrap();
        let replacement = Arc::new(MemDevice::new(BlockSize::kb4(), 8)) as Arc<dyn BlockDevice>;
        assert!(raid.rebuild(0, replacement).is_err());
    }

    #[test]
    fn double_failure_on_parity_level_is_fatal_for_writes() {
        let raid = RaidArray::new(RaidLevel::Raid5, mems(4, 16)).unwrap();
        raid.fail_member(0);
        raid.fail_member(1);
        // Find an LBA whose data member is 0 and parity member is 1.
        let mut hit = None;
        for lba in 0..raid.geometry().num_blocks() {
            let m = raid.layout().map(Lba(lba));
            if m.data_member == 0 && m.parity_member == Some(1) {
                hit = Some(Lba(lba));
                break;
            }
        }
        let lba = hit.expect("some stripe has this configuration");
        assert!(raid.write_block(lba, &vec![0u8; 4096]).is_err());
    }

    #[test]
    fn parity_tap_reports_exact_write_delta() {
        let raid = RaidArray::new(RaidLevel::Raid5, mems(4, 16)).unwrap();
        #[allow(clippy::type_complexity)]
        let seen: Arc<Mutex<Vec<(Lba, Vec<u8>)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        raid.set_parity_tap(Box::new(move |lba, pd| {
            sink.lock().push((lba, pd.to_vec()));
        }));

        let old = vec![0u8; 4096];
        let mut newv = old.clone();
        newv[100..300].fill(0xaa);
        raid.write_block(Lba(7), &newv).unwrap();

        let taps = seen.lock();
        assert_eq!(taps.len(), 1);
        assert_eq!(taps[0].0, Lba(7));
        assert_eq!(taps[0].1, forward_parity(&old, &newv));
        // Independently verify P' == new ^ old.
        let expected: Vec<u8> = old.iter().zip(&newv).map(|(a, b)| a ^ b).collect();
        assert_eq!(taps[0].1, expected);
    }

    #[test]
    fn parity_tap_fires_even_when_degraded() {
        let raid = RaidArray::new(RaidLevel::Raid4, mems(4, 8)).unwrap();
        let count = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c = Arc::clone(&count);
        raid.set_parity_tap(Box::new(move |_, _| {
            c.fetch_add(1, Ordering::Relaxed);
        }));
        raid.fail_member(0); // a data member
        random_writes(&raid, 7, 20);
        assert_eq!(count.load(Ordering::Relaxed), 20);
        assert!(raid.clear_parity_tap().is_some());
    }

    #[test]
    fn bounds_checks_apply_to_array_lba_space() {
        let raid = RaidArray::new(RaidLevel::Raid5, mems(4, 8)).unwrap();
        assert_eq!(raid.geometry().num_blocks(), 24);
        assert!(raid.read_block_vec(Lba(24)).is_err());
        assert!(raid.write_block(Lba(24), &vec![0u8; 4096]).is_err());
    }
}
