//! Cheap compressibility probe: estimates the LZSS-compressed size of a
//! buffer as a per-mille ratio without running the compressor and
//! without allocating.
//!
//! LZSS gains come from repeated substrings of at least `MIN_MATCH = 4`
//! bytes. The probe samples up to 64 four-byte grams at even stride and
//! counts how many re-hash into a tiny direct-mapped table already
//! holding the same fingerprint — a proxy for the fraction of the input
//! a greedy matcher would cover with back-references. It is
//! deliberately coarse: the estimate only *seeds* a region's EWMA, and
//! exact ratios observed from real compression runs correct it within a
//! handful of writes.

/// Grams sampled per probe; also the direct-mapped table size.
const PROBE_SLOTS: usize = 64;

/// Estimated compressed/raw size ratio in per-mille (1000 = same size).
///
/// * all-repeated content → well under 500‰;
/// * English-like text → roughly 550–800‰;
/// * random bytes → over 1000‰ (LZSS token overhead *expands*
///   incompressible input, and the estimate reports that honestly so
///   the threshold comparison rejects compression).
///
/// Stack-only: one `[u16; 64]` table, no heap traffic — safe to call on
/// the ≤2-allocations-per-write hot path.
pub fn probe_compressibility_pm(data: &[u8]) -> u32 {
    if data.len() < 8 {
        // Too short for LZSS to ever win; report incompressible.
        return 1020;
    }
    let samples = PROBE_SLOTS.min(data.len() - 3);
    let stride = (data.len() - 3) / samples;
    let mut table = [0u16; PROBE_SLOTS];
    let mut repeats = 0u32;
    for i in 0..samples {
        let at = i * stride;
        let g = u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]]);
        // Fingerprint is forced odd so an empty slot (0) never matches.
        let h = ((g.wrapping_mul(0x9E37_79B1) >> 16) as u16) | 1;
        let slot = (h as usize) & (PROBE_SLOTS - 1);
        if table[slot] == h {
            repeats += 1;
        } else {
            table[slot] = h;
        }
    }
    // Map repeat fraction to an estimated ratio: zero repeats → 1020‰
    // (expansion), every gram repeated → ~120‰. Clamped away from the
    // extremes because the probe is a seed, not a verdict.
    (1020u32.saturating_sub(repeats * 900 / samples as u32)).clamp(100, 1020)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn constant_blocks_read_highly_compressible() {
        let pm = probe_compressibility_pm(&[7u8; 4096]);
        assert!(pm < 400, "constant block probed at {pm}‰");
    }

    #[test]
    fn random_blocks_read_incompressible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut data = vec![0u8; 4096];
        rng.fill_bytes(&mut data);
        let pm = probe_compressibility_pm(&data);
        assert!(pm >= 990, "random block probed at {pm}‰");
    }

    #[test]
    fn repetitive_text_reads_compressible() {
        let text = "the quick brown fox jumps over the lazy dog; "
            .repeat(100)
            .into_bytes();
        let pm = probe_compressibility_pm(&text);
        assert!(pm < 800, "repeated text probed at {pm}‰");
    }

    #[test]
    fn short_inputs_are_incompressible_by_definition() {
        assert_eq!(probe_compressibility_pm(&[]), 1020);
        assert_eq!(probe_compressibility_pm(&[1, 2, 3, 4, 5]), 1020);
    }

    #[test]
    fn probe_orders_random_below_text_below_constant() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut random = vec![0u8; 2048];
        rng.fill_bytes(&mut random);
        let text = "SELECT id, qty FROM stock WHERE w_id = 3;\n"
            .repeat(50)
            .into_bytes();
        let constant = vec![0u8; 2048];
        let (r, t, c) = (
            probe_compressibility_pm(&random),
            probe_compressibility_pm(&text),
            probe_compressibility_pm(&constant),
        );
        assert!(c < t && t < r, "constant {c} < text {t} < random {r}");
    }
}
