//! The adaptive replicator: per-region online strategy selection with
//! counterfactual accounting and workload-phase detection.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::RwLock;

use prins_block::Lba;
use prins_compress::{Codec, Lzss};
use prins_obs::Registry;
use prins_parity::{encode_varint, SparseCodec};
use prins_repl::{CompressedReplicator, PrinsReplicator, Replicator, TraditionalReplicator};

use crate::counters::{CounterfactualMode, PolicyCounters};
use crate::probe::probe_compressibility_pm;
use crate::region::{RegionSlot, RegionTable};
use crate::{PolicyConfig, Strategy};

/// Encoded length of a varint, for header-size arithmetic.
fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// `n * 1000 / d` as a clamped per-mille ratio; empty denominators read
/// as incompressible.
fn ratio_pm(n: usize, d: usize) -> u32 {
    match n.saturating_mul(1000).checked_div(d) {
        Some(pm) => pm.min(2000) as u32,
        None => 1020,
    }
}

/// Workload phase classified from the recent decision mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadPhase {
    /// ≥ 75% of recent writes were parity-shaped (small deltas): deep
    /// batching pays, payloads are tiny.
    SmallDelta,
    /// No clear majority.
    Mixed,
    /// ≥ 75% of recent writes shipped (near-)full blocks: payloads are
    /// large, coalescing repeated blocks saves whole images.
    Churn,
}

impl WorkloadPhase {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadPhase::SmallDelta => "small-delta",
            WorkloadPhase::Mixed => "mixed",
            WorkloadPhase::Churn => "churn",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => WorkloadPhase::SmallDelta,
            2 => WorkloadPhase::Churn,
            _ => WorkloadPhase::Mixed,
        }
    }
}

/// Classifies the global write mix over fixed windows, with two-window
/// hysteresis so one odd window cannot flap the engine's tuning.
pub struct PhaseDetector {
    window: u32,
    writes: AtomicU32,
    parityish: AtomicU32,
    current: AtomicU8,
    pending: AtomicU8,
}

impl PhaseDetector {
    /// A detector classifying every `window` decisions (min 1).
    pub fn new(window: u32) -> Self {
        Self {
            window: window.max(1),
            writes: AtomicU32::new(0),
            parityish: AtomicU32::new(0),
            current: AtomicU8::new(WorkloadPhase::Mixed as u8),
            pending: AtomicU8::new(WorkloadPhase::Mixed as u8),
        }
    }

    /// Feeds one decision; returns the new phase when a transition
    /// commits (the same classification in two consecutive windows,
    /// differing from the current phase).
    pub fn on_decision(&self, parity_family: bool) -> Option<WorkloadPhase> {
        if parity_family {
            self.parityish.fetch_add(1, Ordering::Relaxed);
        }
        let n = self.writes.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        if !n.is_multiple_of(self.window) {
            return None;
        }
        let p = self.parityish.swap(0, Ordering::Relaxed);
        let class = if p * 4 >= self.window * 3 {
            WorkloadPhase::SmallDelta
        } else if p * 4 <= self.window {
            WorkloadPhase::Churn
        } else {
            WorkloadPhase::Mixed
        };
        let confirmed = self.pending.swap(class as u8, Ordering::Relaxed) == class as u8;
        if confirmed && self.current.swap(class as u8, Ordering::Relaxed) != class as u8 {
            return Some(class);
        }
        None
    }

    /// The committed phase.
    pub fn current(&self) -> WorkloadPhase {
        WorkloadPhase::from_u8(self.current.load(Ordering::Relaxed))
    }
}

/// Everything the accounting pass needs to know about one decision.
struct WriteOutcome {
    strategy: Strategy,
    explored: bool,
    wire: usize,
    full: usize,
    shipped: u64,
    /// Exact compressed/full ratio, when this write ran the block
    /// compressor.
    full_pm_sample: Option<u32>,
    /// Exact compressed/parity ratio, when this write ran LZSS over the
    /// parity stream.
    delta_pm_sample: Option<u32>,
    /// Exact bytes static `Compressed` would have shipped, when known.
    exact_compressed: Option<u64>,
    /// Exact bytes static `PrinsCompressed` would have shipped.
    exact_prins_lzss: Option<u64>,
}

/// A [`Replicator`] that picks among the four static strategies per
/// write, per LBA region — see the crate docs for the signal set.
///
/// Thread-safe behind `Arc<dyn Replicator>`: all learned state lives in
/// relaxed atomics, and the parity/full decision for each write comes
/// from that write's own exact scan, so races only blur the moving
/// averages, never correctness.
pub struct AdaptiveReplicator {
    cfg: PolicyConfig,
    table: RegionTable,
    counters: PolicyCounters,
    phase: PhaseDetector,
    #[allow(clippy::type_complexity)]
    hook: RwLock<Option<Box<dyn Fn(WorkloadPhase) + Send + Sync>>>,
    codec: SparseCodec,
    lzss: Lzss,
    prins: PrinsReplicator,
    prins_lzss: PrinsReplicator,
    compressed: CompressedReplicator,
}

impl AdaptiveReplicator {
    /// An adaptive replicator with detached (unregistered) counters.
    pub fn new(cfg: PolicyConfig) -> Self {
        Self::with_counters(cfg, PolicyCounters::detached())
    }

    /// An adaptive replicator whose counters live in `registry` under
    /// `policy_*` names.
    pub fn with_registry(cfg: PolicyConfig, registry: &Registry) -> Self {
        Self::with_counters(cfg, PolicyCounters::registered(registry))
    }

    fn with_counters(cfg: PolicyConfig, counters: PolicyCounters) -> Self {
        Self {
            table: RegionTable::new(cfg.regions, cfg.region_shift),
            phase: PhaseDetector::new(cfg.phase_window),
            counters,
            hook: RwLock::new(None),
            codec: SparseCodec::default(),
            // Match CompressedReplicator::default() so a Compressed
            // pick ships byte-for-byte what the static strategy would.
            lzss: Lzss::default(),
            prins: PrinsReplicator::new(),
            prins_lzss: PrinsReplicator::with_parity_compression(),
            compressed: CompressedReplicator::default(),
            cfg,
        }
    }

    /// The decision and counterfactual counters.
    pub fn counters(&self) -> &PolicyCounters {
        &self.counters
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// The committed workload phase.
    pub fn phase(&self) -> WorkloadPhase {
        self.phase.current()
    }

    /// Installs the phase-transition hook (the engine points this at its
    /// live pipeline tuning). Called at most once per committed
    /// transition, from whichever writer thread crossed the window.
    pub fn set_phase_hook(&self, hook: impl Fn(WorkloadPhase) + Send + Sync + 'static) {
        *self.hook.write().expect("phase hook lock") = Some(Box::new(hook));
    }

    fn header_len(lba: Lba) -> usize {
        1 + varint_len(lba.index())
    }

    /// Picks a strategy for this write. `wire` is the exact parity wire
    /// length from the caller's scan; ground truth for parity-vs-full.
    fn decide(
        &self,
        lba: Lba,
        new: &[u8],
        segs: usize,
        wire: usize,
    ) -> (&RegionSlot, Strategy, bool) {
        let full = new.len();
        let (slot, fresh) = self.table.slot(lba.index());
        if fresh {
            // First contact (or a direct-mapped takeover): seed both
            // compressibility estimates from the cheap content probe.
            // It is only a proxy for the parity stream's redundancy,
            // but an optimistic prior is byte-safe: a mispredicted
            // compressing pick rescues itself to the smallest plain
            // encoding (see `encode_write_into`), costing CPU, never
            // wire bytes, and the exact ratio it observes corrects the
            // estimate.
            let seed = probe_compressibility_pm(new);
            slot.clear_sampled();
            slot.writes.store(0, Ordering::Relaxed);
            slot.change_pm
                .store(ratio_pm(wire, full), Ordering::Relaxed);
            slot.segments
                .store(segs.min(u32::MAX as usize) as u32, Ordering::Relaxed);
            slot.delta_c_pm.store(seed, Ordering::Relaxed);
            slot.full_c_pm.store(seed, Ordering::Relaxed);
        }
        let nth = slot.writes.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        slot.ewma(&slot.change_pm, ratio_pm(wire, full), self.cfg.ewma_shift);
        slot.ewma(
            &slot.segments,
            segs.min(u32::MAX as usize) as u32,
            self.cfg.ewma_shift,
        );
        let explore_due = self.cfg.explore_interval > 0 && nth % self.cfg.explore_interval == 0;

        // Estimated payload-body bytes per strategy (the tag+lba header
        // is common to all four and cancels out). The plain image —
        // parity or full, whichever this write's exact scan says is
        // smaller — is the baseline; a compressing variant replaces it
        // only when its estimate clears the configured margin, so
        // marginal content does not flap onto a CPU-burning pick.
        let plain = if wire < full {
            (Strategy::Parity, wire)
        } else {
            (Strategy::Full, full)
        };
        let budget = plain.1 as u64 * u64::from(self.cfg.compress_threshold_pm) / 1000;
        let mut best = plain;
        // Below min_compress_len the LZSS token overhead cannot win;
        // skipping the estimate keeps tiny OLTP writes on the fused,
        // zero-alloc parity path. A parity stream that is not smaller
        // than the block is dominated by the full-image candidates.
        if wire < full && wire >= self.cfg.min_compress_len {
            let delta_c = slot.delta_c_pm.load(Ordering::Relaxed) as usize;
            let est = varint_len(wire as u64) + wire * delta_c / 1000;
            if est as u64 <= budget && est < best.1 {
                best = (Strategy::ParityCompressed, est);
            }
        }
        if full >= self.cfg.min_compress_len {
            let full_c = slot.full_c_pm.load(Ordering::Relaxed) as usize;
            let est = varint_len(full as u64) + full * full_c / 1000;
            if est as u64 <= budget && est < best.1 {
                best = (Strategy::Compressed, est);
            }
        }
        // Compressibility estimates only refresh when a compressor
        // actually runs, so a region that settled on a plain pick is
        // revisited on the exploration schedule — that is how drift
        // toward compressible content is re-detected — and *forced*
        // while the plain family's estimate has never seen an exact
        // sample: the content probe cannot see the parity stream's
        // redundancy (merged-segment gap fill, structured fields), so
        // ground truth is worth one compressor run per region. Both
        // compressed encoders fall back to the plain image when they
        // lose, so a probe costs CPU, never wire bytes.
        let (strategy, explored) = match best.0 {
            Strategy::Parity
                if (explore_due || !slot.is_sampled(RegionSlot::DELTA_SAMPLED))
                    && wire >= self.cfg.min_compress_len =>
            {
                (Strategy::ParityCompressed, true)
            }
            Strategy::Full
                if (explore_due || !slot.is_sampled(RegionSlot::FULL_SAMPLED))
                    && full >= self.cfg.min_compress_len =>
            {
                (Strategy::Compressed, true)
            }
            chosen => (chosen, false),
        };
        // Heavy-tail override: a long parity wire concentrates more
        // bytes than dozens of ordinary writes, and the region EWMAs —
        // averages over those ordinary writes — mispredict exactly such
        // outliers. Run the real compression chain and ship the exact
        // minimum (the encoder and the rescue below ship whichever of
        // compressed-parity / plain parity / compressed-full / raw full
        // is smallest); the compressor run is cheap relative to the
        // payload.
        if wire < full && wire >= self.cfg.exact_trial_len {
            return (slot, Strategy::ParityCompressed, explored);
        }
        (slot, strategy, explored)
    }

    /// Books counters, corrects EWMAs with exact observations, and runs
    /// phase detection. Allocation-free except in
    /// [`CounterfactualMode::Exact`].
    fn account(&self, lba: Lba, old: &[u8], new: &[u8], slot: &RegionSlot, o: WriteOutcome) {
        if let Some(pm) = o.full_pm_sample {
            slot.ewma(&slot.full_c_pm, pm, self.cfg.ewma_shift);
            slot.mark_sampled(RegionSlot::FULL_SAMPLED);
        }
        if let Some(pm) = o.delta_pm_sample {
            slot.ewma(&slot.delta_c_pm, pm, self.cfg.ewma_shift);
            slot.mark_sampled(RegionSlot::DELTA_SAMPLED);
        }

        let c = &self.counters;
        c.writes.inc();
        match o.strategy {
            Strategy::Full => c.pick_full.inc(),
            Strategy::Compressed => c.pick_compressed.inc(),
            Strategy::Parity => c.pick_parity.inc(),
            Strategy::ParityCompressed => c.pick_parity_lzss.inc(),
        }
        if o.explored {
            c.explores.inc();
        }
        c.shipped_bytes.add(o.shipped);

        match self.cfg.counterfactual {
            CounterfactualMode::Off => {}
            CounterfactualMode::Estimate => {
                let hdr = Self::header_len(lba) as u64;
                let full = o.full as u64;
                let wire = o.wire as u64;
                let full_pm = u64::from(slot.full_c_pm.load(Ordering::Relaxed));
                let delta_pm = u64::from(slot.delta_c_pm.load(Ordering::Relaxed));
                let cf_trad = hdr + full;
                // Static PRINS falls back to a full image when the
                // parity would not be smaller.
                let cf_prins = hdr + wire.min(full);
                // Static Compressed never falls back; its estimate may
                // legitimately exceed the full block.
                let cf_comp = o
                    .exact_compressed
                    .unwrap_or_else(|| hdr + varint_len(full) as u64 + full * full_pm / 1000);
                let cf_plzss = o.exact_prins_lzss.unwrap_or_else(|| {
                    if wire < full {
                        hdr + wire.min(varint_len(wire) as u64 + wire * delta_pm / 1000)
                    } else {
                        hdr + full
                    }
                });
                self.book_counterfactuals(cf_trad, cf_comp, cf_prins, cf_plzss, o.shipped);
            }
            CounterfactualMode::Exact => {
                let run = |r: &dyn Replicator| r.encode_write(lba, old, new).len() as u64;
                self.book_counterfactuals(
                    run(&TraditionalReplicator),
                    o.exact_compressed.unwrap_or_else(|| run(&self.compressed)),
                    run(&self.prins),
                    o.exact_prins_lzss.unwrap_or_else(|| run(&self.prins_lzss)),
                    o.shipped,
                );
            }
        }

        if let Some(phase) = self.phase.on_decision(o.strategy.is_parity_family()) {
            c.phase_switches.inc();
            if let Ok(hook) = self.hook.read() {
                if let Some(f) = hook.as_ref() {
                    f(phase);
                }
            }
        }
    }

    fn book_counterfactuals(&self, trad: u64, comp: u64, prins: u64, plzss: u64, shipped: u64) {
        let c = &self.counters;
        c.cf_traditional_bytes.add(trad);
        c.cf_compressed_bytes.add(comp);
        c.cf_prins_bytes.add(prins);
        c.cf_prins_lzss_bytes.add(plzss);
        let oracle = trad.min(comp).min(prins).min(plzss);
        c.regret_bytes.add(shipped.saturating_sub(oracle));
    }
}

impl Replicator for AdaptiveReplicator {
    fn encode_write(&self, lba: Lba, old: &[u8], new: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(new.len() + 16);
        self.encode_write_into(lba, old, new, &mut out);
        out
    }

    fn encode_write_into(&self, lba: Lba, old: &[u8], new: &[u8], out: &mut Vec<u8>) {
        debug_assert_eq!(old.len(), new.len(), "images of one device block");
        let base = out.len();
        let full = new.len();
        let (segs, wire) = self.codec.delta_wire_info(old, new);
        let (slot, decided, explored) = self.decide(lba, new, segs, wire);

        let mut strategy = decided;
        let mut full_pm_sample = None;
        let mut delta_pm_sample = None;
        let mut exact_compressed = None;
        let mut exact_prins_lzss = None;
        match decided {
            Strategy::Parity => {
                // The fused zero-alloc path, byte-identical to
                // PrinsReplicator's.
                out.push(2); // PayloadBody::Parity tag
                encode_varint(out, lba.index());
                self.codec.encode_delta_into(old, new, out);
            }
            Strategy::Full => {
                out.push(0); // PayloadBody::Full tag
                encode_varint(out, lba.index());
                out.extend_from_slice(new);
            }
            Strategy::Compressed => {
                let packed = self.lzss.compress(new);
                full_pm_sample = Some(ratio_pm(packed.len(), full));
                exact_compressed =
                    Some((Self::header_len(lba) + varint_len(full as u64) + packed.len()) as u64);
                let comp_body = varint_len(full as u64) + packed.len();
                if comp_body < full && (wire >= full || comp_body < wire) {
                    out.push(1); // PayloadBody::Compressed tag
                    encode_varint(out, lba.index());
                    encode_varint(out, full as u64);
                    out.extend_from_slice(&packed);
                } else if wire < full {
                    // Misprediction rescue: the content did not
                    // compress below this write's parity after all.
                    out.push(2);
                    encode_varint(out, lba.index());
                    self.codec.encode_delta_into(old, new, out);
                    strategy = Strategy::Parity;
                } else {
                    // Never worse than a raw full image on any write —
                    // unlike static Compressed, which can expand.
                    out.push(0);
                    encode_varint(out, lba.index());
                    out.extend_from_slice(new);
                    strategy = Strategy::Full;
                }
            }
            Strategy::ParityCompressed => {
                // Delegate: the PRINS encoder already holds the
                // parity-vs-compressed-vs-full fallback chain.
                self.prins_lzss.encode_write_into(lba, old, new, out);
                let shipped = out.len() - base;
                exact_prins_lzss = Some(shipped as u64);
                delta_pm_sample = match out[base] {
                    // Compression won: exact ratio of the shipped body.
                    3 => {
                        let body = shipped - Self::header_len(lba) - varint_len(wire as u64);
                        Some(ratio_pm(body, wire))
                    }
                    // Fell back to plain parity: compression lost — but
                    // only count that against the region when the wire
                    // was big enough for compression to have had room.
                    // Near min_compress_len the token overhead always
                    // wins, and a loss there says nothing about the
                    // order-of-magnitude-larger deltas this region may
                    // also carry; recording nothing leaves the slot
                    // unsampled, so the next sizable write runs the
                    // (byte-free) trial at a size that is informative.
                    _ if wire >= self.cfg.min_compress_len * 8 => Some(1020),
                    _ => None,
                };
                // Misprediction rescue: the parity stream disappointed,
                // but the block content itself still estimates smaller
                // than what's in the buffer (the text-churn shape:
                // dense-but-compressible rewrites whose parity is
                // noise). One extra compressor run, only on the miss —
                // or unconditionally while `full_c_pm` is still an
                // unsampled probe seed, since a guess too pessimistic
                // to clear `est < shipped` would otherwise lock the
                // region out of ever discovering the truth.
                if full >= self.cfg.min_compress_len {
                    let full_c = slot.full_c_pm.load(Ordering::Relaxed) as usize;
                    let est =
                        Self::header_len(lba) + varint_len(full as u64) + full * full_c / 1000;
                    if est < shipped
                        || !slot.is_sampled(RegionSlot::FULL_SAMPLED)
                        || wire >= self.cfg.exact_trial_len
                    {
                        let packed = self.lzss.compress(new);
                        full_pm_sample = Some(ratio_pm(packed.len(), full));
                        let candidate =
                            Self::header_len(lba) + varint_len(full as u64) + packed.len();
                        exact_compressed = Some(candidate as u64);
                        if candidate < shipped {
                            out.truncate(base);
                            out.push(1);
                            encode_varint(out, lba.index());
                            encode_varint(out, full as u64);
                            out.extend_from_slice(&packed);
                            strategy = Strategy::Compressed;
                        }
                    }
                }
            }
        }

        self.account(
            lba,
            old,
            new,
            slot,
            WriteOutcome {
                strategy,
                explored,
                wire,
                full,
                shipped: (out.len() - base) as u64,
                full_pm_sample,
                delta_pm_sample,
                exact_compressed,
                exact_prins_lzss,
            },
        );
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockDevice, BlockSize, MemDevice};
    use prins_repl::ReplicaApplier;
    use rand::{RngExt, SeedableRng};
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    fn exact_cfg() -> PolicyConfig {
        PolicyConfig {
            counterfactual: CounterfactualMode::Exact,
            ..PolicyConfig::default()
        }
    }

    #[test]
    fn tiny_deltas_pick_parity_and_apply_correctly() {
        let adaptive = AdaptiveReplicator::new(PolicyConfig::default());
        let replica = MemDevice::new(BlockSize::kb4(), 4);
        let mut applier = ReplicaApplier::new(&replica);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut old = vec![0u8; 4096];
        rng.fill_bytes(&mut old);
        replica.write_block(Lba(1), &old).unwrap();
        for i in 0..10u8 {
            let mut new = old.clone();
            new[(i as usize) * 31] ^= 0x5a;
            let wire = adaptive.encode_write(Lba(1), &old, &new);
            assert!(wire.len() < 32, "tiny delta shipped {} bytes", wire.len());
            applier.apply(&wire).unwrap();
            assert_eq!(replica.read_block_vec(Lba(1)).unwrap(), new);
            old = new;
        }
        assert_eq!(adaptive.counters().pick_parity.get(), 10);
        assert_eq!(adaptive.counters().writes.get(), 10);
    }

    #[test]
    fn incompressible_churn_picks_full_not_compressed() {
        let adaptive = AdaptiveReplicator::new(PolicyConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut old = vec![0u8; 4096];
        rng.fill_bytes(&mut old);
        for _ in 0..10 {
            let mut new = vec![0u8; 4096];
            rng.fill_bytes(&mut new);
            let wire = adaptive.encode_write(Lba(7), &old, &new);
            // Full image + small header; never an expanded LZSS stream.
            assert!(wire.len() <= 4096 + 8, "shipped {}", wire.len());
            old = new;
        }
        assert_eq!(adaptive.counters().pick_full.get(), 10);
        assert_eq!(adaptive.counters().pick_compressed.get(), 0);
    }

    #[test]
    fn compressible_churn_picks_compressed_immediately() {
        let adaptive = AdaptiveReplicator::new(exact_cfg());
        let text: Vec<u8> = "order 17: widgets to warehouse 3; "
            .bytes()
            .cycle()
            .take(4096)
            .collect();
        let mut old = vec![0u8; 4096];
        for i in 0..10u8 {
            // XOR with a per-write constant: every byte changes (full
            // churn, parity is dense) while the LZSS match structure of
            // the text is preserved (XOR is a bijection on grams).
            let new: Vec<u8> = text.iter().map(|b| b ^ (i + 1)).collect();
            let wire = adaptive.encode_write(Lba(9), &old, &new);
            assert!(
                wire.len() < 2048,
                "text block should compress well, shipped {}",
                wire.len()
            );
            old = new;
        }
        let c = adaptive.counters();
        assert!(c.pick_compressed.get() >= 9, "{}", c.pick_compressed.get());
        // Strictly beats shipping full images for this region.
        assert!(c.shipped_bytes.get() < c.cf_traditional_bytes.get() / 2);
    }

    #[test]
    fn exploration_redetects_a_drifting_region() {
        let adaptive = AdaptiveReplicator::new(PolicyConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut old = vec![0u8; 4096];
        rng.fill_bytes(&mut old);
        // Phase A: incompressible churn locks the region onto Full.
        for _ in 0..70 {
            let mut new = vec![0u8; 4096];
            rng.fill_bytes(&mut new);
            adaptive.encode_write(Lba(3), &old, &new);
            old = new;
        }
        // Only the exploration schedule may have tried compression so
        // far (once, at the 64th write), and it must have lost.
        assert!(
            adaptive.counters().pick_compressed.get() <= adaptive.counters().explores.get(),
            "steady-state picks on random churn must be Full"
        );
        let full_before = adaptive.counters().pick_full.get();
        // Phase B: the region's content turns maximally compressible
        // (still full-block churn). Only the exploration schedule can
        // discover this.
        for i in 0..200u8 {
            let new = vec![i.wrapping_add(1); 4096];
            adaptive.encode_write(Lba(3), &old, &new);
            old = new;
        }
        let c = adaptive.counters();
        assert!(c.explores.get() >= 1, "exploration never fired");
        assert!(
            c.pick_compressed.get() >= 100,
            "region never re-detected: {} compressed picks, {} full picks",
            c.pick_compressed.get(),
            c.pick_full.get() - full_before,
        );
    }

    /// Three-zone hostile mix: no static strategy wins everywhere, the
    /// adaptive policy must strictly beat all four on total bytes.
    #[test]
    fn adaptive_beats_every_static_on_a_hostile_mix() {
        let adaptive = AdaptiveReplicator::new(exact_cfg());
        let replica = MemDevice::new(BlockSize::kb4(), 512);
        let mut applier = ReplicaApplier::new(&replica);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);

        let mut images: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut base = vec![0u8; 4096];
        rng.fill_bytes(&mut base);
        for round in 0..50u32 {
            for zone in 0..3u64 {
                let lba = Lba(zone * 100);
                let old = images
                    .entry(lba.index())
                    .or_insert_with(|| {
                        replica.write_block(lba, &base).unwrap();
                        base.clone()
                    })
                    .clone();
                let new = match zone {
                    // Incompressible, small delta: parity territory.
                    0 => {
                        let mut n = old.clone();
                        for k in 0..8 {
                            n[(round as usize * 97 + k * 13) % 4096] ^= 0xa5;
                        }
                        n
                    }
                    // Compressible full rewrite: compression territory.
                    1 => format!("log line {round}: status ok, latency 3ms \n")
                        .bytes()
                        .cycle()
                        .take(4096)
                        .collect(),
                    // Incompressible full rewrite: raw-full territory.
                    _ => {
                        let mut n = vec![0u8; 4096];
                        rng.fill_bytes(&mut n);
                        n
                    }
                };
                let wire = adaptive.encode_write(lba, &old, &new);
                applier.apply(&wire).unwrap();
                assert_eq!(replica.read_block_vec(lba).unwrap(), new, "zone {zone}");
                images.insert(lba.index(), new);
            }
        }

        let c = adaptive.counters();
        let shipped = c.shipped_bytes.get();
        for (name, cf) in [
            ("traditional", c.cf_traditional_bytes.get()),
            ("compressed", c.cf_compressed_bytes.get()),
            ("prins", c.cf_prins_bytes.get()),
            ("prins+lzss", c.cf_prins_lzss_bytes.get()),
        ] {
            assert!(
                shipped < cf,
                "adaptive ({shipped}) must strictly beat static {name} ({cf})"
            );
        }
    }

    #[test]
    fn phase_transitions_fire_the_hook_with_hysteresis() {
        let adaptive = AdaptiveReplicator::new(PolicyConfig::default());
        let seen: Arc<Mutex<Vec<WorkloadPhase>>> = Arc::default();
        let sink = Arc::clone(&seen);
        adaptive.set_phase_hook(move |p| sink.lock().unwrap().push(p));
        assert_eq!(adaptive.phase(), WorkloadPhase::Mixed);

        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut old = vec![0u8; 4096];
        rng.fill_bytes(&mut old);
        // 192 small-delta writes: two full windows agree → SmallDelta.
        for i in 0..192usize {
            let mut new = old.clone();
            new[i % 4096] ^= 1;
            adaptive.encode_write(Lba(1), &old, &new);
            old = new;
        }
        assert_eq!(adaptive.phase(), WorkloadPhase::SmallDelta);
        // 192 churn writes: transition to Churn after two windows.
        for _ in 0..192 {
            let mut new = vec![0u8; 4096];
            rng.fill_bytes(&mut new);
            adaptive.encode_write(Lba(1), &old, &new);
            old = new;
        }
        assert_eq!(adaptive.phase(), WorkloadPhase::Churn);
        let seen = seen.lock().unwrap();
        assert_eq!(
            seen.as_slice(),
            [WorkloadPhase::SmallDelta, WorkloadPhase::Churn],
            "exactly one committed transition per sustained shift"
        );
        assert_eq!(adaptive.counters().phase_switches.get(), 2);
    }

    #[test]
    fn one_noisy_window_does_not_flap_the_phase() {
        let det = PhaseDetector::new(4);
        // Two small-delta windows commit SmallDelta.
        let mut switches = vec![];
        for _ in 0..8 {
            if let Some(p) = det.on_decision(true) {
                switches.push(p);
            }
        }
        assert_eq!(switches, [WorkloadPhase::SmallDelta]);
        // One churn window, then back to small deltas: no flap.
        for _ in 0..4 {
            assert_eq!(det.on_decision(false), None);
        }
        for _ in 0..8 {
            assert!(det.on_decision(true).is_none());
        }
        assert_eq!(det.current(), WorkloadPhase::SmallDelta);
    }

    proptest::proptest! {
        /// Two fresh instances fed the same write sequence — one through
        /// `encode_write`, one through `encode_write_into` — must stay
        /// byte-identical forever: the pooled hot path may never change
        /// what goes on the wire, even though every call mutates
        /// classifier state.
        #[test]
        fn prop_stateful_encode_paths_stay_byte_identical(
            writes in proptest::collection::vec(
                (0u64..4, proptest::collection::vec(proptest::prelude::any::<u8>(), 128)),
                1..24,
            ),
        ) {
            let a = AdaptiveReplicator::new(PolicyConfig::default());
            let b = AdaptiveReplicator::new(PolicyConfig::default());
            let mut images: HashMap<u64, Vec<u8>> = HashMap::new();
            for (lba, new) in &writes {
                let old = images.entry(*lba).or_insert_with(|| vec![0u8; 128]).clone();
                let want = a.encode_write(Lba(*lba), &old, new);
                let mut got = vec![0xEEu8]; // pre-existing byte must survive
                b.encode_write_into(Lba(*lba), &old, new, &mut got);
                proptest::prop_assert_eq!(&got[..1], &[0xEEu8][..]);
                proptest::prop_assert_eq!(&got[1..], want.as_slice());
                // And every frame must parse.
                proptest::prop_assert!(prins_repl::Payload::from_bytes(&want).is_ok());
                images.insert(*lba, new.clone());
            }
            proptest::prop_assert_eq!(a.counters().writes.get(), writes.len() as u64);
        }
    }
}
