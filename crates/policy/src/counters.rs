//! Decision accounting: what the policy picked, what it shipped, and
//! what every *other* strategy would have shipped (counterfactuals).

use std::sync::Arc;

use prins_obs::{Counter, Registry};

/// How counterfactual byte counts are produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CounterfactualMode {
    /// No counterfactual accounting (decision counters only).
    Off,
    /// Allocation-free estimates: exact for the strategies whose cost is
    /// knowable from the scan (`Full`, `Parity`) or from the bytes
    /// actually shipped; EWMA-estimated for the compressors when they
    /// were not the pick. Safe on the hot path.
    #[default]
    Estimate,
    /// Run every non-chosen strategy's real encoder per write. Exact but
    /// allocating and CPU-heavy — for offline ablations only.
    Exact,
}

/// The policy engine's observable state, exported through `prins-obs`.
///
/// `shipped_bytes` vs the four `cf_*_bytes` counters is the whole
/// adaptive-vs-static story: after any run,
/// `min(cf_*) - shipped = bytes saved over the best static policy`
/// (negative only if the policy misjudged, which `regret_bytes`
/// accumulates per write rather than letting wins hide losses).
pub struct PolicyCounters {
    /// Writes decided.
    pub writes: Arc<Counter>,
    /// Picks per strategy.
    pub pick_full: Arc<Counter>,
    pub pick_compressed: Arc<Counter>,
    pub pick_parity: Arc<Counter>,
    pub pick_parity_lzss: Arc<Counter>,
    /// Decisions forced by the exploration schedule.
    pub explores: Arc<Counter>,
    /// Workload-phase transitions fired.
    pub phase_switches: Arc<Counter>,
    /// Wire bytes actually shipped.
    pub shipped_bytes: Arc<Counter>,
    /// Wire bytes each static policy would have shipped.
    pub cf_traditional_bytes: Arc<Counter>,
    pub cf_compressed_bytes: Arc<Counter>,
    pub cf_prins_bytes: Arc<Counter>,
    pub cf_prins_lzss_bytes: Arc<Counter>,
    /// Per-write `shipped - min(counterfactuals)`, clamped at zero —
    /// the bytes a clairvoyant per-write oracle would have saved.
    pub regret_bytes: Arc<Counter>,
}

impl PolicyCounters {
    /// Counters registered under `policy_*` in `registry`.
    pub fn registered(registry: &Registry) -> Self {
        Self {
            writes: registry.counter("policy_writes"),
            pick_full: registry.counter("policy_pick_full"),
            pick_compressed: registry.counter("policy_pick_compressed"),
            pick_parity: registry.counter("policy_pick_parity"),
            pick_parity_lzss: registry.counter("policy_pick_parity_lzss"),
            explores: registry.counter("policy_explores"),
            phase_switches: registry.counter("policy_phase_switches"),
            shipped_bytes: registry.counter("policy_shipped_bytes"),
            cf_traditional_bytes: registry.counter("policy_cf_traditional_bytes"),
            cf_compressed_bytes: registry.counter("policy_cf_compressed_bytes"),
            cf_prins_bytes: registry.counter("policy_cf_prins_bytes"),
            cf_prins_lzss_bytes: registry.counter("policy_cf_prins_lzss_bytes"),
            regret_bytes: registry.counter("policy_regret_bytes"),
        }
    }

    /// Standalone counters, not attached to any registry (unit tests,
    /// trait-only uses).
    pub fn detached() -> Self {
        let c = || Arc::new(Counter::new());
        Self {
            writes: c(),
            pick_full: c(),
            pick_compressed: c(),
            pick_parity: c(),
            pick_parity_lzss: c(),
            explores: c(),
            phase_switches: c(),
            shipped_bytes: c(),
            cf_traditional_bytes: c(),
            cf_compressed_bytes: c(),
            cf_prins_bytes: c(),
            cf_prins_lzss_bytes: c(),
            regret_bytes: c(),
        }
    }

    /// The smallest static-policy counterfactual accumulated so far,
    /// as `(name, bytes)`.
    pub fn best_static(&self) -> (&'static str, u64) {
        [
            ("traditional", self.cf_traditional_bytes.get()),
            ("compressed", self.cf_compressed_bytes.get()),
            ("prins", self.cf_prins_bytes.get()),
            ("prins+lzss", self.cf_prins_lzss_bytes.get()),
        ]
        .into_iter()
        .min_by_key(|&(_, bytes)| bytes)
        .expect("four candidates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_counters_show_up_in_the_registry() {
        let registry = Registry::new();
        let counters = PolicyCounters::registered(&registry);
        counters.shipped_bytes.add(123);
        assert_eq!(registry.counter("policy_shipped_bytes").get(), 123);
    }

    #[test]
    fn best_static_picks_the_minimum() {
        let counters = PolicyCounters::detached();
        counters.cf_traditional_bytes.add(400);
        counters.cf_compressed_bytes.add(300);
        counters.cf_prins_bytes.add(100);
        counters.cf_prins_lzss_bytes.add(200);
        assert_eq!(counters.best_static(), ("prins", 100));
    }
}
