//! Per-LBA-region statistics: a fixed, direct-mapped table of atomic
//! EWMA slots. Lock-free and allocation-free after construction, so the
//! classifier can sit on the ≤2-allocations-per-write hot path.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// One EWMA step with integer arithmetic: `old + (sample - old) >> shift`,
/// nudged by one toward the sample when the shift would round the step
/// to zero (so the average can actually converge to nearby values).
pub fn ewma_step(old: u32, sample: u32, shift: u32) -> u32 {
    let step = (i64::from(sample) - i64::from(old)) >> shift;
    let next = (i64::from(old) + step).max(0) as u32;
    if next == old && sample != old {
        if sample > old {
            old + 1
        } else {
            old - 1
        }
    } else {
        next
    }
}

/// Learned state for one LBA region.
///
/// All fields are independent relaxed atomics: racing writers can lose
/// individual samples but never corrupt a value, which is fine for
/// moving averages.
pub(crate) struct RegionSlot {
    /// Owning region id + 1; 0 marks an empty slot. Direct-mapped: a
    /// colliding region takes the slot over and reseeds.
    tag: AtomicU64,
    /// Writes observed since the slot was (re)seeded.
    pub(crate) writes: AtomicU32,
    /// EWMA of parity-wire-bytes / block-bytes, per-mille.
    pub(crate) change_pm: AtomicU32,
    /// EWMA of modified-segment count per write.
    pub(crate) segments: AtomicU32,
    /// EWMA compressed/raw ratio of the *parity* stream, per-mille.
    pub(crate) delta_c_pm: AtomicU32,
    /// EWMA compressed/raw ratio of the *full block*, per-mille.
    pub(crate) full_c_pm: AtomicU32,
    /// Which compressibility EWMAs have received an *exact* sample (as
    /// opposed to the probe seed) since the slot was (re)seeded — see
    /// [`RegionSlot::DELTA_SAMPLED`] / [`RegionSlot::FULL_SAMPLED`]. An
    /// unsampled estimate is a guess; decisions trust it for skipping
    /// compression but not for committing bytes to it.
    sampled: AtomicU8,
}

impl RegionSlot {
    /// `sampled` bit: `delta_c_pm` holds at least one exact ratio.
    pub(crate) const DELTA_SAMPLED: u8 = 1;
    /// `sampled` bit: `full_c_pm` holds at least one exact ratio.
    pub(crate) const FULL_SAMPLED: u8 = 2;

    const fn empty() -> Self {
        Self {
            tag: AtomicU64::new(0),
            writes: AtomicU32::new(0),
            change_pm: AtomicU32::new(0),
            segments: AtomicU32::new(0),
            delta_c_pm: AtomicU32::new(0),
            full_c_pm: AtomicU32::new(0),
            sampled: AtomicU8::new(0),
        }
    }

    pub(crate) fn ewma(&self, field: &AtomicU32, sample: u32, shift: u32) {
        let old = field.load(Ordering::Relaxed);
        field.store(ewma_step(old, sample, shift), Ordering::Relaxed);
    }

    pub(crate) fn clear_sampled(&self) {
        self.sampled.store(0, Ordering::Relaxed);
    }

    pub(crate) fn mark_sampled(&self, bit: u8) {
        self.sampled.fetch_or(bit, Ordering::Relaxed);
    }

    pub(crate) fn is_sampled(&self, bit: u8) -> bool {
        self.sampled.load(Ordering::Relaxed) & bit != 0
    }
}

/// Fixed-size, direct-mapped table of [`RegionSlot`]s keyed by
/// `lba >> region_shift`.
pub struct RegionTable {
    slots: Box<[RegionSlot]>,
    mask: usize,
    region_shift: u32,
}

impl RegionTable {
    /// A table with at least `regions` slots (rounded to a power of two).
    pub fn new(regions: usize, region_shift: u32) -> Self {
        let n = regions.next_power_of_two().max(16);
        let slots: Vec<RegionSlot> = (0..n).map(|_| RegionSlot::empty()).collect();
        Self {
            slots: slots.into_boxed_slice(),
            mask: n - 1,
            region_shift,
        }
    }

    /// Slot count (power of two).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always at least 16 slots.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The region an LBA belongs to.
    pub fn region_of(&self, lba: u64) -> u64 {
        lba >> self.region_shift
    }

    /// The slot for `lba`, claiming it if another region owned it.
    /// Returns `(slot, fresh)`; `fresh` means the caller must reseed.
    pub(crate) fn slot(&self, lba: u64) -> (&RegionSlot, bool) {
        let region = self.region_of(lba);
        let slot = &self.slots[(region as usize) & self.mask];
        let tag = region + 1;
        let fresh = slot.tag.swap(tag, Ordering::Relaxed) != tag;
        (slot, fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_toward_the_sample() {
        let mut v = 1000;
        for _ in 0..64 {
            v = ewma_step(v, 200, 3);
        }
        assert!((195..=210).contains(&v), "got {v}");
        // And back up again, including the +1 nudge near the target.
        for _ in 0..64 {
            v = ewma_step(v, 1000, 3);
        }
        assert_eq!(v, 1000);
    }

    #[test]
    fn ewma_reaches_exact_small_targets() {
        // Without the nudge, (0 - 7) >> 3 == -1 but (7 - 0) >> 3 == 0
        // would strand the average.
        let mut v = 0;
        for _ in 0..16 {
            v = ewma_step(v, 7, 3);
        }
        assert_eq!(v, 7);
    }

    #[test]
    fn slots_are_reclaimed_on_region_collision() {
        let table = RegionTable::new(16, 0);
        let (a, fresh_a) = table.slot(1);
        assert!(fresh_a);
        a.writes.store(99, Ordering::Relaxed);
        let (_, again) = table.slot(1);
        assert!(!again, "same region must keep its slot");
        // Region 17 maps to the same slot in a 16-entry table.
        let (b, fresh_b) = table.slot(17);
        assert!(fresh_b, "collision must hand the slot over");
        assert_eq!(b.writes.load(Ordering::Relaxed), 99, "caller reseeds");
    }

    #[test]
    fn region_shift_groups_neighboring_lbas() {
        let table = RegionTable::new(64, 6);
        assert_eq!(table.region_of(0), table.region_of(63));
        assert_ne!(table.region_of(63), table.region_of(64));
        assert_eq!(table.len(), 64);
        assert!(!table.is_empty());
    }
}
