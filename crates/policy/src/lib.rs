//! Adaptive replication policy engine.
//!
//! The four static strategies in `prins-repl` each dominate on some
//! workload region and lose on another:
//!
//! * **Parity** wins when writes touch few bytes of incompressible data
//!   (OLTP row updates on packed binary pages);
//! * **ParityCompressed** wins when the parity itself carries redundancy
//!   (text, sparse structures);
//! * **Compressed** wins when (nearly) the whole block changes but the
//!   new content compresses (log appends, text churn) — the one case the
//!   PRINS fallback ships a *raw* full image;
//! * **Full** wins when the whole block changes and the content is
//!   incompressible (encrypted or already-compressed data) — compression
//!   attempts only burn CPU there.
//!
//! No static pick is best everywhere, and real devices mix all four
//! behaviors across their address space. [`AdaptiveReplicator`] learns
//! the mix online, per LBA region, from signals that are all O(block)
//! scans or cheaper:
//!
//! * the **exact parity wire length** from
//!   [`SparseCodec::delta_wire_info`](prins_parity::SparseCodec::delta_wire_info)
//!   (scan-only, no allocation) decides parity-vs-full ground truth for
//!   *this* write before anything is encoded;
//! * **EWMA compressibility estimates** per region, seeded by a cheap
//!   stack-only 4-gram [probe](probe::probe_compressibility_pm) and
//!   thereafter corrected with exact ratios observed whenever a
//!   compressing strategy is chosen;
//! * periodic **exploration** re-tries the compressing variant so a
//!   region whose content drifts from incompressible to compressible is
//!   re-detected. Exploration (and any mispredicted pick) is byte-free:
//!   every compressing branch rescues itself to the smallest plain
//!   encoding of this write when its first choice loses, so estimate
//!   errors cost CPU, never wire bytes.
//!
//! Every decision also books the **counterfactual cost**: the bytes each
//! *other* strategy would have shipped, so `prins-obs` counters expose
//! `adaptive vs best-static` regret without re-running the workload.
//! A global [`PhaseDetector`](WorkloadPhase) classifies the recent write
//! mix (small-delta / mixed / churn) and fires a hook the engine uses to
//! retune batching and coalescing aggressiveness live.
//!
//! # Example
//!
//! ```
//! use prins_block::Lba;
//! use prins_policy::{AdaptiveReplicator, PolicyConfig};
//! use prins_repl::Replicator;
//!
//! let adaptive = AdaptiveReplicator::new(PolicyConfig::default());
//! let old = vec![0u8; 4096];
//! let mut new = old.clone();
//! new[7] ^= 0x5a; // tiny delta: parity is the obvious winner
//! let wire = adaptive.encode_write(Lba(3), &old, &new);
//! assert!(wire.len() < 32);
//! assert_eq!(adaptive.counters().pick_parity.get(), 1);
//! ```

mod adaptive;
mod counters;
mod probe;
mod region;

pub use adaptive::{AdaptiveReplicator, PhaseDetector, WorkloadPhase};
pub use counters::{CounterfactualMode, PolicyCounters};
pub use probe::probe_compressibility_pm;
pub use region::{ewma_step, RegionTable};

/// The four wire strategies the policy engine picks among, mirroring
/// [`prins_repl::ReplicationMode`] one-to-one. Kept as a separate enum
/// so `prins-repl` stays independent of this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Ship the full new block (wire tag 0).
    Full,
    /// Ship the LZSS-compressed full block (wire tag 1).
    Compressed,
    /// Ship the zero-run-encoded parity (wire tag 2).
    Parity,
    /// Ship the LZSS-compressed parity (wire tag 3; the encoder falls
    /// back to plain parity or a raw full image when smaller).
    ParityCompressed,
}

impl Strategy {
    /// Short name for reports and counter labels.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Full => "full",
            Strategy::Compressed => "compressed",
            Strategy::Parity => "parity",
            Strategy::ParityCompressed => "parity+lzss",
        }
    }

    /// True for the two parity-family strategies (small-delta shaped).
    pub fn is_parity_family(self) -> bool {
        matches!(self, Strategy::Parity | Strategy::ParityCompressed)
    }
}

/// Tuning knobs for [`AdaptiveReplicator`]. `Default` is the
/// configuration every experiment in EXPERIMENTS.md uses.
#[derive(Clone, Copy, Debug)]
pub struct PolicyConfig {
    /// LBAs per classification region, as a shift (`6` → 64 blocks).
    pub region_shift: u32,
    /// Region-table slots; rounded up to a power of two. Direct-mapped:
    /// colliding regions take over the slot and reseed from the probe.
    pub regions: usize,
    /// EWMA smoothing, as a shift (`3` → new = old + (sample-old)/8).
    pub ewma_shift: u32,
    /// Force the compressing variant every N-th write per region so a
    /// drifting region is re-detected. `0` disables exploration.
    pub explore_interval: u32,
    /// Below this many wire bytes, compression cannot win (token
    /// overhead dominates) — skip it without consulting any estimate.
    pub min_compress_len: usize,
    /// A compressing variant is picked only when its estimated payload
    /// is at or below this per-mille fraction of the plain (parity or
    /// full) image — 970 demands a ≥3% saving, so marginal content
    /// cannot flap onto a CPU-burning pick.
    pub compress_threshold_pm: u32,
    /// Parity wires at least this long skip the estimates and run the
    /// full compression chain, shipping the exact minimum. Region
    /// EWMAs average over many small writes and mispredict exactly the
    /// rare heavy-tail writes that dominate shipped bytes; compressing
    /// a multi-KB payload costs little next to shipping it, while the
    /// classifier's CPU savings live in the small writes below this
    /// bar, which stay fused. `0` forces exact treatment everywhere.
    pub exact_trial_len: usize,
    /// Writes per phase-detection window.
    pub phase_window: u32,
    /// How decision counterfactuals are accounted.
    pub counterfactual: CounterfactualMode,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            region_shift: 6,
            regions: 1024,
            ewma_shift: 3,
            explore_interval: 64,
            min_compress_len: 24,
            compress_threshold_pm: 970,
            exact_trial_len: 1024,
            phase_window: 64,
            counterfactual: CounterfactualMode::Estimate,
        }
    }
}
