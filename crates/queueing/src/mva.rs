//! Exact Mean Value Analysis for a closed queueing network.

/// Solution of the closed network at one population size.
#[derive(Clone, Debug, PartialEq)]
pub struct MvaSolution {
    /// Population the network was solved for.
    pub population: u32,
    /// Total response time through the queueing centers (seconds) —
    /// what Figures 8 and 9 plot.
    pub response_time: f64,
    /// System throughput (customers per second).
    pub throughput: f64,
    /// Mean queue length at each center.
    pub queue_lengths: Vec<f64>,
    /// Utilization of each center.
    pub utilizations: Vec<f64>,
}

/// Exact MVA solver: one delay center (think time `Z`) plus FIFO
/// queueing centers with given service times (Reiser & Lavenberg; the
/// textbook algorithm of Lazowska et al., the paper's reference [29]).
///
/// # Example
///
/// ```
/// use prins_queueing::Mva;
///
/// // A single 10 ms server with 90 ms think time: at population 1 the
/// // response time is exactly the service time.
/// let mva = Mva::new(0.09, vec![0.01]);
/// let sol = mva.solve(1);
/// assert!((sol.response_time - 0.01).abs() < 1e-12);
/// assert!((sol.throughput - 10.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Mva {
    think_time: f64,
    service_times: Vec<f64>,
}

impl Mva {
    /// Creates a solver for think time `z` and per-center service times.
    ///
    /// # Panics
    ///
    /// Panics on negative times or an empty center list.
    pub fn new(z: f64, service_times: Vec<f64>) -> Self {
        assert!(z >= 0.0, "think time must be non-negative");
        assert!(!service_times.is_empty(), "need at least one center");
        assert!(
            service_times.iter().all(|&s| s > 0.0),
            "service times must be positive"
        );
        Self {
            think_time: z,
            service_times,
        }
    }

    /// The think time `Z`.
    pub fn think_time(&self) -> f64 {
        self.think_time
    }

    /// Solves the network exactly for `population` customers.
    ///
    /// # Panics
    ///
    /// Panics for population 0 (an empty network has no response time).
    pub fn solve(&self, population: u32) -> MvaSolution {
        assert!(population > 0, "population must be at least 1");
        let k = self.service_times.len();
        let mut queue = vec![0.0f64; k];
        let mut response_time = 0.0;
        let mut throughput = 0.0;
        for n in 1..=population {
            let r_k: Vec<f64> = self
                .service_times
                .iter()
                .zip(&queue)
                .map(|(&s, &q)| s * (1.0 + q))
                .collect();
            response_time = r_k.iter().sum();
            throughput = n as f64 / (self.think_time + response_time);
            for (q, r) in queue.iter_mut().zip(&r_k) {
                *q = throughput * r;
            }
        }
        let utilizations = self
            .service_times
            .iter()
            .map(|&s| (throughput * s).min(1.0))
            .collect();
        MvaSolution {
            population,
            response_time,
            throughput,
            queue_lengths: queue,
            utilizations,
        }
    }

    /// Solves for every population in `1..=max`, returning the response
    /// time curve (the y-axis of Figures 8/9).
    pub fn response_curve(&self, max: u32) -> Vec<(u32, f64)> {
        (1..=max)
            .map(|n| (n, self.solve(n).response_time))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn population_one_has_no_queueing() {
        let mva = Mva::new(0.1, vec![0.02, 0.03]);
        let sol = mva.solve(1);
        assert!((sol.response_time - 0.05).abs() < 1e-12);
        assert!((sol.throughput - 1.0 / 0.15).abs() < 1e-9);
    }

    #[test]
    fn response_time_is_monotone_in_population() {
        let mva = Mva::new(0.1, vec![0.057, 0.057]);
        let curve = mva.response_curve(100);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "response time decreased at {:?}", w[1].0);
        }
    }

    #[test]
    fn throughput_saturates_at_bottleneck_rate() {
        // Bottleneck: 50 ms server → max throughput 20/s.
        let mva = Mva::new(0.1, vec![0.05, 0.001]);
        let sol = mva.solve(500);
        assert!(sol.throughput <= 20.0 + 1e-9);
        assert!(sol.throughput > 19.9, "got {}", sol.throughput);
        assert!(sol.utilizations[0] > 0.999);
        assert!(sol.utilizations[1] < 0.05);
    }

    #[test]
    fn asymptotic_response_matches_bound() {
        // For large N: R ≈ N * S_bottleneck - Z.
        let s = 0.05;
        let mva = Mva::new(0.1, vec![s]);
        let n = 400u32;
        let sol = mva.solve(n);
        let bound = n as f64 * s - 0.1;
        assert!((sol.response_time - bound).abs() / bound < 0.01);
    }

    #[test]
    fn little_law_holds() {
        let mva = Mva::new(0.1, vec![0.02, 0.04]);
        for n in [1u32, 5, 20, 80] {
            let sol = mva.solve(n);
            // N = X * (Z + R)
            let lhs = n as f64;
            let rhs = sol.throughput * (0.1 + sol.response_time);
            assert!((lhs - rhs).abs() < 1e-9, "population {n}");
            // Sum of queue lengths + thinking customers = N
            let queued: f64 = sol.queue_lengths.iter().sum();
            let thinking = sol.throughput * 0.1;
            assert!((queued + thinking - lhs).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_population_panics() {
        let _ = Mva::new(0.1, vec![0.01]).solve(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_service_time_panics() {
        let _ = Mva::new(0.1, vec![0.0]);
    }

    proptest! {
        #[test]
        fn prop_invariants(z in 0.0f64..1.0,
                           services in proptest::collection::vec(1e-6f64..0.2, 1..5),
                           n in 1u32..60) {
            let mva = Mva::new(z, services.clone());
            let sol = mva.solve(n);
            prop_assert!(sol.response_time >= services.iter().sum::<f64>() - 1e-12);
            prop_assert!(sol.throughput > 0.0);
            let max_x = 1.0 / services.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(sol.throughput <= max_x + 1e-9);
            prop_assert!(sol.queue_lengths.iter().all(|&q| q >= -1e-12));
        }
    }
}
