//! Asymptotic bounds from operational analysis (Lazowska et al., the
//! paper's reference [29], ch. 5).
//!
//! For a closed network with total service demand `D`, bottleneck demand
//! `D_max` and think time `Z`:
//!
//! ```text
//! X(N) ≤ min( N / (D + Z),  1 / D_max )
//! R(N) ≥ max( D,  N · D_max − Z )
//! ```
//!
//! The knee population `N* = (D + Z) / D_max` marks where queueing
//! starts dominating — for the paper's Figure 8 it explains *why*
//! traditional replication's curve turns upward near population 2 while
//! PRINS's knee sits far to the right. The exact MVA solution must
//! respect these bounds everywhere, which the tests (and the
//! cross-check in `prins-bench`) verify.

use crate::Mva;

/// Asymptotic bounds for a closed network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsymptoticBounds {
    /// Sum of all service demands (seconds).
    pub total_demand: f64,
    /// Largest single-center demand (seconds).
    pub bottleneck_demand: f64,
    /// Think time (seconds).
    pub think_time: f64,
}

impl AsymptoticBounds {
    /// Derives the bounds for a delay center plus FIFO centers with the
    /// given service times.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-positive service-time list (same
    /// contract as [`Mva::new`]).
    pub fn new(think_time: f64, service_times: &[f64]) -> Self {
        assert!(!service_times.is_empty(), "need at least one center");
        assert!(
            service_times.iter().all(|&s| s > 0.0),
            "service times must be positive"
        );
        Self {
            total_demand: service_times.iter().sum(),
            bottleneck_demand: service_times.iter().cloned().fold(f64::MIN, f64::max),
            think_time,
        }
    }

    /// Upper bound on throughput at population `n`.
    pub fn throughput_upper(&self, n: u32) -> f64 {
        (n as f64 / (self.total_demand + self.think_time)).min(1.0 / self.bottleneck_demand)
    }

    /// Lower bound on response time at population `n`.
    pub fn response_lower(&self, n: u32) -> f64 {
        self.total_demand
            .max(n as f64 * self.bottleneck_demand - self.think_time)
    }

    /// The knee population `N*` where the two throughput asymptotes
    /// cross — the onset of saturation.
    pub fn knee(&self) -> f64 {
        (self.total_demand + self.think_time) / self.bottleneck_demand
    }

    /// Checks an exact [`Mva`] solution against the bounds.
    pub fn admits(&self, mva: &Mva, n: u32) -> bool {
        let sol = mva.solve(n);
        let eps = 1e-9;
        sol.throughput <= self.throughput_upper(n) + eps
            && sol.response_time >= self.response_lower(n) - eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mva_respects_bounds_for_the_papers_parameters() {
        // Traditional replication over T1 (Figure 8's steep curve).
        let s = crate::NodalDelay::t1().service_time(8192.0);
        let services = vec![s, s];
        let bounds = AsymptoticBounds::new(0.1, &services);
        let mva = Mva::new(0.1, services);
        for n in [1u32, 2, 5, 10, 25, 50, 100] {
            assert!(bounds.admits(&mva, n), "population {n}");
        }
    }

    #[test]
    fn knee_explains_figure8() {
        // Traditional (8 KB over T1): knee near population 2-3.
        let s_trad = crate::NodalDelay::t1().service_time(8192.0);
        let trad = AsymptoticBounds::new(0.1, &[s_trad, s_trad]);
        assert!(trad.knee() < 4.0, "traditional knee {}", trad.knee());
        // PRINS (~80 B over T1): knee far beyond population 50.
        let s_prins = crate::NodalDelay::t1().service_time(82.0);
        let prins = AsymptoticBounds::new(0.1, &[s_prins, s_prins]);
        assert!(prins.knee() > 50.0, "prins knee {}", prins.knee());
    }

    #[test]
    fn bounds_are_tight_at_the_extremes() {
        let services = vec![0.05, 0.01];
        let bounds = AsymptoticBounds::new(0.1, &services);
        let mva = Mva::new(0.1, services);
        // At N=1 the response bound is exactly the demand.
        let sol = mva.solve(1);
        assert!((sol.response_time - bounds.response_lower(1)).abs() < 1e-12);
        // Deep in saturation the linear asymptote is tight to ~1%.
        let sol = mva.solve(300);
        let lower = bounds.response_lower(300);
        assert!((sol.response_time - lower) / lower < 0.01);
    }

    proptest! {
        #[test]
        fn prop_exact_solution_always_within_bounds(
            z in 0.0f64..0.5,
            services in proptest::collection::vec(1e-5f64..0.1, 1..5),
            n in 1u32..80,
        ) {
            let bounds = AsymptoticBounds::new(z, &services);
            let mva = Mva::new(z, services);
            prop_assert!(bounds.admits(&mva, n));
        }
    }
}
