//! Queueing models from §3.3 of the PRINS paper: a closed queueing
//! network solved with exact Mean Value Analysis, and an open M/M/1
//! router model.
//!
//! The paper models a WAN of storage nodes as a *closed* network: each
//! computing node thinks for `Z = 0.1 s` (the measured TPC-C write
//! inter-arrival), then issues a replicated write that traverses two
//! FIFO routers; the node does not issue the next write until the
//! previous one is replicated. The population is
//! `nodes × replicas`. Router service time follows Equation (3)/(4):
//!
//! ```text
//! Dtrans  = (Sd + Sd/1.5 · 0.112) / Net_BW     (packetization + bandwidth)
//! Srouter = Dtrans + Dproc + Dprop             (5 µs + 1 ms)
//! ```
//!
//! where `Sd` is the bytes one replicated write puts on the wire — the
//! quantity the traffic experiments measure per replication technique.
//!
//! * [`Mva`] — exact MVA for a delay center plus K queueing centers
//!   (Figures 8 and 9),
//! * [`MM1`] — the open single-router saturation analysis (Figure 10),
//! * [`NodalDelay`] — Equation (3)/(4) service times for T1/T3 links,
//! * [`figures`] — ready-made series generators for the three figures.
//!
//! # Example
//!
//! ```
//! use prins_queueing::{Mva, NodalDelay};
//!
//! // Response time of traditional replication (8 KB per write) over T1
//! // with 2 routers, population 40 — the regime where Figure 8 blows up.
//! let s = NodalDelay::t1().service_time(8192.0);
//! let mva = Mva::new(0.1, vec![s, s]);
//! let r40 = mva.solve(40).response_time;
//! let r1 = mva.solve(1).response_time;
//! assert!(r40 > 10.0 * r1); // severe queueing at population 40
//! ```

mod bounds;
pub mod figures;
mod mm1;
mod mva;
mod nodal;

pub use bounds::AsymptoticBounds;
pub use mm1::MM1;
pub use mva::{Mva, MvaSolution};
pub use nodal::NodalDelay;
