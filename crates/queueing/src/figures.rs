//! Series generators for Figures 8, 9 and 10.
//!
//! Each generator takes the *measured* bytes-per-write of the three
//! replication techniques (produced by the traffic experiments in
//! `prins-bench`) and the paper's network parameters, and emits the
//! plotted series. Defaults reproduce the paper's setup: think time
//! 0.1 s, two routers, 8 KB blocks.

use crate::{Mva, NodalDelay, MM1};

/// The paper's measured think time: TPC-C generated 10.22 writes/s per
/// node, so a node thinks ~0.1 s between writes.
pub const THINK_TIME: f64 = 0.1;

/// Routers each replication traverses in Figures 8/9.
pub const ROUTERS: usize = 2;

/// One plotted curve.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Technique label ("traditional", "compressed", "prins").
    pub label: String,
    /// X values (population or write rate).
    pub x: Vec<f64>,
    /// Y values (seconds); `NaN` marks saturated points in Figure 10.
    pub y: Vec<f64>,
}

/// Bytes one write puts on the wire, per technique — the bridge from
/// the traffic experiments to the queueing model.
#[derive(Clone, Debug, PartialEq)]
pub struct BytesPerWrite {
    /// Technique label.
    pub label: String,
    /// Mean payload bytes per replicated write.
    pub bytes: f64,
}

impl BytesPerWrite {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, bytes: f64) -> Self {
        Self {
            label: label.into(),
            bytes,
        }
    }

    /// The paper's 8 KB-block regime with representative measured
    /// values: traditional ships the whole block, compression ~2.2×,
    /// PRINS ~100× — the "up to 2 orders of magnitude" regime the
    /// paper's Figure 8 plots (where the PRINS curve stays flat to
    /// population 100). Benches replace these with actually measured
    /// per-workload values.
    pub fn paper_defaults() -> Vec<Self> {
        vec![
            Self::new("traditional", 8192.0),
            Self::new("compressed", 8192.0 / 2.2),
            Self::new("prins", 8192.0 / 100.0),
        ]
    }
}

/// Figure 8 / Figure 9: closed-network response time vs population.
///
/// `link` selects T1 (Figure 8) or T3 (Figure 9); `populations` is the
/// x-axis (the paper uses 1..=100).
pub fn response_vs_population(
    link: NodalDelay,
    techniques: &[BytesPerWrite],
    populations: &[u32],
) -> Vec<Series> {
    techniques
        .iter()
        .map(|t| {
            let s = link.service_time(t.bytes);
            let mva = Mva::new(THINK_TIME, vec![s; ROUTERS]);
            let y = populations
                .iter()
                .map(|&n| mva.solve(n).response_time)
                .collect();
            Series {
                label: t.label.clone(),
                x: populations.iter().map(|&n| n as f64).collect(),
                y,
            }
        })
        .collect()
}

/// Figure 10: single-router M/M/1 queueing time vs write request rate.
///
/// Saturated points are emitted as `NaN` (the paper's curves shoot off
/// the chart there).
pub fn router_queueing_vs_rate(
    link: NodalDelay,
    techniques: &[BytesPerWrite],
    rates: &[f64],
) -> Vec<Series> {
    techniques
        .iter()
        .map(|t| {
            let queue = MM1::new(link.service_time(t.bytes));
            let y = rates
                .iter()
                .map(|&r| queue.queueing_time(r).unwrap_or(f64::NAN))
                .collect();
            Series {
                label: t.label.clone(),
                x: rates.to_vec(),
                y,
            }
        })
        .collect()
}

/// The paper's population axis for Figures 8/9.
pub fn paper_populations() -> Vec<u32> {
    (1..=100).collect()
}

/// The paper's write-rate axis for Figure 10 (1..=56 requests/s).
pub fn paper_rates() -> Vec<f64> {
    (1..=56).map(|r| r as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_shape_traditional_blows_up_prins_stays_flat() {
        let series = response_vs_population(
            NodalDelay::t1(),
            &BytesPerWrite::paper_defaults(),
            &paper_populations(),
        );
        let get = |label: &str| series.iter().find(|s| s.label == label).unwrap();
        let trad = get("traditional");
        let prins = get("prins");
        // At population 100 traditional queues catastrophically…
        assert!(trad.y[99] > 4.0, "traditional at 100: {}", trad.y[99]);
        // …while PRINS stays well under a tenth of a second.
        assert!(prins.y[99] < 0.1, "prins at 100: {}", prins.y[99]);
        // And the gap at 100 is > 50x (paper: "stays relatively flat").
        assert!(trad.y[99] / prins.y[99] > 50.0);
    }

    #[test]
    fn figure9_t3_same_ordering_smaller_magnitudes() {
        let t1 = response_vs_population(NodalDelay::t1(), &BytesPerWrite::paper_defaults(), &[100]);
        let t3 = response_vs_population(NodalDelay::t3(), &BytesPerWrite::paper_defaults(), &[100]);
        for (a, b) in t1.iter().zip(&t3) {
            assert!(b.y[0] <= a.y[0], "{}: T3 must be faster", a.label);
        }
        // Ordering within T3 still traditional > compressed > prins.
        assert!(t3[0].y[0] > t3[1].y[0]);
        assert!(t3[1].y[0] > t3[2].y[0]);
    }

    #[test]
    fn figure10_traditional_saturates_first() {
        let series = router_queueing_vs_rate(
            NodalDelay::t1(),
            &BytesPerWrite::paper_defaults(),
            &paper_rates(),
        );
        let saturation_rate = |s: &Series| {
            s.y.iter()
                .position(|v| v.is_nan())
                .map(|i| s.x[i])
                .unwrap_or(f64::INFINITY)
        };
        let trad = saturation_rate(&series[0]);
        let comp = saturation_rate(&series[1]);
        let prins = saturation_rate(&series[2]);
        assert!(trad < comp, "traditional {trad} vs compressed {comp}");
        assert!(comp < prins, "compressed {comp} vs prins {prins}");
        // Traditional over T1 saturates in the teens, as in the paper.
        assert!((10.0..25.0).contains(&trad), "got {trad}");
    }

    #[test]
    fn paper_axes_match_the_figures() {
        assert_eq!(paper_populations().len(), 100);
        let rates = paper_rates();
        assert_eq!(rates.first(), Some(&1.0));
        assert_eq!(rates.last(), Some(&56.0));
    }
}
