//! Equation (3)/(4): per-router nodal delay.

/// Router service-time model with the paper's constants.
///
/// Bandwidths follow the paper's "10 bits per byte" convention: a T1
/// line (1.544 Mbps) carries 154.4 KB/s, a T3 line (44.736 Mbps)
/// 4473.6 KB/s. Packetization adds 0.112 KB of headers per 1.5 KB of
/// payload; nodal processing is 5 µs and propagation 1 ms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodalDelay {
    /// Usable link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-packet payload capacity in bytes.
    pub mtu_payload: f64,
    /// Header bytes per packet.
    pub header_bytes: f64,
    /// Nodal processing delay in seconds.
    pub processing: f64,
    /// Propagation delay in seconds.
    pub propagation: f64,
}

impl NodalDelay {
    /// T1 line parameters.
    pub fn t1() -> Self {
        Self {
            bandwidth_bytes_per_sec: 154_400.0,
            ..Self::base()
        }
    }

    /// T3 line parameters.
    pub fn t3() -> Self {
        Self {
            bandwidth_bytes_per_sec: 4_473_600.0,
            ..Self::base()
        }
    }

    fn base() -> Self {
        Self {
            bandwidth_bytes_per_sec: 154_400.0,
            mtu_payload: 1500.0,
            header_bytes: 112.0,
            processing: 5e-6,
            propagation: 1e-3,
        }
    }

    /// Transmission delay `Dtrans` for a message of `sd` payload bytes
    /// (the paper's continuous `Sd + Sd/1.5 · 0.112` form).
    pub fn transmission_delay(&self, sd: f64) -> f64 {
        let wire = sd + sd / self.mtu_payload * self.header_bytes;
        wire / self.bandwidth_bytes_per_sec
    }

    /// Router service time `Srouter = Dtrans + Dproc + Dprop`.
    pub fn service_time(&self, sd: f64) -> f64 {
        self.transmission_delay(sd) + self.processing + self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_8kb_matches_hand_computation() {
        // 8192 + 8192/1500*112 = 8803.7 bytes; / 154400 = 57.0 ms.
        let d = NodalDelay::t1().transmission_delay(8192.0);
        assert!((d - 0.05702).abs() < 1e-4, "got {d}");
        let s = NodalDelay::t1().service_time(8192.0);
        assert!((s - (d + 0.001005)).abs() < 1e-9);
    }

    #[test]
    fn t3_is_faster_by_bandwidth_ratio() {
        let t1 = NodalDelay::t1().transmission_delay(8192.0);
        let t3 = NodalDelay::t3().transmission_delay(8192.0);
        assert!((t1 / t3 - 4_473_600.0 / 154_400.0).abs() < 1e-9);
    }

    #[test]
    fn zero_payload_still_pays_fixed_delays() {
        let s = NodalDelay::t1().service_time(0.0);
        assert!((s - 0.001005).abs() < 1e-12);
    }
}
