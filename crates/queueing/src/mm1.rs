//! Open M/M/1 router model (Figure 10).

/// An M/M/1 queue with a fixed service time (rate `µ = 1/s`).
///
/// The paper uses this to show how fast each replication technique
/// saturates a single router as the write request rate grows.
///
/// # Example
///
/// ```
/// use prins_queueing::MM1;
///
/// let router = MM1::new(0.058); // traditional replication over T1
/// assert!(router.queueing_time(10.0).is_some());
/// assert_eq!(router.queueing_time(18.0), None); // beyond saturation
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MM1 {
    service_time: f64,
}

impl MM1 {
    /// Creates a queue with the given mean service time in seconds.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive service time.
    pub fn new(service_time: f64) -> Self {
        assert!(service_time > 0.0, "service time must be positive");
        Self { service_time }
    }

    /// The service rate `µ` in customers per second.
    pub fn service_rate(&self) -> f64 {
        1.0 / self.service_time
    }

    /// Utilization `ρ = λ/µ` at arrival rate `lambda`.
    pub fn utilization(&self, lambda: f64) -> f64 {
        lambda * self.service_time
    }

    /// Whether the queue is unstable at arrival rate `lambda`.
    pub fn saturated(&self, lambda: f64) -> bool {
        self.utilization(lambda) >= 1.0
    }

    /// Mean time spent waiting in the queue (excluding service):
    /// `Wq = ρ/(µ−λ)`. `None` when saturated — the paper plots these
    /// points as the curve shooting up.
    pub fn queueing_time(&self, lambda: f64) -> Option<f64> {
        let rho = self.utilization(lambda);
        if rho >= 1.0 {
            return None;
        }
        Some(rho / (self.service_rate() - lambda))
    }

    /// Mean total response time (wait + service): `W = 1/(µ−λ)`.
    pub fn response_time(&self, lambda: f64) -> Option<f64> {
        if self.saturated(lambda) {
            return None;
        }
        Some(1.0 / (self.service_rate() - lambda))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn idle_queue_has_zero_wait() {
        let q = MM1::new(0.01);
        assert!(q.queueing_time(0.0).unwrap().abs() < 1e-12);
        assert!((q.response_time(0.0).unwrap() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn wait_grows_without_bound_near_saturation() {
        let q = MM1::new(0.01); // µ = 100
        let w50 = q.queueing_time(50.0).unwrap();
        let w90 = q.queueing_time(90.0).unwrap();
        let w99 = q.queueing_time(99.0).unwrap();
        assert!(w90 > 5.0 * w50);
        assert!(w99 > 5.0 * w90);
        assert!(q.queueing_time(100.0).is_none());
        assert!(q.queueing_time(150.0).is_none());
    }

    #[test]
    fn response_equals_wait_plus_service() {
        let q = MM1::new(0.02);
        let lambda = 30.0;
        let w = q.queueing_time(lambda).unwrap();
        let r = q.response_time(lambda).unwrap();
        assert!((r - (w + 0.02)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_stability_boundary(s in 1e-4f64..1.0, frac in 0.0f64..2.0) {
            let q = MM1::new(s);
            let lambda = frac * q.service_rate();
            prop_assert_eq!(q.queueing_time(lambda).is_some(), frac < 1.0);
            if let Some(w) = q.queueing_time(lambda) {
                prop_assert!(w >= 0.0);
            }
        }
    }
}
