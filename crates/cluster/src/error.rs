//! Error type for the cluster layer.

use std::fmt;

use prins_block::BlockError;
use prins_repl::ReplError;

use crate::ReplicaState;

/// Errors from cluster writes, lifecycle transitions, and resync.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClusterError {
    /// Primary-side device failure (the local write itself failed).
    Block(BlockError),
    /// Replication-layer failure not absorbed by degraded mode.
    Repl(ReplError),
    /// A write was acknowledged by fewer replicas than the configured
    /// write quorum. The primary's copy is updated; the caller decides
    /// whether to stall, retry, or surface the loss of redundancy.
    QuorumLost {
        /// Replicas that acknowledged the write.
        acked: usize,
        /// The configured minimum.
        quorum: usize,
    },
    /// A lifecycle transition that the state machine does not allow.
    InvalidTransition {
        /// Replica index.
        replica: usize,
        /// State the replica is in.
        from: ReplicaState,
        /// State the caller asked for.
        to: ReplicaState,
    },
    /// A replica index out of range.
    UnknownReplica(usize),
    /// A live-migration request the placement or cluster state cannot
    /// satisfy (non-identity addressing, bad range, or a migration
    /// already in progress).
    Migration(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Block(e) => write!(f, "primary device error: {e}"),
            ClusterError::Repl(e) => write!(f, "replication error: {e}"),
            ClusterError::QuorumLost { acked, quorum } => {
                write!(f, "write quorum lost: {acked} ack(s), {quorum} required")
            }
            ClusterError::InvalidTransition { replica, from, to } => {
                write!(f, "replica {replica}: invalid transition {from} -> {to}")
            }
            ClusterError::UnknownReplica(idx) => write!(f, "no replica {idx}"),
            ClusterError::Migration(why) => write!(f, "migration rejected: {why}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Block(e) => Some(e),
            ClusterError::Repl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BlockError> for ClusterError {
    fn from(e: BlockError) -> Self {
        ClusterError::Block(e)
    }
}

impl From<ReplError> for ClusterError {
    fn from(e: ReplError) -> Self {
        // Device errors inside the repl layer are still device errors.
        match e {
            ReplError::Block(b) => ClusterError::Block(b),
            other => ClusterError::Repl(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error as _;
        let e = ClusterError::QuorumLost {
            acked: 1,
            quorum: 2,
        };
        assert!(e.to_string().contains("quorum"));
        assert!(e.source().is_none());
        let e = ClusterError::from(ReplError::Nak { replica: 3 });
        assert!(e.source().is_some());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
