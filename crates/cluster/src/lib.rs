//! Replica lifecycle, degraded writes, dirty-region tracking, and
//! parity-log delta resync.
//!
//! The paper's replication engine assumes every replica acknowledges
//! every write. Real Internet storages lose replicas: links drop,
//! disks fail, sites go down for maintenance. This crate adds the
//! availability layer on top of [`prins_repl`]:
//!
//! * [`ReplicaState`] — the lifecycle state machine
//!   `Online → Lagging → Offline → Resyncing → Online`, driven by
//!   send/ack errors,
//! * [`ClusterGroup`] — a primary that *degrades* instead of aborting:
//!   a failing replica's missed writes are recorded in a per-replica
//!   [`DirtyMap`] and writes succeed while at least
//!   [`ClusterConfig::write_quorum`] replicas acknowledge,
//! * [`ResyncStrategy`] — how a rejoining replica catches up:
//!   full-image, dirty-bitmap (full blocks, dirty only), or
//!   [`ResyncStrategy::ParityLog`] — replaying the primary's TRAP
//!   parity-log suffix, the PRINS idea applied to recovery: the same
//!   sparse parities that made foreground replication cheap make
//!   catch-up cheap,
//! * [`ShardMap`] / [`ShardedCluster`] — LBA-range sharding across
//!   replica groups, with placement feeding the MVA model inputs.
//!
//! Resync runs *concurrently* with foreground writes: the primary
//! keeps writing between [`ClusterGroup::resync_step`] calls, new
//! writes to still-dirty blocks are queued behind the resync stream,
//! and writes to clean blocks flow to the resyncing replica directly.
//!
//! # Example
//!
//! ```
//! use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
//! use prins_cluster::{ClusterConfig, ClusterGroup, ReplicaState, ResyncStrategy};
//! use prins_net::{channel_pair, FaultTransport, LinkModel, Transport};
//! use prins_repl::run_replica;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (primary_side, replica_side) = channel_pair(LinkModel::t1());
//! let (faulty, link) = FaultTransport::new(primary_side);
//! let replica_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
//! let dev = Arc::clone(&replica_dev);
//! let worker = std::thread::spawn(move || run_replica(&*dev, &replica_side));
//!
//! let config = ClusterConfig { offline_after: 1, ..ClusterConfig::default() };
//! let mut cluster =
//!     ClusterGroup::new(MemDevice::new(BlockSize::kb4(), 8), config, vec![Box::new(faulty)]);
//!
//! cluster.write(Lba(0), &[1u8; 4096])?; // replicated normally
//!
//! link.sever(); // outage: the write below is only recorded dirty
//! cluster.write(Lba(1), &[2u8; 4096])?;
//! assert_eq!(cluster.state(0), ReplicaState::Offline);
//!
//! link.restore();
//! cluster.rejoin(0, ResyncStrategy::ParityLog)?;
//! cluster.resync_to_completion(0, 8)?;
//! assert_eq!(cluster.state(0), ReplicaState::Online);
//!
//! drop(cluster); // hang up; replica loop exits
//! worker.join().unwrap()?;
//! assert_eq!(replica_dev.read_block_vec(Lba(1))?, vec![2u8; 4096]);
//! # Ok(())
//! # }
//! ```

mod dirty;
mod ec_group;
mod error;
mod group;
mod lifecycle;
mod placement;
mod shard;

pub use dirty::DirtyMap;
pub use ec_group::{EcConfig, EcGroup, EcPlacement, EcRebuildReport, EcWriteOutcome};
pub use error::ClusterError;
pub use group::{
    ClusterConfig, ClusterGroup, ReadOutcome, ReplicaStatus, ResyncStrategy, ScrubOutcome,
    WriteOutcome,
};
pub use lifecycle::ReplicaState;
pub use placement::{Placement, RendezvousPlacement};
pub use shard::{MigrationStatus, ShardMap, ShardedCluster};
