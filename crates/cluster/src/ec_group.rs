//! Erasure-coded replica groups: k-of-n striping with PRINS-style
//! delta strip updates and repair-bandwidth-aware rebuild.
//!
//! A 3-way mirror stores every byte three times. An erasure-coded
//! group with `k` data strips and `m` parity strips tolerates `m`
//! node losses at a storage cost of `(k + m) / k` — half of
//! mirroring's 3× at `k = 4, m = 2` — while keeping PRINS's wire
//! economics: a small write ships one sparse delta `Δd` to the data
//! strip's owner and the coefficient-scaled deltas `Δp_i = c_i · Δd`
//! to each parity owner. Code linearity makes the parity read-
//! modify-write exact, and `c · 0 = 0` keeps sparse deltas sparse.
//!
//! ## Layout
//!
//! Logical LBA `l` lives at column `l % k` of stripe `l / k`. Strip
//! placement rotates with the stripe index so load (and loss) spreads
//! evenly: stripe `s`'s strip for role `r` (roles `0..k` are data
//! columns, `k..n` parity) sits on node `(r + s) % n`, at node-local
//! address `Lba(s)`. A node therefore holds exactly one strip of
//! every stripe, and losing a node loses one strip per stripe — the
//! single-erasure rebuild case.
//!
//! ## Repair bandwidth
//!
//! Rebuilding a lost strip reads exactly `k` surviving strips (not
//! `n - 1`, and never a full logical image): each survivor answers a
//! strip-read request with a zero-run-encoded image, the codec
//! reconstructs the lost strip, and the replacement receives it as a
//! coefficient-1 delta over its zeroed disk — also sparse. Wire bytes
//! per stripe are therefore bounded by roughly `(k + 1)/k` times the
//! survivors' image bytes, and every byte is counted in
//! [`EcGroup::rebuild_bytes`] so the bound is testable.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use prins_block::{BlockDevice, Lba};
use prins_net::{Clock, Transport};
use prins_obs::{Counter, Event, EventKind, Histogram, Registry, TraceId, TraceSink, TraceStage};
use prins_parity::{ErasureCodec, SparseCodec};
use prins_repl::{
    decode_ack, decode_strip_ack, encode_strip_request, seal_frame, Payload, PayloadBody,
    ReplError, ACK, NAK, NAK_CORRUPT,
};

use crate::ClusterError;

/// Maps `(stripe, role)` to a node: rotated placement, so every node
/// holds one strip of every stripe and rebuild load spreads evenly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcPlacement {
    /// Data strips per stripe.
    pub k: usize,
    /// Parity strips per stripe.
    pub m: usize,
}

impl EcPlacement {
    /// Total strips (= nodes) per stripe.
    #[must_use]
    pub fn n(&self) -> usize {
        self.k + self.m
    }

    /// The node holding role `r` (data column if `< k`, else parity
    /// `r - k`) of stripe `s`.
    #[must_use]
    pub fn node_for(&self, stripe: u64, role: usize) -> usize {
        (role + (stripe as usize % self.n())) % self.n()
    }

    /// The role node `node` plays in stripe `s` — the inverse of
    /// [`node_for`](Self::node_for).
    #[must_use]
    pub fn role_of(&self, stripe: u64, node: usize) -> usize {
        let n = self.n();
        (node + n - (stripe as usize % n)) % n
    }
}

/// Observability hookup for an [`EcGroup`].
struct EcObs {
    registry: Arc<Registry>,
    clock: Arc<dyn Clock>,
    /// Strip-delta frames sent for foreground writes (data + parity).
    strip_writes: Arc<Counter>,
    /// Wire bytes of the coefficient-tagged parity deltas.
    parity_update_bytes: Arc<Counter>,
    /// Wire bytes moved by rebuilds (requests + survivor images +
    /// rebuilt strip shipments).
    rebuild_bytes: Arc<Counter>,
    /// Reconstructions that failed (too many erasures, corrupt
    /// survivor contribution, singular repair matrix).
    decode_failures: Arc<Counter>,
    /// Wall-clock (or sim-clock) nanoseconds per rebuild.
    rebuild_nanos: Arc<Histogram>,
}

impl EcObs {
    fn new(registry: Arc<Registry>, clock: Arc<dyn Clock>) -> Self {
        let strip_writes = registry.counter("ec_strip_writes");
        let parity_update_bytes = registry.counter("ec_parity_update_bytes");
        let rebuild_bytes = registry.counter("ec_rebuild_bytes");
        let decode_failures = registry.counter("ec_decode_failures");
        let rebuild_nanos = registry.histogram("ec_rebuild_nanos");
        Self {
            registry,
            clock,
            strip_writes,
            parity_update_bytes,
            rebuild_bytes,
            decode_failures,
            rebuild_nanos,
        }
    }
}

/// Causal-tracing hookup for an [`EcGroup`]: one trace per logical
/// write, spanning the data/parity strip fan-out and the per-node
/// acknowledgements.
struct EcTracer {
    sink: Arc<TraceSink>,
    clock: Arc<dyn Clock>,
    shard: u32,
    counter: u64,
}

impl EcTracer {
    fn next_id(&mut self) -> TraceId {
        let id = TraceId::for_shard(self.shard, self.counter);
        self.counter += 1;
        id
    }
}

/// One strip-holding node of the group.
struct EcNode {
    transport: Box<dyn Transport>,
    /// Response-stream generation, as in
    /// [`ClusterGroup`](crate::ClusterGroup): bumped on rejoin so
    /// stranded responses identify themselves.
    epoch: u64,
    down: bool,
    strip_writes: u64,
    sent_bytes: u64,
}

/// Outcome of one erasure-coded write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcWriteOutcome {
    /// Strip-delta frames acknowledged (1 data + up to m parity).
    pub acked: usize,
    /// Frames skipped because their target node is down.
    pub skipped: usize,
    /// Payload bytes put on the wire for this write.
    pub wire_bytes: u64,
}

/// Outcome of one node rebuild.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcRebuildReport {
    /// Stripes reconstructed onto the replacement node.
    pub stripes: u64,
    /// Wire bytes moved: strip-read requests, survivor images, and
    /// rebuilt strip shipments.
    pub wire_bytes: u64,
    /// Sum of the k surviving strips' *dense* image bytes per stripe —
    /// the denominator of the repair-bandwidth bound.
    pub survivor_image_bytes: u64,
}

/// Configuration for an [`EcGroup`].
#[derive(Clone, Copy, Debug)]
pub struct EcConfig {
    /// How long to wait for each acknowledgement.
    pub ack_timeout: Duration,
}

impl Default for EcConfig {
    fn default() -> Self {
        Self {
            ack_timeout: Duration::from_secs(10),
        }
    }
}

/// A primary striping its logical volume k-of-n across strip-holding
/// nodes, with PRINS delta updates to data *and* parity strips.
///
/// `device` holds the primary's logical image (`stripes × k` blocks);
/// each of the `k + m` transports leads to a node whose device holds
/// `stripes` strip blocks and whose applier uses the same codec (see
/// [`prins_repl::run_replica_applier`] and
/// [`ReplicaApplier::with_codec`](prins_repl::ReplicaApplier::with_codec)).
///
/// The group is closed-loop: every strip-delta frame is acknowledged
/// before [`write`](Self::write) returns, so the strips always equal
/// `encode(logical)` between writes — the invariant the simulator
/// checks byte-exactly.
pub struct EcGroup<D, C> {
    device: D,
    codec: C,
    placement: EcPlacement,
    sparse: SparseCodec,
    config: EcConfig,
    nodes: Vec<EcNode>,
    stripes: u64,
    block_size: usize,
    /// Stripes written while any node was down — the strips a rebuild
    /// must not trust on the replacement.
    dirty_stripes: BTreeSet<u64>,
    rebuild_bytes: u64,
    obs: Option<EcObs>,
    tracer: Option<EcTracer>,
}

impl<D: BlockDevice, C: ErasureCodec> EcGroup<D, C> {
    /// Wraps the primary's logical `device` and one transport per
    /// strip-holding node.
    ///
    /// # Panics
    ///
    /// Panics unless `transports.len() == codec.total_strips()` and
    /// the device's block count is a multiple of `codec.data_strips()`
    /// (whole stripes only).
    pub fn new(device: D, codec: C, config: EcConfig, transports: Vec<Box<dyn Transport>>) -> Self {
        let k = codec.data_strips();
        let m = codec.parity_strips();
        assert_eq!(
            transports.len(),
            k + m,
            "one transport per strip-holding node"
        );
        let blocks = device.geometry().num_blocks();
        assert_eq!(blocks % k as u64, 0, "logical volume must be whole stripes");
        let block_size = device.geometry().block_size().bytes();
        Self {
            device,
            codec,
            placement: EcPlacement { k, m },
            sparse: SparseCodec::default(),
            config,
            nodes: transports
                .into_iter()
                .map(|transport| EcNode {
                    transport,
                    epoch: 1,
                    down: false,
                    strip_writes: 0,
                    sent_bytes: 0,
                })
                .collect(),
            stripes: blocks / k as u64,
            block_size,
            dirty_stripes: BTreeSet::new(),
            rebuild_bytes: 0,
            obs: None,
            tracer: None,
        }
    }

    /// Attaches a metrics registry: strip writes, parity-update and
    /// rebuild wire bytes, decode failures, a rebuild-duration
    /// histogram, and `ec-rebuild` events.
    pub fn attach_observer(&mut self, registry: Arc<Registry>, clock: Arc<dyn Clock>) {
        self.obs = Some(EcObs::new(registry, clock));
    }

    /// Attaches a trace sink: every logical write mints a
    /// deterministic [`TraceId`] tagged with `shard` and records one
    /// `strip-data` / `strip-parity` hop per strip-delta frame (lane =
    /// node index) plus a `strip-ack` hop per acknowledgement, so the
    /// flight recorder sees the full k-of-n fan-out of a slow write.
    pub fn attach_tracer(&mut self, sink: Arc<TraceSink>, shard: u32, clock: Arc<dyn Clock>) {
        self.tracer = Some(EcTracer {
            sink,
            clock,
            shard,
            counter: 0,
        });
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.tracer.as_ref().map(|t| &t.sink)
    }

    /// The placement map.
    pub fn placement(&self) -> EcPlacement {
        self.placement
    }

    /// Stripes in the group.
    pub fn stripes(&self) -> u64 {
        self.stripes
    }

    /// The primary's logical device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Logical bytes the group stores (the user-visible capacity).
    pub fn logical_bytes(&self) -> u64 {
        self.stripes * self.placement.k as u64 * self.block_size as u64
    }

    /// Physical bytes across all strips — `(k + m)/k ×` logical, the
    /// storage-efficiency numerator (1.5× at k=4, m=2, vs 3× for a
    /// 3-way mirror).
    pub fn physical_bytes(&self) -> u64 {
        self.stripes * self.placement.n() as u64 * self.block_size as u64
    }

    /// Total wire bytes rebuilds have moved.
    pub fn rebuild_bytes(&self) -> u64 {
        self.rebuild_bytes
    }

    /// Wire bytes node `idx` has been sent.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node_bytes(&self, idx: usize) -> u64 {
        self.nodes[idx].sent_bytes
    }

    /// Marks node `idx` down: writes stop flowing to its strips (the
    /// stripes touched meanwhile are remembered as dirty).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownReplica`] for a bad index.
    pub fn mark_down(&mut self, idx: usize) -> Result<(), ClusterError> {
        self.check_idx(idx)?;
        self.nodes[idx].down = true;
        Ok(())
    }

    /// Whether node `idx` is marked down.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn is_down(&self, idx: usize) -> bool {
        self.nodes[idx].down
    }

    /// Swaps in a replacement node on slot `idx`: a fresh transport to
    /// a wiped device behind a new applier. The slot stays down until
    /// [`rebuild`](Self::rebuild) repopulates its strips; the epoch
    /// bumps so responses stranded on the old link identify themselves.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownReplica`] for a bad index.
    pub fn replace_node(
        &mut self,
        idx: usize,
        transport: Box<dyn Transport>,
    ) -> Result<(), ClusterError> {
        self.check_idx(idx)?;
        let node = &mut self.nodes[idx];
        node.transport = transport;
        node.epoch += 1;
        node.down = true;
        Ok(())
    }

    /// Stripes written while some node was down.
    pub fn dirty_stripes(&self) -> usize {
        self.dirty_stripes.len()
    }

    /// Applies one logical write and ships its strip deltas: `Δd` to
    /// the data strip's owner, `c_i · Δd` to each parity owner —
    /// sparse on the wire in both cases, closed-loop acknowledged.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::Block`] if the primary write fails (nothing
    ///   was shipped),
    /// * [`ClusterError::Repl`] on a transport or acknowledgement
    ///   failure — the group does not self-degrade; tests and the
    ///   simulator decide when a node is [`mark_down`](Self::mark_down).
    pub fn write(&mut self, lba: Lba, new: &[u8]) -> Result<EcWriteOutcome, ClusterError> {
        let k = self.placement.k;
        let stripe = lba.index() / k as u64;
        let col = (lba.index() % k as u64) as usize;
        let old = self.device.read_block_vec(lba)?;
        self.device.write_block(lba, new)?;

        let delta = self.codec.delta(&old, new);
        let sparse = self.sparse.encode(&delta).to_bytes();
        // One trace per logical write; the hold (pending = 1) keeps it
        // open across the strip fan-out and is released after the last
        // acknowledgement is collected below.
        let tid = self.tracer.as_mut().map(|t| {
            let id = t.next_id();
            t.sink.begin(id, t.shard, 1, t.clock.now_nanos(), new.len());
            id
        });
        let mut outcome = EcWriteOutcome {
            acked: 0,
            skipped: 0,
            wire_bytes: 0,
        };
        // Data strip first, then each parity strip. Sends are
        // pipelined; acks are collected after (FIFO per node — every
        // target is a distinct node under rotated placement).
        let mut await_from: Vec<usize> = Vec::with_capacity(1 + self.placement.m);
        for role in std::iter::once(col).chain(k..self.placement.n()) {
            let node = self.placement.node_for(stripe, role);
            if self.nodes[node].down {
                self.dirty_stripes.insert(stripe);
                outcome.skipped += 1;
                continue;
            }
            let coeff = if role < k {
                1
            } else {
                self.codec.coefficient(role - k, col)
            };
            let payload = Payload {
                lba: Lba(stripe),
                body: PayloadBody::StripDelta {
                    coeff,
                    data: sparse.clone(),
                },
            }
            .to_bytes();
            let sealed = seal_frame(self.nodes[node].epoch, &payload);
            self.nodes[node]
                .transport
                .send(&sealed)
                .map_err(ReplError::from)?;
            let n = &mut self.nodes[node];
            n.sent_bytes += sealed.len() as u64;
            n.strip_writes += 1;
            outcome.wire_bytes += sealed.len() as u64;
            if role >= k {
                if let Some(obs) = &self.obs {
                    obs.parity_update_bytes.add(sealed.len() as u64);
                }
            }
            if let (Some(t), Some(id)) = (&self.tracer, tid) {
                let stage = if role < k {
                    TraceStage::StripData
                } else {
                    TraceStage::StripParity
                };
                t.sink.add_pending(id, 1);
                t.sink
                    .event(id, stage, node as u32, t.clock.now_nanos(), sealed.len());
            }
            await_from.push(node);
        }
        if let Some(obs) = &self.obs {
            obs.strip_writes.add(await_from.len() as u64);
        }
        for node in await_from {
            self.await_ack(node)?;
            if let (Some(t), Some(id)) = (&self.tracer, tid) {
                t.sink.complete(
                    id,
                    TraceStage::StripAck,
                    node as u32,
                    t.clock.now_nanos(),
                    0,
                );
            }
            outcome.acked += 1;
        }
        if let (Some(t), Some(id)) = (&self.tracer, tid) {
            t.sink.release(id, t.clock.now_nanos());
        }
        Ok(outcome)
    }

    /// Fetches the strip image node `node` holds for `stripe` — a
    /// CRC-protected, zero-run-encoded read off the node's own disk —
    /// and returns the dense strip plus the wire bytes both directions
    /// cost.
    ///
    /// # Errors
    ///
    /// Transport failures, a corrupted response, or a node that
    /// refuses the read (its own media check failed).
    pub fn fetch_strip(
        &mut self,
        node: usize,
        stripe: u64,
    ) -> Result<(Vec<u8>, u64), ClusterError> {
        self.check_idx(node)?;
        let req = seal_frame(self.nodes[node].epoch, &encode_strip_request(Lba(stripe)));
        self.nodes[node]
            .transport
            .send(&req)
            .map_err(ReplError::from)?;
        let resp = self.nodes[node]
            .transport
            .recv_timeout(self.config.ack_timeout)
            .map_err(ReplError::from)?;
        let wire = (req.len() + resp.len()) as u64;
        self.nodes[node].sent_bytes += req.len() as u64;
        let (_epoch, sparse) = decode_strip_ack(&resp)?;
        let strip = self
            .sparse
            .decode(sparse, self.block_size)
            .map_err(ReplError::from)?
            .to_dense(self.block_size);
        Ok((strip, wire))
    }

    /// Rebuilds every strip node `lost` holds from `k` surviving
    /// nodes' strips, shipping each reconstructed strip to the
    /// replacement as a coefficient-1 sparse delta over its zeroed
    /// disk.
    ///
    /// The replacement must be *fresh*: a wiped device behind a new
    /// applier on the same transport slot (rebuild-as-resync). Wire
    /// accounting is exact — per stripe, `k` strip reads plus one
    /// shipment, never `n` full images — and is returned along with
    /// the survivor-image denominator of the repair-bandwidth bound.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownReplica`] for a bad index; transport and
    /// decode failures abort the rebuild (`ec_decode_failures` counts
    /// reconstruction errors).
    pub fn rebuild(&mut self, lost: usize) -> Result<EcRebuildReport, ClusterError> {
        self.check_idx(lost)?;
        let started = self.obs.as_ref().map(|o| o.clock.now_nanos());
        let n = self.placement.n();
        let k = self.placement.k;
        let mut report = EcRebuildReport {
            stripes: 0,
            wire_bytes: 0,
            survivor_image_bytes: 0,
        };
        self.nodes[lost].down = false;
        self.nodes[lost].epoch += 1;
        for stripe in 0..self.stripes {
            let lost_role = self.placement.role_of(stripe, lost);
            let mut strips: Vec<Option<Vec<u8>>> = vec![None; n];
            let mut fetched = 0usize;
            for role in (0..n).filter(|&r| r != lost_role) {
                if fetched == k {
                    break;
                }
                let node = self.placement.node_for(stripe, role);
                // A down node's strip may be stale (it missed degraded
                // writes) — it must not contribute to reconstruction.
                if self.nodes[node].down {
                    continue;
                }
                let (strip, wire) = self.fetch_strip(node, stripe)?;
                report.wire_bytes += wire;
                report.survivor_image_bytes += strip.len() as u64;
                strips[role] = Some(strip);
                fetched += 1;
            }
            if fetched < k {
                if let Some(obs) = &self.obs {
                    obs.decode_failures.inc();
                }
                return Err(ReplError::Malformed(format!(
                    "ec rebuild: only {fetched} of {k} survivor strips reachable"
                ))
                .into());
            }
            if let Err(e) = self.codec.reconstruct(&mut strips) {
                if let Some(obs) = &self.obs {
                    obs.decode_failures.inc();
                }
                return Err(ReplError::Malformed(format!("ec reconstruct: {e}")).into());
            }
            let rebuilt = strips[lost_role]
                .take()
                .expect("reconstruct fills every missing strip");
            // Coefficient-1 delta over the replacement's zeroed disk:
            // the rebuilt image itself, minus its zero runs.
            let sparse = self.sparse.encode(&rebuilt).to_bytes();
            let payload = Payload {
                lba: Lba(stripe),
                body: PayloadBody::StripDelta {
                    coeff: 1,
                    data: sparse,
                },
            }
            .to_bytes();
            let sealed = seal_frame(self.nodes[lost].epoch, &payload);
            self.nodes[lost]
                .transport
                .send(&sealed)
                .map_err(ReplError::from)?;
            self.nodes[lost].sent_bytes += sealed.len() as u64;
            report.wire_bytes += sealed.len() as u64;
            self.await_ack(lost)?;
            report.stripes += 1;
        }
        // Dirty stripes also cover writes other (still-down) nodes
        // missed; only a fully-online group has none left to remember.
        if !self.nodes.iter().any(|n| n.down) {
            self.dirty_stripes.clear();
        }
        self.rebuild_bytes += report.wire_bytes;
        if let Some(obs) = &self.obs {
            obs.rebuild_bytes.add(report.wire_bytes);
            let now = obs.clock.now_nanos();
            if let Some(t0) = started {
                obs.rebuild_nanos.record(now.saturating_sub(t0));
            }
            obs.registry.events().record(
                Event::new(
                    now,
                    EventKind::EcRebuild {
                        stripes: report.stripes as u32,
                    },
                )
                .replica(lost),
            );
        }
        Ok(report)
    }

    /// Decodes the logical block at `lba` from strips fetched off the
    /// wire — the degraded-read / verification path. At most `m` nodes
    /// may be down; their strips are reconstructed.
    ///
    /// # Errors
    ///
    /// Transport failures, or too many down nodes for the code.
    pub fn decode_logical(&mut self, lba: Lba) -> Result<Vec<u8>, ClusterError> {
        let k = self.placement.k;
        let stripe = lba.index() / k as u64;
        let col = (lba.index() % k as u64) as usize;
        let n = self.placement.n();
        let mut strips: Vec<Option<Vec<u8>>> = vec![None; n];
        for (role, slot) in strips.iter_mut().enumerate() {
            let node = self.placement.node_for(stripe, role);
            if self.nodes[node].down {
                continue;
            }
            let (strip, _) = self.fetch_strip(node, stripe)?;
            *slot = Some(strip);
        }
        if strips[col].is_none() {
            if let Err(e) = self.codec.reconstruct(&mut strips) {
                if let Some(obs) = &self.obs {
                    obs.decode_failures.inc();
                }
                return Err(ReplError::Malformed(format!("ec decode: {e}")).into());
            }
        }
        Ok(strips[col].take().expect("column present or reconstructed"))
    }

    fn check_idx(&self, idx: usize) -> Result<(), ClusterError> {
        if idx < self.nodes.len() {
            Ok(())
        } else {
            Err(ClusterError::UnknownReplica(idx))
        }
    }

    /// Waits for one acknowledgement from `node`, dropping responses
    /// from generations before the node's current epoch.
    fn await_ack(&mut self, node: usize) -> Result<(), ClusterError> {
        loop {
            let frame = self.nodes[node]
                .transport
                .recv_timeout(self.config.ack_timeout)
                .map_err(ReplError::from)?;
            let ack = decode_ack(&frame).map_err(|_| ReplError::MissingAck {
                replica: node,
                got: frame.first().copied(),
            })?;
            if ack.epoch < self.nodes[node].epoch && ack.status != NAK_CORRUPT {
                continue;
            }
            return match ack.status {
                ACK => Ok(()),
                NAK => Err(ReplError::Nak { replica: node }.into()),
                NAK_CORRUPT => Err(ReplError::ChecksumMismatch {
                    expected: 0,
                    got: 0,
                }
                .into()),
                other => Err(ReplError::MissingAck {
                    replica: node,
                    got: Some(other),
                }
                .into()),
            };
        }
    }
}

impl<D: BlockDevice, C: ErasureCodec> std::fmt::Debug for EcGroup<D, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcGroup")
            .field("codec", &self.codec.name())
            .field("k", &self.placement.k)
            .field("m", &self.placement.m)
            .field("stripes", &self.stripes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, MemDevice};
    use prins_ec::ReedSolomon;
    use prins_net::{channel_pair, LinkModel};
    use prins_repl::{run_replica_applier, ReplicaApplier};
    use rand::{RngExt, SeedableRng};

    type NodeWorker = std::thread::JoinHandle<Result<u64, ReplError>>;

    struct Harness {
        group: EcGroup<MemDevice, ReedSolomon>,
        devices: Vec<Arc<MemDevice>>,
        workers: Vec<NodeWorker>,
    }

    /// Spawns one strip-holder thread per node, each running the
    /// stock replica loop with an RS-codec applier in strict sealed
    /// mode — the same loop mirroring replicas run.
    fn spawn_node(stripes: u64) -> (Box<dyn Transport>, Arc<MemDevice>, NodeWorker) {
        let (primary_side, node_side) = channel_pair(LinkModel::t1());
        let device = Arc::new(MemDevice::new(BlockSize::kb4(), stripes));
        let dev = Arc::clone(&device);
        let worker = std::thread::spawn(move || {
            let applier = ReplicaApplier::new(&*dev)
                .with_codec(Box::new(ReedSolomon::k4m2()))
                .require_sealed(true);
            run_replica_applier(applier, &node_side)
        });
        (Box::new(primary_side), device, worker)
    }

    fn harness(stripes: u64) -> Harness {
        let codec = ReedSolomon::k4m2();
        let mut transports = Vec::new();
        let mut devices = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..codec.total_strips() {
            let (t, d, w) = spawn_node(stripes);
            transports.push(t);
            devices.push(d);
            workers.push(w);
        }
        let logical = MemDevice::new(BlockSize::kb4(), stripes * codec.data_strips() as u64);
        let group = EcGroup::new(logical, codec, EcConfig::default(), transports);
        Harness {
            group,
            devices,
            workers,
        }
    }

    fn finish(h: Harness) {
        let Harness { group, workers, .. } = h;
        drop(group);
        for w in workers {
            w.join().unwrap().unwrap();
        }
    }

    /// Recomputes every node's expected strip from the primary's
    /// logical image and compares byte-for-byte.
    fn assert_strips_encode_logical(h: &Harness) {
        let k = h.group.placement().k;
        let bs = 4096;
        for stripe in 0..h.group.stripes() {
            let data: Vec<Vec<u8>> = (0..k)
                .map(|col| {
                    h.group
                        .device()
                        .read_block_vec(Lba(stripe * k as u64 + col as u64))
                        .unwrap()
                })
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let parity = ReedSolomon::k4m2().encode(&refs).unwrap();
            for role in 0..h.group.placement().n() {
                // Systematic code: data roles hold the logical block
                // itself, parity roles hold the encoder's output.
                let want = if role < k {
                    &data[role]
                } else {
                    &parity[role - k]
                };
                let node = h.group.placement().node_for(stripe, role);
                let got = h.devices[node].read_block_vec(Lba(stripe)).unwrap();
                assert_eq!(&got, want, "stripe {stripe} role {role} node {node}");
                assert_eq!(got.len(), bs);
            }
        }
    }

    fn random_writes(h: &mut Harness, seed: u64, count: usize) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let blocks = h.group.stripes() * h.group.placement().k as u64;
        for _ in 0..count {
            let lba = Lba(rng.random_range(0..blocks));
            let mut block = h.group.device().read_block_vec(lba).unwrap();
            let at = rng.random_range(0..block.len() - 128);
            let len = rng.random_range(16..128);
            for b in &mut block[at..at + len] {
                *b = rng.random();
            }
            h.group.write(lba, &block).unwrap();
        }
    }

    #[test]
    fn writes_keep_strips_equal_to_encode_of_logical() {
        let mut h = harness(4);
        random_writes(&mut h, 11, 60);
        assert_strips_encode_logical(&h);
        finish(h);
    }

    #[test]
    fn small_writes_ship_sparse_deltas_not_full_strips() {
        let mut h = harness(4);
        let mut block = vec![0u8; 4096];
        block[100..164].fill(9);
        let outcome = h.group.write(Lba(0), &block).unwrap();
        // 1 data + 2 parity frames, each carrying ~64 payload bytes.
        assert_eq!(outcome.acked, 3);
        assert!(
            outcome.wire_bytes < 3 * 300,
            "64-byte change cost {} wire bytes",
            outcome.wire_bytes
        );
        finish(h);
    }

    #[test]
    fn rebuild_recovers_a_lost_node_within_the_bandwidth_bound() {
        let mut h = harness(4);
        random_writes(&mut h, 12, 40);

        // Node 2 dies mid-workload; writes continue degraded.
        let lost = 2;
        h.group.mark_down(lost).unwrap();
        random_writes(&mut h, 120, 10);
        assert!(h.group.dirty_stripes() > 0);

        // A replacement arrives: wiped device, fresh applier, new link.
        let (t, d, w) = spawn_node(h.group.stripes());
        h.group.replace_node(lost, t).unwrap();
        h.devices[lost] = d;
        h.workers.push(w);

        let report = h.group.rebuild(lost).unwrap();
        assert_eq!(report.stripes, h.group.stripes());
        assert_eq!(h.group.dirty_stripes(), 0);
        assert!(
            report.wire_bytes as f64 <= 1.25 * report.survivor_image_bytes as f64,
            "rebuild moved {} wire bytes vs {} survivor image bytes",
            report.wire_bytes,
            report.survivor_image_bytes
        );
        // The replacement's strips — and everyone else's — again equal
        // the systematic encoding of the primary's logical image, and
        // post-rebuild writes flow to all n nodes.
        assert_strips_encode_logical(&h);
        random_writes(&mut h, 121, 10);
        assert_strips_encode_logical(&h);
        finish(h);
    }

    #[test]
    fn degraded_write_skips_down_nodes_and_marks_stripes_dirty() {
        let mut h = harness(2);
        h.group.mark_down(0).unwrap();
        let mut block = vec![0u8; 4096];
        block[0..32].fill(5);
        // Stripe 0: node 0 holds data column 0 — the write's own strip.
        let outcome = h.group.write(Lba(0), &block).unwrap();
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.acked, 2);
        assert_eq!(h.group.dirty_stripes(), 1);
        finish(h);
    }

    #[test]
    fn decode_logical_survives_two_down_nodes() {
        let mut h = harness(2);
        random_writes(&mut h, 13, 20);
        h.group.mark_down(1).unwrap();
        h.group.mark_down(4).unwrap();
        let blocks = h.group.stripes() * h.group.placement().k as u64;
        for lba in 0..blocks {
            let want = h.group.device().read_block_vec(Lba(lba)).unwrap();
            let got = h.group.decode_logical(Lba(lba)).unwrap();
            assert_eq!(got, want, "lba {lba}");
        }
        finish(h);
    }

    #[test]
    fn placement_rotates_and_inverts() {
        let p = EcPlacement { k: 4, m: 2 };
        for stripe in 0..12u64 {
            let mut seen = std::collections::HashSet::new();
            for role in 0..p.n() {
                let node = p.node_for(stripe, role);
                assert!(seen.insert(node), "stripe {stripe}: node collision");
                assert_eq!(p.role_of(stripe, node), role);
            }
        }
        // Rotation: consecutive stripes shift roles by one node.
        assert_eq!(p.node_for(0, 0), 0);
        assert_eq!(p.node_for(1, 0), 1);
        assert_eq!(p.node_for(6, 0), 0);
    }

    #[test]
    fn storage_overhead_is_half_of_three_way_mirroring() {
        let h = harness(4);
        let logical = h.group.logical_bytes() as f64;
        let physical = h.group.physical_bytes() as f64;
        assert!(physical / logical <= 1.6, "{}", physical / logical);
        assert!((physical / logical - 1.5).abs() < 1e-9);
        // A 3-way mirror of the same logical volume stores 3×.
        assert!(3.0 * logical > 1.8 * physical);
        finish(h);
    }
}
