//! LBA-range sharding across replica groups.
//!
//! A large volume is split into contiguous LBA ranges, each served by
//! its own replica group ([`ClusterGroup`]). Placement determines load:
//! the per-group write counts a trace induces become the per-station
//! service demands of the paper's closed queueing network, so shard
//! placement feeds directly into the MVA model.

use prins_block::{BlockDevice, Lba};
use prins_queueing::Mva;

use crate::{ClusterError, ClusterGroup, WriteOutcome};

/// A partition of `[0, num_blocks)` into contiguous per-group ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// `starts[g]..starts[g + 1]` is group `g`'s LBA range.
    starts: Vec<u64>,
    num_blocks: u64,
}

impl ShardMap {
    /// Splits `num_blocks` as evenly as possible across `groups`
    /// ranges (the first `num_blocks % groups` ranges get one extra
    /// block).
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `num_blocks < groups as u64`.
    pub fn even(num_blocks: u64, groups: usize) -> Self {
        assert!(groups > 0, "at least one group");
        assert!(
            num_blocks >= groups as u64,
            "need at least one block per group"
        );
        let base = num_blocks / groups as u64;
        let extra = num_blocks % groups as u64;
        let mut starts = Vec::with_capacity(groups + 1);
        let mut at = 0;
        for g in 0..groups as u64 {
            starts.push(at);
            at += base + u64::from(g < extra);
        }
        starts.push(num_blocks);
        Self { starts, num_blocks }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total blocks across all shards.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// The group serving `lba`.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range.
    pub fn group_for(&self, lba: Lba) -> usize {
        assert!(lba.index() < self.num_blocks, "lba {lba:?} out of range");
        // partition_point returns the count of starts <= lba; the last
        // such range contains it.
        self.starts.partition_point(|&s| s <= lba.index()) - 1
    }

    /// Group `g`'s LBA range as `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn range(&self, g: usize) -> std::ops::Range<u64> {
        self.starts[g]..self.starts[g + 1]
    }

    /// Translates a volume LBA to the containing group's local LBA.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range.
    pub fn local_lba(&self, lba: Lba) -> (usize, Lba) {
        let g = self.group_for(lba);
        (g, Lba(lba.index() - self.starts[g]))
    }

    /// Counts writes per group for a stream of write addresses.
    pub fn load_counts<I: IntoIterator<Item = Lba>>(&self, writes: I) -> Vec<u64> {
        let mut counts = vec![0u64; self.group_count()];
        for lba in writes {
            counts[self.group_for(lba)] += 1;
        }
        counts
    }

    /// Per-group MVA service demands: each group is one station of the
    /// closed network, and its demand is the per-write service time
    /// weighted by the fraction of the write stream its shard absorbs.
    pub fn service_demands(&self, loads: &[u64], per_write_service: f64) -> Vec<f64> {
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return vec![0.0; self.group_count()];
        }
        loads
            .iter()
            .map(|&l| per_write_service * (l as f64 / total as f64))
            .collect()
    }

    /// Builds the MVA model for this placement: think time `z` and one
    /// station per group with load-weighted service demands.
    pub fn mva(&self, z: f64, loads: &[u64], per_write_service: f64) -> Mva {
        Mva::new(z, self.service_demands(loads, per_write_service))
    }
}

/// A volume sharded across several [`ClusterGroup`]s.
///
/// Each group's device covers only its shard's range; writes are routed
/// by the [`ShardMap`] with the LBA translated to the group-local
/// address space.
pub struct ShardedCluster<D> {
    map: ShardMap,
    groups: Vec<ClusterGroup<D>>,
}

impl<D: BlockDevice> ShardedCluster<D> {
    /// Assembles a sharded volume.
    ///
    /// # Panics
    ///
    /// Panics if the group count differs from the map's, or a group's
    /// device does not have exactly its shard's block count.
    pub fn new(map: ShardMap, groups: Vec<ClusterGroup<D>>) -> Self {
        assert_eq!(groups.len(), map.group_count(), "one group per shard");
        for (g, group) in groups.iter().enumerate() {
            let want = map.range(g).end - map.range(g).start;
            let have = group.device().geometry().num_blocks();
            assert_eq!(
                have, want,
                "group {g} device holds {have} blocks, shard needs {want}"
            );
        }
        Self { map, groups }
    }

    /// The placement map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The group serving shard `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group(&self, g: usize) -> &ClusterGroup<D> {
        &self.groups[g]
    }

    /// Mutable access to the group serving shard `g` (for lifecycle
    /// and resync driving).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group_mut(&mut self, g: usize) -> &mut ClusterGroup<D> {
        &mut self.groups[g]
    }

    /// Routes one write to the owning shard.
    ///
    /// # Errors
    ///
    /// As [`ClusterGroup::write`].
    pub fn write(&mut self, lba: Lba, new: &[u8]) -> Result<WriteOutcome, ClusterError> {
        let (g, local) = self.map.local_lba(lba);
        self.groups[g].write(local, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_everything_once() {
        let map = ShardMap::even(10, 3); // 4, 3, 3
        assert_eq!(map.group_count(), 3);
        assert_eq!(map.range(0), 0..4);
        assert_eq!(map.range(1), 4..7);
        assert_eq!(map.range(2), 7..10);
        for lba in 0..10u64 {
            let g = map.group_for(Lba(lba));
            assert!(map.range(g).contains(&lba));
        }
        assert_eq!(map.local_lba(Lba(5)), (1, Lba(1)));
        assert_eq!(map.local_lba(Lba(0)), (0, Lba(0)));
        assert_eq!(map.local_lba(Lba(9)), (2, Lba(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_lba_panics() {
        ShardMap::even(10, 2).group_for(Lba(10));
    }

    #[test]
    fn load_counts_and_demands() {
        let map = ShardMap::even(8, 2);
        let writes = [0u64, 1, 2, 3, 3, 3, 4, 7].map(Lba);
        let loads = map.load_counts(writes);
        assert_eq!(loads, vec![6, 2]);
        let demands = map.service_demands(&loads, 0.004);
        assert!((demands[0] - 0.003).abs() < 1e-12);
        assert!((demands[1] - 0.001).abs() < 1e-12);
        assert_eq!(map.service_demands(&[0, 0], 0.004), vec![0.0, 0.0]);
    }

    #[test]
    fn placement_feeds_mva() {
        let map = ShardMap::even(100, 4);
        // Uniform load: four equal stations.
        let mva = map.mva(0.1, &[25, 25, 25, 25], 0.004);
        let balanced = mva.solve(32).throughput;
        // Skewed load: one hot shard bottlenecks the network.
        let mva = map.mva(0.1, &[85, 5, 5, 5], 0.004);
        let skewed = mva.solve(32).throughput;
        assert!(
            balanced > skewed,
            "balanced {balanced} should beat skewed {skewed}"
        );
    }
}
