//! LBA-range sharding across replica groups.
//!
//! A large volume is split into contiguous LBA ranges, each served by
//! its own replica group ([`ClusterGroup`]). Placement determines load:
//! the per-group write counts a trace induces become the per-station
//! service demands of the paper's closed queueing network, so shard
//! placement feeds directly into the MVA model.

use std::ops::Range;
use std::sync::Arc;

use prins_block::{BlockDevice, Lba};
use prins_net::Clock;
use prins_obs::{Counter, Event, EventKind, Registry, TraceId, TraceSink, TraceStage};
use prins_queueing::Mva;

use crate::{ClusterError, ClusterGroup, Placement, ReadOutcome, WriteOutcome};

/// A partition of `[0, num_blocks)` into contiguous per-group ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// `starts[g]..starts[g + 1]` is group `g`'s LBA range.
    starts: Vec<u64>,
    num_blocks: u64,
}

impl ShardMap {
    /// Splits `num_blocks` as evenly as possible across `groups`
    /// ranges (the first `num_blocks % groups` ranges get one extra
    /// block).
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `num_blocks < groups as u64`.
    pub fn even(num_blocks: u64, groups: usize) -> Self {
        assert!(groups > 0, "at least one group");
        assert!(
            num_blocks >= groups as u64,
            "need at least one block per group"
        );
        let base = num_blocks / groups as u64;
        let extra = num_blocks % groups as u64;
        let mut starts = Vec::with_capacity(groups + 1);
        let mut at = 0;
        for g in 0..groups as u64 {
            starts.push(at);
            at += base + u64::from(g < extra);
        }
        starts.push(num_blocks);
        Self { starts, num_blocks }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total blocks across all shards.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// The group serving `lba`.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range.
    pub fn group_for(&self, lba: Lba) -> usize {
        assert!(lba.index() < self.num_blocks, "lba {lba:?} out of range");
        // partition_point returns the count of starts <= lba; the last
        // such range contains it.
        self.starts.partition_point(|&s| s <= lba.index()) - 1
    }

    /// Group `g`'s LBA range as `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn range(&self, g: usize) -> std::ops::Range<u64> {
        self.starts[g]..self.starts[g + 1]
    }

    /// Translates a volume LBA to the containing group's local LBA.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range.
    pub fn local_lba(&self, lba: Lba) -> (usize, Lba) {
        let g = self.group_for(lba);
        (g, Lba(lba.index() - self.starts[g]))
    }

    /// Counts writes per group for a stream of write addresses.
    pub fn load_counts<I: IntoIterator<Item = Lba>>(&self, writes: I) -> Vec<u64> {
        let mut counts = vec![0u64; self.group_count()];
        for lba in writes {
            counts[self.group_for(lba)] += 1;
        }
        counts
    }

    /// Per-group MVA service demands: each group is one station of the
    /// closed network, and its demand is the per-write service time
    /// weighted by the fraction of the write stream its shard absorbs.
    pub fn service_demands(&self, loads: &[u64], per_write_service: f64) -> Vec<f64> {
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return vec![0.0; self.group_count()];
        }
        loads
            .iter()
            .map(|&l| per_write_service * (l as f64 / total as f64))
            .collect()
    }

    /// Builds the MVA model for this placement: think time `z` and one
    /// station per group with load-weighted service demands.
    pub fn mva(&self, z: f64, loads: &[u64], per_write_service: f64) -> Mva {
        Mva::new(z, self.service_demands(loads, per_write_service))
    }
}

/// An in-progress live migration of one LBA range between groups.
#[derive(Clone, Debug)]
struct Migration {
    range: Range<u64>,
    from: usize,
    to: usize,
    /// Next LBA to copy; `range.end` means the copy is done.
    cursor: u64,
}

/// Snapshot of an in-progress migration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationStatus {
    /// The volume LBA range being moved.
    pub range: Range<u64>,
    /// Group the range is moving from (still the owner).
    pub from: usize,
    /// Group the range is moving to.
    pub to: usize,
    /// Blocks copied so far.
    pub copied: u64,
    /// Blocks still to copy before cutover.
    pub remaining: u64,
}

/// Observability hookup for a [`ShardedCluster`]: migration traffic
/// and cutover events.
struct ShardObs {
    registry: Arc<Registry>,
    clock: Arc<dyn Clock>,
    /// Payload bytes copied by live migrations.
    migration_bytes: Arc<Counter>,
}

/// Tracing hookup for migration batches. Per-write traces live in each
/// group's own tracer (shard tag = group index); this one only mints
/// the standalone copy-batch traces.
struct MigrateTracer {
    sink: Arc<TraceSink>,
    clock: Arc<dyn Clock>,
    /// Shard tag for migration traces — one past the last group, so
    /// batch ids can never collide with any group's write ids.
    shard: u32,
    counter: u64,
}

/// A volume sharded across several [`ClusterGroup`]s.
///
/// Writes and reads are routed by a [`Placement`] policy — contiguous
/// ranges ([`ShardMap`], the legacy layout) or weighted rendezvous
/// hashing ([`RendezvousPlacement`](crate::RendezvousPlacement)) —
/// with the LBA translated to the group-local address space where the
/// placement requires it.
///
/// Identity-addressed placements additionally support **live
/// migration**: [`migrate_start`](Self::migrate_start) copies a range
/// to another group under foreground writes (which dual-dispatch to
/// both groups until cutover), and the cutover bumps the source
/// group's response epochs so acknowledgements stranded mid-move drop
/// deterministically instead of being credited to post-move traffic.
pub struct ShardedCluster<D, P = ShardMap> {
    placement: P,
    groups: Vec<ClusterGroup<D>>,
    /// Ownership overrides from completed migrations, latest wins.
    overrides: Vec<(Range<u64>, usize)>,
    migration: Option<Migration>,
    obs: Option<ShardObs>,
    tracer: Option<MigrateTracer>,
}

impl<D: BlockDevice, P: Placement> ShardedCluster<D, P> {
    /// Assembles a sharded volume.
    ///
    /// # Panics
    ///
    /// Panics if the group count differs from the placement's, or a
    /// group's device does not have the block count the placement
    /// requires (the shard's range for [`ShardMap`], the full volume
    /// for identity-addressed placements).
    pub fn new(placement: P, groups: Vec<ClusterGroup<D>>) -> Self {
        assert_eq!(groups.len(), placement.group_count(), "one group per shard");
        for (g, group) in groups.iter().enumerate() {
            let want = placement.device_blocks(g);
            let have = group.device().geometry().num_blocks();
            assert_eq!(
                have, want,
                "group {g} device holds {have} blocks, placement needs {want}"
            );
        }
        Self {
            placement,
            groups,
            overrides: Vec::new(),
            migration: None,
            obs: None,
            tracer: None,
        }
    }

    /// Attaches a metrics registry: migrations record `migrate-batch` /
    /// `cutover` events and the `migration_bytes` counter from here on.
    /// Attach each group's observer separately (they may share the
    /// registry).
    pub fn attach_observer(&mut self, registry: Arc<Registry>, clock: Arc<dyn Clock>) {
        let migration_bytes = registry.counter("migration_bytes");
        self.obs = Some(ShardObs {
            registry,
            clock,
            migration_bytes,
        });
    }

    /// Attaches one shared trace sink to every group (shard tag =
    /// group index, so a dual-dispatched write during a migration
    /// naturally produces one trace per group) and arms migration
    /// tracing: each [`migrate_step`](Self::migrate_step) batch mints
    /// a standalone trace completed by a `migrate-copy` hop on the
    /// target group's lane. Size
    /// [`TraceConfig::shards`](prins_obs::TraceConfig::shards) as
    /// `group_count() + 1` to give migration traffic its own SLO slot.
    pub fn attach_tracer(&mut self, sink: Arc<TraceSink>, clock: Arc<dyn Clock>) {
        for (g, group) in self.groups.iter_mut().enumerate() {
            group.attach_tracer(Arc::clone(&sink), g as u32, Arc::clone(&clock));
        }
        let shard = self.groups.len() as u32;
        self.tracer = Some(MigrateTracer {
            sink,
            clock,
            shard,
            counter: 0,
        });
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.tracer.as_ref().map(|t| &t.sink)
    }

    /// The placement policy.
    pub fn placement(&self) -> &P {
        &self.placement
    }

    /// Number of replica groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group serving shard `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group(&self, g: usize) -> &ClusterGroup<D> {
        &self.groups[g]
    }

    /// Mutable access to the group serving shard `g` (for lifecycle
    /// and resync driving).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group_mut(&mut self, g: usize) -> &mut ClusterGroup<D> {
        &mut self.groups[g]
    }

    /// The group currently owning `lba`: the latest migration override
    /// covering it, or the placement's assignment.
    pub fn owner(&self, lba: Lba) -> usize {
        for (range, g) in self.overrides.iter().rev() {
            if range.contains(&lba.index()) {
                return *g;
            }
        }
        self.placement.group_for(lba)
    }

    /// Routes `lba` to `(owning group, group-local LBA)`.
    fn locate(&self, lba: Lba) -> (usize, Lba) {
        for (range, g) in self.overrides.iter().rev() {
            if range.contains(&lba.index()) {
                // Overrides only exist under identity addressing.
                return (*g, lba);
            }
        }
        self.placement.local_lba(lba)
    }

    /// Routes one write to the owning shard. While a migration covers
    /// `lba`, the write dual-dispatches: the target group applies it
    /// too, so blocks already copied stay current until cutover.
    ///
    /// # Errors
    ///
    /// As [`ClusterGroup::write`] (a dual-dispatch failure on the
    /// migration target surfaces like any replication failure).
    pub fn write(&mut self, lba: Lba, new: &[u8]) -> Result<WriteOutcome, ClusterError> {
        let (g, local) = self.locate(lba);
        let outcome = self.groups[g].write(local, new)?;
        if let Some(m) = &self.migration {
            if m.range.contains(&lba.index()) {
                // Identity addressing (checked at migrate_start): the
                // target group uses the same LBA.
                self.groups[m.to].write(lba, new)?;
            }
        }
        Ok(outcome)
    }

    /// Serves one read from the owning shard, offloading to an in-sync
    /// replica when the freshness guard allows (see
    /// [`ClusterGroup::read`]).
    ///
    /// # Errors
    ///
    /// As [`ClusterGroup::read`].
    pub fn read(&mut self, lba: Lba) -> Result<ReadOutcome, ClusterError> {
        let (g, local) = self.locate(lba);
        self.groups[g].read(local)
    }

    /// Snapshot of the in-progress migration, if any.
    pub fn migration(&self) -> Option<MigrationStatus> {
        self.migration.as_ref().map(|m| MigrationStatus {
            range: m.range.clone(),
            from: m.from,
            to: m.to,
            copied: m.cursor - m.range.start,
            remaining: m.range.end - m.cursor,
        })
    }

    /// Begins a live migration of `range` from group `from` to group
    /// `to`. Drive the copy with [`migrate_step`](Self::migrate_step);
    /// foreground writes may be interleaved between steps and
    /// dual-dispatch to both groups until cutover.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Migration`] if the placement is not
    /// identity-addressed, a migration is already in progress, the
    /// range is empty/out of bounds, the groups are invalid, or any
    /// block in `range` is not currently owned by `from`.
    pub fn migrate_start(
        &mut self,
        range: Range<u64>,
        from: usize,
        to: usize,
    ) -> Result<(), ClusterError> {
        if !self.placement.identity_addressed() {
            return Err(ClusterError::Migration(
                "placement is not identity-addressed: blocks cannot keep \
                 their address on the target group"
                    .into(),
            ));
        }
        if self.migration.is_some() {
            return Err(ClusterError::Migration(
                "a migration is already in progress".into(),
            ));
        }
        if from >= self.groups.len() || to >= self.groups.len() || from == to {
            return Err(ClusterError::Migration(format!(
                "invalid group pair {from} -> {to}"
            )));
        }
        if range.is_empty() || range.end > self.placement.num_blocks() {
            return Err(ClusterError::Migration(format!(
                "range {range:?} is empty or out of bounds"
            )));
        }
        for i in range.clone() {
            let owner = self.owner(Lba(i));
            if owner != from {
                return Err(ClusterError::Migration(format!(
                    "block {i} is owned by group {owner}, not {from}"
                )));
            }
        }
        self.migration = Some(Migration {
            cursor: range.start,
            range,
            from,
            to,
        });
        Ok(())
    }

    /// Copies up to `max_blocks` blocks of the migrating range to the
    /// target group (through its full replication path). When the copy
    /// completes, the migration **cuts over**: both groups drain their
    /// in-flight traffic, the source group opens a new response
    /// generation ([`ClusterGroup::bump_epochs`]) so acknowledgements
    /// stranded mid-move identify themselves as stale, and ownership of
    /// the range flips to the target.
    ///
    /// Returns the number of blocks still to copy (0 = cut over).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Migration`] if no migration is in progress;
    /// device or replication errors as [`ClusterGroup::write`].
    pub fn migrate_step(&mut self, max_blocks: usize) -> Result<u64, ClusterError> {
        let Some(m) = self.migration.clone() else {
            return Err(ClusterError::Migration("no migration in progress".into()));
        };
        let batch_end = m.range.end.min(m.cursor + max_blocks as u64);
        let bs = self.groups[m.from].device().geometry().block_size().bytes() as u64;
        // One trace per copy batch (the per-block writes below mint
        // their own traces through the target group's tracer).
        let tid = self.tracer.as_mut().map(|t| {
            let id = TraceId::for_shard(t.shard, t.counter);
            t.counter += 1;
            t.sink.begin(id, t.shard, 1, t.clock.now_nanos(), 0);
            id
        });
        for i in m.cursor..batch_end {
            let lba = Lba(i);
            let data = self.groups[m.from].device().read_block_vec(lba)?;
            self.groups[m.to].write(lba, &data)?;
        }
        if let Some(live) = self.migration.as_mut() {
            live.cursor = batch_end;
        }
        let copied = batch_end - m.cursor;
        let remaining = m.range.end - batch_end;
        if let (Some(t), Some(id)) = (&self.tracer, tid) {
            t.sink.complete(
                id,
                TraceStage::MigrateCopy,
                m.to as u32,
                t.clock.now_nanos(),
                (copied * bs) as usize,
            );
        }
        if let Some(obs) = &self.obs {
            obs.migration_bytes.add(copied * bs);
            obs.registry.events().record(Event::new(
                obs.clock.now_nanos(),
                EventKind::MigrateBatch {
                    copied: copied as u32,
                    remaining: remaining as u32,
                },
            ));
        }
        if remaining == 0 {
            self.cutover();
        }
        Ok(remaining)
    }

    /// Runs a live migration of `range` from group `from` to group `to`
    /// to completion — [`migrate_start`](Self::migrate_start) plus
    /// [`migrate_step`](Self::migrate_step) until cutover.
    ///
    /// # Errors
    ///
    /// As the two driving calls.
    pub fn migrate(
        &mut self,
        range: Range<u64>,
        from: usize,
        to: usize,
    ) -> Result<(), ClusterError> {
        self.migrate_start(range, from, to)?;
        while self.migrate_step(64)? > 0 {}
        Ok(())
    }

    /// Flips ownership of the migrated range to the target group.
    fn cutover(&mut self) {
        let Some(m) = self.migration.take() else {
            return;
        };
        // Settle in-flight traffic on both sides of the move, then
        // close the source group's response generations: an ack still
        // queued on a slow link answers a frame from before the move
        // and must drop on arrival, not be matched to post-cutover
        // frames.
        self.groups[m.from].drain();
        self.groups[m.from].bump_epochs();
        self.groups[m.to].drain();
        self.overrides.push((m.range.clone(), m.to));
        if let Some(obs) = &self.obs {
            obs.registry.events().record(Event::new(
                obs.clock.now_nanos(),
                EventKind::Cutover {
                    from: m.from as u32,
                    to: m.to as u32,
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, RendezvousPlacement};
    use prins_block::{BlockSize, MemDevice};

    /// A replica-less group: primary image only — enough to exercise
    /// routing, dual dispatch, and cutover without threads.
    fn group(blocks: u64) -> ClusterGroup<MemDevice> {
        ClusterGroup::new(
            MemDevice::new(BlockSize::kb4(), blocks),
            ClusterConfig::default(),
            vec![],
        )
    }

    #[test]
    fn shard_map_cluster_rejects_migration() {
        let mut cluster = ShardedCluster::new(ShardMap::even(8, 2), vec![group(4), group(4)]);
        assert!(matches!(
            cluster.migrate_start(0..1, 0, 1),
            Err(ClusterError::Migration(_))
        ));
    }

    #[test]
    fn live_migration_cuts_over_under_foreground_writes() {
        let p = RendezvousPlacement::new(8, 2);
        let from = p.group_for(Lba(0));
        let to = 1 - from;
        let mut c = ShardedCluster::new(p, vec![group(8), group(8)]);
        c.write(Lba(0), &[0xAA; 4096]).unwrap();

        c.migrate_start(0..1, from, to).unwrap();
        // A foreground write during the move dual-dispatches.
        let b = vec![0xBB; 4096];
        c.write(Lba(0), &b).unwrap();
        assert_eq!(c.group(to).device().read_block_vec(Lba(0)).unwrap(), b);
        assert_eq!(c.migration().unwrap().remaining, 1);

        assert_eq!(c.migrate_step(8).unwrap(), 0);
        assert!(c.migration().is_none());
        assert_eq!(c.owner(Lba(0)), to);

        // Post-cutover writes land only on the new owner.
        let d = vec![0xDD; 4096];
        c.write(Lba(0), &d).unwrap();
        assert_eq!(c.read(Lba(0)).unwrap().data, d);
        assert_eq!(c.group(to).device().read_block_vec(Lba(0)).unwrap(), d);
        assert_eq!(c.group(from).device().read_block_vec(Lba(0)).unwrap(), b);
    }

    #[test]
    fn migrate_validates_range_ownership_and_exclusivity() {
        let p = RendezvousPlacement::new(8, 2);
        let from = p.group_for(Lba(0));
        let mut c = ShardedCluster::new(p, vec![group(8), group(8)]);
        // Self-migration, bad range, and a foreign-owned block all fail.
        assert!(c.migrate_start(0..1, from, from).is_err());
        assert!(c.migrate_start(3..3, from, 1 - from).is_err());
        assert!(c.migrate_start(0..9, from, 1 - from).is_err());
        assert!(
            c.migrate_start(0..8, from, 1 - from).is_err(),
            "the whole volume cannot be owned by one group"
        );
        // Only one migration at a time.
        c.migrate_start(0..1, from, 1 - from).unwrap();
        let other = (0..8).map(Lba).find(|l| c.owner(*l) == 1 - from).unwrap();
        assert!(c
            .migrate_start(other.index()..other.index() + 1, 1 - from, from)
            .is_err());
        assert!(matches!(
            c.migrate_step(0),
            Ok(1) // zero-block step: copy stands still, no cutover
        ));
    }

    #[test]
    fn even_split_covers_everything_once() {
        let map = ShardMap::even(10, 3); // 4, 3, 3
        assert_eq!(map.group_count(), 3);
        assert_eq!(map.range(0), 0..4);
        assert_eq!(map.range(1), 4..7);
        assert_eq!(map.range(2), 7..10);
        for lba in 0..10u64 {
            let g = map.group_for(Lba(lba));
            assert!(map.range(g).contains(&lba));
        }
        assert_eq!(map.local_lba(Lba(5)), (1, Lba(1)));
        assert_eq!(map.local_lba(Lba(0)), (0, Lba(0)));
        assert_eq!(map.local_lba(Lba(9)), (2, Lba(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_lba_panics() {
        ShardMap::even(10, 2).group_for(Lba(10));
    }

    #[test]
    fn load_counts_and_demands() {
        let map = ShardMap::even(8, 2);
        let writes = [0u64, 1, 2, 3, 3, 3, 4, 7].map(Lba);
        let loads = map.load_counts(writes);
        assert_eq!(loads, vec![6, 2]);
        let demands = map.service_demands(&loads, 0.004);
        assert!((demands[0] - 0.003).abs() < 1e-12);
        assert!((demands[1] - 0.001).abs() < 1e-12);
        assert_eq!(map.service_demands(&[0, 0], 0.004), vec![0.0, 0.0]);
    }

    #[test]
    fn placement_feeds_mva() {
        let map = ShardMap::even(100, 4);
        // Uniform load: four equal stations.
        let mva = map.mva(0.1, &[25, 25, 25, 25], 0.004);
        let balanced = mva.solve(32).throughput;
        // Skewed load: one hot shard bottlenecks the network.
        let mva = map.mva(0.1, &[85, 5, 5, 5], 0.004);
        let skewed = mva.solve(32).throughput;
        assert!(
            balanced > skewed,
            "balanced {balanced} should beat skewed {skewed}"
        );
    }
}
