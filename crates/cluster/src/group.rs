//! The primary-side cluster engine: degraded writes, lifecycle
//! transitions, and resync.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use prins_block::{crc32c, BlockDevice, Lba};
use prins_net::{Clock, Transport};
use prins_obs::{
    Counter, Event, EventKind, Histogram, Registry, TraceId, TraceSink, TraceStage, NO_LANE,
};
use prins_parity::{SparseCodec, SparseParity};
use prins_repl::{
    decode_ack, decode_read_ack, encode_digest_request, encode_read_request, seal_frame, AckFrame,
    Payload, PayloadBody, ReplError, ReplicationMode, Replicator, ACK, DIGEST_ACK, NAK,
    NAK_CORRUPT, READ_ACK,
};
use prins_trap::{TrapDevice, TrapLog};

use crate::{ClusterError, DirtyMap, ReplicaState};

/// Observability hookup for a [`ClusterGroup`]: where lifecycle
/// transitions, resync progress, and ack round-trips are recorded once
/// [`ClusterGroup::attach_observer`] has been called.
struct ClusterObs {
    registry: Arc<Registry>,
    clock: Arc<dyn Clock>,
    /// Round-trip wait per collected acknowledgement (foreground and
    /// resync frames alike), as `cluster_ack_rtt_nanos`.
    ack_rtt: Arc<Histogram>,
    /// Acknowledgements discarded because their epoch predates the
    /// frame they would have been matched against.
    wrong_epoch_acks: Arc<Counter>,
    /// Frames a replica reported as failing their integrity check
    /// (`NAK_CORRUPT` answers — wire or replica-disk corruption).
    checksum_failures: Arc<Counter>,
    /// Divergent blocks found by the scrubber and repaired.
    scrub_repairs: Arc<Counter>,
    /// Reads served by a replica instead of the primary.
    reads_offloaded: Arc<Counter>,
    /// Read-offload attempts rejected by the freshness guard (replica
    /// not in sync, block dirty, or a stale-epoch response).
    read_rejected_stale: Arc<Counter>,
}

impl ClusterObs {
    fn new(registry: Arc<Registry>, clock: Arc<dyn Clock>) -> Self {
        let ack_rtt = registry.histogram("cluster_ack_rtt_nanos");
        let wrong_epoch_acks = registry.counter("wrong_epoch_acks");
        let checksum_failures = registry.counter("checksum_failures");
        let scrub_repairs = registry.counter("scrub_repairs");
        let reads_offloaded = registry.counter("reads_offloaded");
        let read_rejected_stale = registry.counter("read_rejected_stale");
        Self {
            registry,
            clock,
            ack_rtt,
            wrong_epoch_acks,
            checksum_failures,
            scrub_repairs,
            reads_offloaded,
            read_rejected_stale,
        }
    }

    fn state_change(&self, idx: usize, from: ReplicaState, to: ReplicaState) {
        if from == to {
            return;
        }
        self.registry.events().record(
            Event::new(
                self.clock.now_nanos(),
                EventKind::StateChange {
                    from: from.name(),
                    to: to.name(),
                },
            )
            .replica(idx),
        );
    }
}

/// Causal-tracing hookup for a [`ClusterGroup`]: mints a deterministic
/// [`TraceId`] per foreground write (and per offloaded read) and
/// appends the replica fan-out hops into a shared [`TraceSink`], so a
/// write's trace spans dispatch → per-replica send → ack (or the
/// wrong-epoch / error hop that ended it).
struct ClusterTracer {
    sink: Arc<TraceSink>,
    clock: Arc<dyn Clock>,
    /// Shard tag minted into every trace id — ties the group's SLO
    /// accounting to its slot in [`prins_obs::TraceConfig::shards`].
    shard: u32,
    /// Monotonic per-group counter: ids are deterministic functions of
    /// dispatch order, never of randomness or wall time.
    counter: u64,
    /// The trace whose response is currently being awaited, so the
    /// stale-epoch drop sites deep in the ack loop can attribute the
    /// wrong-epoch hop to the right trace.
    awaiting: Option<TraceId>,
}

impl ClusterTracer {
    fn next_id(&mut self) -> TraceId {
        let id = TraceId::for_shard(self.shard, self.counter);
        self.counter += 1;
        id
    }

    fn now(&self) -> u64 {
        self.clock.now_nanos()
    }
}

/// How a rejoining replica is caught up.
///
/// The three strategies are the x-axis of the resync-traffic figure:
/// full image is the naive baseline, dirty-bitmap sends full blocks but
/// only for blocks written during the outage, and parity-log replays
/// the sparse parity chains — the PRINS idea applied to recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResyncStrategy {
    /// Re-send every block of the volume.
    FullImage,
    /// Send a full image of each dirty block only.
    DirtyBitmap,
    /// Replay each dirty block's parity-log suffix; falls back to a
    /// full block image where the log has been pruned past the
    /// replica's first miss.
    ParityLog,
}

impl std::fmt::Display for ResyncStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ResyncStrategy::FullImage => "full-image",
            ResyncStrategy::DirtyBitmap => "dirty-bitmap",
            ResyncStrategy::ParityLog => "parity-log",
        };
        f.write_str(s)
    }
}

/// One frame of a resync plan.
#[derive(Clone, Debug)]
enum ResyncFrame {
    /// Push the block's current full image (read at send time).
    Full(Lba),
    /// Replay one logged parity (carrying its log sequence number so
    /// per-frame progress can be recorded in the dirty map).
    Parity(Lba, u64, SparseParity),
}

/// An in-progress resync for one replica.
#[derive(Debug)]
struct ResyncPlan {
    strategy: ResyncStrategy,
    queue: VecDeque<ResyncFrame>,
    /// LBAs whose `Full` frame is still queued: writes to these blocks
    /// are deferred because the image will be read at send time.
    pending_full: HashSet<u64>,
}

/// Per-replica bookkeeping on the primary.
struct Replica {
    transport: Box<dyn Transport>,
    state: ReplicaState,
    dirty: DirtyMap,
    consecutive_failures: u32,
    resync: Option<ResyncPlan>,
    foreground_bytes: u64,
    resync_bytes: u64,
    scrub_bytes: u64,
    read_bytes: u64,
    deferred_writes: u64,
    acked_writes: u64,
    /// Foreground writes sent but not yet acknowledged (FIFO — the
    /// transport delivers and the replica acknowledges in order), each
    /// remembering the epoch its frame was sealed with and the trace
    /// the eventual acknowledgement retires.
    outstanding: VecDeque<(Lba, u64, u64, Option<TraceId>)>,
    /// The replica's response-stream generation. Every frame is sealed
    /// with the current epoch and the replica echoes it in each ack, so
    /// a response stranded by a lost link (its write already booked as
    /// failed) identifies itself when it finally surfaces: its epoch is
    /// older than the frame it would be matched against, and it is
    /// dropped instead of miscounted. Bumped whenever a response may
    /// have been stranded (a recv failure) and on every rejoin.
    epoch: u64,
}

impl Replica {
    fn new(transport: Box<dyn Transport>) -> Self {
        Self {
            transport,
            state: ReplicaState::Online,
            dirty: DirtyMap::new(),
            consecutive_failures: 0,
            resync: None,
            foreground_bytes: 0,
            resync_bytes: 0,
            scrub_bytes: 0,
            read_bytes: 0,
            deferred_writes: 0,
            acked_writes: 0,
            outstanding: VecDeque::new(),
            epoch: 1,
        }
    }
}

/// Snapshot of one replica's status.
#[derive(Clone, Debug)]
pub struct ReplicaStatus {
    /// Lifecycle state.
    pub state: ReplicaState,
    /// Blocks this replica is missing writes for.
    pub dirty_blocks: usize,
    /// Coalesced dirty `[start, end)` LBA runs.
    pub dirty_intervals: Vec<(u64, u64)>,
    /// Resync frames still queued (0 unless resyncing).
    pub resync_pending: usize,
    /// Payload bytes sent as foreground replication.
    pub foreground_bytes: u64,
    /// Payload bytes sent as resync traffic.
    pub resync_bytes: u64,
    /// Payload bytes sent as scrub digest probes.
    pub scrub_bytes: u64,
    /// Payload bytes sent as offloaded read requests.
    pub read_bytes: u64,
    /// Foreground writes deferred (not sent) due to dirtiness.
    pub deferred_writes: u64,
    /// Foreground writes this replica acknowledged.
    pub acked_writes: u64,
    /// Foreground writes sent but not yet acknowledged (0 unless
    /// [`ClusterConfig::ack_window`] > 1).
    pub in_flight: usize,
}

/// Outcome of one degraded-mode write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Log sequence number assigned to the write.
    pub seq: u64,
    /// Replicas that acknowledged it.
    pub acked: usize,
    /// Replicas that deferred it (dirty block / covered by resync).
    pub deferred: usize,
    /// Replicas skipped because they are offline.
    pub skipped: usize,
}

/// Outcome of one offloaded read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The block's content.
    pub data: Vec<u8>,
    /// The replica that served it, or `None` for the primary image.
    pub source: Option<usize>,
    /// Candidate replicas the freshness guard rejected before the read
    /// was served (not in sync, block dirty, or a stale response).
    pub rejected: usize,
}

/// Outcome of a scrub pass over one replica.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// LBAs probed with a digest request.
    pub probed: usize,
    /// LBAs whose replica digest differed from the primary's image.
    pub mismatched: usize,
    /// Divergent LBAs repaired through the resync path.
    pub repaired: usize,
}

/// Cluster configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Replication strategy for foreground writes.
    pub mode: ReplicationMode,
    /// How long to wait for each acknowledgement.
    pub ack_timeout: Duration,
    /// Minimum replica acknowledgements per write before the write
    /// counts as safely replicated (0 = never fail the write).
    pub write_quorum: usize,
    /// Consecutive send/ack failures before a Lagging replica is
    /// declared Offline.
    pub offline_after: u32,
    /// In-flight (unacknowledged) foreground writes allowed per
    /// replica before [`ClusterGroup::write`] collects acks (default
    /// 1: every write waits, the paper's closed-loop model). Larger
    /// windows pipeline WAN round-trips; [`ClusterGroup::drain`] is
    /// the matching barrier. With a window > 1 the quorum check is
    /// optimistic — a sent-but-unacknowledged replica counts until
    /// its acknowledgement fails.
    pub ack_window: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            mode: ReplicationMode::Prins,
            ack_timeout: Duration::from_secs(10),
            write_quorum: 0,
            offline_after: 3,
            ack_window: 1,
        }
    }
}

/// A primary replicating to a set of replicas that can fail, lag, and
/// rejoin.
///
/// Unlike [`prins_repl::ReplicationGroup`], which aborts on the first
/// replica error, a `ClusterGroup` *degrades*: a failing replica moves
/// through the [`ReplicaState`] lifecycle, its missed writes are
/// recorded in a per-replica [`DirtyMap`], and the write succeeds as
/// long as [`ClusterConfig::write_quorum`] replicas acknowledge it.
/// The primary's own [`TrapLog`] doubles as the delta-resync source.
pub struct ClusterGroup<D> {
    device: TrapDevice<D>,
    replicator: Box<dyn Replicator>,
    replicas: Vec<Replica>,
    config: ClusterConfig,
    obs: Option<ClusterObs>,
    tracer: Option<ClusterTracer>,
    /// Round-robin cursor for offloaded reads.
    next_read: usize,
}

impl<D: BlockDevice> ClusterGroup<D> {
    /// Wraps `device` (the primary image) and the replica transports.
    ///
    /// All replicas start [`ReplicaState::Online`]; the caller is
    /// responsible for having synced initial images (e.g. all-zero
    /// devices all around, or an out-of-band copy).
    pub fn new(device: D, config: ClusterConfig, transports: Vec<Box<dyn Transport>>) -> Self {
        Self {
            device: TrapDevice::new(device),
            replicator: config.mode.replicator(),
            replicas: transports.into_iter().map(Replica::new).collect(),
            config,
            obs: None,
            tracer: None,
            next_read: 0,
        }
    }

    /// Attaches a metrics registry: from here on the cluster records
    /// lifecycle transitions as `state-change` events, resync progress
    /// as `resync-batch` events plus per-replica
    /// `replica{idx}_dirty_blocks` / `replica{idx}_resync_pending`
    /// gauges, and acknowledgement round-trips in the
    /// `cluster_ack_rtt_nanos` histogram. `clock` timestamps the
    /// events — pass the transports' [`SimClock`](prins_net::SimClock)
    /// for deterministic traces under simulation.
    pub fn attach_observer(&mut self, registry: Arc<Registry>, clock: Arc<dyn Clock>) {
        self.obs = Some(ClusterObs::new(registry, clock));
    }

    /// The attached metrics registry, if any.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// Attaches a trace sink: from here on every foreground write (and
    /// every offloaded read) mints a deterministic [`TraceId`] tagged
    /// with `shard` and records its replica fan-out — per-replica send,
    /// acknowledgement, wrong-epoch drop, or error — as trace hops.
    /// Share one sink across groups (and with an engine's flight
    /// recorder) for cluster-wide tail attribution; `clock` timestamps
    /// the hops —
    /// pass the transports' [`SimClock`](prins_net::SimClock) for
    /// deterministic traces under simulation.
    pub fn attach_tracer(&mut self, sink: Arc<TraceSink>, shard: u32, clock: Arc<dyn Clock>) {
        self.tracer = Some(ClusterTracer {
            sink,
            clock,
            shard,
            counter: 0,
            awaiting: None,
        });
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.tracer.as_ref().map(|t| &t.sink)
    }

    /// The primary device (wrapped with the parity log).
    pub fn device(&self) -> &TrapDevice<D> {
        &self.device
    }

    /// The primary's parity log — the delta-resync source.
    pub fn log(&self) -> &TrapLog {
        self.device.log()
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Lifecycle state of replica `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn state(&self, idx: usize) -> ReplicaState {
        self.replicas[idx].state
    }

    /// Status snapshot of replica `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn status(&self, idx: usize) -> ReplicaStatus {
        let r = &self.replicas[idx];
        ReplicaStatus {
            state: r.state,
            dirty_blocks: r.dirty.len(),
            dirty_intervals: r.dirty.intervals(),
            resync_pending: r.resync.as_ref().map_or(0, |p| p.queue.len()),
            foreground_bytes: r.foreground_bytes,
            resync_bytes: r.resync_bytes,
            scrub_bytes: r.scrub_bytes,
            read_bytes: r.read_bytes,
            deferred_writes: r.deferred_writes,
            acked_writes: r.acked_writes,
            in_flight: r.outstanding.len(),
        }
    }

    /// Applies one write to the primary and replicates it to every
    /// replica the lifecycle allows, degrading instead of aborting.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::Block`] if the *primary* write fails (nothing
    ///   was replicated),
    /// * [`ClusterError::QuorumLost`] if fewer than the configured
    ///   quorum acknowledged — the primary and the acknowledging
    ///   replicas have applied the write regardless.
    pub fn write(&mut self, lba: Lba, new: &[u8]) -> Result<WriteOutcome, ClusterError> {
        let old = self.device.read_block_vec(lba)?;
        self.device.write_block(lba, new)?;
        let seq = self.log().current_seq();
        let payload = self.replicator.encode_write(lba, &old, new);

        // One trace per cluster write; the hold (pending = 1) keeps it
        // open across the replica fan-out and is released at the end of
        // this call, so with a pipelined window the trace finalizes on
        // whichever later collection retires the last acknowledgement.
        let tid = self.tracer.as_mut().map(|t| {
            let id = t.next_id();
            t.sink.begin(id, t.shard, 1, t.now(), new.len());
            id
        });

        let mut outcome = WriteOutcome {
            seq,
            acked: 0,
            deferred: 0,
            skipped: 0,
        };
        for idx in 0..self.replicas.len() {
            match self.route_write(idx, lba, seq) {
                Route::Send => {
                    let epoch = self.replicas[idx].epoch;
                    let sealed = seal_frame(epoch, &payload);
                    match self.replicas[idx].transport.send(&sealed) {
                        Ok(()) => {
                            if let (Some(t), Some(id)) = (&self.tracer, tid) {
                                t.sink.add_pending(id, 1);
                                t.sink.event(
                                    id,
                                    TraceStage::ReplicaSend,
                                    idx as u32,
                                    t.now(),
                                    sealed.len(),
                                );
                            }
                            let r = &mut self.replicas[idx];
                            r.foreground_bytes += sealed.len() as u64;
                            r.outstanding.push_back((lba, seq, epoch, tid));
                        }
                        // The frame never left: the replica certainly
                        // did not apply it.
                        Err(_) => {
                            if let (Some(t), Some(id)) = (&self.tracer, tid) {
                                t.sink
                                    .event(id, TraceStage::SendError, idx as u32, t.now(), 0);
                            }
                            self.note_failure(idx, Some((lba, seq)), false);
                        }
                    }
                }
                Route::Defer => {
                    self.replicas[idx].deferred_writes += 1;
                    outcome.deferred += 1;
                }
                Route::Skip => {
                    self.replicas[idx].dirty.mark(lba, seq);
                    outcome.skipped += 1;
                }
            }
        }
        // Collect acknowledgements only where the window is full; with
        // the default window of 1 every sent write is awaited right
        // here (the closed-loop model). Acks retire writes
        // oldest-first, matching the transport's FIFO delivery.
        let window = self.config.ack_window.max(1);
        for idx in 0..self.replicas.len() {
            while self.replicas[idx].outstanding.len() >= window {
                if let Some((_, retired)) = self.collect_oldest(idx) {
                    if retired == seq {
                        outcome.acked += 1;
                    }
                }
            }
        }
        // Under a pipelined window a replica still holding this write
        // in flight counts toward quorum optimistically; if its ack
        // later fails, the replica degrades and the write is marked
        // dirty for resync.
        let in_flight = self
            .replicas
            .iter()
            .filter(|r| r.outstanding.iter().any(|&(_, s, _, _)| s == seq))
            .count();
        // Drop the dispatch hold: with everything acknowledged the
        // trace finalizes here; under a pipelined window it stays open
        // until the last outstanding acknowledgement is collected.
        if let (Some(t), Some(id)) = (&self.tracer, tid) {
            t.sink.release(id, t.now());
        }
        if outcome.acked + in_flight < self.config.write_quorum {
            return Err(ClusterError::QuorumLost {
                acked: outcome.acked,
                quorum: self.config.write_quorum,
            });
        }
        Ok(outcome)
    }

    /// Serves a read, offloading it to an in-sync replica when the
    /// freshness guard allows and falling back to the primary image
    /// otherwise — the scale-out read path.
    ///
    /// Replicas are tried round-robin. A candidate serves the read only
    /// if it is [`ReplicaState::Online`] with no dirty or in-flight
    /// state for `lba` (in-flight acks are collected first, so the
    /// request rides the same FIFO as the writes it must follow). The
    /// response is epoch-guarded like every acknowledgement: a replica
    /// answer stranded from before a failure or rejoin carries an older
    /// epoch and is dropped, so an offloaded read can never observe
    /// pre-rejoin state. Every rejected candidate counts in
    /// [`ReadOutcome::rejected`] (and the `read_rejected_stale`
    /// counter); a served offload increments `reads_offloaded`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Block`] if the primary fallback read fails.
    /// Replica-side failures degrade that replica and fall through to
    /// the next candidate — a read offload failure is never fatal.
    pub fn read(&mut self, lba: Lba) -> Result<ReadOutcome, ClusterError> {
        let n = self.replicas.len();
        let mut rejected = 0usize;
        // Offloaded reads get their own trace: one hop per rejected
        // candidate, completed by whichever source served the block
        // (lane = replica index, or `NO_LANE` for the primary image).
        let tid = self.tracer.as_mut().map(|t| {
            let id = t.next_id();
            t.sink.begin(id, t.shard, 1, t.now(), 0);
            id
        });
        for attempt in 0..n {
            let idx = (self.next_read + attempt) % n;
            match self.read_offload(idx, lba, tid) {
                Ok(Some(data)) => {
                    self.next_read = (idx + 1) % n.max(1);
                    if let Some(obs) = &self.obs {
                        obs.reads_offloaded.inc();
                    }
                    if let (Some(t), Some(id)) = (&self.tracer, tid) {
                        t.sink.complete(
                            id,
                            TraceStage::ReadOffload,
                            idx as u32,
                            t.now(),
                            data.len(),
                        );
                    }
                    return Ok(ReadOutcome {
                        data,
                        source: Some(idx),
                        rejected,
                    });
                }
                // Guard rejection or a degraded replica: try the next.
                Ok(None) | Err(_) => {
                    rejected += 1;
                    if let Some(obs) = &self.obs {
                        obs.read_rejected_stale.inc();
                    }
                    if let (Some(t), Some(id)) = (&self.tracer, tid) {
                        t.sink
                            .event(id, TraceStage::ReadReject, idx as u32, t.now(), 0);
                    }
                }
            }
        }
        let data = self.device.read_block_vec(lba)?;
        if let (Some(t), Some(id)) = (&self.tracer, tid) {
            t.sink
                .complete(id, TraceStage::ReadOffload, NO_LANE, t.now(), data.len());
        }
        Ok(ReadOutcome {
            data,
            source: None,
            rejected,
        })
    }

    /// Attempts to serve `lba` from replica `idx`. `Ok(None)` means the
    /// freshness guard refused (not an error — the caller falls back);
    /// `Err` means the replica failed mid-read and has been degraded.
    fn read_offload(
        &mut self,
        idx: usize,
        lba: Lba,
        tid: Option<TraceId>,
    ) -> Result<Option<Vec<u8>>, ClusterError> {
        if self.replicas[idx].state != ReplicaState::Online
            || self.replicas[idx].dirty.contains(lba)
        {
            return Ok(None);
        }
        // Align the FIFO: collect in-flight write acks so the read
        // request is answered after every write it must reflect. The
        // drain may degrade the replica — re-check.
        self.drain_replica(idx);
        if self.replicas[idx].state != ReplicaState::Online
            || self.replicas[idx].dirty.contains(lba)
        {
            return Ok(None);
        }
        let epoch = self.replicas[idx].epoch;
        let request = seal_frame(epoch, &encode_read_request(lba));
        if let Err(e) = self.replicas[idx].transport.send(&request) {
            self.note_failure(idx, None, false);
            return Err(ReplError::from(e).into());
        }
        self.replicas[idx].read_bytes += request.len() as u64;
        // Point the stale-epoch drop sites in the response loop at this
        // read's trace (the drain above cleared any previous target).
        if let Some(t) = &mut self.tracer {
            t.awaiting = tid;
        }
        let read = self.await_read(idx, epoch);
        if let Some(t) = &mut self.tracer {
            t.awaiting = None;
        }
        match read {
            Ok(data) => {
                self.replicas[idx].consecutive_failures = 0;
                Ok(Some(data))
            }
            Err(e) => {
                // The response stream is unreliable from here (the read
                // ack may surface later): open a new generation, like a
                // failed write collection.
                if matches!(e, ClusterError::Repl(ReplError::Net(_))) {
                    self.replicas[idx].epoch += 1;
                }
                self.note_failure(idx, None, false);
                Err(e)
            }
        }
    }

    /// Waits for replica `idx`'s answer to a read request sealed under
    /// `expected_epoch`, dropping stale-epoch responses on sight.
    fn await_read(&mut self, idx: usize, expected_epoch: u64) -> Result<Vec<u8>, ClusterError> {
        let bs = self.device.geometry().block_size().bytes();
        loop {
            let frame = self.replicas[idx]
                .transport
                .recv_timeout(self.config.ack_timeout)
                .map_err(ReplError::from)?;
            if frame.first() == Some(&READ_ACK) {
                let (epoch, sparse) = decode_read_ack(&frame)?;
                if epoch < expected_epoch {
                    // A read answer stranded from an older generation —
                    // pre-rejoin state. Drop it and keep waiting.
                    if let Some(obs) = &self.obs {
                        obs.wrong_epoch_acks.inc();
                    }
                    if let Some(t) = &self.tracer {
                        if let Some(id) = t.awaiting {
                            t.sink.mark_wrong_epoch(id, idx as u32, t.now());
                        }
                    }
                    continue;
                }
                let image = SparseCodec::default()
                    .decode(sparse, bs)
                    .map_err(ReplError::from)?
                    .to_dense(bs);
                return Ok(image);
            }
            let ack = decode_ack(&frame).map_err(|_| ReplError::MissingAck {
                replica: idx,
                got: frame.first().copied(),
            })?;
            if ack.status == NAK_CORRUPT {
                // The replica refused: damaged request or rotten media.
                if let Some(obs) = &self.obs {
                    obs.checksum_failures.inc();
                }
                return Err(ReplError::ChecksumMismatch {
                    expected: 0,
                    got: 0,
                }
                .into());
            }
            if ack.epoch < expected_epoch {
                // A stranded write ack surfacing late; drop it.
                if let Some(obs) = &self.obs {
                    obs.wrong_epoch_acks.inc();
                }
                if let Some(t) = &self.tracer {
                    if let Some(id) = t.awaiting {
                        t.sink.mark_wrong_epoch(id, idx as u32, t.now());
                    }
                }
                continue;
            }
            return Err(ReplError::MissingAck {
                replica: idx,
                got: Some(ack.status),
            }
            .into());
        }
    }

    /// Opens a new response generation on every replica — the migration
    /// cutover barrier. Any response to a frame sealed before this call
    /// (e.g. an ack stranded on a slow link while the shard moved away)
    /// identifies itself by its older epoch and is dropped
    /// deterministically instead of being matched against post-cutover
    /// traffic. Call after [`drain`](Self::drain).
    pub fn bump_epochs(&mut self) {
        for r in &mut self.replicas {
            r.epoch += 1;
        }
    }

    /// Takes replica `idx` offline (e.g. for planned maintenance).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownReplica`] for a bad index;
    /// [`ClusterError::InvalidTransition`] if already offline.
    pub fn mark_offline(&mut self, idx: usize) -> Result<(), ClusterError> {
        self.check_idx(idx)?;
        self.drain_replica(idx);
        self.transition(idx, ReplicaState::Offline)?;
        self.replicas[idx].resync = None;
        Ok(())
    }

    /// Collects every outstanding foreground acknowledgement — the
    /// barrier a flush needs when [`ClusterConfig::ack_window`] > 1.
    /// Collection failures degrade the owning replica (and mark the
    /// write dirty) rather than aborting the drain.
    ///
    /// Returns the number of writes confirmed by this call.
    pub fn drain(&mut self) -> usize {
        let mut retired = 0;
        for idx in 0..self.replicas.len() {
            retired += self.drain_replica(idx);
        }
        retired
    }

    /// Collects all of replica `idx`'s in-flight acknowledgements.
    fn drain_replica(&mut self, idx: usize) -> usize {
        let mut retired = 0;
        while !self.replicas[idx].outstanding.is_empty() {
            if self.collect_oldest(idx).is_some() {
                retired += 1;
            }
        }
        retired
    }

    /// Retires replica `idx`'s oldest in-flight write by collecting one
    /// acknowledgement. Returns the retired `(lba, seq)` on success; on
    /// failure the replica degrades and the write is marked dirty.
    fn collect_oldest(&mut self, idx: usize) -> Option<(Lba, u64)> {
        let (lba, seq, epoch, tid) = self.replicas[idx].outstanding.pop_front()?;
        if let Some(t) = &mut self.tracer {
            t.awaiting = tid;
        }
        let collected = self.await_ack(idx, epoch);
        if let Some(t) = &mut self.tracer {
            t.awaiting = None;
            if let Some(id) = tid {
                let stage = if collected.is_ok() {
                    TraceStage::ReplicaAck
                } else {
                    TraceStage::AckError
                };
                t.sink.complete(id, stage, idx as u32, t.now(), 0);
            }
        }
        match collected {
            Ok(()) => {
                let r = &mut self.replicas[idx];
                r.consecutive_failures = 0;
                r.acked_writes += 1;
                Some((lba, seq))
            }
            Err(e) => {
                // A recv failure means the response was NOT consumed —
                // the delivered write's ack can still arrive after the
                // link heals, sealed under this (now closed) epoch.
                // Open a new generation so that late ack identifies
                // itself as stale instead of being matched against a
                // newer frame. A NAK or corrupt-NAK *was* this write's
                // response, so no generation change is needed.
                if matches!(e, ClusterError::Repl(ReplError::Net(_))) {
                    self.replicas[idx].epoch += 1;
                }
                // The frame *was* sent; the replica may have applied it
                // before the link died. Replaying its parity chain
                // could double-XOR, so the block is uncertain.
                self.note_failure(idx, Some((lba, seq)), true);
                None
            }
        }
    }

    /// Starts catching replica `idx` up with `strategy`, moving it to
    /// [`ReplicaState::Resyncing`]. Drive the transfer with
    /// [`resync_step`](Self::resync_step) — foreground writes may be
    /// interleaved between steps.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidTransition`] unless the replica is
    /// Offline or Lagging.
    pub fn rejoin(&mut self, idx: usize, strategy: ResyncStrategy) -> Result<(), ClusterError> {
        self.check_idx(idx)?;
        // Settle any in-flight acks first so failures land in the dirty
        // map before the plan is built from it.
        self.drain_replica(idx);
        self.transition(idx, ReplicaState::Resyncing)?;
        // A rejoin opens a fresh response generation. Stray responses
        // still queued from before the outage are noise (their writes
        // already booked as failed, their blocks marked uncertain) —
        // they carry an older epoch, so the ack loop drops them on
        // sight instead of guessing with a skip budget.
        self.replicas[idx].epoch += 1;
        let plan = self.build_plan(idx, strategy);
        self.replicas[idx].resync = Some(plan);
        self.publish_replica_gauges(idx);
        Ok(())
    }

    /// Sends up to `max_frames` resync frames to replica `idx` and
    /// waits for their acknowledgements. When the plan drains, the
    /// replica transitions back to [`ReplicaState::Online`] and its
    /// dirty map clears.
    ///
    /// Returns the number of frames still queued (0 = resync done).
    ///
    /// # Errors
    ///
    /// On any transport/ack failure the resync aborts and the replica
    /// goes [`ReplicaState::Offline`]; per-frame progress already
    /// acknowledged is retained in the dirty map, so a later rejoin
    /// resumes rather than repeats.
    pub fn resync_step(&mut self, idx: usize, max_frames: usize) -> Result<usize, ClusterError> {
        self.check_idx(idx)?;
        if self.replicas[idx].state != ReplicaState::Resyncing {
            return Err(ClusterError::InvalidTransition {
                replica: idx,
                from: self.replicas[idx].state,
                to: ReplicaState::Resyncing,
            });
        }
        // Resync frames share the transport with foreground acks; under
        // a pipelined window, collect those first so the FIFO ack
        // stream stays aligned with the frames sent below. A failure
        // here aborts the resync (the drain took the replica Offline).
        self.drain_replica(idx);
        if self.replicas[idx].state != ReplicaState::Resyncing {
            return Err(ClusterError::InvalidTransition {
                replica: idx,
                from: self.replicas[idx].state,
                to: ReplicaState::Resyncing,
            });
        }

        // Send a batch (pipelined), remembering per-frame bookkeeping.
        // The epoch cannot move under the batch: it only bumps on
        // collection failures, which abort the step.
        let epoch = self.replicas[idx].epoch;
        let mut in_flight: Vec<(ResyncFrame, u64)> = Vec::new();
        for _ in 0..max_frames {
            let Some(frame) = self.replicas[idx]
                .resync
                .as_mut()
                .and_then(|p| p.queue.pop_front())
            else {
                break;
            };
            // Captured now because an ack clears the dirty entry: if
            // the batch later errors, the whole batch is re-marked
            // uncertain from these positions (see the error arm).
            let mark_from = match &frame {
                ResyncFrame::Full(lba) => self.replicas[idx].dirty.missed_from(*lba).unwrap_or(0),
                ResyncFrame::Parity(_, seq, _) => *seq,
            };
            let payload = match &frame {
                ResyncFrame::Full(lba) => {
                    if let Some(plan) = self.replicas[idx].resync.as_mut() {
                        plan.pending_full.remove(&lba.index());
                    }
                    Payload {
                        lba: *lba,
                        body: PayloadBody::Full(self.device.read_block_vec(*lba)?),
                    }
                    .to_bytes()
                }
                ResyncFrame::Parity(lba, _, parity) => Payload {
                    lba: *lba,
                    body: PayloadBody::Parity(parity.to_bytes()),
                }
                .to_bytes(),
            };
            let sealed = seal_frame(epoch, &payload);
            if let Err(e) = self.replicas[idx].transport.send(&sealed) {
                self.abort_resync(idx);
                self.publish_replica_gauges(idx);
                return Err(ClusterError::from(ReplError::from(e)));
            }
            self.replicas[idx].resync_bytes += sealed.len() as u64;
            in_flight.push((frame, mark_from));
        }

        // Collect the batch's acks; record per-frame progress so an
        // abort mid-batch leaves the dirty map accurate.
        let total = in_flight.len();
        for i in 0..total {
            match self.await_ack(idx, epoch) {
                Ok(()) => match in_flight[i].0 {
                    ResyncFrame::Full(lba) => self.replicas[idx].dirty.clear(lba),
                    ResyncFrame::Parity(lba, seq, _) => {
                        // The replica's copy now reflects the chain
                        // through this entry; later entries (queued or
                        // future) keep the block dirty from seq + 1.
                        let more = !self.log().chain_since(lba, seq + 1).is_empty();
                        let r = &mut self.replicas[idx];
                        r.dirty.clear(lba);
                        if more {
                            r.dirty.mark(lba, seq + 1);
                        }
                    }
                },
                Err(e) => {
                    // Unconsumed responses for the rest of the batch
                    // can surface late after the link heals, sealed
                    // under this epoch. Close the generation so they
                    // are dropped by tag, not guessed at by count.
                    self.replicas[idx].epoch += 1;
                    // Credit inside an errored batch is unattributable:
                    // acks carry no frame identity, so a silently lost
                    // repair frame shifts every later ack one frame
                    // forward and an "acknowledged" frame may in truth
                    // be unapplied (the fuzzer minimizes this to a
                    // dropped resync frame plus one healthy neighbour).
                    // Re-mark the *whole* batch — acked prefix included
                    // — so the next attempt ships full images for all
                    // of it.
                    for (frame, mark_from) in &in_flight {
                        let lba = match frame {
                            ResyncFrame::Full(lba) | ResyncFrame::Parity(lba, _, _) => *lba,
                        };
                        self.replicas[idx].dirty.mark_uncertain(lba, *mark_from);
                    }
                    self.abort_resync(idx);
                    self.publish_replica_gauges(idx);
                    return Err(e);
                }
            }
        }

        let remaining = self.replicas[idx]
            .resync
            .as_ref()
            .map_or(0, |p| p.queue.len());
        if remaining == 0 {
            let r = &mut self.replicas[idx];
            r.resync = None;
            r.dirty.clear_all();
            r.consecutive_failures = 0;
            r.state = ReplicaState::Online;
        }
        if let Some(obs) = &self.obs {
            obs.registry.events().record(
                Event::new(
                    obs.clock.now_nanos(),
                    EventKind::ResyncBatch {
                        sent: total as u32,
                        remaining: remaining as u32,
                    },
                )
                .replica(idx),
            );
            self.publish_replica_gauges(idx);
            if remaining == 0 {
                obs.state_change(idx, ReplicaState::Resyncing, ReplicaState::Online);
            }
        }
        Ok(remaining)
    }

    /// Refreshes replica `idx`'s resync-progress gauges.
    fn publish_replica_gauges(&self, idx: usize) {
        let Some(obs) = &self.obs else { return };
        let r = &self.replicas[idx];
        obs.registry
            .gauge(&format!("replica{idx}_dirty_blocks"))
            .set(r.dirty.len() as u64);
        obs.registry
            .gauge(&format!("replica{idx}_resync_pending"))
            .set(r.resync.as_ref().map_or(0, |p| p.queue.len()) as u64);
    }

    /// Runs [`resync_step`](Self::resync_step) until the plan drains.
    ///
    /// # Errors
    ///
    /// As [`resync_step`](Self::resync_step).
    pub fn resync_to_completion(&mut self, idx: usize, batch: usize) -> Result<(), ClusterError> {
        while self.resync_step(idx, batch.max(1))? > 0 {}
        Ok(())
    }

    /// Background-scrubs replica `idx` over `lbas`: asks the replica to
    /// digest each block *as read back from its own disk* and compares
    /// against the primary's image. Divergent blocks — silent media
    /// corruption no wire checksum can see — are marked uncertain and
    /// repaired through the regular resync path (full image per block).
    ///
    /// Only an [`ReplicaState::Online`] replica is scrubbed; in-flight
    /// foreground acks are drained first so digest responses stay
    /// aligned with the probes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownReplica`] for a bad index;
    /// [`ClusterError::InvalidTransition`] if the replica is not
    /// Online (or a pre-scrub drain degraded it); any transport,
    /// block, or resync error aborts the pass with the usual
    /// degradation bookkeeping — a later scrub or rejoin resumes.
    pub fn scrub_replica(
        &mut self,
        idx: usize,
        lbas: &[Lba],
    ) -> Result<ScrubOutcome, ClusterError> {
        self.check_idx(idx)?;
        self.drain_replica(idx);
        if self.replicas[idx].state != ReplicaState::Online {
            return Err(ClusterError::InvalidTransition {
                replica: idx,
                from: self.replicas[idx].state,
                to: ReplicaState::Online,
            });
        }
        let mut outcome = ScrubOutcome::default();
        let mut divergent: Vec<Lba> = Vec::new();
        let epoch = self.replicas[idx].epoch;
        for &lba in lbas {
            let probe = seal_frame(epoch, &encode_digest_request(lba));
            if let Err(e) = self.replicas[idx].transport.send(&probe) {
                self.note_failure(idx, None, false);
                return Err(ClusterError::from(ReplError::from(e)));
            }
            self.replicas[idx].scrub_bytes += probe.len() as u64;
            let digest = match self.await_digest(idx, epoch) {
                Ok(digest) => digest,
                Err(e) => {
                    // An unconsumed digest response can surface late;
                    // close the generation so it is dropped by tag.
                    if matches!(e, ClusterError::Repl(ReplError::Net(_))) {
                        self.replicas[idx].epoch += 1;
                    }
                    self.note_failure(idx, None, false);
                    return Err(e);
                }
            };
            outcome.probed += 1;
            if digest != crc32c(&self.device.read_block_vec(lba)?) {
                divergent.push(lba);
            }
        }
        if divergent.is_empty() {
            return Ok(outcome);
        }
        outcome.mismatched = divergent.len();
        // The replica's copy of each divergent block is wrong in an
        // unknown way, so mark it uncertain: the rejoin must ship a
        // full image, never a parity chain XORed over a corrupt base.
        let seq = self.log().current_seq();
        for &lba in &divergent {
            self.replicas[idx].dirty.mark_uncertain(lba, seq);
        }
        self.transition(idx, ReplicaState::Lagging)?;
        self.rejoin(idx, ResyncStrategy::DirtyBitmap)?;
        self.resync_to_completion(idx, divergent.len())?;
        outcome.repaired = divergent.len();
        if let Some(obs) = &self.obs {
            obs.scrub_repairs.add(outcome.repaired as u64);
        }
        Ok(outcome)
    }

    /// Scrubs every Online replica over a sampled LBA set: every
    /// `stride`-th block starting at `offset` (stride 1 = the whole
    /// volume). Replicas in any other state are skipped — their blocks
    /// are already covered by the dirty map and resync.
    ///
    /// Returns `(replica, outcome)` per scrubbed replica.
    ///
    /// # Errors
    ///
    /// As [`scrub_replica`](Self::scrub_replica).
    pub fn scrub(
        &mut self,
        offset: u64,
        stride: u64,
    ) -> Result<Vec<(usize, ScrubOutcome)>, ClusterError> {
        let lbas: Vec<Lba> = self
            .device
            .geometry()
            .range()
            .iter()
            .skip(offset as usize)
            .step_by(stride.max(1) as usize)
            .collect();
        let mut outcomes = Vec::new();
        for idx in 0..self.replicas.len() {
            if self.replicas[idx].state != ReplicaState::Online {
                continue;
            }
            outcomes.push((idx, self.scrub_replica(idx, &lbas)?));
        }
        Ok(outcomes)
    }

    fn check_idx(&self, idx: usize) -> Result<(), ClusterError> {
        if idx < self.replicas.len() {
            Ok(())
        } else {
            Err(ClusterError::UnknownReplica(idx))
        }
    }

    fn transition(&mut self, idx: usize, to: ReplicaState) -> Result<(), ClusterError> {
        let from = self.replicas[idx].state;
        if !from.can_transition(to) {
            return Err(ClusterError::InvalidTransition {
                replica: idx,
                from,
                to,
            });
        }
        self.replicas[idx].state = to;
        if let Some(obs) = &self.obs {
            obs.state_change(idx, from, to);
        }
        Ok(())
    }

    /// Decides what to do with a foreground write for replica `idx`.
    fn route_write(&mut self, idx: usize, lba: Lba, seq: u64) -> Route {
        match self.replicas[idx].state {
            ReplicaState::Offline => Route::Skip,
            ReplicaState::Online => Route::Send,
            ReplicaState::Lagging => {
                // A parity for a block the replica is stale on would be
                // XORed into the wrong base image — defer it.
                if self.replicas[idx].dirty.contains(lba) {
                    Route::Defer
                } else {
                    Route::Send
                }
            }
            ReplicaState::Resyncing => {
                let (pending_full, replaying_block) = {
                    let r = &self.replicas[idx];
                    match &r.resync {
                        None => return Route::Send,
                        Some(plan) => (
                            plan.pending_full.contains(&lba.index()),
                            plan.strategy == ResyncStrategy::ParityLog && r.dirty.contains(lba),
                        ),
                    }
                };
                if pending_full {
                    // The queued Full frame reads the image at send
                    // time and will carry this write.
                    Route::Defer
                } else if replaying_block {
                    // Fold the new write's parity into the block's
                    // queued replay frame — never queue a second frame
                    // for the same block (two same-block frames in one
                    // pipelined batch would let a lost first frame
                    // leave the second XORing a stale base).
                    let entry = self
                        .device
                        .log()
                        .chain_since(lba, seq)
                        .into_iter()
                        .find(|e| e.seq == seq);
                    if let (Some(entry), Some(plan)) = (entry, self.replicas[idx].resync.as_mut()) {
                        let queued = plan.queue.iter_mut().find_map(|f| match f {
                            ResyncFrame::Parity(l, s, p) if *l == lba => Some((s, p)),
                            _ => None,
                        });
                        if let Some((s, p)) = queued {
                            *p = p.fold(&entry.parity);
                            *s = seq;
                        } else {
                            plan.queue
                                .push_back(ResyncFrame::Parity(lba, seq, entry.parity));
                        }
                    }
                    Route::Defer
                } else {
                    Route::Send
                }
            }
        }
    }

    /// Books a send/ack failure: dirty marking, failure counting, and
    /// the lifecycle transition it triggers. `uncertain` says whether
    /// the frame was handed to the transport (delivery unknown — see
    /// [`DirtyMap::mark_uncertain`]) or never left the primary.
    fn note_failure(&mut self, idx: usize, write: Option<(Lba, u64)>, uncertain: bool) {
        let r = &mut self.replicas[idx];
        if let Some((lba, seq)) = write {
            if uncertain {
                r.dirty.mark_uncertain(lba, seq);
            } else {
                r.dirty.mark(lba, seq);
            }
        }
        r.consecutive_failures += 1;
        let from = r.state;
        match r.state {
            ReplicaState::Online => {
                r.state = ReplicaState::Lagging;
                if r.consecutive_failures >= self.config.offline_after {
                    r.state = ReplicaState::Offline;
                }
            }
            ReplicaState::Lagging => {
                if r.consecutive_failures >= self.config.offline_after {
                    r.state = ReplicaState::Offline;
                }
            }
            ReplicaState::Resyncing => {
                r.state = ReplicaState::Offline;
                r.resync = None;
            }
            ReplicaState::Offline => {}
        }
        let to = r.state;
        if let Some(obs) = &self.obs {
            obs.state_change(idx, from, to);
        }
    }

    fn abort_resync(&mut self, idx: usize) {
        let r = &mut self.replicas[idx];
        r.resync = None;
        r.consecutive_failures += 1;
        let from = r.state;
        r.state = ReplicaState::Offline;
        if let Some(obs) = &self.obs {
            obs.state_change(idx, from, ReplicaState::Offline);
        }
    }

    /// Waits for one ACK/NAK frame from replica `idx`, recording the
    /// round-trip wait (and any NAK / collection failure) in the
    /// attached registry.
    fn await_ack(&mut self, idx: usize, expected_epoch: u64) -> Result<(), ClusterError> {
        let started = self.obs.as_ref().map(|o| o.clock.now_nanos());
        let result = self.await_ack_inner(idx, expected_epoch);
        if let (Some(obs), Some(t0)) = (&self.obs, started) {
            let now = obs.clock.now_nanos();
            obs.ack_rtt.record(now.saturating_sub(t0));
            match &result {
                Ok(()) => {}
                Err(ClusterError::Repl(ReplError::Nak { .. })) => obs
                    .registry
                    .events()
                    .record(Event::new(now, EventKind::Nak).replica(idx)),
                Err(_) => obs
                    .registry
                    .events()
                    .record(Event::new(now, EventKind::AckError).replica(idx)),
            }
        }
        result
    }

    /// Waits for one acknowledgement from replica `idx` for a frame
    /// sealed under `expected_epoch`, deterministically dropping any
    /// response from an older generation — a stale ack for a write
    /// already booked as failed.
    fn await_ack_inner(&mut self, idx: usize, expected_epoch: u64) -> Result<(), ClusterError> {
        loop {
            match self.recv_response(idx, expected_epoch)? {
                None => continue,
                Some(ack) => {
                    return match ack.status {
                        ACK => Ok(()),
                        NAK => Err(ReplError::Nak { replica: idx }.into()),
                        NAK_CORRUPT => {
                            // The frame was damaged in flight; the
                            // replica rejected it before applying
                            // anything. (The digest values live on the
                            // replica — the status byte is the signal.)
                            if let Some(obs) = &self.obs {
                                obs.checksum_failures.inc();
                            }
                            Err(ReplError::ChecksumMismatch {
                                expected: 0,
                                got: 0,
                            }
                            .into())
                        }
                        // A digest ack answering a write is misaligned
                        // traffic.
                        other => Err(ReplError::MissingAck {
                            replica: idx,
                            got: Some(other),
                        }
                        .into()),
                    };
                }
            }
        }
    }

    /// Receives and decodes one response frame from replica `idx`.
    /// Returns `None` for a stale response (older epoch than the frame
    /// being collected) — the caller should keep waiting.
    fn recv_response(
        &mut self,
        idx: usize,
        expected_epoch: u64,
    ) -> Result<Option<AckFrame>, ClusterError> {
        let frame = self.replicas[idx]
            .transport
            .recv_timeout(self.config.ack_timeout)
            .map_err(ReplError::from)?;
        let ack = decode_ack(&frame).map_err(|_| ReplError::MissingAck {
            replica: idx,
            got: frame.first().copied(),
        })?;
        // A corrupted frame cannot echo the epoch it was sealed under —
        // the tag was destroyed in flight, so the replica answers
        // NAK_CORRUPT with whatever epoch it last saw. Exempting
        // NAK_CORRUPT from the stale filter is the conservative choice:
        // a genuinely stale corrupt NAK at worst marks one in-flight
        // frame uncertain (an extra resync), while dropping a current
        // one would shift FIFO credit onto the *next* ack and silently
        // credit the rejected frame.
        if ack.epoch < expected_epoch && ack.status != NAK_CORRUPT {
            if let Some(obs) = &self.obs {
                obs.wrong_epoch_acks.inc();
            }
            if let Some(t) = &self.tracer {
                if let Some(id) = t.awaiting {
                    t.sink.mark_wrong_epoch(id, idx as u32, t.now());
                }
            }
            return Ok(None);
        }
        Ok(Some(ack))
    }

    /// Waits for one digest response from replica `idx`, with the same
    /// stale-epoch dropping as [`await_ack_inner`](Self::await_ack_inner).
    fn await_digest(&mut self, idx: usize, expected_epoch: u64) -> Result<u32, ClusterError> {
        loop {
            match self.recv_response(idx, expected_epoch)? {
                None => continue,
                Some(ack) => {
                    return match (ack.status, ack.digest) {
                        (DIGEST_ACK, Some(digest)) => Ok(digest),
                        (NAK_CORRUPT, _) => {
                            if let Some(obs) = &self.obs {
                                obs.checksum_failures.inc();
                            }
                            Err(ReplError::ChecksumMismatch {
                                expected: 0,
                                got: 0,
                            }
                            .into())
                        }
                        (other, _) => Err(ReplError::MissingAck {
                            replica: idx,
                            got: Some(other),
                        }
                        .into()),
                    };
                }
            }
        }
    }

    fn build_plan(&self, idx: usize, strategy: ResyncStrategy) -> ResyncPlan {
        let r = &self.replicas[idx];
        let mut queue = VecDeque::new();
        let mut pending_full = HashSet::new();
        match strategy {
            ResyncStrategy::FullImage => {
                for lba in self.device.geometry().range().iter() {
                    queue.push_back(ResyncFrame::Full(lba));
                    pending_full.insert(lba.index());
                }
            }
            ResyncStrategy::DirtyBitmap => {
                for (lba, _) in r.dirty.iter() {
                    queue.push_back(ResyncFrame::Full(lba));
                    pending_full.insert(lba.index());
                }
            }
            ResyncStrategy::ParityLog => {
                let log: &TrapLog = self.device.log();
                for (lba, missed_from) in r.dirty.iter() {
                    // Delta replay needs every entry from the first
                    // miss *and* a known base: a pruned log or an
                    // uncertain block (a sent write whose ack was lost —
                    // the replica may already hold part of the chain,
                    // and XORing it in again would corrupt the block)
                    // forces the full-image path.
                    if log.pruned_through() >= missed_from || r.dirty.is_uncertain(lba) {
                        queue.push_back(ResyncFrame::Full(lba));
                        pending_full.insert(lba.index());
                    } else {
                        // Fold the block's whole chain into ONE parity
                        // frame (XOR composes). Besides shipping less,
                        // this is a safety property: with at most one
                        // resync frame per block, a lost frame can
                        // never leave a same-block successor in the
                        // batch to XOR against a base missing it.
                        let mut chain = log.chain_since(lba, missed_from).into_iter();
                        if let Some(first) = chain.next() {
                            let (seq, parity) = chain
                                .fold((first.seq, first.parity), |(_, acc), e| {
                                    (e.seq, acc.fold(&e.parity))
                                });
                            queue.push_back(ResyncFrame::Parity(lba, seq, parity));
                        }
                    }
                }
            }
        }
        ResyncPlan {
            strategy,
            queue,
            pending_full,
        }
    }
}

enum Route {
    Send,
    Defer,
    Skip,
}

impl<D: BlockDevice> std::fmt::Debug for ClusterGroup<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let states: Vec<String> = self.replicas.iter().map(|r| r.state.to_string()).collect();
        f.debug_struct("ClusterGroup")
            .field("strategy", &self.replicator.name())
            .field("replicas", &states)
            .field("seq", &self.log().current_seq())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::{BlockSize, MemDevice};
    use prins_net::{channel_pair, FaultTransport, LinkHandle, LinkModel};
    use prins_repl::verify_consistent;
    use rand::{RngExt, SeedableRng};
    use std::sync::Arc;

    struct Harness {
        cluster: ClusterGroup<MemDevice>,
        devices: Vec<Arc<MemDevice>>,
        links: Vec<LinkHandle>,
        workers: Vec<std::thread::JoinHandle<Result<u64, ReplError>>>,
    }

    fn harness(n: usize, blocks: u64, config: ClusterConfig) -> Harness {
        let mut transports: Vec<Box<dyn Transport>> = Vec::new();
        let mut devices = Vec::new();
        let mut links = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..n {
            let (primary_side, replica_side) = channel_pair(LinkModel::t1());
            let (faulty, link) = FaultTransport::new(primary_side);
            let device = Arc::new(MemDevice::new(BlockSize::kb4(), blocks));
            let dev = Arc::clone(&device);
            workers.push(std::thread::spawn(move || {
                prins_repl::run_replica(&*dev, &replica_side)
            }));
            transports.push(Box::new(faulty));
            devices.push(device);
            links.push(link);
        }
        let cluster =
            ClusterGroup::new(MemDevice::new(BlockSize::kb4(), blocks), config, transports);
        Harness {
            cluster,
            devices,
            links,
            workers,
        }
    }

    fn random_write(
        cluster: &mut ClusterGroup<MemDevice>,
        rng: &mut rand::rngs::StdRng,
        blocks: u64,
    ) -> Result<WriteOutcome, ClusterError> {
        let lba = Lba(rng.random_range(0..blocks));
        let mut block = cluster.device().read_block_vec(lba).unwrap();
        let at = rng.random_range(0..block.len() - 64);
        for b in &mut block[at..at + 64] {
            *b = rng.random();
        }
        cluster.write(lba, &block)
    }

    fn finish(h: Harness) -> Vec<Arc<MemDevice>> {
        let Harness {
            cluster,
            devices,
            workers,
            ..
        } = h;
        drop(cluster);
        for w in workers {
            w.join().unwrap().unwrap();
        }
        devices
    }

    #[test]
    fn healthy_cluster_replicates_and_converges() {
        let mut h = harness(2, 16, ClusterConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let outcome = random_write(&mut h.cluster, &mut rng, 16).unwrap();
            assert_eq!(outcome.acked, 2);
        }
        assert_eq!(h.cluster.state(0), ReplicaState::Online);
        for dev in &h.devices {
            assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
        }
        finish(h);
    }

    #[test]
    fn reads_offload_round_robin_and_reject_lagging_replicas() {
        let registry = prins_obs::Registry::new();
        let clock = prins_net::SimClock::new();
        let mut h = harness(2, 8, ClusterConfig::default());
        h.cluster
            .attach_observer(Arc::clone(&registry), clock.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..8 {
            random_write(&mut h.cluster, &mut rng, 8).unwrap();
        }

        // In-sync replicas serve reads round-robin, byte-identical to
        // the primary image.
        let want = h.cluster.device().read_block_vec(Lba(3)).unwrap();
        let r = h.cluster.read(Lba(3)).unwrap();
        assert_eq!(r.data, want);
        assert_eq!(r.source, Some(0));
        assert_eq!(r.rejected, 0);
        let r = h.cluster.read(Lba(3)).unwrap();
        assert_eq!((r.data, r.source), (want.clone(), Some(1)));
        assert_eq!(registry.snapshot().counters["reads_offloaded"], 2);

        // Degrade replica 0: its candidacy is rejected by the guard and
        // the read falls through to replica 1 — never stale data.
        h.links[0].sever();
        let outcome = random_write(&mut h.cluster, &mut rng, 8).unwrap();
        assert_eq!(outcome.acked, 1);
        assert_eq!(h.cluster.state(0), ReplicaState::Lagging);
        let want: Vec<Vec<u8>> = (0..8)
            .map(|i| h.cluster.device().read_block_vec(Lba(i)).unwrap())
            .collect();
        for i in 0..8u64 {
            let r = h.cluster.read(Lba(i)).unwrap();
            assert_eq!(r.data, want[i as usize]);
            assert_eq!(r.source, Some(1), "lagging replica 0 must not serve");
        }
        assert!(registry.snapshot().counters["read_rejected_stale"] > 0);

        // After rejoin and resync the replica serves again.
        h.links[0].restore();
        h.cluster.rejoin(0, ResyncStrategy::ParityLog).unwrap();
        h.cluster.resync_to_completion(0, 16).unwrap();
        let r = h.cluster.read(Lba(5)).unwrap();
        assert_eq!(r.data, want[5]);
        assert_eq!(r.source, Some(0));
        finish(h);
    }

    #[test]
    fn link_drop_degrades_instead_of_aborting() {
        let config = ClusterConfig {
            offline_after: 2,
            ..ClusterConfig::default()
        };
        let mut h = harness(2, 16, config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        random_write(&mut h.cluster, &mut rng, 16).unwrap();

        h.links[0].sever();
        // First failure: Online -> Lagging; second (distinct clean
        // block, so it is attempted): -> Offline.
        let o = h.cluster.write(Lba(0), &[1u8; 4096]).unwrap();
        assert_eq!((o.acked, o.skipped), (1, 0));
        assert_eq!(h.cluster.state(0), ReplicaState::Lagging);
        let o = h.cluster.write(Lba(1), &[2u8; 4096]).unwrap();
        assert_eq!(h.cluster.state(0), ReplicaState::Offline);
        assert_eq!(o.acked, 1);
        // Offline replica is skipped entirely, writes keep succeeding.
        let o = random_write(&mut h.cluster, &mut rng, 16).unwrap();
        assert_eq!((o.acked, o.skipped), (1, 1));
        assert!(h.cluster.status(0).dirty_blocks > 0);
        assert_eq!(h.cluster.state(1), ReplicaState::Online);
    }

    #[test]
    fn quorum_loss_is_reported_but_write_applies() {
        let config = ClusterConfig {
            write_quorum: 1,
            offline_after: 1,
            ..ClusterConfig::default()
        };
        let mut h = harness(1, 8, config);
        h.links[0].sever();
        let err = h.cluster.write(Lba(0), &[7u8; 4096]).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::QuorumLost {
                acked: 0,
                quorum: 1
            }
        ));
        // The primary applied the write regardless.
        assert_eq!(
            h.cluster.device().read_block_vec(Lba(0)).unwrap(),
            vec![7u8; 4096]
        );
    }

    #[test]
    fn nak_from_fault_device_degrades_replica() {
        // One replica's device is too small: every write NAKs there.
        let (primary_side, replica_side) = channel_pair(LinkModel::t1());
        let tiny = Arc::new(MemDevice::new(BlockSize::kb4(), 1));
        let dev = Arc::clone(&tiny);
        let worker = std::thread::spawn(move || prins_repl::run_replica(&*dev, &replica_side));
        let config = ClusterConfig {
            offline_after: 1,
            ack_timeout: Duration::from_secs(2),
            ..ClusterConfig::default()
        };
        let mut cluster = ClusterGroup::new(
            MemDevice::new(BlockSize::kb4(), 8),
            config,
            vec![Box::new(primary_side)],
        );
        let outcome = cluster.write(Lba(5), &[1u8; 4096]).unwrap();
        assert_eq!(outcome.acked, 0);
        assert_eq!(cluster.state(0), ReplicaState::Offline);
        assert!(worker.join().unwrap().is_err());
    }

    fn outage_and_rejoin(strategy: ResyncStrategy) {
        let config = ClusterConfig {
            offline_after: 1,
            ..ClusterConfig::default()
        };
        let blocks = 32;
        let mut h = harness(2, blocks, config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }

        // Outage: replica 0 misses 30 writes.
        h.links[0].sever();
        for _ in 0..30 {
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }
        assert_eq!(h.cluster.state(0), ReplicaState::Offline);

        // Rejoin and resync in small steps with interleaved writes.
        h.links[0].restore();
        h.cluster.rejoin(0, strategy).unwrap();
        assert_eq!(h.cluster.state(0), ReplicaState::Resyncing);
        loop {
            let remaining = h.cluster.resync_step(0, 4).unwrap();
            if remaining == 0 {
                break;
            }
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }
        assert_eq!(h.cluster.state(0), ReplicaState::Online);
        assert_eq!(h.cluster.status(0).dirty_blocks, 0);

        // Post-resync writes replicate everywhere again.
        for _ in 0..10 {
            let o = random_write(&mut h.cluster, &mut rng, blocks).unwrap();
            assert_eq!(o.acked, 2);
        }

        for dev in &h.devices {
            assert!(
                verify_consistent(h.cluster.device(), &**dev).unwrap(),
                "{strategy}"
            );
        }
        finish(h);
    }

    #[test]
    fn full_image_resync_converges() {
        outage_and_rejoin(ResyncStrategy::FullImage);
    }

    #[test]
    fn dirty_bitmap_resync_converges() {
        outage_and_rejoin(ResyncStrategy::DirtyBitmap);
    }

    #[test]
    fn parity_log_resync_converges() {
        outage_and_rejoin(ResyncStrategy::ParityLog);
    }

    #[test]
    fn parity_log_resync_folds_same_block_chain_into_one_frame() {
        let config = ClusterConfig {
            offline_after: 1,
            ..ClusterConfig::default()
        };
        let mut h = harness(2, 8, config);
        h.cluster.write(Lba(6), &[1u8; 4096]).unwrap();

        // Degrade on a sacrificial block, then miss a three-write chain
        // to block 6 while offline (clean certain misses, no frame ever
        // handed to the transport).
        h.links[0].sever();
        h.cluster.write(Lba(0), &[9u8; 4096]).unwrap();
        assert_eq!(h.cluster.state(0), ReplicaState::Offline);
        for tag in 2u8..=4 {
            h.cluster.write(Lba(6), &[tag; 4096]).unwrap();
        }

        // Four missed writes across two blocks, but block 6's chain
        // folds into one parity frame: a single two-frame step must
        // finish the whole resync. Shipping the chain frame-by-frame
        // would both cost more and reopen the lost-frame/stale-base
        // window inside a pipelined batch.
        h.links[0].restore();
        h.cluster.rejoin(0, ResyncStrategy::ParityLog).unwrap();
        let remaining = h.cluster.resync_step(0, 2).unwrap();
        assert_eq!(remaining, 0, "two frames must cover both blocks");
        assert_eq!(h.cluster.state(0), ReplicaState::Online);
        for dev in &h.devices {
            assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
        }
        finish(h);
    }

    #[test]
    fn parity_log_resync_is_far_cheaper_than_full_image() {
        let mut bytes = Vec::new();
        for strategy in [ResyncStrategy::FullImage, ResyncStrategy::ParityLog] {
            let config = ClusterConfig {
                offline_after: 1,
                ..ClusterConfig::default()
            };
            let blocks = 64;
            let mut h = harness(1, blocks, config);
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            h.links[0].sever();
            for _ in 0..40 {
                random_write(&mut h.cluster, &mut rng, blocks).unwrap();
            }
            h.links[0].restore();
            h.cluster.rejoin(0, strategy).unwrap();
            h.cluster.resync_to_completion(0, 8).unwrap();
            bytes.push(h.cluster.status(0).resync_bytes);
            for dev in &h.devices {
                assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
            }
            finish(h);
        }
        assert!(
            bytes[1] * 10 < bytes[0],
            "parity-log {} should be >10x below full-image {}",
            bytes[1],
            bytes[0]
        );
    }

    #[test]
    fn pruned_log_falls_back_to_full_blocks_and_still_converges() {
        let config = ClusterConfig {
            offline_after: 1,
            ..ClusterConfig::default()
        };
        let blocks = 16;
        let mut h = harness(1, blocks, config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        h.links[0].sever();
        for _ in 0..20 {
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }
        // Truncate the log past part of the outage window.
        let prune_to = h.cluster.log().current_seq() - 5;
        h.cluster.log().prune(prune_to);

        h.links[0].restore();
        h.cluster.rejoin(0, ResyncStrategy::ParityLog).unwrap();
        h.cluster.resync_to_completion(0, 8).unwrap();
        assert_eq!(h.cluster.state(0), ReplicaState::Online);
        for dev in &h.devices {
            assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
        }
        finish(h);
    }

    #[test]
    fn failure_during_resync_goes_offline_and_can_retry() {
        let config = ClusterConfig {
            offline_after: 1,
            ack_timeout: Duration::from_millis(200),
            ..ClusterConfig::default()
        };
        let blocks = 16;
        let mut h = harness(1, blocks, config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        h.links[0].sever();
        for _ in 0..10 {
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }
        // Rejoin while the link is still down: the first step fails.
        h.cluster.rejoin(0, ResyncStrategy::ParityLog).unwrap();
        assert!(h.cluster.resync_step(0, 4).is_err());
        assert_eq!(h.cluster.state(0), ReplicaState::Offline);

        // Second attempt with the link up succeeds.
        h.links[0].restore();
        h.cluster.rejoin(0, ResyncStrategy::ParityLog).unwrap();
        h.cluster.resync_to_completion(0, 4).unwrap();
        assert_eq!(h.cluster.state(0), ReplicaState::Online);
        for dev in &h.devices {
            assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
        }
        finish(h);
    }

    #[test]
    fn lifecycle_guards_reject_bad_calls() {
        let mut h = harness(1, 8, ClusterConfig::default());
        assert!(matches!(
            h.cluster.rejoin(5, ResyncStrategy::FullImage),
            Err(ClusterError::UnknownReplica(5))
        ));
        // Online replicas have nothing to resync.
        assert!(matches!(
            h.cluster.rejoin(0, ResyncStrategy::FullImage),
            Err(ClusterError::InvalidTransition { .. })
        ));
        assert!(h.cluster.resync_step(0, 4).is_err());
        // Offline twice is invalid.
        h.cluster.mark_offline(0).unwrap();
        assert!(h.cluster.mark_offline(0).is_err());
    }

    #[test]
    fn windowed_acks_pipeline_and_drain_retires_them() {
        let config = ClusterConfig {
            ack_window: 8,
            ..ClusterConfig::default()
        };
        let blocks = 16;
        let mut h = harness(2, blocks, config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }
        // Sends run ahead of acks by up to window - 1 writes.
        for idx in 0..2 {
            let s = h.cluster.status(idx);
            assert_eq!(s.in_flight, 7, "window 8 leaves 7 acks in flight");
            assert_eq!(s.acked_writes + s.in_flight as u64, 20);
            assert_eq!(h.cluster.state(idx), ReplicaState::Online);
        }
        assert_eq!(h.cluster.drain(), 14, "7 in flight on each replica");
        for idx in 0..2 {
            let s = h.cluster.status(idx);
            assert_eq!(s.in_flight, 0);
            assert_eq!(s.acked_writes, 20);
        }
        for dev in &h.devices {
            assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
        }
        finish(h);
    }

    #[test]
    fn quorum_counts_in_flight_writes_under_a_window() {
        let config = ClusterConfig {
            ack_window: 4,
            write_quorum: 1,
            ..ClusterConfig::default()
        };
        let mut h = harness(1, 8, config);
        // None of these fails quorum even though the first few collect
        // no acks at all: the in-flight copy counts optimistically.
        for i in 0u64..6 {
            h.cluster.write(Lba(i % 8), &[(i + 1) as u8; 4096]).unwrap();
        }
        h.cluster.drain();
        assert_eq!(h.cluster.status(0).acked_writes, 6);
        for dev in &h.devices {
            assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
        }
        finish(h);
    }

    #[test]
    fn severed_window_marks_in_flight_dirty_and_resyncs() {
        let config = ClusterConfig {
            ack_window: 4,
            offline_after: 1,
            ..ClusterConfig::default()
        };
        let blocks = 16;
        let mut h = harness(1, blocks, config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for _ in 0..6 {
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }
        assert!(h.cluster.status(0).in_flight > 0);
        // The link dies with acks in flight: draining fails them, marks
        // the writes dirty, and degrades the replica.
        h.links[0].sever();
        h.cluster.drain();
        assert_eq!(h.cluster.state(0), ReplicaState::Offline);
        let status = h.cluster.status(0);
        assert!(status.dirty_blocks > 0);
        assert_eq!(status.in_flight, 0);

        h.links[0].restore();
        h.cluster.rejoin(0, ResyncStrategy::DirtyBitmap).unwrap();
        h.cluster.resync_to_completion(0, 8).unwrap();
        assert_eq!(h.cluster.state(0), ReplicaState::Online);
        for dev in &h.devices {
            assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
        }
        finish(h);
    }

    #[test]
    fn observer_records_lifecycle_events_resync_progress_and_ack_rtt() {
        let config = ClusterConfig {
            ack_window: 4,
            offline_after: 1,
            ..ClusterConfig::default()
        };
        let blocks = 16;
        let mut h = harness(1, blocks, config);
        let registry = prins_obs::Registry::new();
        let clock = prins_net::SimClock::new();
        h.cluster
            .attach_observer(Arc::clone(&registry), clock.clone());

        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..5 {
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }
        // Healthy phase: ack RTTs accumulate, no failure events.
        let ring = registry.events();
        assert_eq!(ring.count("nak"), 0);
        assert_eq!(ring.count("ack-error"), 0);
        assert_eq!(ring.count("state-change"), 0);

        // The link dies with acks in flight: draining fails them, one
        // ack-error per in-flight write.
        h.links[0].sever();
        assert!(h.cluster.status(0).in_flight > 0);
        h.cluster.drain();
        assert_eq!(h.cluster.state(0), ReplicaState::Offline);
        assert!(ring.count("ack-error") > 0, "severed window fails acks");
        for _ in 0..3 {
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }
        h.links[0].restore();
        // Acks for the severed-window frames may surface at any point
        // from here on. They are sealed under the pre-sever epoch, so
        // the rejoin needs no purge, settling wait, or skip budget —
        // the ack loop identifies and drops them by tag.
        h.cluster.rejoin(0, ResyncStrategy::DirtyBitmap).unwrap();
        h.cluster.resync_to_completion(0, 4).unwrap();
        assert_eq!(h.cluster.state(0), ReplicaState::Online);

        // The transition chain is exactly the lifecycle walked:
        // online->offline (offline_after: 1), offline->resyncing,
        // resyncing->online — and each hop is machine-legal.
        let transitions: Vec<(String, String)> = ring
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::StateChange { from, to } => Some((from.to_string(), to.to_string())),
                _ => None,
            })
            .collect();
        assert_eq!(
            transitions,
            vec![
                ("online".into(), "offline".into()),
                ("offline".into(), "resyncing".into()),
                ("resyncing".into(), "online".into()),
            ]
        );
        assert!(ring.count("resync-batch") > 0);

        let snap = registry.snapshot();
        let rtt = &snap.histograms["cluster_ack_rtt_nanos"];
        assert!(rtt.count >= 5, "one RTT sample per collected ack");
        assert_eq!(snap.gauges["replica0_dirty_blocks"], 0);
        assert_eq!(snap.gauges["replica0_resync_pending"], 0);
        for dev in &h.devices {
            assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
        }
        finish(h);
    }

    #[test]
    fn scrub_detects_and_repairs_replica_media_corruption() {
        let blocks = 8;
        let mut h = harness(2, blocks, ClusterConfig::default());
        let registry = prins_obs::Registry::new();
        let clock = prins_net::SimClock::new();
        h.cluster
            .attach_observer(Arc::clone(&registry), clock.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..6 {
            random_write(&mut h.cluster, &mut rng, blocks).unwrap();
        }
        h.cluster.drain();
        // Flip one bit on replica 0's media behind everyone's back —
        // the silent corruption no wire checksum can see.
        let victim = Lba(3);
        let mut block = h.devices[0].read_block_vec(victim).unwrap();
        block[7] ^= 0x80;
        h.devices[0].write_block(victim, &block).unwrap();

        let outcomes = h.cluster.scrub(0, 1).unwrap();
        assert_eq!(outcomes.len(), 2);
        let (_, o0) = outcomes[0];
        assert_eq!(o0.probed, blocks as usize);
        assert_eq!(o0.mismatched, 1);
        assert_eq!(o0.repaired, 1);
        let (_, o1) = outcomes[1];
        assert_eq!((o1.mismatched, o1.repaired), (0, 0));
        assert_eq!(h.cluster.state(0), ReplicaState::Online);
        assert_eq!(registry.snapshot().counters["scrub_repairs"], 1);
        assert!(h.cluster.status(0).scrub_bytes > 0);
        for dev in &h.devices {
            assert!(verify_consistent(h.cluster.device(), &**dev).unwrap());
        }
        finish(h);
    }

    #[test]
    fn traffic_accounting_separates_foreground_from_resync() {
        let config = ClusterConfig {
            offline_after: 1,
            ..ClusterConfig::default()
        };
        let mut h = harness(1, 16, config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..5 {
            random_write(&mut h.cluster, &mut rng, 16).unwrap();
        }
        let fg = h.cluster.status(0).foreground_bytes;
        assert!(fg > 0);
        assert_eq!(h.cluster.status(0).resync_bytes, 0);

        h.links[0].sever();
        for _ in 0..5 {
            random_write(&mut h.cluster, &mut rng, 16).unwrap();
        }
        h.links[0].restore();
        h.cluster.rejoin(0, ResyncStrategy::DirtyBitmap).unwrap();
        h.cluster.resync_to_completion(0, 8).unwrap();
        let status = h.cluster.status(0);
        assert!(status.resync_bytes > 0);
        assert_eq!(status.foreground_bytes, fg, "outage sends nothing");
    }
}
