//! The replica lifecycle state machine.
//!
//! ```text
//!            send/ack error              offline_after consecutive errors
//!   Online ──────────────────▶ Lagging ──────────────────▶ Offline
//!     ▲                          │                            │
//!     │   resync complete        │ rejoin()                   │ rejoin()
//!     └──────── Resyncing ◀──────┴────────────────────────────┘
//!                   │
//!                   └── resync error ──▶ Offline
//! ```
//!
//! A *Lagging* replica is reachable but has missed at least one write
//! (its dirty set is non-empty); the primary keeps sending writes for
//! clean blocks but defers writes to dirty blocks until resync. An
//! *Offline* replica receives nothing. Both return to *Online* only
//! through *Resyncing*.

use std::fmt;

/// Lifecycle state of one replica, as seen by the primary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplicaState {
    /// Fully caught up; receives every write.
    Online,
    /// Reachable but missing writes; receives writes to clean blocks
    /// only.
    Lagging,
    /// Unreachable or repeatedly failing; receives nothing.
    Offline,
    /// Being caught up; receives resync frames plus writes to blocks
    /// the resync has already covered.
    Resyncing,
}

impl ReplicaState {
    /// Whether the primary sends foreground writes to a replica in this
    /// state at all (per-block deferral is decided separately).
    pub fn receives_writes(self) -> bool {
        matches!(
            self,
            ReplicaState::Online | ReplicaState::Lagging | ReplicaState::Resyncing
        )
    }

    /// Stable lowercase name, used by [`Display`](fmt::Display) and as
    /// the `from`/`to` tag of observability state-change events.
    pub fn name(self) -> &'static str {
        match self {
            ReplicaState::Online => "online",
            ReplicaState::Lagging => "lagging",
            ReplicaState::Offline => "offline",
            ReplicaState::Resyncing => "resyncing",
        }
    }

    /// Whether the state machine allows `self -> to`.
    pub fn can_transition(self, to: ReplicaState) -> bool {
        use ReplicaState::*;
        matches!(
            (self, to),
            (Online, Lagging)
                | (Online, Offline)
                | (Lagging, Offline)
                | (Lagging, Resyncing)
                | (Offline, Resyncing)
                | (Resyncing, Online)
                | (Resyncing, Offline)
        )
    }
}

impl fmt::Display for ReplicaState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::ReplicaState::*;

    #[test]
    fn the_paper_cycle_is_allowed() {
        assert!(Online.can_transition(Lagging));
        assert!(Lagging.can_transition(Offline));
        assert!(Offline.can_transition(Resyncing));
        assert!(Resyncing.can_transition(Online));
    }

    #[test]
    fn shortcuts_and_aborts() {
        assert!(Online.can_transition(Offline)); // hard kill
        assert!(Lagging.can_transition(Resyncing)); // quick catch-up
        assert!(Resyncing.can_transition(Offline)); // resync failed
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        assert!(!Offline.can_transition(Online)); // must resync first
        assert!(!Lagging.can_transition(Online)); // must resync first
        assert!(!Offline.can_transition(Lagging));
        assert!(!Online.can_transition(Resyncing)); // nothing to resync
        assert!(!Online.can_transition(Online));
    }

    #[test]
    fn write_eligibility_follows_state() {
        assert!(Online.receives_writes());
        assert!(Lagging.receives_writes());
        assert!(Resyncing.receives_writes());
        assert!(!Offline.receives_writes());
    }
}
