//! Per-replica dirty-region tracking.
//!
//! The primary records, for every replica, which blocks that replica is
//! missing writes for and *since which log sequence number* — the
//! minimal state both resync strategies need:
//!
//! * dirty-bitmap resync pushes a full image of each dirty block,
//! * parity-log resync replays each dirty block's log chain from the
//!   recorded first-missed sequence number.
//!
//! A dirty block can additionally be **uncertain**: a frame carrying a
//! write to it was handed to the transport but its acknowledgement never
//! came back, so the primary cannot know whether the replica applied it.
//! Replaying the parity chain over an already-applied parity would XOR
//! it in twice and silently corrupt the block (`P' ⊕ (A_old ⊕ P')`
//! instead of `A_old`), so parity-log resync must fall back to a full
//! image for uncertain blocks. Blocks that were never sent (routed
//! around an offline replica) are *certain*: the chain replay is sound.

use std::collections::BTreeMap;

use prins_block::Lba;

#[derive(Clone, Copy, Debug)]
struct DirtyEntry {
    first_missed: u64,
    uncertain: bool,
}

/// The set of blocks one replica is missing writes for.
///
/// Maps each dirty LBA to the sequence number of the *first* write to
/// that block the replica missed: the replica's copy reflects the
/// block's chain strictly before that sequence number — unless the
/// block is [`uncertain`](Self::is_uncertain), in which case the
/// replica's state within the chain is unknown.
#[derive(Clone, Debug, Default)]
pub struct DirtyMap {
    blocks: BTreeMap<u64, DirtyEntry>,
}

impl DirtyMap {
    /// Creates an empty map (replica fully caught up).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the replica missed the write with sequence number
    /// `seq` to `lba` — the write was *never delivered* (skipped or
    /// deferred). Keeps the earliest miss if already dirty; an existing
    /// uncertain flag is preserved.
    pub fn mark(&mut self, lba: Lba, seq: u64) {
        self.blocks
            .entry(lba.index())
            .and_modify(|e| e.first_missed = e.first_missed.min(seq))
            .or_insert(DirtyEntry {
                first_missed: seq,
                uncertain: false,
            });
    }

    /// Records a miss whose delivery status is unknown: the frame was
    /// sent but its acknowledgement never arrived, so the replica may
    /// or may not have applied it. Parity-log resync must not replay
    /// the chain over such a block (see module docs).
    pub fn mark_uncertain(&mut self, lba: Lba, seq: u64) {
        self.blocks
            .entry(lba.index())
            .and_modify(|e| {
                e.first_missed = e.first_missed.min(seq);
                e.uncertain = true;
            })
            .or_insert(DirtyEntry {
                first_missed: seq,
                uncertain: true,
            });
    }

    /// Whether `lba` has missed writes.
    pub fn contains(&self, lba: Lba) -> bool {
        self.blocks.contains_key(&lba.index())
    }

    /// Whether `lba` is dirty with unknown replica-side state (a sent
    /// write whose acknowledgement was lost).
    pub fn is_uncertain(&self, lba: Lba) -> bool {
        self.blocks.get(&lba.index()).is_some_and(|e| e.uncertain)
    }

    /// The first missed sequence number for `lba`, if dirty.
    pub fn missed_from(&self, lba: Lba) -> Option<u64> {
        self.blocks.get(&lba.index()).map(|e| e.first_missed)
    }

    /// Clears one block (it has been resynced).
    pub fn clear(&mut self, lba: Lba) {
        self.blocks.remove(&lba.index());
    }

    /// Clears everything (full resync completed).
    pub fn clear_all(&mut self) {
        self.blocks.clear();
    }

    /// Number of dirty blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the replica is fully caught up.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Dirty blocks in ascending LBA order with their first-missed
    /// sequence numbers.
    pub fn iter(&self) -> impl Iterator<Item = (Lba, u64)> + '_ {
        self.blocks
            .iter()
            .map(|(&lba, e)| (Lba(lba), e.first_missed))
    }

    /// Coalesced `[start, end)` runs of dirty LBAs — the compact
    /// interval view (a 5-minute outage under a sequential workload is
    /// a handful of intervals, not thousands of entries).
    pub fn intervals(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for &lba in self.blocks.keys() {
            match out.last_mut() {
                Some((_, end)) if *end == lba => *end = lba + 1,
                _ => out.push((lba, lba + 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_keeps_earliest_miss() {
        let mut d = DirtyMap::new();
        d.mark(Lba(3), 10);
        d.mark(Lba(3), 7);
        d.mark(Lba(3), 12);
        assert_eq!(d.missed_from(Lba(3)), Some(7));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn clear_and_contains() {
        let mut d = DirtyMap::new();
        assert!(d.is_empty());
        d.mark(Lba(1), 1);
        d.mark(Lba(2), 2);
        assert!(d.contains(Lba(1)));
        d.clear(Lba(1));
        assert!(!d.contains(Lba(1)));
        assert_eq!(d.len(), 1);
        d.clear_all();
        assert!(d.is_empty());
    }

    #[test]
    fn iter_is_lba_ordered() {
        let mut d = DirtyMap::new();
        d.mark(Lba(9), 3);
        d.mark(Lba(2), 1);
        d.mark(Lba(5), 2);
        let lbas: Vec<u64> = d.iter().map(|(lba, _)| lba.index()).collect();
        assert_eq!(lbas, vec![2, 5, 9]);
    }

    #[test]
    fn uncertainty_is_sticky_and_per_block() {
        let mut d = DirtyMap::new();
        d.mark(Lba(1), 5);
        assert!(!d.is_uncertain(Lba(1)));
        // A later lost-ack send on the same block taints it...
        d.mark_uncertain(Lba(1), 9);
        assert!(d.is_uncertain(Lba(1)));
        assert_eq!(d.missed_from(Lba(1)), Some(5));
        // ...and further certain misses don't clean it.
        d.mark(Lba(1), 11);
        assert!(d.is_uncertain(Lba(1)));
        // Other blocks are unaffected; clearing resets the flag.
        d.mark(Lba(2), 6);
        assert!(!d.is_uncertain(Lba(2)));
        d.clear(Lba(1));
        d.mark(Lba(1), 20);
        assert!(!d.is_uncertain(Lba(1)));
    }

    #[test]
    fn mark_uncertain_keeps_earliest_miss() {
        let mut d = DirtyMap::new();
        d.mark_uncertain(Lba(4), 8);
        d.mark_uncertain(Lba(4), 3);
        assert_eq!(d.missed_from(Lba(4)), Some(3));
        assert!(d.is_uncertain(Lba(4)));
    }

    #[test]
    fn intervals_coalesce_runs() {
        let mut d = DirtyMap::new();
        for lba in [0u64, 1, 2, 5, 7, 8] {
            d.mark(Lba(lba), 1);
        }
        assert_eq!(d.intervals(), vec![(0, 3), (5, 6), (7, 9)]);
        assert!(DirtyMap::new().intervals().is_empty());
    }
}
