//! Per-replica dirty-region tracking.
//!
//! The primary records, for every replica, which blocks that replica is
//! missing writes for and *since which log sequence number* — the
//! minimal state both resync strategies need:
//!
//! * dirty-bitmap resync pushes a full image of each dirty block,
//! * parity-log resync replays each dirty block's log chain from the
//!   recorded first-missed sequence number.

use std::collections::BTreeMap;

use prins_block::Lba;

/// The set of blocks one replica is missing writes for.
///
/// Maps each dirty LBA to the sequence number of the *first* write to
/// that block the replica missed: the replica's copy reflects the
/// block's chain strictly before that sequence number.
#[derive(Clone, Debug, Default)]
pub struct DirtyMap {
    blocks: BTreeMap<u64, u64>,
}

impl DirtyMap {
    /// Creates an empty map (replica fully caught up).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the replica missed the write with sequence number
    /// `seq` to `lba`. Keeps the earliest miss if already dirty.
    pub fn mark(&mut self, lba: Lba, seq: u64) {
        self.blocks
            .entry(lba.index())
            .and_modify(|s| *s = (*s).min(seq))
            .or_insert(seq);
    }

    /// Whether `lba` has missed writes.
    pub fn contains(&self, lba: Lba) -> bool {
        self.blocks.contains_key(&lba.index())
    }

    /// The first missed sequence number for `lba`, if dirty.
    pub fn missed_from(&self, lba: Lba) -> Option<u64> {
        self.blocks.get(&lba.index()).copied()
    }

    /// Clears one block (it has been resynced).
    pub fn clear(&mut self, lba: Lba) {
        self.blocks.remove(&lba.index());
    }

    /// Clears everything (full resync completed).
    pub fn clear_all(&mut self) {
        self.blocks.clear();
    }

    /// Number of dirty blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the replica is fully caught up.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Dirty blocks in ascending LBA order with their first-missed
    /// sequence numbers.
    pub fn iter(&self) -> impl Iterator<Item = (Lba, u64)> + '_ {
        self.blocks.iter().map(|(&lba, &seq)| (Lba(lba), seq))
    }

    /// Coalesced `[start, end)` runs of dirty LBAs — the compact
    /// interval view (a 5-minute outage under a sequential workload is
    /// a handful of intervals, not thousands of entries).
    pub fn intervals(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for &lba in self.blocks.keys() {
            match out.last_mut() {
                Some((_, end)) if *end == lba => *end = lba + 1,
                _ => out.push((lba, lba + 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_keeps_earliest_miss() {
        let mut d = DirtyMap::new();
        d.mark(Lba(3), 10);
        d.mark(Lba(3), 7);
        d.mark(Lba(3), 12);
        assert_eq!(d.missed_from(Lba(3)), Some(7));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn clear_and_contains() {
        let mut d = DirtyMap::new();
        assert!(d.is_empty());
        d.mark(Lba(1), 1);
        d.mark(Lba(2), 2);
        assert!(d.contains(Lba(1)));
        d.clear(Lba(1));
        assert!(!d.contains(Lba(1)));
        assert_eq!(d.len(), 1);
        d.clear_all();
        assert!(d.is_empty());
    }

    #[test]
    fn iter_is_lba_ordered() {
        let mut d = DirtyMap::new();
        d.mark(Lba(9), 3);
        d.mark(Lba(2), 1);
        d.mark(Lba(5), 2);
        let lbas: Vec<u64> = d.iter().map(|(lba, _)| lba.index()).collect();
        assert_eq!(lbas, vec![2, 5, 9]);
    }

    #[test]
    fn intervals_coalesce_runs() {
        let mut d = DirtyMap::new();
        for lba in [0u64, 1, 2, 5, 7, 8] {
            d.mark(Lba(lba), 1);
        }
        assert_eq!(d.intervals(), vec![(0, 3), (5, 6), (7, 9)]);
        assert!(DirtyMap::new().intervals().is_empty());
    }
}
