//! Placement policies: mapping volume LBAs onto replica groups.
//!
//! [`ShardMap`](crate::ShardMap) splits the volume into contiguous ranges —
//! simple, but adding a group reshuffles almost every boundary and each
//! group's device only holds its own slice, so a block cannot move between
//! groups without being re-addressed.
//!
//! [`RendezvousPlacement`] is weighted rendezvous (highest-random-weight)
//! hashing over full-size devices: every group scores every slot and the
//! highest score wins. It has the *minimal disruption* property — adding a
//! group steals only the slots it now wins, and draining a group (weight 0)
//! moves only that group's own slots — and it keeps volume addresses intact
//! on every group, which is the precondition live migration needs.
//!
//! The [`Placement`] trait abstracts over both so
//! [`ShardedCluster`](crate::ShardedCluster) can route with either.

use prins_block::Lba;

/// A policy assigning each volume LBA to one replica group.
///
/// Implementations must be total over `[0, num_blocks)` and deterministic:
/// routing is consulted on every write and must agree across restarts.
pub trait Placement {
    /// Number of replica groups this placement spreads load over.
    fn group_count(&self) -> usize;

    /// Total volume size in blocks.
    fn num_blocks(&self) -> u64;

    /// The group that owns `lba`.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is at or beyond [`Placement::num_blocks`].
    fn group_for(&self, lba: Lba) -> usize;

    /// Translates a volume LBA into `(group, group-local LBA)`.
    fn local_lba(&self, lba: Lba) -> (usize, Lba);

    /// Blocks group `g`'s device must hold to serve this placement.
    fn device_blocks(&self, g: usize) -> u64;

    /// Whether group-local addresses equal volume addresses.
    ///
    /// Identity addressing is the precondition for live migration: a block
    /// can move between groups only if it keeps its address on the target.
    fn identity_addressed(&self) -> bool;

    /// Per-group write counts for a trace — the load vector fed to the MVA
    /// model and the scale figure.
    fn load_counts(&self, writes: &[Lba]) -> Vec<u64> {
        let mut counts = vec![0u64; self.group_count()];
        for &lba in writes {
            counts[self.group_for(lba)] += 1;
        }
        counts
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Weighted rendezvous (HRW) placement over identity-addressed groups.
///
/// Each slot of `slot_blocks` contiguous LBAs hashes against every group;
/// the group with the highest score `w / -ln(u)` wins, where `u ∈ (0, 1)`
/// is derived from `hash(slot, group, seed)`. With equal weights every
/// group expects an equal share of slots; a group with twice the weight
/// expects twice the share. A weight of `0.0` removes a group from
/// contention (it never wins a slot) without renumbering the others —
/// the drain side of the minimal-disruption property.
#[derive(Debug, Clone)]
pub struct RendezvousPlacement {
    weights: Vec<f64>,
    num_blocks: u64,
    slot_blocks: u64,
    seed: u64,
}

impl RendezvousPlacement {
    /// Equal-weight placement of `num_blocks` over `groups` groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `num_blocks == 0`.
    pub fn new(num_blocks: u64, groups: usize) -> Self {
        Self::weighted(num_blocks, vec![1.0; groups])
    }

    /// Placement with one weight per group. Weights must be finite,
    /// non-negative, and not all zero.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, `num_blocks == 0`, any weight is
    /// negative or non-finite, or every weight is zero.
    pub fn weighted(num_blocks: u64, weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one group");
        assert!(num_blocks > 0, "need at least one block");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        assert!(
            weights.iter().any(|w| *w > 0.0),
            "at least one group must have positive weight"
        );
        Self {
            weights,
            num_blocks,
            slot_blocks: 1,
            seed: 0,
        }
    }

    /// Hash `blocks` contiguous LBAs as one slot, so sequential runs stay
    /// on one group (larger resync batches, fewer cross-group seeks).
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`.
    pub fn with_slot_blocks(mut self, blocks: u64) -> Self {
        assert!(blocks > 0, "slot must cover at least one block");
        self.slot_blocks = blocks;
        self
    }

    /// Salt the hash so independent volumes decorrelate.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Current weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Appends a group with `weight`; existing groups keep their indices
    /// and lose only the slots the new group now wins.
    pub fn add_group(&mut self, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weights must be finite and non-negative"
        );
        self.weights.push(weight);
    }

    /// Re-weights group `g`. Setting `0.0` drains it: only slots it owned
    /// move, each to its runner-up group.
    pub fn set_weight(&mut self, g: usize, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weights must be finite and non-negative"
        );
        self.weights[g] = weight;
        assert!(
            self.weights.iter().any(|w| *w > 0.0),
            "at least one group must have positive weight"
        );
    }

    /// Rendezvous score of `(slot, group)`: `w / -ln(u)`, `u ∈ (0, 1)`.
    /// Monotone in `w`, independent across groups — the two properties the
    /// disruption bound rests on.
    fn score(&self, slot: u64, g: usize) -> f64 {
        let w = self.weights[g];
        if w == 0.0 {
            return 0.0;
        }
        let h = mix64(slot ^ self.seed ^ (g as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Top 53 bits, offset by half a ulp: u ∈ (0, 1) strictly, so ln(u)
        // is finite and negative.
        let u = ((h >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0);
        w / -u.ln()
    }
}

impl Placement for RendezvousPlacement {
    fn group_count(&self) -> usize {
        self.weights.len()
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn group_for(&self, lba: Lba) -> usize {
        assert!(
            lba.index() < self.num_blocks,
            "lba {lba:?} out of range for placement of {} blocks",
            self.num_blocks
        );
        let slot = lba.index() / self.slot_blocks;
        let mut best = 0usize;
        let mut best_score = self.score(slot, 0);
        for g in 1..self.weights.len() {
            let s = self.score(slot, g);
            // Strict `>` keeps the lowest index on (measure-zero) ties.
            if s > best_score {
                best = g;
                best_score = s;
            }
        }
        best
    }

    fn local_lba(&self, lba: Lba) -> (usize, Lba) {
        (self.group_for(lba), lba)
    }

    fn device_blocks(&self, _g: usize) -> u64 {
        // Full-size devices: any block may land on (or migrate to) any group.
        self.num_blocks
    }

    fn identity_addressed(&self) -> bool {
        true
    }
}

impl Placement for crate::ShardMap {
    fn group_count(&self) -> usize {
        crate::ShardMap::group_count(self)
    }

    fn num_blocks(&self) -> u64 {
        crate::ShardMap::num_blocks(self)
    }

    fn group_for(&self, lba: Lba) -> usize {
        crate::ShardMap::group_for(self, lba)
    }

    fn local_lba(&self, lba: Lba) -> (usize, Lba) {
        crate::ShardMap::local_lba(self, lba)
    }

    fn device_blocks(&self, g: usize) -> u64 {
        let r = self.range(g);
        r.end - r.start
    }

    fn identity_addressed(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardMap;
    use proptest::prelude::*;

    const KEYS: u64 = 10_000;

    fn assignments(p: &RendezvousPlacement) -> Vec<usize> {
        (0..p.num_blocks()).map(|i| p.group_for(Lba(i))).collect()
    }

    #[test]
    fn equal_weights_balance_within_bound() {
        // Binomial concentration: each group's share of 10k keys is
        // mean ± ~4σ; 25% slack is > 6σ even at eight groups.
        for groups in 2..=8usize {
            let p = RendezvousPlacement::new(KEYS, groups);
            let counts = p.load_counts(&(0..KEYS).map(Lba).collect::<Vec<_>>());
            let mean = KEYS as f64 / groups as f64;
            for (g, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64 - mean).abs() < mean * 0.25,
                    "group {g}/{groups} holds {c} of {KEYS} keys (mean {mean})"
                );
            }
        }
    }

    #[test]
    fn doubled_weight_doubles_share() {
        let p = RendezvousPlacement::weighted(KEYS, vec![1.0, 2.0, 1.0]);
        let counts = p.load_counts(&(0..KEYS).map(Lba).collect::<Vec<_>>());
        let heavy = counts[1] as f64;
        let light = (counts[0] + counts[2]) as f64 / 2.0;
        assert!(
            (heavy / light - 2.0).abs() < 0.3,
            "weight-2 group holds {heavy} keys vs {light} per weight-1 group"
        );
    }

    #[test]
    fn slot_blocks_keep_runs_together() {
        let p = RendezvousPlacement::new(1024, 4).with_slot_blocks(16);
        for slot in 0..64u64 {
            let owner = p.group_for(Lba(slot * 16));
            for off in 1..16u64 {
                assert_eq!(p.group_for(Lba(slot * 16 + off)), owner);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panics() {
        RendezvousPlacement::weighted(8, vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_lookup_panics() {
        RendezvousPlacement::new(8, 2).group_for(Lba(8));
    }

    proptest! {
        /// Adding a group moves only the keys the new group wins, and the
        /// count stays near its fair share: unaffected groups' scores are
        /// untouched, so no key can move anywhere else.
        #[test]
        fn adding_a_group_moves_at_most_its_share(
            groups in 2..8usize,
            seed in any::<u64>(),
            weight in 0.5..2.0f64,
        ) {
            let mut p = RendezvousPlacement::new(KEYS, groups).with_seed(seed);
            let before = assignments(&p);
            p.add_group(weight);
            let after = assignments(&p);

            let mut moved = 0u64;
            for (b, a) in before.iter().zip(&after) {
                if a != b {
                    prop_assert_eq!(*a, groups, "keys may only move TO the new group");
                    moved += 1;
                }
            }
            // Fair share of the new group is w / (groups + w); allow 2x.
            let share = weight / (groups as f64 + weight);
            prop_assert!(
                (moved as f64) < 2.0 * share * KEYS as f64,
                "{moved} keys moved, fair share {}", share * KEYS as f64
            );
        }

        /// Draining a group (weight 0) moves exactly its own keys; everyone
        /// else's assignment is stable.
        #[test]
        fn draining_a_group_moves_only_its_keys(
            groups in 2..8usize,
            victim_sel in any::<prop::sample::Index>(),
            seed in any::<u64>(),
        ) {
            let mut p = RendezvousPlacement::new(KEYS, groups).with_seed(seed);
            let victim = victim_sel.index(groups);
            let before = assignments(&p);
            p.set_weight(victim, 0.0);
            let after = assignments(&p);

            for (i, (b, a)) in before.iter().zip(&after).enumerate() {
                if *b == victim {
                    prop_assert!(*a != victim, "drained group still owns key {}", i);
                } else {
                    prop_assert_eq!(*a, *b, "unrelated key {} moved", i);
                }
            }
        }

        /// ShardMap::even is total over [0, num_blocks): every LBA lands in
        /// the group whose range contains it, and local addresses are
        /// in-bounds for that group's device.
        #[test]
        fn shard_map_lookup_total_and_consistent(
            num_blocks in 1..512u64,
            groups in 1..16usize,
        ) {
            prop_assume!(num_blocks >= groups as u64);
            let map = ShardMap::even(num_blocks, groups);
            for i in 0..num_blocks {
                let g = Placement::group_for(&map, Lba(i));
                let r = map.range(g);
                prop_assert!(r.contains(&i));
                let (lg, local) = Placement::local_lba(&map, Lba(i));
                prop_assert_eq!(lg, g);
                prop_assert!(local.index() < Placement::device_blocks(&map, g));
            }
        }

        /// Uneven remainders land on the first groups: range lengths are
        /// non-increasing and differ by at most one block.
        #[test]
        fn shard_map_remainder_goes_to_first_groups(
            num_blocks in 1..512u64,
            groups in 1..16usize,
        ) {
            prop_assume!(num_blocks >= groups as u64);
            let map = ShardMap::even(num_blocks, groups);
            let lens: Vec<u64> = (0..groups)
                .map(|g| Placement::device_blocks(&map, g))
                .collect();
            prop_assert_eq!(lens.iter().sum::<u64>(), num_blocks);
            let base = num_blocks / groups as u64;
            let extra = (num_blocks % groups as u64) as usize;
            for (g, &len) in lens.iter().enumerate() {
                let want = if g < extra { base + 1 } else { base };
                prop_assert_eq!(len, want, "group {} length", g);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn shard_map_zero_groups_panics() {
        ShardMap::even(8, 0);
    }

    #[test]
    #[should_panic(expected = "at least one block per group")]
    fn shard_map_more_groups_than_blocks_panics() {
        ShardMap::even(3, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_map_out_of_range_lookup_panics() {
        ShardMap::even(8, 2).group_for(Lba(8));
    }
}
