//! Builder for [`PrinsEngine`].

use std::sync::Arc;
use std::time::Duration;

use prins_block::BlockDevice;
use prins_net::{Clock, Transport, WallClock};
use prins_policy::{AdaptiveReplicator, PolicyConfig, WorkloadPhase};
use prins_repl::{AckPolicy, ReplError, ReplicationGroup, ReplicationMode, Replicator};

use crate::pipeline::{PipelineConfig, PipelineTuning};
use crate::PrinsEngine;

/// Configures and starts a [`PrinsEngine`].
///
/// Besides the replication strategy and replica set, the builder tunes
/// the replication pipeline: [`encode_workers`](Self::encode_workers)
/// sizes the parity-encoding pool, [`coalesce`](Self::coalesce) folds
/// back-to-back writes to one LBA into a single parity, and
/// [`batch_frames`](Self::batch_frames) packs queued payloads into one
/// wire frame per acknowledgement round-trip.
///
/// # Example
///
/// ```
/// use prins_block::{BlockSize, MemDevice};
/// use prins_core::EngineBuilder;
/// use prins_repl::ReplicationMode;
/// use std::sync::Arc;
///
/// // An engine with no replicas still works (local-only, encoding
/// // accounted) — useful for overhead measurements.
/// let device = Arc::new(MemDevice::new(BlockSize::kb8(), 16));
/// let engine = EngineBuilder::new(device)
///     .mode(ReplicationMode::Prins)
///     .encode_workers(4)
///     .build();
/// # drop(engine);
/// ```
pub struct EngineBuilder {
    device: Arc<dyn BlockDevice>,
    mode: ReplicationMode,
    replicator: Option<Arc<dyn Replicator>>,
    adaptive: Option<PolicyConfig>,
    replicas: Vec<Box<dyn Transport>>,
    ack_policy: AckPolicy,
    config: PipelineConfig,
    clock: Option<Arc<dyn Clock>>,
    registry: Option<Arc<prins_obs::Registry>>,
    trace: Option<prins_obs::TraceConfig>,
}

impl EngineBuilder {
    /// Starts configuring an engine over `device`.
    pub fn new(device: Arc<dyn BlockDevice>) -> Self {
        Self {
            device,
            mode: ReplicationMode::Prins,
            replicator: None,
            adaptive: None,
            replicas: Vec::new(),
            ack_policy: AckPolicy::PerWrite,
            config: PipelineConfig::default(),
            clock: None,
            registry: None,
            trace: None,
        }
    }

    /// Selects the replication strategy (default: [`ReplicationMode::Prins`]).
    pub fn mode(mut self, mode: ReplicationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the replicator instance: every write is encoded by
    /// `replicator` instead of the static strategy named by
    /// [`mode`](Self::mode). Payload tags are self-describing, so any
    /// mix of strategies applies cleanly at the replica.
    pub fn replicator(mut self, replicator: Arc<dyn Replicator>) -> Self {
        self.replicator = Some(replicator);
        self
    }

    /// Drives replication with the adaptive policy engine
    /// ([`AdaptiveReplicator`]): per-region strategy selection plus live
    /// retuning of [`batch_frames`](Self::batch_frames) and
    /// [`coalesce`](Self::coalesce) on workload-phase transitions (the
    /// values configured here become the `Mixed`-phase baseline). With
    /// [`observe`](Self::observe) set, decision and counterfactual
    /// counters register under `policy_*`. Overrides
    /// [`mode`](Self::mode) and [`replicator`](Self::replicator).
    pub fn adaptive(mut self, config: PolicyConfig) -> Self {
        self.adaptive = Some(config);
        self
    }

    /// Adds a replica connection (one sender lane each).
    pub fn replica(mut self, transport: Box<dyn Transport>) -> Self {
        self.replicas.push(transport);
        self
    }

    /// Overrides how long a sender lane waits for each
    /// acknowledgement (default 10 s).
    pub fn ack_timeout(mut self, timeout: Duration) -> Self {
        self.config.ack_timeout = timeout;
        self
    }

    /// Overrides the acknowledgement policy (default: per-write, the
    /// paper's conservative closed-loop model; a window pipelines
    /// frames over the WAN independently on every lane).
    pub fn ack_policy(mut self, policy: AckPolicy) -> Self {
        self.ack_policy = policy;
        self
    }

    /// Sizes the parity-encoding worker pool (default 2). Payloads are
    /// released to the senders in admission order regardless.
    pub fn encode_workers(mut self, workers: usize) -> Self {
        self.config.encode_workers = workers.max(1);
        self
    }

    /// Enables XOR-folding write coalescing (default off): a write to
    /// an LBA whose previous write is still queued folds into it,
    /// shipping one parity `A_newest ⊕ A_oldest` for the pair.
    pub fn coalesce(mut self, enabled: bool) -> Self {
        self.config.coalesce = enabled;
        self
    }

    /// Packs up to `max` queued payloads into one wire frame sharing a
    /// single acknowledgement (default 1 = off).
    pub fn batch_frames(mut self, max: usize) -> Self {
        self.config.batch_frames = max.max(1);
        self
    }

    /// Caps each sender lane's queue (default 1024 frames); a full
    /// lane backpressures the encode pool.
    pub fn sender_queue_cap(mut self, cap: usize) -> Self {
        self.config.queue_cap = cap.max(1);
        self
    }

    /// Records every `(lba, seq)` each lane sends, readable via
    /// [`PrinsEngine::send_logs`] — ordering-test instrumentation.
    pub fn trace_sends(mut self, enabled: bool) -> Self {
        self.config.trace_sends = enabled;
        self
    }

    /// Attaches a metrics registry (default: none): the engine records
    /// per-stage latency histograms, queue-depth samples and typed
    /// pipeline events into it, and publishes its counters as gauges at
    /// every [`Registry::snapshot`](prins_obs::Registry::snapshot).
    /// Share one registry across layers (engine, cluster, meters) for a
    /// unified snapshot.
    pub fn observe(mut self, registry: Arc<prins_obs::Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Enables per-write causal tracing and the anomaly flight
    /// recorder (default: off): every write mints a deterministic
    /// [`TraceId`](prins_obs::TraceId) at admission and each pipeline
    /// hop appends a stage event; completed traces feed latency, tail
    /// attribution and SLO accounting, with a 1-in-N sample plus every
    /// anomalous trace retained in the recorder. Read the sink via
    /// [`PrinsEngine::trace_sink`](crate::PrinsEngine::trace_sink).
    pub fn flight_recorder(mut self, config: prins_obs::TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Injects the time source used for all latency accounting
    /// (default: the OS monotonic clock). The simulation harness passes
    /// a shared virtual clock so stats reflect simulated time.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Runs the pipeline without worker threads (default off): admitted
    /// writes sit in the queues until [`PrinsEngine::step`] or a flush
    /// drives encode → reorder → send → ack on the calling thread.
    /// With [`clock`](Self::clock) and a simulated transport this makes
    /// the whole replication path single-threaded and deterministic.
    pub fn manual_stepping(mut self, enabled: bool) -> Self {
        self.config.manual = enabled;
        self
    }

    fn resolved_config(&self) -> PipelineConfig {
        let mut config = self.config.clone();
        config.ack_window = match self.ack_policy {
            AckPolicy::PerWrite => 1,
            AckPolicy::Window(n) => n.max(1),
        };
        config
    }

    /// Starts the engine with the resolved replicator; wires the
    /// adaptive policy's phase hook to the live pipeline tuning.
    #[allow(clippy::too_many_arguments)]
    fn start_engine(
        device: Arc<dyn BlockDevice>,
        mode: ReplicationMode,
        replicator: Option<Arc<dyn Replicator>>,
        adaptive: Option<Arc<AdaptiveReplicator>>,
        transports: Vec<Box<dyn Transport>>,
        config: PipelineConfig,
        clock: Arc<dyn Clock>,
        registry: Option<Arc<prins_obs::Registry>>,
        trace: Option<prins_obs::TraceConfig>,
    ) -> PrinsEngine {
        let replicator = adaptive
            .clone()
            .map(|a| a as Arc<dyn Replicator>)
            .or(replicator);
        let base_batch = config.batch_frames.max(1);
        let base_coalesce = config.coalesce;
        let mut engine = PrinsEngine::start(
            device,
            mode,
            replicator,
            transports,
            config,
            clock,
            registry,
            trace.map(|cfg| Arc::new(prins_obs::TraceSink::new(cfg))),
        );
        if let Some(adaptive) = adaptive {
            let tuning: Arc<PipelineTuning> = Arc::clone(engine.tuning());
            adaptive.set_phase_hook(move |phase| match phase {
                // Tiny parity payloads: amortize the per-frame seal and
                // ack round-trip over a deep batch.
                WorkloadPhase::SmallDelta => {
                    tuning.set_batch_frames(base_batch.max(8));
                    tuning.set_coalesce(base_coalesce);
                }
                // Back to whatever the builder configured.
                WorkloadPhase::Mixed => {
                    tuning.set_batch_frames(base_batch);
                    tuning.set_coalesce(base_coalesce);
                }
                // Near-full frames gain little from batching, but
                // folding repeated rewrites of one block saves whole
                // block images.
                WorkloadPhase::Churn => {
                    tuning.set_batch_frames(base_batch.min(2));
                    tuning.set_coalesce(true);
                }
            });
            engine.adaptive = Some(adaptive);
        }
        engine
    }

    fn build_adaptive(&self) -> Option<Arc<AdaptiveReplicator>> {
        self.adaptive.map(|cfg| {
            Arc::new(match &self.registry {
                Some(registry) => AdaptiveReplicator::with_registry(cfg, registry),
                None => AdaptiveReplicator::new(cfg),
            })
        })
    }

    /// Pushes a full image of the local device to every replica before
    /// starting (the paper's initial sync), then builds the engine.
    ///
    /// The sync runs over a plain [`ReplicationGroup`] (windowed by the
    /// configured ack policy); the transports are then handed to the
    /// engine's pipeline.
    ///
    /// # Errors
    ///
    /// Propagates sync failures; no engine is started in that case.
    pub fn build_with_initial_sync(self) -> Result<PrinsEngine, ReplError> {
        let config = self.resolved_config();
        let adaptive = self.build_adaptive();
        let clock = self
            .clock
            .unwrap_or_else(|| Arc::new(WallClock::new()) as Arc<dyn Clock>);
        let mut group = ReplicationGroup::new(self.mode, self.replicas)
            .with_ack_timeout(config.ack_timeout)
            .with_ack_policy(AckPolicy::Window(config.ack_window));
        group.initial_sync(&self.device)?;
        Ok(Self::start_engine(
            self.device,
            self.mode,
            self.replicator,
            adaptive,
            group.into_transports(),
            config,
            clock,
            self.registry,
            self.trace,
        ))
    }

    /// Builds and starts the engine (replicas are assumed to already
    /// hold a copy of the device, e.g. fresh all-zero volumes).
    pub fn build(self) -> PrinsEngine {
        let config = self.resolved_config();
        let adaptive = self.build_adaptive();
        let clock = self
            .clock
            .unwrap_or_else(|| Arc::new(WallClock::new()) as Arc<dyn Clock>);
        Self::start_engine(
            self.device,
            self.mode,
            self.replicator,
            adaptive,
            self.replicas,
            config,
            clock,
            self.registry,
            self.trace,
        )
    }
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("mode", &self.mode)
            .field("replicas", &self.replicas.len())
            .field("pipeline", &self.config)
            .finish_non_exhaustive()
    }
}
