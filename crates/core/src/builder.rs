//! Builder for [`PrinsEngine`].

use std::sync::Arc;
use std::time::Duration;

use prins_block::BlockDevice;
use prins_net::Transport;
use prins_repl::{AckPolicy, ReplError, ReplicationGroup, ReplicationMode};

use crate::PrinsEngine;

/// Configures and starts a [`PrinsEngine`].
///
/// # Example
///
/// ```
/// use prins_block::{BlockSize, MemDevice};
/// use prins_core::EngineBuilder;
/// use prins_repl::ReplicationMode;
/// use std::sync::Arc;
///
/// // An engine with no replicas still works (local-only, encoding
/// // accounted) — useful for overhead measurements.
/// let device = Arc::new(MemDevice::new(BlockSize::kb8(), 16));
/// let engine = EngineBuilder::new(device)
///     .mode(ReplicationMode::Prins)
///     .build();
/// # drop(engine);
/// ```
pub struct EngineBuilder {
    device: Arc<dyn BlockDevice>,
    mode: ReplicationMode,
    replicas: Vec<Box<dyn Transport>>,
    ack_timeout: Duration,
    ack_policy: AckPolicy,
}

impl EngineBuilder {
    /// Starts configuring an engine over `device`.
    pub fn new(device: Arc<dyn BlockDevice>) -> Self {
        Self {
            device,
            mode: ReplicationMode::Prins,
            replicas: Vec::new(),
            ack_timeout: Duration::from_secs(10),
            ack_policy: AckPolicy::PerWrite,
        }
    }

    /// Selects the replication strategy (default: [`ReplicationMode::Prins`]).
    pub fn mode(mut self, mode: ReplicationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Adds a replica connection.
    pub fn replica(mut self, transport: Box<dyn Transport>) -> Self {
        self.replicas.push(transport);
        self
    }

    /// Overrides how long the replication thread waits for each
    /// acknowledgement (default 10 s).
    pub fn ack_timeout(mut self, timeout: Duration) -> Self {
        self.ack_timeout = timeout;
        self
    }

    /// Overrides the acknowledgement policy (default: per-write, the
    /// paper's conservative closed-loop model; a window pipelines
    /// writes over the WAN).
    pub fn ack_policy(mut self, policy: AckPolicy) -> Self {
        self.ack_policy = policy;
        self
    }

    /// Pushes a full image of the local device to every replica before
    /// starting (the paper's initial sync), then builds the engine.
    ///
    /// # Errors
    ///
    /// Propagates sync failures; no engine is started in that case.
    pub fn build_with_initial_sync(self) -> Result<PrinsEngine, ReplError> {
        let mut group = ReplicationGroup::new(self.mode, self.replicas)
            .with_ack_timeout(self.ack_timeout)
            .with_ack_policy(self.ack_policy);
        group.initial_sync(&self.device)?;
        Ok(PrinsEngine::start(self.device, group))
    }

    /// Builds and starts the engine (replicas are assumed to already
    /// hold a copy of the device, e.g. fresh all-zero volumes).
    pub fn build(self) -> PrinsEngine {
        let group = ReplicationGroup::new(self.mode, self.replicas)
            .with_ack_timeout(self.ack_timeout)
            .with_ack_policy(self.ack_policy);
        PrinsEngine::start(self.device, group)
    }
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("mode", &self.mode)
            .field("replicas", &self.replicas.len())
            .finish_non_exhaustive()
    }
}
