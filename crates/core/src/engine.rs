//! The primary-side PRINS engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use prins_block::{BlockDevice, BlockError, Geometry, Lba, Result};
use prins_repl::{ReplError, ReplicationGroup};

use crate::EngineStats;

pub(crate) enum Job {
    Write {
        lba: Lba,
        old: Vec<u8>,
        new: Vec<u8>,
    },
    Barrier(Sender<()>),
    Shutdown,
}

#[derive(Default)]
pub(crate) struct Shared {
    pub writes: AtomicU64,
    pub reads: AtomicU64,
    pub writes_replicated: AtomicU64,
    pub replicated_payload_bytes: AtomicU64,
    pub local_write_nanos: AtomicU64,
    pub overhead_nanos: AtomicU64,
    pub send_nanos: AtomicU64,
    pub replication_errors: AtomicU64,
    pub last_error: Mutex<Option<String>>,
}

/// The PRINS-engine: a [`BlockDevice`] wrapper that replicates every
/// write through a background replication thread.
///
/// Construct with [`EngineBuilder`](crate::EngineBuilder). The write
/// path performs the paper's forward step — capture `A_old`, write
/// `A_new` locally, hand `(lba, A_old, A_new)` to the replication thread
/// over a shared queue — and returns; parity encoding and transmission
/// happen off the application's critical path.
///
/// [`flush`](BlockDevice::flush) acts as a replication barrier: it
/// returns once every queued write has been acknowledged by every
/// replica, surfacing any replication error that occurred.
pub struct PrinsEngine {
    device: Arc<dyn BlockDevice>,
    tx: Sender<Job>,
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
    /// Per-LBA stripe locks: the old-image capture, the local write and
    /// the queue submission must be atomic per block, or two concurrent
    /// writers to one LBA would enqueue parities computed against the
    /// same old image — and the replica's XOR chain would diverge.
    write_stripes: Vec<Mutex<()>>,
}

impl PrinsEngine {
    pub(crate) fn start(device: Arc<dyn BlockDevice>, mut group: ReplicationGroup) -> Self {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let shared = Arc::new(Shared::default());
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("prins-engine".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Write { lba, old, new } => {
                            let t0 = Instant::now();
                            let payload = group.encode(lba, &old, &new);
                            worker_shared
                                .overhead_nanos
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);

                            let t1 = Instant::now();
                            let result = group.replicate_payload(&payload);
                            worker_shared
                                .send_nanos
                                .fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            match result {
                                Ok(()) => {
                                    worker_shared
                                        .writes_replicated
                                        .store(group.writes_replicated(), Ordering::Relaxed);
                                    worker_shared.replicated_payload_bytes.fetch_add(
                                        payload.len() as u64 * group.replica_count().max(1) as u64,
                                        Ordering::Relaxed,
                                    );
                                }
                                Err(e) => record_error(&worker_shared, &e),
                            }
                        }
                        Job::Barrier(done) => {
                            // All prior jobs are processed; wait out any
                            // pipelined acknowledgements, then release
                            // the waiter.
                            if let Err(e) = group.drain_acks() {
                                record_error(&worker_shared, &e);
                            }
                            worker_shared
                                .writes_replicated
                                .store(group.writes_replicated(), Ordering::Relaxed);
                            let _ = done.send(());
                        }
                        Job::Shutdown => break,
                    }
                }
            })
            .expect("spawn prins-engine thread");
        Self {
            device,
            tx,
            shared,
            worker: Mutex::new(Some(worker)),
            write_stripes: (0..64).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            writes: self.shared.writes.load(Ordering::Relaxed),
            reads: self.shared.reads.load(Ordering::Relaxed),
            writes_replicated: self.shared.writes_replicated.load(Ordering::Relaxed),
            replicated_payload_bytes: self.shared.replicated_payload_bytes.load(Ordering::Relaxed),
            local_write_nanos: self.shared.local_write_nanos.load(Ordering::Relaxed),
            overhead_nanos: self.shared.overhead_nanos.load(Ordering::Relaxed),
            send_nanos: self.shared.send_nanos.load(Ordering::Relaxed),
            replication_errors: self.shared.replication_errors.load(Ordering::Relaxed),
        }
    }

    /// The wrapped local device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.device
    }

    /// Waits until the replication queue is drained.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::DeviceFailed`] if any replication error
    /// occurred since the last check (the error is consumed).
    pub fn replication_barrier(&self) -> Result<()> {
        let (done_tx, done_rx) = unbounded();
        self.tx
            .send(Job::Barrier(done_tx))
            .map_err(|_| BlockError::DeviceFailed {
                device: "prins replication thread is gone".into(),
            })?;
        done_rx.recv().map_err(|_| BlockError::DeviceFailed {
            device: "prins replication thread exited before the barrier".into(),
        })?;
        if let Some(err) = self.shared.last_error.lock().take() {
            return Err(BlockError::DeviceFailed {
                device: format!("replication failed: {err}"),
            });
        }
        Ok(())
    }

    /// Stops the engine: drains the queue, joins the replication thread
    /// and reports any outstanding replication error.
    ///
    /// # Errors
    ///
    /// Returns the first replication error recorded, if any. The engine
    /// is unusable for further writes either way.
    pub fn shutdown(self) -> Result<()> {
        let result = self.replication_barrier();
        let _ = self.tx.send(Job::Shutdown);
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
        result
    }
}

fn record_error(shared: &Shared, e: &ReplError) {
    shared.replication_errors.fetch_add(1, Ordering::Relaxed);
    let mut slot = shared.last_error.lock();
    if slot.is_none() {
        *slot = Some(e.to_string());
    }
}

impl BlockDevice for PrinsEngine {
    fn geometry(&self) -> Geometry {
        self.device.geometry()
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.device.read_block(lba, buf)?;
        self.shared.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        // Serialize capture+write+enqueue per LBA stripe (see field doc).
        let _stripe = self.write_stripes[(lba.index() % 64) as usize].lock();
        // Forward step, part 1: capture the old image (the read a
        // RAID-4/5 small write performs anyway).
        let t0 = Instant::now();
        let mut old = self.geometry().block_size().zeroed();
        self.device.read_block(lba, &mut old)?;
        let capture_nanos = t0.elapsed().as_nanos() as u64;

        // The local write itself.
        let t1 = Instant::now();
        self.device.write_block(lba, buf)?;
        let write_nanos = t1.elapsed().as_nanos() as u64;

        self.shared
            .overhead_nanos
            .fetch_add(capture_nanos, Ordering::Relaxed);
        self.shared
            .local_write_nanos
            .fetch_add(write_nanos, Ordering::Relaxed);
        self.shared.writes.fetch_add(1, Ordering::Relaxed);

        self.tx
            .send(Job::Write {
                lba,
                old,
                new: buf.to_vec(),
            })
            .map_err(|_| BlockError::DeviceFailed {
                device: "prins replication thread is gone".into(),
            })
    }

    fn flush(&self) -> Result<()> {
        self.replication_barrier()?;
        self.device.flush()
    }
}

impl Drop for PrinsEngine {
    fn drop(&mut self) {
        // Best-effort teardown; errors were reportable via shutdown().
        let _ = self.tx.send(Job::Shutdown);
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for PrinsEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrinsEngine")
            .field("geometry", &self.device.geometry())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}
