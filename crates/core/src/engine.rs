//! The primary-side PRINS engine.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;

use prins_block::{BlockDevice, BlockError, Geometry, Lba, Result};
use prins_buf::BufPool;
use prins_net::{Clock, Transport};
use prins_repl::{ReplicationMode, Replicator};

use crate::obs::PipeObs;
use crate::pipeline::{Pipeline, PipelineConfig, PipelineTuning, Shared};
use crate::{EngineStats, LaneStats};

/// The PRINS-engine: a [`BlockDevice`] wrapper that replicates every
/// write through a staged background pipeline.
///
/// Construct with [`EngineBuilder`](crate::EngineBuilder). The write
/// path performs the paper's forward step — capture `A_old`, write
/// `A_new` locally, admit `(lba, A_old, A_new)` to the replication
/// pipeline — and returns; parity encoding and transmission happen off
/// the application's critical path, spread over an encode pool and one
/// sender thread per replica (see [`crate::pipeline`] for the stage
/// diagram and its ordering/coalescing invariants).
///
/// [`flush`](BlockDevice::flush) acts as a replication barrier: it
/// returns once every admitted write has been acknowledged by every
/// replica, surfacing any replication error that occurred.
pub struct PrinsEngine {
    device: Arc<dyn BlockDevice>,
    shared: Arc<Shared>,
    pipeline: Pipeline,
    clock: Arc<dyn Clock>,
    /// Slab pool for block images, encoded payloads and wire frames;
    /// shared with every pipeline stage so buffers recycle across the
    /// whole hot path.
    pool: BufPool,
    /// Per-LBA stripe locks: the old-image capture, the local write and
    /// the pipeline admission must be atomic per block, or two
    /// concurrent writers to one LBA would admit parities computed
    /// against the same old image — and the replica's XOR chain would
    /// diverge.
    write_stripes: Vec<Mutex<()>>,
    /// Live pipeline knobs, shared with every stage that reads them.
    tuning: Arc<PipelineTuning>,
    /// The adaptive policy engine, when built with
    /// [`EngineBuilder::adaptive`](crate::EngineBuilder::adaptive).
    pub(crate) adaptive: Option<Arc<prins_policy::AdaptiveReplicator>>,
}

impl PrinsEngine {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        device: Arc<dyn BlockDevice>,
        mode: ReplicationMode,
        replicator: Option<Arc<dyn Replicator>>,
        transports: Vec<Box<dyn Transport>>,
        config: PipelineConfig,
        clock: Arc<dyn Clock>,
        registry: Option<Arc<prins_obs::Registry>>,
        trace: Option<Arc<prins_obs::TraceSink>>,
    ) -> Self {
        let shared = Arc::new(Shared {
            obs: registry.map(PipeObs::new),
            trace,
            ..Shared::default()
        });
        // A custom replicator (e.g. prins-policy's adaptive one)
        // overrides the static strategy the mode names.
        let replicator: Arc<dyn Replicator> =
            replicator.unwrap_or_else(|| Arc::from(mode.replicator()));
        let pool =
            BufPool::for_block_size(device.geometry().block_size().bytes(), config.batch_frames);
        let tuning = PipelineTuning::from_config(&config);
        let pipeline = Pipeline::start(
            replicator,
            transports,
            Arc::clone(&shared),
            &config,
            Arc::clone(&clock),
            pool.clone(),
            Arc::clone(&tuning),
        );
        if let Some(obs) = &shared.obs {
            // The collector closes over a Weak: the registry outliving
            // the engine must not keep the Shared block (and with it
            // this very registry, via `obs`) alive in a cycle. Gauges
            // keep their last published value, and the engine publishes
            // once more on drop, so post-shutdown snapshots still show
            // the final counters.
            let weak = Arc::downgrade(&shared);
            let lanes: Vec<_> = pipeline.lanes().to_vec();
            let pool = pool.clone();
            obs.registry.add_collector(Box::new(move |reg| {
                if let Some(shared) = weak.upgrade() {
                    publish_engine_gauges(reg, &shared, &lanes, &pool);
                }
            }));
        }
        Self {
            device,
            shared,
            pipeline,
            clock,
            pool,
            write_stripes: (0..64).map(|_| Mutex::new(())).collect(),
            tuning,
            adaptive: None,
        }
    }

    /// The live pipeline knobs (batching depth, coalescing). Safe to
    /// retune from any thread while the engine runs; the adaptive
    /// policy's phase hook points here.
    pub fn tuning(&self) -> &Arc<PipelineTuning> {
        &self.tuning
    }

    /// The adaptive policy engine (decision counters, counterfactuals,
    /// current workload phase), when built with
    /// [`EngineBuilder::adaptive`](crate::EngineBuilder::adaptive).
    pub fn adaptive(&self) -> Option<&Arc<prins_policy::AdaptiveReplicator>> {
        self.adaptive.as_ref()
    }

    /// The metrics registry the engine records into, if one was
    /// attached via [`observe`](crate::EngineBuilder::observe).
    pub fn registry(&self) -> Option<&Arc<prins_obs::Registry>> {
        self.shared.obs.as_ref().map(|obs| &obs.registry)
    }

    /// The per-write trace sink, if tracing was enabled via
    /// [`flight_recorder`](crate::EngineBuilder::flight_recorder).
    /// Share it with cluster layers (`attach_tracer`) for end-to-end
    /// traces across the whole stack.
    pub fn trace_sink(&self) -> Option<&Arc<prins_obs::TraceSink>> {
        self.shared.trace.as_ref()
    }

    /// Drives one pipeline round when the engine was built with
    /// [`manual_stepping`](crate::EngineBuilder::manual_stepping):
    /// encodes every admitted write and lets each sender lane transmit
    /// and collect acknowledgements, all on the calling thread.
    ///
    /// Returns whether any work was performed; always `false` on a
    /// threaded engine.
    pub fn step(&self) -> bool {
        self.pipeline.step()
    }

    /// Snapshot of the engine's counters.
    ///
    /// `writes_replicated` is the number of writes acknowledged by
    /// *every* replica; `replicated_payload_bytes` counts each
    /// successful transmission once per lane (a write sent to three
    /// replicas contributes three payloads).
    pub fn stats(&self) -> EngineStats {
        let lanes = self.pipeline.lanes();
        let writes_replicated = if lanes.is_empty() {
            self.shared.dispatched_writes.load(Ordering::Relaxed)
        } else {
            lanes
                .iter()
                .map(|l| l.acked_writes.load(Ordering::Relaxed))
                .min()
                .unwrap_or(0)
        };
        EngineStats {
            writes: self.shared.writes.load(Ordering::Relaxed),
            reads: self.shared.reads.load(Ordering::Relaxed),
            writes_replicated,
            replicated_payload_bytes: lanes
                .iter()
                .map(|l| l.payload_bytes.load(Ordering::Relaxed))
                .sum(),
            local_write_nanos: self.shared.local_write_nanos.load(Ordering::Relaxed),
            overhead_nanos: self.shared.overhead_nanos.load(Ordering::Relaxed),
            send_nanos: lanes
                .iter()
                .map(|l| l.send_nanos.load(Ordering::Relaxed) + l.ack_nanos.load(Ordering::Relaxed))
                .sum(),
            replication_errors: self.shared.replication_errors.load(Ordering::Relaxed),
            coalesced_writes: self.shared.coalesced_writes.load(Ordering::Relaxed),
            queue_depth_hwm: self.shared.queue_depth_hwm.load(Ordering::Relaxed),
        }
    }

    /// Per-replica sender-lane counters, in replica order.
    pub fn lane_stats(&self) -> Vec<LaneStats> {
        self.pipeline
            .lanes()
            .iter()
            .map(|l| LaneStats {
                sends: l.sends.load(Ordering::Relaxed),
                acked_writes: l.acked_writes.load(Ordering::Relaxed),
                payload_bytes: l.payload_bytes.load(Ordering::Relaxed),
                send_nanos: l.send_nanos.load(Ordering::Relaxed),
                ack_nanos: l.ack_nanos.load(Ordering::Relaxed),
                errors: l.errors.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Per-lane `(lba, seq)` send logs, in send order.
    ///
    /// Empty unless the engine was built with
    /// [`trace_sends`](crate::EngineBuilder::trace_sends); intended for
    /// ordering tests — the transports deliver in send order, so each
    /// log is exactly the replica's arrival order.
    pub fn send_logs(&self) -> Vec<Vec<(Lba, u64)>> {
        self.pipeline.lanes().iter().map(|l| l.send_log()).collect()
    }

    /// The wrapped local device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.device
    }

    /// Waits until every admitted write is replicated and acknowledged.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::DeviceFailed`] if any replication error
    /// occurred since the last check (the error is consumed).
    pub fn replication_barrier(&self) -> Result<()> {
        self.pipeline.barrier();
        if let Some(err) = self.shared.last_error.lock().take() {
            return Err(BlockError::DeviceFailed {
                device: format!("replication failed: {err}"),
            });
        }
        Ok(())
    }

    /// Stops the engine: drains the pipeline, joins all worker threads
    /// and reports any outstanding replication error.
    ///
    /// # Errors
    ///
    /// Returns the first replication error recorded, if any. The engine
    /// is unusable for further writes either way.
    pub fn shutdown(self) -> Result<()> {
        let result = self.replication_barrier();
        self.pipeline.shutdown();
        result
    }
}

impl BlockDevice for PrinsEngine {
    fn geometry(&self) -> Geometry {
        self.device.geometry()
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.device.read_block(lba, buf)?;
        self.shared.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        // Serialize capture+write+admit per LBA stripe (see field doc).
        let _stripe = self.write_stripes[(lba.index() % 64) as usize].lock();
        // Forward step, part 1: capture the old image (the read a
        // RAID-4/5 small write performs anyway) into a pooled buffer.
        let t0 = self.clock.now_nanos();
        let bs = self.geometry().block_size().bytes();
        let mut old = self.pool.get(bs);
        old.resize_zeroed(bs);
        self.device.read_block(lba, old.as_mut_slice())?;
        let capture_nanos = self.clock.now_nanos().saturating_sub(t0);

        // The local write itself.
        let t1 = self.clock.now_nanos();
        self.device.write_block(lba, buf)?;
        let write_nanos = self.clock.now_nanos().saturating_sub(t1);

        self.shared
            .overhead_nanos
            .fetch_add(capture_nanos, Ordering::Relaxed);
        self.shared
            .local_write_nanos
            .fetch_add(write_nanos, Ordering::Relaxed);
        self.shared.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.shared.obs {
            obs.capture.record(capture_nanos);
            obs.local_write.record(write_nanos);
        }

        // Forward step, part 2: the new image's single hot-path copy,
        // into a pooled buffer the encoder reads from in place.
        let mut new = self.pool.get(buf.len());
        new.copy_from(buf);
        self.shared
            .hot_bytes_copied
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.pipeline
            .admit(lba, old, new)
            .map_err(|_| BlockError::DeviceFailed {
                device: "prins replication pipeline is gone".into(),
            })
    }

    fn flush(&self) -> Result<()> {
        self.replication_barrier()?;
        self.device.flush()
    }
}

impl Drop for PrinsEngine {
    fn drop(&mut self) {
        // Best-effort teardown; errors were reportable via shutdown().
        // The pipeline drains queued work before its threads exit.
        self.pipeline.shutdown();
        if let Some(obs) = &self.shared.obs {
            // Final gauge publish: the snapshot collector only holds a
            // Weak to this engine's state and goes quiet after drop.
            publish_engine_gauges(
                &obs.registry,
                &self.shared,
                self.pipeline.lanes(),
                &self.pool,
            );
        }
    }
}

/// Copies the engine's counters into registry gauges. Run by the
/// snapshot collector while the engine lives and once at drop.
fn publish_engine_gauges(
    reg: &prins_obs::Registry,
    shared: &Shared,
    lanes: &[Arc<crate::pipeline::LaneState>],
    pool: &BufPool,
) {
    let pool_stats = pool.stats();
    let writes = shared.writes.load(Ordering::Relaxed);
    let hot_bytes = shared.hot_bytes_copied.load(Ordering::Relaxed);
    for (name, value) in [
        ("engine_writes", writes),
        ("engine_reads", shared.reads.load(Ordering::Relaxed)),
        (
            "engine_coalesced_writes",
            shared.coalesced_writes.load(Ordering::Relaxed),
        ),
        (
            "engine_dispatched_writes",
            shared.dispatched_writes.load(Ordering::Relaxed),
        ),
        (
            "engine_replication_errors",
            shared.replication_errors.load(Ordering::Relaxed),
        ),
        (
            "engine_queue_depth_hwm",
            shared.queue_depth_hwm.load(Ordering::Relaxed),
        ),
        ("engine_hot_bytes_copied", hot_bytes),
        (
            "engine_bytes_copied_per_write",
            hot_bytes.checked_div(writes).unwrap_or(0),
        ),
        ("pool_hits", pool_stats.hits),
        ("pool_misses", pool_stats.misses),
        ("pool_miss_ppm", pool_stats.miss_ppm()),
        ("pool_in_use", pool_stats.in_use),
        ("pool_in_use_hwm", pool_stats.in_use_hwm),
    ] {
        reg.gauge(name).set(value);
    }
    for (idx, lane) in lanes.iter().enumerate() {
        for (suffix, value) in [
            ("sends", lane.sends.load(Ordering::Relaxed)),
            ("acked_writes", lane.acked_writes.load(Ordering::Relaxed)),
            ("payload_bytes", lane.payload_bytes.load(Ordering::Relaxed)),
            ("errors", lane.errors.load(Ordering::Relaxed)),
        ] {
            reg.gauge(&format!("lane{idx}_{suffix}")).set(value);
        }
    }
}

impl std::fmt::Debug for PrinsEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrinsEngine")
            .field("geometry", &self.device.geometry())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}
