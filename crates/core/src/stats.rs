//! Engine statistics, including the CPU-overhead accounting behind the
//! paper's "< 10 % overhead" claim.

use std::time::Duration;

/// Counters and timings accumulated by a [`PrinsEngine`](crate::PrinsEngine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Block writes accepted by the engine.
    pub writes: u64,
    /// Block reads served.
    pub reads: u64,
    /// Writes fully replicated (acknowledged by every replica).
    pub writes_replicated: u64,
    /// Application payload bytes handed to the transports.
    pub replicated_payload_bytes: u64,
    /// Nanoseconds spent performing local block writes (the unavoidable
    /// base cost).
    pub local_write_nanos: u64,
    /// Nanoseconds spent on PRINS-specific work in the write path:
    /// reading the old image and XOR/encode of the parity.
    pub overhead_nanos: u64,
    /// Nanoseconds the replication thread spent sending and awaiting
    /// acknowledgements (off the critical path).
    pub send_nanos: u64,
    /// Replication failures observed (payloads NAKed or transports
    /// down).
    pub replication_errors: u64,
    /// Writes folded into a still-queued write to the same LBA
    /// (XOR-coalescing; zero unless enabled on the builder).
    pub coalesced_writes: u64,
    /// High-water mark of the encode admission queue depth — how far
    /// the application ran ahead of the pipeline.
    pub queue_depth_hwm: u64,
}

impl EngineStats {
    /// PRINS overhead relative to the local write cost, as a fraction
    /// (the paper measures "less than 10% of traditional replications"
    /// without RAID; ~0 with RAID, where the parity is a by-product).
    pub fn overhead_ratio(&self) -> f64 {
        if self.local_write_nanos == 0 {
            0.0
        } else {
            self.overhead_nanos as f64 / self.local_write_nanos as f64
        }
    }

    /// Total time spent on local writes.
    pub fn local_write_time(&self) -> Duration {
        Duration::from_nanos(self.local_write_nanos)
    }

    /// Total time spent on parity capture/encoding.
    pub fn overhead_time(&self) -> Duration {
        Duration::from_nanos(self.overhead_nanos)
    }

    /// Mean replicated payload per write, in bytes.
    pub fn mean_payload_per_write(&self) -> f64 {
        if self.writes_replicated == 0 {
            0.0
        } else {
            self.replicated_payload_bytes as f64 / self.writes_replicated as f64
        }
    }
}

/// Counters for one per-replica sender lane (see
/// [`PrinsEngine::lane_stats`](crate::PrinsEngine::lane_stats)).
///
/// The split between `send_nanos` (time in `Transport::send`) and
/// `ack_nanos` (time waiting for acknowledgements) is what makes a
/// slow replica visible: its lane accumulates ack time while the
/// other lanes keep draining.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Wire frames transmitted (a batch frame counts once).
    pub sends: u64,
    /// Writes acknowledged by this replica (folded writes count each
    /// original write).
    pub acked_writes: u64,
    /// Payload bytes successfully handed to this transport.
    pub payload_bytes: u64,
    /// Nanoseconds inside `Transport::send`.
    pub send_nanos: u64,
    /// Nanoseconds waiting for acknowledgements.
    pub ack_nanos: u64,
    /// Send or acknowledgement failures on this lane.
    pub errors: u64,
}

impl LaneStats {
    /// Mean round-trip-inclusive acknowledgement wait per frame.
    pub fn mean_ack_wait(&self) -> Duration {
        self.ack_nanos
            .checked_div(self.sends)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = EngineStats::default();
        assert_eq!(s.overhead_ratio(), 0.0);
        assert_eq!(s.mean_payload_per_write(), 0.0);
        assert!(s.overhead_ratio().is_finite());
        assert!(s.mean_payload_per_write().is_finite());
        // The lane-side ratio guards the same way: an idle lane reports
        // a zero wait, never NaN or a division panic.
        assert_eq!(LaneStats::default().mean_ack_wait(), Duration::ZERO);
    }

    #[test]
    fn derived_values() {
        let s = EngineStats {
            writes: 10,
            writes_replicated: 10,
            replicated_payload_bytes: 1000,
            local_write_nanos: 1_000_000,
            overhead_nanos: 50_000,
            ..Default::default()
        };
        assert!((s.overhead_ratio() - 0.05).abs() < 1e-12);
        assert!((s.mean_payload_per_write() - 100.0).abs() < 1e-12);
        assert_eq!(s.local_write_time(), Duration::from_millis(1));
    }
}
