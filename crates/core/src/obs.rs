//! Engine-side observability wiring.
//!
//! [`PipeObs`] is the pipeline's handle bundle into a shared
//! [`Registry`]: one histogram per stage, pre-resolved at engine start
//! so the hot paths touch only atomics. It is optional — an engine
//! built without [`EngineBuilder::observe`](crate::EngineBuilder::observe)
//! pays a single `Option` check per stage.
//!
//! Stage histogram names (all nanoseconds of the engine's clock):
//!
//! | name                       | measures                                   |
//! |----------------------------|--------------------------------------------|
//! | `stage_capture_nanos`      | old-image read in `write_block`            |
//! | `stage_local_write_nanos`  | the local block write                      |
//! | `stage_admission_wait_nanos` | admit → claimed by an encode worker      |
//! | `stage_encode_nanos`       | parity encode proper                       |
//! | `stage_reorder_hold_nanos` | encoded → released in sequence order       |
//! | `stage_lane_queue_nanos`   | released → picked up by the sender lane    |
//! | `stage_send_nanos`         | the transport send call                    |
//! | `stage_ack_rtt_nanos`      | ack wait per in-flight frame               |
//! | `admit_queue_depth`        | admission-queue length at each admit       |

use std::sync::Arc;

use prins_obs::{Counter, Event, Histogram, Registry};

/// Pre-resolved registry handles for the pipeline's hot paths.
pub(crate) struct PipeObs {
    pub registry: Arc<Registry>,
    pub capture: Arc<Histogram>,
    pub local_write: Arc<Histogram>,
    pub admission_wait: Arc<Histogram>,
    pub encode: Arc<Histogram>,
    pub reorder_hold: Arc<Histogram>,
    pub lane_queue: Arc<Histogram>,
    pub send: Arc<Histogram>,
    pub ack_rtt: Arc<Histogram>,
    pub queue_depth: Arc<Histogram>,
    /// Frames a replica answered with `NAK_CORRUPT` — damaged in
    /// flight, caught by the seal's CRC32C before apply.
    pub checksum_failures: Arc<Counter>,
    /// Retained frames re-sent after a corrupt NAK.
    pub retransmits: Arc<Counter>,
}

impl PipeObs {
    pub fn new(registry: Arc<Registry>) -> Self {
        Self {
            capture: registry.histogram("stage_capture_nanos"),
            local_write: registry.histogram("stage_local_write_nanos"),
            admission_wait: registry.histogram("stage_admission_wait_nanos"),
            encode: registry.histogram("stage_encode_nanos"),
            reorder_hold: registry.histogram("stage_reorder_hold_nanos"),
            lane_queue: registry.histogram("stage_lane_queue_nanos"),
            send: registry.histogram("stage_send_nanos"),
            ack_rtt: registry.histogram("stage_ack_rtt_nanos"),
            queue_depth: registry.histogram("admit_queue_depth"),
            checksum_failures: registry.counter("checksum_failures"),
            retransmits: registry.counter("retransmits"),
            registry,
        }
    }

    pub fn record(&self, event: Event) {
        self.registry.events().record(event);
    }
}

impl std::fmt::Debug for PipeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeObs").finish_non_exhaustive()
    }
}
