//! The replica-side PRINS engine.

use std::sync::Arc;
use std::thread::JoinHandle;

use prins_block::BlockDevice;
use prins_net::Transport;
use prins_repl::{run_replica, ReplError};

/// The replica-side counterpart of [`PrinsEngine`](crate::PrinsEngine).
///
/// Listens on a transport, performs the backward parity computation
/// (`A_new = P' ⊕ A_old`) for PRINS payloads — or plain/decompressed
/// writes for the baseline strategies — stores the block at its LBA, and
/// acknowledges. "The replica storage nodes also run the PRINS-engine
/// that receives parity, computes data back, and stores the data block
/// in-place."
pub struct ReplicaEngine<T> {
    device: Arc<dyn BlockDevice>,
    transport: T,
}

impl<T: Transport> ReplicaEngine<T> {
    /// Creates a replica engine over a local device and an inbound
    /// connection from the primary.
    pub fn new(device: Arc<dyn BlockDevice>, transport: T) -> Self {
        Self { device, transport }
    }

    /// Serves until the primary disconnects, returning the number of
    /// writes applied.
    ///
    /// # Errors
    ///
    /// Local device failures abort the loop (after NAKing the offending
    /// payload).
    pub fn run(self) -> Result<u64, ReplError> {
        run_replica(&*self.device, &self.transport)
    }
}

impl<T: Transport + 'static> ReplicaEngine<T> {
    /// Runs the replica on a dedicated thread.
    pub fn spawn(device: Arc<dyn BlockDevice>, transport: T) -> JoinHandle<Result<u64, ReplError>> {
        std::thread::Builder::new()
            .name("prins-replica".into())
            .spawn(move || ReplicaEngine::new(device, transport).run())
            .expect("spawn prins-replica thread")
    }
}

impl<T> std::fmt::Debug for ReplicaEngine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaEngine")
            .field("geometry", &self.device.geometry())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineBuilder;
    use prins_block::{BlockSize, Lba, MemDevice};
    use prins_net::{channel_pair, LinkModel};
    use prins_repl::{verify_consistent, ReplicationMode};
    use rand::{RngExt, SeedableRng};

    fn end_to_end(mode: ReplicationMode) {
        let (to_replica, at_replica) = channel_pair(LinkModel::t1());
        let replica_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 32));
        let replica =
            ReplicaEngine::spawn(Arc::clone(&replica_dev) as Arc<dyn BlockDevice>, at_replica);

        let primary_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 32));
        let engine = EngineBuilder::new(Arc::clone(&primary_dev) as Arc<dyn BlockDevice>)
            .mode(mode)
            .replica(Box::new(to_replica))
            .build();

        use prins_block::BlockDevice as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..120 {
            let lba = Lba(rng.random_range(0..32));
            let mut block = engine.read_block_vec(lba).unwrap();
            let at = rng.random_range(0..4000);
            for b in &mut block[at..at + 32] {
                *b = rng.random();
            }
            engine.write_block(lba, &block).unwrap();
        }
        engine.flush().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.writes, 120);
        assert_eq!(stats.writes_replicated, 120);
        assert_eq!(stats.replication_errors, 0);
        engine.shutdown().unwrap();

        assert_eq!(replica.join().unwrap().unwrap(), 120);
        assert!(
            verify_consistent(&*primary_dev, &*replica_dev).unwrap(),
            "{mode}"
        );
    }

    #[test]
    fn prins_end_to_end_converges() {
        end_to_end(ReplicationMode::Prins);
    }

    #[test]
    fn traditional_end_to_end_converges() {
        end_to_end(ReplicationMode::Traditional);
    }

    #[test]
    fn compressed_end_to_end_converges() {
        end_to_end(ReplicationMode::Compressed);
    }

    #[test]
    fn prins_compressed_end_to_end_converges() {
        end_to_end(ReplicationMode::PrinsCompressed);
    }

    #[test]
    fn two_replicas_both_converge() {
        let (to_r1, at_r1) = channel_pair(LinkModel::t1());
        let (to_r2, at_r2) = channel_pair(LinkModel::t3());
        let d1 = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let d2 = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let r1 = ReplicaEngine::spawn(Arc::clone(&d1) as Arc<dyn BlockDevice>, at_r1);
        let r2 = ReplicaEngine::spawn(Arc::clone(&d2) as Arc<dyn BlockDevice>, at_r2);

        let primary = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let engine = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
            .replica(Box::new(to_r1))
            .replica(Box::new(to_r2))
            .build();

        use prins_block::BlockDevice as _;
        for i in 0..8u64 {
            engine
                .write_block(Lba(i), &vec![i as u8 + 1; 4096])
                .unwrap();
        }
        engine.shutdown().unwrap();
        r1.join().unwrap().unwrap();
        r2.join().unwrap().unwrap();
        assert!(verify_consistent(&*primary, &*d1).unwrap());
        assert!(verify_consistent(&*primary, &*d2).unwrap());
    }

    #[test]
    fn initial_sync_bootstraps_nonempty_primary() {
        let (to_replica, at_replica) = channel_pair(LinkModel::t1());
        let replica_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let replica =
            ReplicaEngine::spawn(Arc::clone(&replica_dev) as Arc<dyn BlockDevice>, at_replica);

        use prins_block::BlockDevice as _;
        let primary_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        for i in 0..8u64 {
            primary_dev
                .write_block(Lba(i), &vec![0x40 + i as u8; 4096])
                .unwrap();
        }
        let engine = EngineBuilder::new(Arc::clone(&primary_dev) as Arc<dyn BlockDevice>)
            .replica(Box::new(to_replica))
            .build_with_initial_sync()
            .unwrap();
        engine.shutdown().unwrap();
        replica.join().unwrap().unwrap();
        assert!(verify_consistent(&*primary_dev, &*replica_dev).unwrap());
    }

    #[test]
    fn replication_failure_surfaces_at_flush() {
        let (to_replica, at_replica) = channel_pair(LinkModel::t1());
        // Replica device too small: writes past block 0 NAK.
        let replica_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 1));
        let _replica =
            ReplicaEngine::spawn(Arc::clone(&replica_dev) as Arc<dyn BlockDevice>, at_replica);
        let primary_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let engine = EngineBuilder::new(Arc::clone(&primary_dev) as Arc<dyn BlockDevice>)
            .mode(ReplicationMode::Traditional)
            .replica(Box::new(to_replica))
            .build();

        use prins_block::BlockDevice as _;
        engine.write_block(Lba(5), &vec![1u8; 4096]).unwrap();
        let err = engine.flush().unwrap_err();
        assert!(err.to_string().contains("replication failed"), "{err}");
        assert_eq!(engine.stats().replication_errors, 1);
    }

    #[test]
    fn windowed_ack_engine_converges_and_counts_correctly() {
        use prins_repl::AckPolicy;
        let (to_replica, at_replica) = channel_pair(LinkModel::t1());
        let replica_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 32));
        let replica =
            ReplicaEngine::spawn(Arc::clone(&replica_dev) as Arc<dyn BlockDevice>, at_replica);
        let primary_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 32));
        let engine = EngineBuilder::new(Arc::clone(&primary_dev) as Arc<dyn BlockDevice>)
            .ack_policy(AckPolicy::Window(16))
            .replica(Box::new(to_replica))
            .build();
        use prins_block::BlockDevice as _;
        for i in 0..64u64 {
            engine
                .write_block(Lba(i % 32), &vec![(i + 1) as u8; 4096])
                .unwrap();
        }
        engine.flush().unwrap();
        // The barrier drained the window: every write is acked.
        assert_eq!(engine.stats().writes_replicated, 64);
        engine.shutdown().unwrap();
        assert_eq!(replica.join().unwrap().unwrap(), 64);
        assert!(verify_consistent(&*primary_dev, &*replica_dev).unwrap());
    }

    #[test]
    fn concurrent_writers_to_overlapping_blocks_stay_consistent() {
        // Four threads hammer the same 8 LBAs; the per-LBA stripe locks
        // must keep each parity consistent with its predecessor image,
        // or the replica's XOR chain diverges.
        let (to_replica, at_replica) = channel_pair(LinkModel::t1());
        let replica_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let replica =
            ReplicaEngine::spawn(Arc::clone(&replica_dev) as Arc<dyn BlockDevice>, at_replica);
        let primary_dev = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let engine = Arc::new(
            EngineBuilder::new(Arc::clone(&primary_dev) as Arc<dyn BlockDevice>)
                .replica(Box::new(to_replica))
                .build(),
        );
        use prins_block::BlockDevice as _;
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(t);
                for i in 0..100u64 {
                    let lba = Lba((t + i) % 8);
                    let mut block = vec![0u8; 4096];
                    rng.fill_bytes(&mut block);
                    engine.write_block(lba, &block).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        engine.flush().unwrap();
        assert_eq!(engine.stats().writes, 400);
        assert_eq!(engine.stats().replication_errors, 0);
        Arc::try_unwrap(engine)
            .map_err(|_| "engine still shared")
            .unwrap()
            .shutdown()
            .unwrap();
        replica.join().unwrap().unwrap();
        assert!(verify_consistent(&*primary_dev, &*replica_dev).unwrap());
    }

    #[test]
    fn local_only_engine_accounts_overhead() {
        let device = Arc::new(MemDevice::new(BlockSize::kb8(), 16));
        let engine = EngineBuilder::new(device as Arc<dyn BlockDevice>).build();
        use prins_block::BlockDevice as _;
        for i in 0..16u64 {
            engine.write_block(Lba(i), &vec![i as u8; 8192]).unwrap();
        }
        engine.flush().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.writes, 16);
        assert!(stats.local_write_nanos > 0);
        assert!(stats.overhead_nanos > 0);
        engine.shutdown().unwrap();
    }
}
