//! The PRINS engine — *Parity Replication in IP-Network Storages*
//! (Yang, Xiao, Ren; ICDCS 2006), reproduced as a Rust library.
//!
//! # What PRINS does
//!
//! Distributed storage replicates written blocks to replica nodes for
//! reliability; over a WAN the replica traffic dominates cost and
//! latency. PRINS observes that the parity a RAID-4/5 array already
//! computes on every small write, `P' = A_new ⊕ A_old`, *is* a compact
//! encoding of the write: it is zero everywhere the write didn't change
//! the block. So instead of shipping `A_new`, PRINS ships a
//! zero-run-encoded `P'`; the replica recovers the block with
//! `A_new = P' ⊕ A_old` against its own copy.
//!
//! # Architecture (mirroring §2 of the paper)
//!
//! ```text
//!  application / FS / DBMS
//!          │ block writes
//!          ▼
//!   ┌─────────────────┐  admission queue  ┌──────────────────────┐
//!   │  PrinsEngine    │ ───────────────▶  │ encode pool (N thr.) │
//!   │  (local write + │  seq numbering +  │ P' = A_new ⊕ A_old   │
//!   │   old-image     │  XOR coalescing   │ → reorder by seq     │
//!   │   capture)      │                   └──────────┬───────────┘
//!   └─────────────────┘            per-replica sender lanes (1/replica)
//!                                  batching + windowed acks   │
//!                                                             │ iSCSI / TCP / channel
//!                                                             ▼
//!                                                   ┌──────────────────┐
//!                                                   │  ReplicaEngine   │
//!                                                   │  A_new = P'⊕A_old│
//!                                                   └──────────────────┘
//! ```
//!
//! [`PrinsEngine`] is itself a [`BlockDevice`], so filesystems, page
//! stores and iSCSI targets run on top of it unchanged — "our
//! implementation is file system and application independent".
//!
//! # Example
//!
//! ```
//! use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
//! use prins_core::{EngineBuilder, ReplicaEngine};
//! use prins_net::{channel_pair, LinkModel};
//! use prins_repl::ReplicationMode;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (to_replica, at_replica) = channel_pair(LinkModel::t1());
//!
//! // Replica node.
//! let replica_dev = Arc::new(MemDevice::new(BlockSize::kb8(), 32));
//! let replica = ReplicaEngine::spawn(Arc::clone(&replica_dev) as Arc<_>, at_replica);
//!
//! // Primary node.
//! let primary_dev = Arc::new(MemDevice::new(BlockSize::kb8(), 32));
//! let engine = EngineBuilder::new(Arc::clone(&primary_dev) as Arc<_>)
//!     .mode(ReplicationMode::Prins)
//!     .replica(Box::new(to_replica))
//!     .build();
//!
//! let mut block = vec![0u8; 8192];
//! block[..16].copy_from_slice(b"hello replicas!!");
//! engine.write_block(Lba(5), &block)?;
//! engine.flush()?; // barrier: all queued writes replicated
//!
//! let stats = engine.stats();
//! assert_eq!(stats.writes, 1);
//! assert!(stats.replicated_payload_bytes < 200); // 16 changed bytes, not 8192
//!
//! engine.shutdown()?;
//! assert_eq!(&replica_dev.read_block_vec(Lba(5))?[..16], b"hello replicas!!");
//! # replica.join().unwrap()?;
//! # Ok(())
//! # }
//! ```

mod builder;
mod engine;
mod obs;
pub mod pipeline;
mod replica;
mod stats;

pub use builder::EngineBuilder;
pub use engine::PrinsEngine;
pub use pipeline::PipelineTuning;
pub use replica::ReplicaEngine;
pub use stats::{EngineStats, LaneStats};

pub use prins_block::BlockDevice;
pub use prins_repl::ReplicationMode;
