//! The primary's staged replication pipeline.
//!
//! The original engine pushed every write through one thread that
//! encoded the parity, sent it to each replica in turn and waited for
//! every acknowledgement — so a single slow link throttled all
//! replicas, and encoding never overlapped transmission. This module
//! rebuilds the path as independent stages:
//!
//! ```text
//!  write_block (per-LBA stripe lock)
//!       │  admit: sequence assignment + XOR-fold coalescing
//!       ▼
//!  [admission queue] ──▶ encode pool (N workers: P' = new ⊕ old, encode)
//!       │  reorder buffer releases payloads in sequence order
//!       ▼
//!  ┌── sender lane 0: bounded queue ▷ batch ▷ send ▷ windowed acks
//!  ├── sender lane 1:      "            "      "         "
//!  └── sender lane k:      "            "      "         "
//! ```
//!
//! Invariants:
//!
//! * **Per-LBA ordering.** Admission assigns a global sequence number
//!   under one lock, the admission queue is FIFO, and the reorder
//!   buffer releases encoded payloads strictly in sequence order —
//!   so every lane observes all writes, and in particular all writes
//!   to one LBA, in admission order. This is what keeps the replica's
//!   XOR chain (`A_new = P' ⊕ A_old`) anchored to the right old image.
//! * **Coalescing correctness.** A write to an LBA whose previous
//!   write is still waiting in the admission queue *folds* into it:
//!   the queued job keeps its original `old` image and adopts the
//!   newest `new` image, so the eventual parity is
//!   `P = A_newest ⊕ A_oldest = P₁ ⊕ P₂ ⊕ …` — XOR telescopes the
//!   intermediate images away. No new sequence number is allocated,
//!   so the sequence space stays dense and the reorder buffer never
//!   waits on a hole.
//! * **Barrier.** A flush first waits until every admitted write has
//!   been encoded and released to the lanes, then sends a barrier
//!   token down each lane; a lane drains its acknowledgement window
//!   before arriving at the barrier.
//!
//! A lane that hits a transport error records it (surfaced at the next
//! flush) and keeps retiring queued work, so a dead replica never
//! wedges the barrier.
//!
//! # Determinism seam
//!
//! All elapsed-time accounting goes through an injected
//! [`Clock`](prins_net::Clock), and the whole pipeline can run without
//! any worker threads in *manual* mode
//! ([`EngineBuilder::manual_stepping`](crate::EngineBuilder::manual_stepping)):
//! admissions queue up until [`Pipeline::step`] drives encode → reorder
//! → lanes → acks to completion on the caller's thread. The `prins-sim`
//! harness combines this with a virtual clock and simulated transports
//! to explore fault schedules deterministically; the stage bodies are
//! the same functions the threaded loops run.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use prins_block::Lba;
use prins_buf::{BufPool, PooledBuf, PooledBytes};
use prins_net::{Clock, Transport};
use prins_obs::{Event, EventKind, TraceId, TraceSink, TraceStage, NO_LANE};
use prins_parity::encode_varint;
use prins_repl::{
    decode_ack, seal_begin, ReplError, Replicator, SeqRange, ACK, BATCH_TAG, NAK, NAK_CORRUPT,
};

use crate::obs::PipeObs;

/// Tuning knobs for the replication pipeline (set via
/// [`EngineBuilder`](crate::EngineBuilder)).
#[derive(Clone, Debug)]
pub(crate) struct PipelineConfig {
    /// Parity-encoding worker threads.
    pub encode_workers: usize,
    /// Fold a write into a still-queued write to the same LBA.
    pub coalesce: bool,
    /// Maximum payloads packed into one wire frame (≤ 1 disables
    /// batching).
    pub batch_frames: usize,
    /// In-flight (unacknowledged) frames allowed per lane.
    pub ack_window: usize,
    /// Bounded sender-lane queue capacity (backpressure towards the
    /// encode pool).
    pub queue_cap: usize,
    /// How long a lane waits for each acknowledgement.
    pub ack_timeout: Duration,
    /// Record every (lba, seq) a lane sends, for ordering tests.
    pub trace_sends: bool,
    /// Manual (stepped) mode: no worker threads; the caller drives the
    /// stages through [`Pipeline::step`].
    pub manual: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            encode_workers: 2,
            coalesce: false,
            batch_frames: 1,
            ack_window: 1,
            queue_cap: 1024,
            ack_timeout: Duration::from_secs(10),
            trace_sends: false,
            manual: false,
        }
    }
}

/// The live-tunable subset of [`PipelineConfig`]: knobs that are safe
/// to flip while the pipeline runs, read fresh by the stage that uses
/// them on every admission or frame.
///
/// The adaptive policy engine retunes these on workload-phase
/// transitions — deep batching while writes are tiny parity deltas,
/// aggressive coalescing while full blocks churn. Both knobs are
/// per-decision, not per-run, state:
///
/// * `coalesce` is read once per [`Pipeline::admit`]. Toggling it off
///   mid-run leaves stale `by_lba` entries behind, which is safe —
///   `claim_job` removes an entry unconditionally when its job drains,
///   and a stale entry can only cause one extra (correct) fold.
/// * `batch_frames` is read once per lane frame, so a change applies
///   from the next frame on. Wire format is unaffected: a frame
///   carrying one payload is not wrapped in a batch envelope.
pub struct PipelineTuning {
    batch_frames: AtomicUsize,
    coalesce: AtomicBool,
}

impl PipelineTuning {
    pub(crate) fn from_config(config: &PipelineConfig) -> Arc<Self> {
        Arc::new(Self {
            batch_frames: AtomicUsize::new(config.batch_frames.max(1)),
            coalesce: AtomicBool::new(config.coalesce),
        })
    }

    /// Maximum payloads packed into one wire frame (clamped to ≥ 1).
    pub fn set_batch_frames(&self, frames: usize) {
        self.batch_frames.store(frames.max(1), Ordering::Relaxed);
    }

    /// The batching depth in effect.
    pub fn batch_frames(&self) -> usize {
        self.batch_frames.load(Ordering::Relaxed)
    }

    /// Whether new admissions fold into still-queued writes to the same
    /// LBA.
    pub fn set_coalesce(&self, on: bool) {
        self.coalesce.store(on, Ordering::Relaxed);
    }

    /// The coalescing mode in effect.
    pub fn coalesce(&self) -> bool {
        self.coalesce.load(Ordering::Relaxed)
    }
}

/// Counters shared between the engine front-end and the pipeline
/// stages.
#[derive(Default)]
pub(crate) struct Shared {
    pub writes: AtomicU64,
    pub reads: AtomicU64,
    pub local_write_nanos: AtomicU64,
    pub overhead_nanos: AtomicU64,
    pub replication_errors: AtomicU64,
    pub coalesced_writes: AtomicU64,
    pub queue_depth_hwm: AtomicU64,
    /// Writes released by the reorder stage to the sender lanes (with
    /// no replicas configured this is the replicated count).
    pub dispatched_writes: AtomicU64,
    /// Bytes memcpy'd on the hot path (block capture → wire frame).
    /// With the pooled path a block's bytes are copied once at capture
    /// and once onto the wire; this counter is what proves it.
    pub hot_bytes_copied: AtomicU64,
    pub last_error: parking_lot::Mutex<Option<String>>,
    /// Registry wiring; `None` costs one branch per stage.
    pub obs: Option<PipeObs>,
    /// Per-write causal tracing; `None` costs one branch per stage.
    /// Stage hops record into fixed slots, so the write path stays
    /// allocation-free with tracing on.
    pub trace: Option<Arc<TraceSink>>,
}

pub(crate) fn record_error(shared: &Shared, e: &ReplError) {
    shared.replication_errors.fetch_add(1, Ordering::Relaxed);
    let mut slot = shared.last_error.lock();
    if slot.is_none() {
        *slot = Some(e.to_string());
    }
}

/// A write waiting for the encode pool. The block images live in
/// pooled buffers checked out by the engine front-end; encoding
/// returns them to the pool.
struct EncodeJob {
    seq: u64,
    lba: Lba,
    old: PooledBuf,
    new: PooledBuf,
    /// Writes folded into this job beyond the first.
    folds: u64,
    /// Clock reading at admission (0 when observability is off).
    admitted_at: u64,
}

struct AdmitState {
    /// FIFO of pending jobs; sequence numbers inside are consecutive
    /// (folds reuse the queued job's number), so a job's position is
    /// `seq - front.seq`.
    queue: VecDeque<EncodeJob>,
    /// LBA → sequence number of its still-queued job (coalescing only).
    by_lba: HashMap<u64, u64>,
    /// Next sequence number to assign.
    seq_alloc: u64,
    closed: bool,
}

/// An encoded payload waiting for its sequence turn.
struct Ready {
    lba: Lba,
    writes: u64,
    payload: PooledBytes,
    /// Clock reading when encoding finished (0 when observability is
    /// off); the reorder hold is measured against it at release.
    encoded_at: u64,
}

struct ReorderState {
    /// Next sequence number to release to the lanes.
    next_seq: u64,
    ready: HashMap<u64, Ready>,
}

enum LaneMsg {
    Payload {
        seq: u64,
        lba: Lba,
        writes: u64,
        bytes: PooledBytes,
        /// Clock reading at release to the lanes (0 when observability
        /// is off); the lane-queue wait is measured against it.
        released_at: u64,
    },
    Barrier(Arc<BarrierGate>),
    Shutdown,
}

/// Countdown the flush barrier waits on: one arrival per lane.
struct BarrierGate {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl BarrierGate {
    fn new(lanes: usize) -> Self {
        Self {
            remaining: Mutex::new(lanes),
            done: Condvar::new(),
        }
    }

    fn arrive(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.done.wait(left).unwrap();
        }
    }
}

/// One replica's sender lane: a bounded queue plus its counters.
///
/// The queue is hand-rolled over `std::sync` because the vendored
/// crossbeam only ships unbounded channels and backpressure here is
/// the point: a full lane stalls the encode pool, not the application.
pub(crate) struct LaneState {
    queue: Mutex<VecDeque<LaneMsg>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
    pub sends: AtomicU64,
    pub acked_writes: AtomicU64,
    pub payload_bytes: AtomicU64,
    pub send_nanos: AtomicU64,
    pub ack_nanos: AtomicU64,
    pub errors: AtomicU64,
    send_log: Option<Mutex<Vec<(Lba, u64)>>>,
}

impl LaneState {
    fn new(cap: usize, trace_sends: bool) -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
            sends: AtomicU64::new(0),
            acked_writes: AtomicU64::new(0),
            payload_bytes: AtomicU64::new(0),
            send_nanos: AtomicU64::new(0),
            ack_nanos: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            send_log: trace_sends.then(|| Mutex::new(Vec::new())),
        }
    }

    fn push(&self, msg: LaneMsg) {
        let mut q = self.queue.lock().unwrap();
        while q.len() >= self.cap {
            q = self.not_full.wait(q).unwrap();
        }
        q.push_back(msg);
        self.not_empty.notify_one();
    }

    fn pop(&self) -> LaneMsg {
        let mut q = self.queue.lock().unwrap();
        while q.is_empty() {
            q = self.not_empty.wait(q).unwrap();
        }
        let msg = q.pop_front().expect("non-empty lane queue");
        self.not_full.notify_one();
        msg
    }

    /// Pops the next message if any (never blocks; stepped mode).
    fn try_pop(&self) -> Option<LaneMsg> {
        let mut q = self.queue.lock().unwrap();
        let msg = q.pop_front();
        if msg.is_some() {
            self.not_full.notify_one();
        }
        msg
    }

    /// Pops the next message only if it is a payload — batching must
    /// not reorder across barriers.
    fn try_pop_payload(&self) -> Option<LaneMsg> {
        let mut q = self.queue.lock().unwrap();
        if matches!(q.front(), Some(LaneMsg::Payload { .. })) {
            let msg = q.pop_front();
            self.not_full.notify_one();
            msg
        } else {
            None
        }
    }

    fn record_sent(&self, trace: &[(Lba, u64)]) {
        if let Some(log) = &self.send_log {
            log.lock().unwrap().extend_from_slice(trace);
        }
    }

    pub fn send_log(&self) -> Vec<(Lba, u64)> {
        self.send_log
            .as_ref()
            .map(|log| log.lock().unwrap().clone())
            .unwrap_or_default()
    }
}

/// State shared by the admission front-end, the encode pool and the
/// barrier.
struct Inner {
    admit: Mutex<AdmitState>,
    admit_cv: Condvar,
    reorder: Mutex<ReorderState>,
    reorder_cv: Condvar,
    lanes: Vec<Arc<LaneState>>,
    shared: Arc<Shared>,
    clock: Arc<dyn Clock>,
    /// Slab pool for payload and wire buffers (block-image buffers are
    /// checked out by the engine front-end from the same pool).
    pool: BufPool,
}

/// One lane's sender context in manual mode: the transport plus the
/// in-flight frame accounting the lane thread would otherwise keep on
/// its stack.
struct SteppedLane {
    transport: Box<dyn Transport>,
    outstanding: VecDeque<InFlight>,
}

/// One sent, unacknowledged frame: the writes it carries plus the
/// sealed wire bytes, retained so a corrupt NAK can be answered with a
/// retransmission instead of an error. The frame stays in its pooled
/// buffer; acknowledgement recycles it.
struct InFlight {
    writes: u64,
    /// The pipeline writes the frame carries. Reorder releases in
    /// strict sequence order and lane queues are FIFO, so a batch is
    /// always a contiguous run — two words correlate the eventual ack
    /// back to every write's trace.
    range: SeqRange,
    frame: PooledBuf,
}

/// Lanes have no replica lifecycle (no offline/rejoin), so every frame
/// is sealed under the constant first epoch.
const LANE_EPOCH: u64 = 1;

/// Retransmissions attempted per frame before a corrupt NAK becomes a
/// lane error.
const MAX_RETRANSMITS: u32 = 3;

/// Manual-mode runtime: everything the worker threads would own.
struct Stepped {
    replicator: Arc<dyn Replicator>,
    lanes: Mutex<Vec<SteppedLane>>,
    cfg: PipelineConfig,
}

pub(crate) struct Pipeline {
    inner: Arc<Inner>,
    tuning: Arc<PipelineTuning>,
    encode_handles: Mutex<Vec<JoinHandle<()>>>,
    lane_handles: Mutex<Option<Vec<JoinHandle<()>>>>,
    stepped: Option<Stepped>,
}

impl Pipeline {
    pub fn start(
        replicator: Arc<dyn Replicator>,
        transports: Vec<Box<dyn Transport>>,
        shared: Arc<Shared>,
        config: &PipelineConfig,
        clock: Arc<dyn Clock>,
        pool: BufPool,
        tuning: Arc<PipelineTuning>,
    ) -> Self {
        // In manual mode a bounded lane queue would deadlock the single
        // driving thread, and backpressure is meaningless anyway.
        let queue_cap = if config.manual {
            usize::MAX
        } else {
            config.queue_cap
        };
        let lanes: Vec<Arc<LaneState>> = transports
            .iter()
            .map(|_| Arc::new(LaneState::new(queue_cap, config.trace_sends)))
            .collect();
        let inner = Arc::new(Inner {
            admit: Mutex::new(AdmitState {
                queue: VecDeque::new(),
                by_lba: HashMap::new(),
                seq_alloc: 0,
                closed: false,
            }),
            admit_cv: Condvar::new(),
            reorder: Mutex::new(ReorderState {
                next_seq: 0,
                ready: HashMap::new(),
            }),
            reorder_cv: Condvar::new(),
            lanes,
            shared,
            clock,
            pool,
        });

        if config.manual {
            return Self {
                inner,
                tuning,
                encode_handles: Mutex::new(Vec::new()),
                lane_handles: Mutex::new(None),
                stepped: Some(Stepped {
                    replicator,
                    lanes: Mutex::new(
                        transports
                            .into_iter()
                            .map(|transport| SteppedLane {
                                transport,
                                outstanding: VecDeque::new(),
                            })
                            .collect(),
                    ),
                    cfg: config.clone(),
                }),
            };
        }

        let mut encode_handles = Vec::new();
        for worker in 0..config.encode_workers.max(1) {
            let inner = Arc::clone(&inner);
            let replicator = Arc::clone(&replicator);
            encode_handles.push(
                std::thread::Builder::new()
                    .name(format!("prins-encode-{worker}"))
                    .spawn(move || run_encoder(&inner, &*replicator))
                    .expect("spawn prins encode worker"),
            );
        }

        let mut lane_handles = Vec::new();
        for (idx, transport) in transports.into_iter().enumerate() {
            let lane = Arc::clone(&inner.lanes[idx]);
            let shared = Arc::clone(&inner.shared);
            let cfg = config.clone();
            let clock = Arc::clone(&inner.clock);
            let pool = inner.pool.clone();
            let tuning = Arc::clone(&tuning);
            lane_handles.push(
                std::thread::Builder::new()
                    .name(format!("prins-sender-{idx}"))
                    .spawn(move || {
                        run_lane(
                            idx,
                            &*transport,
                            &lane,
                            &shared,
                            &cfg,
                            &*clock,
                            &pool,
                            &tuning,
                        )
                    })
                    .expect("spawn prins sender lane"),
            );
        }

        Self {
            inner,
            tuning,
            encode_handles: Mutex::new(encode_handles),
            lane_handles: Mutex::new(Some(lane_handles)),
            stepped: None,
        }
    }

    /// Drives a manual-mode pipeline one round on the caller's thread:
    /// encodes and releases every queued admission (in sequence order,
    /// like the encode pool), then lets each lane in index order send
    /// its released payloads and retire acknowledgements per the
    /// configured window. Returns whether any work was done; always
    /// `false` on a threaded pipeline.
    pub fn step(&self) -> bool {
        let Some(stepped) = &self.stepped else {
            return false;
        };
        let mut progressed = false;
        loop {
            let job = claim_job(&mut self.inner.admit.lock().unwrap());
            let Some(job) = job else { break };
            encode_and_release(&self.inner, &*stepped.replicator, job);
            progressed = true;
        }
        let mut lanes_rt = stepped.lanes.lock().unwrap();
        for (idx, rt) in lanes_rt.iter_mut().enumerate() {
            let lane = &self.inner.lanes[idx];
            while let Some(msg) = lane.try_pop() {
                progressed = true;
                match msg {
                    LaneMsg::Payload {
                        seq,
                        lba,
                        writes,
                        bytes,
                        released_at,
                    } => lane_handle_payload(
                        idx,
                        &*rt.transport,
                        lane,
                        &self.inner.shared,
                        &stepped.cfg,
                        &*self.inner.clock,
                        &self.inner.pool,
                        self.tuning.batch_frames(),
                        &mut rt.outstanding,
                        seq,
                        lba,
                        writes,
                        bytes,
                        released_at,
                    ),
                    LaneMsg::Barrier(gate) => {
                        self.collect_lane(stepped, idx, rt);
                        gate.arrive();
                    }
                    LaneMsg::Shutdown => self.collect_lane(stepped, idx, rt),
                }
            }
        }
        progressed
    }

    fn collect_lane(&self, stepped: &Stepped, idx: usize, rt: &mut SteppedLane) {
        collect_all(
            idx,
            &*rt.transport,
            &self.inner.lanes[idx],
            &self.inner.shared,
            &stepped.cfg,
            &*self.inner.clock,
            &mut rt.outstanding,
        );
    }

    pub fn lanes(&self) -> &[Arc<LaneState>] {
        &self.inner.lanes
    }

    /// Admits a write: folds it into a still-queued job for the same
    /// LBA (when coalescing) or assigns the next sequence number.
    ///
    /// Callers hold the engine's per-LBA stripe lock, so the captured
    /// `old` image is exactly the block content the previous admission
    /// for this LBA left behind. Both images arrive in pooled buffers;
    /// a fold recycles the superseded `new` image immediately.
    pub fn admit(&self, lba: Lba, old: PooledBuf, new: PooledBuf) -> Result<(), ReplError> {
        let obs = self.inner.shared.obs.as_ref();
        let trace = self.inner.shared.trace.as_ref();
        let new_len = new.len();
        // Read the live flag once so one admission sees one mode.
        let coalesce = self.tuning.coalesce();
        let mut st = self.inner.admit.lock().unwrap();
        if st.closed {
            return Err(ReplError::Net(prins_net::NetError::Disconnected));
        }
        if coalesce {
            if let Some(&seq) = st.by_lba.get(&lba.0) {
                let front_seq = st.queue.front().expect("by_lba entry implies queue").seq;
                let job = &mut st.queue[(seq - front_seq) as usize];
                debug_assert_eq!(job.seq, seq);
                job.new = new;
                job.folds += 1;
                self.inner
                    .shared
                    .coalesced_writes
                    .fetch_add(1, Ordering::Relaxed);
                if obs.is_some() || trace.is_some() {
                    let now = self.inner.clock.now_nanos();
                    if let Some(obs) = obs {
                        obs.queue_depth.record(st.queue.len() as u64);
                        obs.record(Event::new(now, EventKind::Coalesce).seq(seq).lba(lba.0));
                    }
                    if let Some(trace) = trace {
                        trace.fold(TraceId::from_seq(seq), now, new_len);
                    }
                }
                return Ok(());
            }
        }
        let seq = st.seq_alloc;
        st.seq_alloc += 1;
        if coalesce {
            st.by_lba.insert(lba.0, seq);
        }
        let admitted_at = if obs.is_some() || trace.is_some() {
            let now = self.inner.clock.now_nanos();
            if let Some(obs) = obs {
                obs.record(Event::new(now, EventKind::Admit).seq(seq).lba(lba.0));
            }
            if let Some(trace) = trace {
                // One expected completion per lane plus the reorder
                // stage's hold, released once the payload is handed to
                // the lanes — so a zero-replica engine still finalizes.
                let pending = self.inner.lanes.len() as u32 + 1;
                trace.begin(TraceId::from_seq(seq), 0, pending, now, new_len);
            }
            now
        } else {
            0
        };
        st.queue.push_back(EncodeJob {
            seq,
            lba,
            old,
            new,
            folds: 0,
            admitted_at,
        });
        if let Some(obs) = obs {
            obs.queue_depth.record(st.queue.len() as u64);
        }
        self.inner
            .shared
            .queue_depth_hwm
            .fetch_max(st.queue.len() as u64, Ordering::Relaxed);
        drop(st);
        self.inner.admit_cv.notify_one();
        Ok(())
    }

    /// Waits until every write admitted before the call has been
    /// encoded, released in order and acknowledged by every lane.
    ///
    /// In manual mode nothing waits: the barrier *drives* the stages to
    /// completion on the calling thread.
    pub fn barrier(&self) {
        if let Some(stepped) = &self.stepped {
            self.step();
            let mut lanes_rt = stepped.lanes.lock().unwrap();
            for (idx, rt) in lanes_rt.iter_mut().enumerate() {
                self.collect_lane(stepped, idx, rt);
            }
            drop(lanes_rt);
            self.record_barrier();
            return;
        }
        let target = self.inner.admit.lock().unwrap().seq_alloc;
        let mut ro = self.inner.reorder.lock().unwrap();
        while ro.next_seq < target {
            ro = self.inner.reorder_cv.wait(ro).unwrap();
        }
        drop(ro);
        if self.inner.lanes.is_empty() {
            self.record_barrier();
            return;
        }
        let gate = Arc::new(BarrierGate::new(self.inner.lanes.len()));
        for lane in &self.inner.lanes {
            lane.push(LaneMsg::Barrier(Arc::clone(&gate)));
        }
        gate.wait();
        self.record_barrier();
    }

    fn record_barrier(&self) {
        if let Some(obs) = &self.inner.shared.obs {
            obs.record(Event::new(self.inner.clock.now_nanos(), EventKind::Barrier));
        }
    }

    /// Stops the pipeline: drains the admission queue, joins the
    /// encode pool, then retires the lanes. Idempotent.
    pub fn shutdown(&self) {
        self.inner.admit.lock().unwrap().closed = true;
        self.inner.admit_cv.notify_all();
        if let Some(stepped) = &self.stepped {
            self.step();
            let mut lanes_rt = stepped.lanes.lock().unwrap();
            for (idx, rt) in lanes_rt.iter_mut().enumerate() {
                self.collect_lane(stepped, idx, rt);
            }
            return;
        }
        for handle in self.encode_handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        if let Some(handles) = self.lane_handles.lock().unwrap().take() {
            for lane in &self.inner.lanes {
                lane.push(LaneMsg::Shutdown);
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

/// Takes the next admission-queue job, retiring its coalescing slot.
/// Shared by the encode-pool workers and the stepped driver.
fn claim_job(st: &mut AdmitState) -> Option<EncodeJob> {
    let job = st.queue.pop_front()?;
    if st.by_lba.get(&job.lba.0) == Some(&job.seq) {
        // The job is now being encoded; later writes to this LBA must
        // queue fresh, not fold.
        st.by_lba.remove(&job.lba.0);
    }
    Some(job)
}

/// Encodes one job and releases every consecutively-ready payload to
/// the lanes. Shared by the encode-pool workers and the stepped driver.
fn encode_and_release(inner: &Inner, replicator: &dyn Replicator, job: EncodeJob) {
    let obs = inner.shared.obs.as_ref();
    let trace = inner.shared.trace.as_ref();
    let t0 = inner.clock.now_nanos();
    // Serialize straight into a pooled buffer: the fused encoders write
    // the wire payload without materializing the parity, and freezing
    // costs one `Arc` — the single unavoidable allocation per write.
    let mut buf = inner.pool.get(job.new.len() + 24);
    replicator.encode_write_into(job.lba, &job.old, &job.new, buf.vec_mut());
    let payload = buf.freeze();
    // The block images return to the pool before the reorder lock.
    drop(job.old);
    drop(job.new);
    let t1 = inner.clock.now_nanos();
    inner
        .shared
        .overhead_nanos
        .fetch_add(t1.saturating_sub(t0), Ordering::Relaxed);
    if let Some(obs) = obs {
        obs.admission_wait
            .record(t0.saturating_sub(job.admitted_at));
        obs.encode.record(t1.saturating_sub(t0));
        obs.record(
            Event::new(t1, EventKind::EncodeDone)
                .seq(job.seq)
                .lba(job.lba.0),
        );
    }
    if let Some(trace) = trace {
        trace.event(
            TraceId::from_seq(job.seq),
            TraceStage::Encode,
            NO_LANE,
            t1,
            payload.len(),
        );
    }

    let mut ro = inner.reorder.lock().unwrap();
    ro.ready.insert(
        job.seq,
        Ready {
            lba: job.lba,
            writes: 1 + job.folds,
            payload,
            encoded_at: t1,
        },
    );
    // Release every consecutive payload that is now ready; peers
    // that finish out of order leave theirs for whoever holds the
    // next sequence number.
    loop {
        let seq = ro.next_seq;
        let Some(ready) = ro.ready.remove(&seq) else {
            break;
        };
        ro.next_seq += 1;
        inner
            .shared
            .dispatched_writes
            .fetch_add(ready.writes, Ordering::Relaxed);
        let released_at = if obs.is_some() || trace.is_some() {
            let now = inner.clock.now_nanos();
            if let Some(obs) = obs {
                obs.reorder_hold
                    .record(now.saturating_sub(ready.encoded_at));
            }
            now
        } else {
            0
        };
        if let Some(trace) = trace {
            let id = TraceId::from_seq(seq);
            trace.event(id, TraceStage::Reorder, NO_LANE, released_at, 0);
            // Release the reorder hold *before* the lanes see the
            // payload: pending stays ≥ lane count until their acks, and
            // a zero-lane engine finalizes right here.
            trace.release(id, released_at);
        }
        for lane in &inner.lanes {
            lane.push(LaneMsg::Payload {
                seq,
                lba: ready.lba,
                writes: ready.writes,
                bytes: ready.payload.clone(),
                released_at,
            });
        }
    }
    drop(ro);
    inner.reorder_cv.notify_all();
}

/// Encode-pool worker: drains the admission queue, encodes payloads
/// concurrently with its peers and releases them through the reorder
/// buffer in sequence order.
fn run_encoder(inner: &Inner, replicator: &dyn Replicator) {
    loop {
        let job = {
            let mut st = inner.admit.lock().unwrap();
            loop {
                if let Some(job) = claim_job(&mut st) {
                    break Some(job);
                }
                if st.closed {
                    break None;
                }
                st = inner.admit_cv.wait(st).unwrap();
            }
        };
        let Some(job) = job else { return };
        encode_and_release(inner, replicator, job);
    }
}

/// One released payload's lane work: batch in queued successors, send
/// the frame, retire acknowledgements down to the window. Shared by the
/// lane threads and the stepped driver.
///
/// Frame assembly is single-copy: each payload's bytes move from their
/// pooled buffer straight into the sealed wire buffer (also pooled),
/// with the batch header and the seal envelope written around them in
/// place. One slicing-by-8 CRC pass in [`SealWriter::finish`] covers
/// the whole batch. The wire bytes are identical to the old
/// `BatchFrame::to_bytes` + `seal_frame` construction.
///
/// [`SealWriter::finish`]: prins_repl::SealWriter::finish
#[allow(clippy::too_many_arguments)]
fn lane_handle_payload(
    idx: usize,
    transport: &dyn Transport,
    lane: &LaneState,
    shared: &Shared,
    cfg: &PipelineConfig,
    clock: &dyn Clock,
    pool: &BufPool,
    batch_frames: usize,
    outstanding: &mut VecDeque<InFlight>,
    seq: u64,
    lba: Lba,
    writes: u64,
    bytes: PooledBytes,
    released_at: u64,
) {
    let obs = shared.obs.as_ref();
    let tsink = shared.trace.as_ref();
    let picked_up = if obs.is_some() || tsink.is_some() {
        let now = clock.now_nanos();
        if let Some(obs) = obs {
            obs.lane_queue.record(now.saturating_sub(released_at));
        }
        now
    } else {
        0
    };
    let first_seq = seq;
    let first_lba = lba;
    let tracing = lane.send_log.is_some();
    let mut trace: Vec<(Lba, u64)> = Vec::new();
    if tracing {
        trace.push((lba, seq));
    }
    if let Some(tsink) = tsink {
        tsink.event(
            TraceId::from_seq(seq),
            TraceStage::LaneQueue,
            idx as u32,
            picked_up,
            bytes.len(),
        );
    }
    let mut range = SeqRange::single(seq);
    let mut total_writes = writes;
    let mut extra: Vec<PooledBytes> = Vec::new();
    while extra.len() + 1 < batch_frames {
        match lane.try_pop_payload() {
            Some(LaneMsg::Payload {
                seq,
                lba,
                writes,
                bytes,
                released_at,
            }) => {
                if let Some(obs) = obs {
                    obs.lane_queue.record(picked_up.saturating_sub(released_at));
                }
                if tracing {
                    trace.push((lba, seq));
                }
                if let Some(tsink) = tsink {
                    tsink.event(
                        TraceId::from_seq(seq),
                        TraceStage::LaneQueue,
                        idx as u32,
                        picked_up,
                        bytes.len(),
                    );
                }
                let contiguous = range.push(seq);
                debug_assert!(contiguous, "lane batches are contiguous seq runs");
                total_writes += writes;
                extra.push(bytes);
            }
            _ => break,
        }
    }
    let inner_len = bytes.len() + extra.iter().map(|p| p.len() + 10).sum::<usize>();
    let mut wire = pool.get(inner_len + 32);
    let out = wire.vec_mut();
    let writer = seal_begin(LANE_EPOCH, out);
    if extra.is_empty() {
        out.extend_from_slice(&bytes);
    } else {
        out.push(BATCH_TAG);
        encode_varint(out, (1 + extra.len()) as u64);
        encode_varint(out, bytes.len() as u64);
        out.extend_from_slice(&bytes);
        for p in &extra {
            encode_varint(out, p.len() as u64);
            out.extend_from_slice(p);
        }
    }
    writer.finish(out);
    shared.hot_bytes_copied.fetch_add(
        (bytes.len() + extra.iter().map(|p| p.len()).sum::<usize>()) as u64,
        Ordering::Relaxed,
    );
    drop(bytes);
    drop(extra);

    let t0 = clock.now_nanos();
    let sent = transport.send(&wire);
    let t1 = clock.now_nanos();
    lane.send_nanos
        .fetch_add(t1.saturating_sub(t0), Ordering::Relaxed);
    if let Some(obs) = obs {
        obs.send.record(t1.saturating_sub(t0));
    }
    match sent {
        Ok(()) => {
            lane.sends.fetch_add(1, Ordering::Relaxed);
            lane.payload_bytes
                .fetch_add(wire.len() as u64, Ordering::Relaxed);
            lane.record_sent(&trace);
            if let Some(obs) = obs {
                obs.record(
                    Event::new(
                        t1,
                        EventKind::Send {
                            writes: total_writes.min(u32::MAX as u64) as u32,
                        },
                    )
                    .seq(first_seq)
                    .lba(first_lba.0)
                    .replica(idx),
                );
            }
            if let Some(tsink) = tsink {
                let wire_len = wire.len();
                for s in range.iter() {
                    tsink.event(
                        TraceId::from_seq(s),
                        TraceStage::Send,
                        idx as u32,
                        t1,
                        if s == first_seq { wire_len } else { 0 },
                    );
                }
            }
            outstanding.push_back(InFlight {
                writes: total_writes,
                range,
                frame: wire,
            });
            while outstanding.len() >= cfg.ack_window.max(1) {
                collect_one(idx, transport, lane, shared, cfg, clock, outstanding);
            }
        }
        Err(e) => {
            // The frame retires unsent; the error surfaces at the next
            // flush.
            lane.errors.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = obs {
                obs.record(
                    Event::new(t1, EventKind::SendError)
                        .seq(first_seq)
                        .lba(first_lba.0)
                        .replica(idx),
                );
            }
            if let Some(tsink) = tsink {
                for s in range.iter() {
                    tsink.complete(
                        TraceId::from_seq(s),
                        TraceStage::SendError,
                        idx as u32,
                        t1,
                        0,
                    );
                }
            }
            record_error(shared, &e.into());
        }
    }
}

/// Sender-lane thread: batches queued payloads into frames, sends them
/// and retires acknowledgements within the configured window.
#[allow(clippy::too_many_arguments)]
fn run_lane(
    idx: usize,
    transport: &dyn Transport,
    lane: &LaneState,
    shared: &Shared,
    cfg: &PipelineConfig,
    clock: &dyn Clock,
    pool: &BufPool,
    tuning: &PipelineTuning,
) {
    // The in-flight (sent, unacknowledged) frames.
    let mut outstanding: VecDeque<InFlight> = VecDeque::new();
    loop {
        match lane.pop() {
            LaneMsg::Shutdown => {
                collect_all(idx, transport, lane, shared, cfg, clock, &mut outstanding);
                return;
            }
            LaneMsg::Barrier(gate) => {
                collect_all(idx, transport, lane, shared, cfg, clock, &mut outstanding);
                gate.arrive();
            }
            LaneMsg::Payload {
                seq,
                lba,
                writes,
                bytes,
                released_at,
            } => lane_handle_payload(
                idx,
                transport,
                lane,
                shared,
                cfg,
                clock,
                pool,
                tuning.batch_frames(),
                &mut outstanding,
                seq,
                lba,
                writes,
                bytes,
                released_at,
            ),
        }
    }
}

/// Retires the oldest in-flight frame with one acknowledgement. A
/// corrupt NAK — the frame was damaged in flight, caught by the seal's
/// CRC32C — retransmits the retained copy up to [`MAX_RETRANSMITS`]
/// times, waiting one `ack_timeout` longer per attempt so the retry
/// rides out whatever delayed traffic damaged the first copy.
///
/// Retransmission needs unambiguous response alignment: acks carry no
/// frame identity, so a retry's ack is only attributable when this
/// frame is the *sole* in-flight one (always true in the closed-loop
/// window of 1). With more frames in the window a corrupt NAK falls
/// through to the error path instead, and the block is repaired by the
/// resync layer rather than guessed at here.
fn collect_one(
    idx: usize,
    transport: &dyn Transport,
    lane: &LaneState,
    shared: &Shared,
    cfg: &PipelineConfig,
    clock: &dyn Clock,
    outstanding: &mut VecDeque<InFlight>,
) {
    let obs = shared.obs.as_ref();
    let tsink = shared.trace.as_ref();
    let InFlight {
        writes: frame_writes,
        range,
        frame,
    } = outstanding.pop_front().expect("outstanding frame");
    let sole_in_flight = outstanding.is_empty();
    let mut attempt: u32 = 0;
    let mut waited: u64 = 0;
    let mut t1;
    let result: Result<(), ReplError> = loop {
        let t0 = clock.now_nanos();
        let answer = transport.recv_timeout(cfg.ack_timeout * (attempt + 1));
        t1 = clock.now_nanos();
        waited += t1.saturating_sub(t0);
        lane.ack_nanos
            .fetch_add(t1.saturating_sub(t0), Ordering::Relaxed);
        let ack = match answer {
            Ok(bytes) => match decode_ack(&bytes) {
                Ok(ack) => ack,
                Err(_) => {
                    break Err(ReplError::MissingAck {
                        replica: idx,
                        got: bytes.first().copied(),
                    })
                }
            },
            Err(e) => break Err(e.into()),
        };
        match ack.status {
            ACK => break Ok(()),
            NAK => break Err(ReplError::Nak { replica: idx }),
            NAK_CORRUPT => {
                if let Some(obs) = obs {
                    obs.checksum_failures.inc();
                }
                if !sole_in_flight || attempt >= MAX_RETRANSMITS {
                    break Err(ReplError::ChecksumMismatch {
                        expected: 0,
                        got: 0,
                    });
                }
                attempt += 1;
                if let Err(e) = transport.send(&frame) {
                    break Err(e.into());
                }
                lane.payload_bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                if let Some(obs) = obs {
                    obs.retransmits.inc();
                }
                if let Some(tsink) = tsink {
                    for s in range.iter() {
                        tsink.mark_retransmit(TraceId::from_seq(s), idx as u32, t1);
                    }
                }
            }
            other => {
                break Err(ReplError::MissingAck {
                    replica: idx,
                    got: Some(other),
                })
            }
        }
    };
    // One RTT sample and one terminal event per retired frame, however
    // many retransmission round-trips it took.
    if let Some(obs) = obs {
        obs.ack_rtt.record(waited);
    }
    match result {
        Ok(()) => {
            lane.acked_writes.fetch_add(frame_writes, Ordering::Relaxed);
            if let Some(obs) = obs {
                obs.record(Event::new(t1, EventKind::AckOk).replica(idx));
            }
            if let Some(tsink) = tsink {
                for s in range.iter() {
                    tsink.complete(TraceId::from_seq(s), TraceStage::Ack, idx as u32, t1, 0);
                }
            }
        }
        Err(e) => {
            if let Some(obs) = obs {
                let kind = match e {
                    ReplError::Nak { .. } => EventKind::Nak,
                    _ => EventKind::AckError,
                };
                obs.record(Event::new(t1, kind).replica(idx));
            }
            if let Some(tsink) = tsink {
                for s in range.iter() {
                    tsink.complete(
                        TraceId::from_seq(s),
                        TraceStage::AckError,
                        idx as u32,
                        t1,
                        0,
                    );
                }
            }
            lane.errors.fetch_add(1, Ordering::Relaxed);
            record_error(shared, &e);
        }
    }
}

fn collect_all(
    idx: usize,
    transport: &dyn Transport,
    lane: &LaneState,
    shared: &Shared,
    cfg: &PipelineConfig,
    clock: &dyn Clock,
    outstanding: &mut VecDeque<InFlight>,
) {
    while !outstanding.is_empty() {
        collect_one(idx, transport, lane, shared, cfg, clock, outstanding);
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::Arc;
    use std::time::Duration;

    use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
    use prins_net::{
        channel_pair, FaultTransport, LinkHandle, LinkModel, SimLinkCtl, SimNet, Transport as _,
    };
    use prins_repl::{
        encode_ack, encode_digest_ack, verify_consistent, AckPolicy, Applied, ReplError,
        ReplicaApplier, ACK, NAK, NAK_CORRUPT,
    };
    use proptest::prelude::*;
    use rand::{RngExt, SeedableRng};

    use crate::{EngineBuilder, PrinsEngine, ReplicaEngine};

    type ReplicaHandle = std::thread::JoinHandle<Result<u64, ReplError>>;

    /// `n` replicas behind FaultTransports, so tests can slow links down.
    #[allow(clippy::type_complexity)]
    fn faulted_replicas(
        n: usize,
        blocks: u64,
    ) -> (
        Vec<Box<dyn prins_net::Transport>>,
        Vec<LinkHandle>,
        Vec<Arc<MemDevice>>,
        Vec<ReplicaHandle>,
    ) {
        let mut transports: Vec<Box<dyn prins_net::Transport>> = Vec::new();
        let mut links = Vec::new();
        let mut devices = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let (uplink, downlink) = channel_pair(LinkModel::t1());
            let (faulty, link) = FaultTransport::new(uplink);
            let device = Arc::new(MemDevice::new(BlockSize::kb4(), blocks));
            handles.push(ReplicaEngine::spawn(
                Arc::clone(&device) as Arc<dyn BlockDevice>,
                downlink,
            ));
            transports.push(Box::new(faulty));
            links.push(link);
            devices.push(device);
        }
        (transports, links, devices, handles)
    }

    fn shutdown_all(engine: PrinsEngine, replicas: Vec<ReplicaHandle>) {
        engine.shutdown().unwrap();
        for handle in replicas {
            handle.join().unwrap().unwrap();
        }
    }

    /// `n` replica devices behind [`SimNet`] links with apply-and-ack
    /// actors — the deterministic, virtual-time replacement for
    /// `faulted_replicas` (no threads, no sleeps).
    #[allow(clippy::type_complexity)]
    fn sim_replicas(
        net: &SimNet,
        n: usize,
        blocks: u64,
        delay: Duration,
    ) -> (
        Vec<Box<dyn prins_net::Transport>>,
        Vec<SimLinkCtl>,
        Vec<Arc<MemDevice>>,
    ) {
        let mut transports: Vec<Box<dyn prins_net::Transport>> = Vec::new();
        let mut ctls = Vec::new();
        let mut devices = Vec::new();
        for i in 0..n {
            let (a, b, ctl) = net.add_link(&format!("replica{i}"), delay);
            let device = Arc::new(MemDevice::new(BlockSize::kb4(), blocks));
            let dev = Arc::clone(&device);
            let tr = b.clone();
            // The applier persists across actor invocations so its
            // epoch and checksum table survive. Strict mode: a bit
            // flip on the seal tag itself must not let the frame
            // bypass verification.
            let mut applier = ReplicaApplier::new(dev).require_sealed(true);
            net.set_actor(
                &b,
                Box::new(move || {
                    while let Ok(Some(frame)) = tr.try_recv() {
                        let ack = match applier.handle(&frame) {
                            Ok(Applied::Data(_)) => encode_ack(ACK, applier.last_epoch()),
                            Ok(Applied::Digest(d)) => encode_digest_ack(applier.last_epoch(), d),
                            Ok(Applied::Strip(s)) => {
                                prins_repl::encode_strip_ack(applier.last_epoch(), &s)
                            }
                            Ok(Applied::Read(s)) => {
                                prins_repl::encode_read_ack(applier.last_epoch(), &s)
                            }
                            Err(ReplError::ChecksumMismatch { .. }) => {
                                encode_ack(NAK_CORRUPT, applier.last_epoch())
                            }
                            Err(_) => encode_ack(NAK, applier.last_epoch()),
                        };
                        let _ = tr.send(&ack);
                    }
                }),
            );
            transports.push(Box::new(a));
            ctls.push(ctl);
            devices.push(device);
        }
        (transports, ctls, devices)
    }

    #[test]
    fn coalescing_never_changes_replica_contents() {
        // Deterministic conversion of the old sleep-based multi-writer
        // test: a stepped engine over a simulated 300 µs WAN. Writes
        // queue up between steps, so admissions fold aggressively — and
        // the replicas must still end bit-identical to the primary.
        let net = SimNet::new();
        let (transports, _ctls, replica_devs) =
            sim_replicas(&net, 3, 8, Duration::from_micros(300));
        let primary = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
            .coalesce(true)
            .manual_stepping(true)
            .clock(net.clock())
            .ack_policy(AckPolicy::Window(8));
        for transport in transports {
            builder = builder.replica(transport);
        }
        let engine = builder.build();

        let mut rng = rand::rngs::StdRng::seed_from_u64(100);
        for t in 0..4u64 {
            for i in 0..80u64 {
                let lba = Lba((t * 3 + i) % 8);
                let mut block = vec![0u8; 4096];
                rng.fill_bytes(&mut block);
                engine.write_block(lba, &block).unwrap();
                // Interleave pipeline progress with admissions so folds
                // compete with encodes, like the threaded version did.
                if i % 16 == 0 {
                    engine.step();
                }
            }
        }
        engine.flush().unwrap();

        let stats = engine.stats();
        assert_eq!(stats.writes, 320);
        assert_eq!(stats.replication_errors, 0);
        // Every write is replicated — folded ones ride their partner's
        // parity and are counted when it is acknowledged.
        assert_eq!(stats.writes_replicated, 320);
        assert!(
            stats.coalesced_writes > 0,
            "queued admissions should fold: {stats:?}"
        );
        assert!(stats.queue_depth_hwm > 0);
        assert!(net.clock().now() > 0, "virtual time should have advanced");

        engine.shutdown().unwrap();
        for dev in &replica_devs {
            assert!(verify_consistent(&*primary, &**dev).unwrap());
        }
    }

    #[test]
    fn adaptive_policy_replicates_correctly_and_retunes_the_pipeline() {
        // A phased workload through the adaptive policy engine: tiny
        // deltas (parity), then random full-block churn (full images).
        // Replicas must end bit-identical — the policy mixes wire tags
        // freely and the applier takes them all — and the committed
        // phase transitions must retune the live pipeline knobs.
        let net = SimNet::new();
        let (transports, _ctls, replica_devs) =
            sim_replicas(&net, 2, 8, Duration::from_micros(300));
        let primary = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let registry = prins_obs::Registry::new();
        let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
            .adaptive(prins_policy::PolicyConfig::default())
            .manual_stepping(true)
            .clock(net.clock())
            .observe(Arc::clone(&registry))
            .ack_policy(AckPolicy::Window(8));
        for transport in transports {
            builder = builder.replica(transport);
        }
        let engine = builder.build();
        assert_eq!(engine.tuning().batch_frames(), 1);
        assert!(!engine.tuning().coalesce());

        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        // Phase 1: 128 one-byte deltas — two detector windows of
        // parity-family picks commit SmallDelta and deepen batching.
        for i in 0..128u64 {
            let lba = Lba(i % 8);
            let mut block = engine.read_block_vec(lba).unwrap();
            block[(i as usize * 31) % 4096] ^= 0x5a;
            engine.write_block(lba, &block).unwrap();
            if i % 16 == 0 {
                engine.step();
            }
        }
        engine.flush().unwrap();
        let adaptive = engine.adaptive().expect("built with .adaptive()");
        assert_eq!(
            adaptive.phase(),
            prins_policy::WorkloadPhase::SmallDelta,
            "sustained tiny deltas must commit the small-delta phase"
        );
        assert_eq!(engine.tuning().batch_frames(), 8, "deep batching in effect");

        // Phase 2: 128 random full rewrites — churn commits, batching
        // shrinks back and coalescing turns on.
        for i in 0..128u64 {
            let mut block = vec![0u8; 4096];
            rng.fill_bytes(&mut block);
            engine.write_block(Lba(i % 8), &block).unwrap();
            if i % 16 == 0 {
                engine.step();
            }
        }
        engine.flush().unwrap();
        assert_eq!(adaptive.phase(), prins_policy::WorkloadPhase::Churn);
        assert_eq!(engine.tuning().batch_frames(), 1);
        assert!(engine.tuning().coalesce(), "churn phase enables coalescing");

        let counters = adaptive.counters();
        assert!(
            counters.pick_parity.get() >= 120,
            "parity picks: {}",
            counters.pick_parity.get()
        );
        assert!(counters.pick_full.get() + counters.pick_compressed.get() >= 100);
        assert_eq!(registry.counter("policy_phase_switches").get(), 2);
        // Coalescing may fold churn writes, so decided writes can be
        // fewer than admitted — but never more.
        let decided = registry.counter("policy_writes").get();
        assert!(decided > 0 && decided <= 256, "decided {decided}");

        let stats = engine.stats();
        assert_eq!(stats.writes, 256);
        assert_eq!(stats.replication_errors, 0);
        engine.shutdown().unwrap();
        for dev in &replica_devs {
            assert!(verify_consistent(&*primary, &**dev).unwrap());
        }
    }

    #[test]
    fn corrupted_frames_are_naked_and_retransmitted() {
        use prins_net::Dir;
        // Three consecutive bit flips land on the same frame: the first
        // copy and two retransmissions. The bounded retry budget (3)
        // absorbs all of them — the fourth copy goes through clean.
        let net = SimNet::new();
        let (transports, ctls, replica_devs) = sim_replicas(&net, 1, 8, Duration::from_micros(300));
        let primary = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let registry = prins_obs::Registry::new();
        let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
            .manual_stepping(true)
            .clock(net.clock())
            .observe(Arc::clone(&registry));
        for transport in transports {
            builder = builder.replica(transport);
        }
        let engine = builder.build();

        ctls[0].corrupt_next(Dir::AtoB, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for i in 0..6u64 {
            let lba = Lba(i % 8);
            let mut block = engine.read_block_vec(lba).unwrap();
            let at = rng.random_range(0..4000);
            block[at] ^= 0x5a;
            engine.write_block(lba, &block).unwrap();
        }
        engine.flush().unwrap();

        let stats = engine.stats();
        assert_eq!(stats.writes_replicated, 6);
        assert_eq!(
            stats.replication_errors, 0,
            "retransmissions absorb the corruption: {stats:?}"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counters["checksum_failures"], 3);
        assert_eq!(snap.counters["retransmits"], 3);

        engine.shutdown().unwrap();
        assert!(verify_consistent(&*primary, &*replica_devs[0]).unwrap());
    }

    #[test]
    fn batch_frames_cut_messages_on_a_slow_link() {
        // Deterministic conversion: a 1 ms (virtual) link, all writes
        // admitted before the flush drives the stepped pipeline, so
        // batching is exact — no real sleeps anywhere.
        let net = SimNet::new();
        let (transports, _ctls, replica_devs) = sim_replicas(&net, 1, 16, Duration::from_millis(1));
        let primary = Arc::new(MemDevice::new(BlockSize::kb4(), 16));
        let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
            .batch_frames(8)
            .manual_stepping(true)
            .clock(net.clock())
            .ack_policy(AckPolicy::Window(4));
        for transport in transports {
            builder = builder.replica(transport);
        }
        let engine = builder.build();

        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for i in 0..60u64 {
            let lba = Lba(i % 16);
            let mut block = engine.read_block_vec(lba).unwrap();
            let at = rng.random_range(0..4000);
            block[at] ^= 0x5a;
            engine.write_block(lba, &block).unwrap();
        }
        engine.flush().unwrap();

        let stats = engine.stats();
        assert_eq!(stats.writes_replicated, 60);
        assert_eq!(stats.replication_errors, 0);
        let lanes = engine.lane_stats();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].acked_writes, 60);
        // 60 queued payloads at 8 per frame: exactly 8 sends.
        assert_eq!(lanes[0].sends, 8, "batching should be exact: {lanes:?}");
        // Ack collection pumped the simulated link, so the virtual ack
        // wait is visible in the stats (sends are scheduled instantly).
        assert!(lanes[0].ack_nanos > 0);
        assert!(net.clock().now() >= 2_000_000, "at least one 1 ms RTT");

        engine.shutdown().unwrap();
        assert!(verify_consistent(&*primary, &*replica_devs[0]).unwrap());
    }

    #[test]
    fn observed_engine_emits_deterministic_stage_latencies_and_events() {
        // A stepped engine over SimNet with the clock auto-tick on:
        // every stage gets a non-zero virtual duration, and two
        // identical runs must produce byte-identical snapshots/traces.
        fn run() -> (String, String) {
            let net = SimNet::new();
            net.clock().set_auto_tick(75);
            let (transports, _ctls, replica_devs) =
                sim_replicas(&net, 2, 8, Duration::from_micros(200));
            let registry = prins_obs::Registry::new();
            let primary = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
            let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
                .manual_stepping(true)
                .clock(net.clock())
                .observe(Arc::clone(&registry))
                .ack_policy(AckPolicy::Window(4));
            for transport in transports {
                builder = builder.replica(transport);
            }
            let engine = builder.build();
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            for i in 0..40u64 {
                let mut block = vec![0u8; 4096];
                rng.fill_bytes(&mut block);
                engine.write_block(Lba(i % 8), &block).unwrap();
            }
            engine.flush().unwrap();
            engine.shutdown().unwrap();
            for dev in &replica_devs {
                assert!(verify_consistent(&*primary, &**dev).unwrap());
            }

            let snap = registry.snapshot();
            for stage in [
                "stage_encode_nanos",
                "stage_lane_queue_nanos",
                "stage_ack_rtt_nanos",
                "stage_admission_wait_nanos",
            ] {
                let h = &snap.histograms[stage];
                assert!(h.count > 0, "{stage} recorded nothing");
                assert!(h.p50 > 0, "{stage} p50 is zero under auto-tick");
                assert!(h.p99 >= h.p50, "{stage} p99 below p50");
            }
            assert_eq!(snap.histograms["stage_encode_nanos"].count, 40);
            assert_eq!(snap.event_counts["admit"], 40);
            // Two lanes, no batching: every write sent and acked twice.
            assert_eq!(snap.event_counts["send"], 80);
            assert_eq!(snap.event_counts["ack-ok"], 80);
            assert!(!snap.event_counts.contains_key("nak"));
            assert_eq!(snap.gauges["engine_writes"], 40);
            assert_eq!(snap.gauges["lane0_sends"], 40);
            (snap.to_json(), registry.events().trace())
        }
        let (json_a, trace_a) = run();
        let (json_b, trace_b) = run();
        assert_eq!(json_a, json_b, "same seed must give identical snapshots");
        assert_eq!(trace_a, trace_b, "same seed must give identical traces");
        assert!(!trace_a.is_empty());
    }

    #[test]
    fn lane_stats_account_per_replica_bytes() {
        let (transports, _links, _devs, replica_threads) = faulted_replicas(2, 4);
        let primary = Arc::new(MemDevice::new(BlockSize::kb4(), 4));
        let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>);
        for transport in transports {
            builder = builder.replica(transport);
        }
        let engine = builder.build();
        let mut block = vec![0u8; 4096];
        block[..32].fill(7);
        engine.write_block(Lba(1), &block).unwrap();
        engine.flush().unwrap();

        let lanes = engine.lane_stats();
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0].payload_bytes, lanes[1].payload_bytes);
        // Satellite accounting fix: the global counter is the sum of
        // per-lane successful sends, not payload × replica count by fiat.
        let stats = engine.stats();
        assert_eq!(
            stats.replicated_payload_bytes,
            lanes[0].payload_bytes + lanes[1].payload_bytes
        );
        shutdown_all(engine, replica_threads);
    }

    /// Replays `writes` through a tracing engine and asserts that each
    /// lane's send log shows strictly increasing sequence numbers per
    /// LBA (the pipeline's ordering invariant, observed at the wire).
    fn assert_per_lba_ordering(writes: &[(u64, u8)], encode_workers: usize) {
        let (transports, _links, replica_devs, replica_threads) = faulted_replicas(2, 8);
        let primary = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
            .encode_workers(encode_workers)
            .ack_policy(AckPolicy::Window(16))
            .trace_sends(true);
        for transport in transports {
            builder = builder.replica(transport);
        }
        let engine = builder.build();

        for (i, &(lba, fill)) in writes.iter().enumerate() {
            let lba = Lba(lba % 8);
            let mut block = engine.read_block_vec(lba).unwrap();
            block[i % 4096] = fill;
            engine.write_block(lba, &block).unwrap();
        }
        engine.flush().unwrap();

        let logs = engine.send_logs();
        assert_eq!(logs.len(), 2);
        for log in &logs {
            assert_eq!(log.len(), writes.len(), "every write sent exactly once");
            let mut last_seq_for: HashMap<u64, u64> = HashMap::new();
            let mut prev_seq: Option<u64> = None;
            for &(lba, seq) in log {
                if let Some(prev) = prev_seq {
                    assert!(seq > prev, "global sequence order violated");
                }
                prev_seq = Some(seq);
                if let Some(&last) = last_seq_for.get(&lba.0) {
                    assert!(seq > last, "per-LBA sequence regressed on {lba:?}");
                }
                last_seq_for.insert(lba.0, seq);
            }
        }
        shutdown_all(engine, replica_threads);
        for dev in &replica_devs {
            assert!(verify_consistent(&*primary, &**dev).unwrap());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_sequences_are_monotonic_per_lba(
            writes in proptest::collection::vec((0u64..8, any::<u8>()), 1..80),
            workers in 1usize..5,
        ) {
            assert_per_lba_ordering(&writes, workers);
        }
    }
}
