//! Slab/arena buffer pool for the replication hot path.
//!
//! The PRINS write path handles three buffer shapes over and over: the
//! captured block images (`old`, `new`), the encoded wire payload, and
//! the sealed frame a sender lane puts on the wire. Allocating each of
//! them per write puts the allocator on the critical path and spreads
//! the working set across the heap; this crate replaces those
//! allocations with recycled slabs:
//!
//! * [`BufPool`] — fixed **size classes**, one lock-protected freelist
//!   per class. `get(min_cap)` hands out the smallest class that fits;
//!   requests larger than every class fall back to a plain heap buffer
//!   (counted as a miss) so nothing ever fails.
//! * [`PooledBuf`] — an owned, growable buffer (`Vec<u8>` underneath)
//!   that returns to its freelist on drop. `vec_mut()` exposes the
//!   inner `Vec` so existing serializers (`encode_varint`,
//!   `extend_from_slice`, …) work unchanged.
//! * [`PooledBytes`] — the frozen, ref-counted form: cheap `Clone` and
//!   sub-slicing for fan-out to many sender lanes, with the underlying
//!   slab returning to the pool when the last reference drops.
//!
//! Statistics (hits, misses, in-use, high-water mark) are plain
//! atomics, cheap enough to keep on in production and deterministic
//! under the single-threaded sim (they feed the `pool_*` gauges in
//! `prins-obs` snapshots).
//!
//! Ownership rules (see DESIGN §10): a buffer has exactly one writer
//! until it is frozen; frozen bytes are immutable and shared. Checked
//! out buffers always start empty (length 0, class capacity retained);
//! the pool never memsets recycled memory — stale bytes sit beyond the
//! length and are unreachable until overwritten.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Snapshot of a pool's counters (all monotonically updated atomics;
/// `in_use` is the only one that can decrease).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from a freelist.
    pub hits: u64,
    /// `get` calls that had to allocate (empty freelist or oversized).
    pub misses: u64,
    /// Buffers currently checked out (or frozen and still referenced).
    pub in_use: u64,
    /// Highest `in_use` ever observed.
    pub in_use_hwm: u64,
    /// `get` calls larger than every size class (always heap-allocated,
    /// never recycled; a subset of `misses`).
    pub oversized: u64,
}

impl PoolStats {
    /// Miss rate in parts per million (0 when nothing was requested) —
    /// integer-valued so it exports directly as a gauge.
    pub fn miss_ppm(&self) -> u64 {
        (self.misses * 1_000_000)
            .checked_div(self.hits + self.misses)
            .unwrap_or(0)
    }
}

struct PoolInner {
    /// Ascending capacities, one freelist per class.
    classes: Vec<usize>,
    freelists: Vec<Mutex<Vec<Vec<u8>>>>,
    /// Retained buffers per class; beyond this, drops free instead of
    /// recycling so a burst cannot pin memory forever.
    max_per_class: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    in_use: AtomicU64,
    in_use_hwm: AtomicU64,
    oversized: AtomicU64,
}

impl PoolInner {
    fn check_out(&self) {
        let now = self.in_use.fetch_add(1, Ordering::Relaxed) + 1;
        self.in_use_hwm.fetch_max(now, Ordering::Relaxed);
    }

    fn check_in(&self, class: Option<usize>, vec: Vec<u8>) {
        self.in_use.fetch_sub(1, Ordering::Relaxed);
        if let Some(class) = class {
            let mut list = self.freelists[class].lock();
            if list.len() < self.max_per_class {
                list.push(vec);
            }
        }
    }
}

/// A fixed-size-class slab pool. Cheap to clone (`Arc` underneath); one
/// pool serves every stage of an engine's write path.
#[derive(Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

impl BufPool {
    /// Creates a pool with the given size classes (deduplicated and
    /// sorted ascending; zero-sized classes are dropped). Each class
    /// retains up to `max_per_class` recycled buffers.
    pub fn new(classes: &[usize], max_per_class: usize) -> Self {
        let mut classes: Vec<usize> = classes.iter().copied().filter(|&c| c > 0).collect();
        classes.sort_unstable();
        classes.dedup();
        let freelists = classes.iter().map(|_| Mutex::new(Vec::new())).collect();
        Self {
            inner: Arc::new(PoolInner {
                classes,
                freelists,
                max_per_class: max_per_class.max(1),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                in_use: AtomicU64::new(0),
                in_use_hwm: AtomicU64::new(0),
                oversized: AtomicU64::new(0),
            }),
        }
    }

    /// A pool sized for a block-replication engine: block-image
    /// buffers, encoded-payload buffers (block + envelope slack), and
    /// wire-frame buffers holding up to `batch` payloads.
    pub fn for_block_size(block_size: usize, batch: usize) -> Self {
        let payload = block_size + 64;
        let wire = (payload + 16) * batch.max(1) + 32;
        Self::new(&[block_size, payload, wire], 64)
    }

    /// Checks out a buffer with capacity at least `min_cap` from the
    /// smallest fitting size class. Requests beyond the largest class
    /// are served from the heap (counted as oversized misses) and are
    /// not recycled on drop.
    pub fn get(&self, min_cap: usize) -> PooledBuf {
        let inner = &self.inner;
        match inner.classes.iter().position(|&c| c >= min_cap) {
            Some(class) => {
                let recycled = inner.freelists[class].lock().pop();
                let vec = match recycled {
                    Some(mut vec) => {
                        inner.hits.fetch_add(1, Ordering::Relaxed);
                        // Checked-out buffers always start empty; the
                        // clear keeps capacity and costs no memset.
                        vec.clear();
                        vec
                    }
                    None => {
                        inner.misses.fetch_add(1, Ordering::Relaxed);
                        Vec::with_capacity(inner.classes[class])
                    }
                };
                inner.check_out();
                PooledBuf {
                    vec,
                    pool: Arc::clone(inner),
                    class: Some(class),
                }
            }
            None => {
                inner.misses.fetch_add(1, Ordering::Relaxed);
                inner.oversized.fetch_add(1, Ordering::Relaxed);
                inner.check_out();
                PooledBuf {
                    vec: Vec::with_capacity(min_cap),
                    pool: Arc::clone(inner),
                    class: None,
                }
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let inner = &self.inner;
        PoolStats {
            hits: inner.hits.load(Ordering::Relaxed),
            misses: inner.misses.load(Ordering::Relaxed),
            in_use: inner.in_use.load(Ordering::Relaxed),
            in_use_hwm: inner.in_use_hwm.load(Ordering::Relaxed),
            oversized: inner.oversized.load(Ordering::Relaxed),
        }
    }

    /// The configured size classes, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.inner.classes
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("classes", &self.inner.classes)
            .field("stats", &self.stats())
            .finish()
    }
}

/// An exclusively-owned pool buffer, checked out empty. Deref's to
/// `[u8]` for reading; [`vec_mut`](Self::vec_mut) grants full `Vec`
/// access for building content. Returns to its freelist on drop.
pub struct PooledBuf {
    vec: Vec<u8>,
    pool: Arc<PoolInner>,
    /// `None` for oversized buffers, which are freed rather than
    /// recycled.
    class: Option<usize>,
}

impl PooledBuf {
    /// The inner `Vec`, for serializers that push/extend. Growing past
    /// the class capacity is allowed (it reallocates like any `Vec`);
    /// the grown buffer still recycles into its original class.
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }

    /// Mutable view of the current contents.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.vec
    }

    /// Clears and fills to exactly `len` bytes copied from `src`.
    pub fn copy_from(&mut self, src: &[u8]) {
        self.vec.clear();
        self.vec.extend_from_slice(src);
    }

    /// Resizes to `len`, zero-filling any grown tail.
    pub fn resize_zeroed(&mut self, len: usize) {
        self.vec.resize(len, 0);
    }

    /// Freezes into immutable, cheaply clonable bytes. The single `Arc`
    /// allocation here is the one unavoidable per-payload allocation on
    /// the pooled path; the slab itself still recycles when the last
    /// [`PooledBytes`] drops.
    pub fn freeze(self) -> PooledBytes {
        let end = self.vec.len();
        PooledBytes {
            buf: Arc::new(self),
            start: 0,
            end,
        }
    }
}

impl Deref for PooledBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let vec = std::mem::take(&mut self.vec);
        self.pool.check_in(self.class, vec);
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.vec.len())
            .field("cap", &self.vec.capacity())
            .field("class", &self.class)
            .finish()
    }
}

/// Immutable, ref-counted view into a frozen [`PooledBuf`]. Clones and
/// [`slice`](Self::slice) share the same slab; the slab returns to the
/// pool when the last view drops.
#[derive(Clone)]
pub struct PooledBytes {
    buf: Arc<PooledBuf>,
    start: usize,
    end: usize,
}

impl PooledBytes {
    /// A sub-view of this view (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds this view's length.
    pub fn slice(&self, start: usize, end: usize) -> PooledBytes {
        assert!(start <= end && self.start + end <= self.end, "slice range");
        PooledBytes {
            buf: Arc::clone(&self.buf),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Length of this view.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.end - self.start
    }
}

impl Deref for PooledBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl AsRef<[u8]> for PooledBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for PooledBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBytes")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn get_picks_smallest_fitting_class() {
        let pool = BufPool::new(&[64, 4096, 256], 8);
        assert_eq!(pool.classes(), &[64, 256, 4096]);
        assert!(pool.get(1).vec.capacity() >= 64);
        assert!(pool.get(64).vec.capacity() >= 64);
        assert!(pool.get(65).vec.capacity() >= 256);
        assert!(pool.get(4096).vec.capacity() >= 4096);
    }

    #[test]
    fn drop_recycles_and_second_get_hits() {
        let pool = BufPool::new(&[128], 8);
        {
            let mut b = pool.get(100);
            b.vec_mut().extend_from_slice(b"hello");
        }
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.in_use), (0, 1, 0));
        let b = pool.get(100);
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.in_use), (1, 1, 1));
        // Recycled buffers come back empty with their capacity kept.
        assert!(b.is_empty());
        assert!(b.vec.capacity() >= 128);
        assert_eq!(stats.in_use_hwm, 1);
    }

    #[test]
    fn oversized_requests_fall_back_to_heap_and_are_not_recycled() {
        let pool = BufPool::new(&[64], 8);
        {
            let b = pool.get(1000);
            assert!(b.vec.capacity() >= 1000);
        }
        let stats = pool.stats();
        assert_eq!(stats.oversized, 1);
        assert_eq!(stats.misses, 1);
        // The next in-class get still misses: nothing was recycled.
        drop(pool.get(10));
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn freelist_is_bounded() {
        let pool = BufPool::new(&[32], 2);
        let bufs: Vec<_> = (0..5).map(|_| pool.get(32)).collect();
        assert_eq!(pool.stats().in_use, 5);
        drop(bufs);
        assert_eq!(pool.stats().in_use, 0);
        // Only two buffers were retained.
        let _a = pool.get(32);
        let _b = pool.get(32);
        let _c = pool.get(32);
        let stats = pool.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 5 + 1);
    }

    #[test]
    fn freeze_shares_one_slab_across_clones_and_slices() {
        let pool = BufPool::new(&[64], 8);
        let mut b = pool.get(64);
        b.copy_from(b"0123456789");
        let frozen = b.freeze();
        assert_eq!(pool.stats().in_use, 1, "frozen buffer is still in use");
        let clone = frozen.clone();
        let mid = frozen.slice(2, 6);
        assert_eq!(&*mid, b"2345");
        assert_eq!(mid.len(), 4);
        let nested = mid.slice(1, 3);
        assert_eq!(&*nested, b"34");
        drop(frozen);
        drop(mid);
        assert_eq!(pool.stats().in_use, 1, "clone still holds the slab");
        drop(clone);
        drop(nested);
        let stats = pool.stats();
        assert_eq!(stats.in_use, 0);
        // And the slab actually recycled (checked out empty again).
        let again = pool.get(64);
        assert!(again.is_empty());
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn hwm_tracks_peak_concurrent_buffers() {
        let pool = BufPool::new(&[16], 16);
        let a = pool.get(16);
        let b = pool.get(16);
        let c = pool.get(16);
        drop((a, b, c));
        drop(pool.get(16));
        assert_eq!(pool.stats().in_use_hwm, 3);
    }

    #[test]
    fn miss_ppm_is_exact() {
        assert_eq!(PoolStats::default().miss_ppm(), 0);
        let s = PoolStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.miss_ppm(), 250_000);
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<BufPool>();
        check::<PooledBuf>();
        check::<PooledBytes>();
    }

    #[test]
    fn concurrent_checkout_is_consistent() {
        let pool = BufPool::new(&[256], 32);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..200usize {
                        let mut b = pool.get(200);
                        b.copy_from(&[(t * 50 + i % 50) as u8; 7]);
                        let frozen = b.freeze();
                        assert_eq!(frozen.len(), 7);
                        let copy = frozen.clone();
                        assert_eq!(&*copy, &*frozen);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.in_use, 0);
        assert_eq!(stats.hits + stats.misses, 800);
        assert!(stats.in_use_hwm <= 4);
    }

    proptest! {
        /// Frozen views always read back exactly the frozen content,
        /// through arbitrary slicing.
        #[test]
        fn prop_freeze_slice_identity(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            cuts in proptest::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..8),
        ) {
            let pool = BufPool::new(&[64, 256], 4);
            let mut b = pool.get(data.len());
            b.copy_from(&data);
            let frozen = b.freeze();
            prop_assert_eq!(&*frozen, data.as_slice());
            for (a, z) in cuts {
                let (mut a, mut z) = (a.index(data.len() + 1), z.index(data.len() + 1));
                if a > z {
                    std::mem::swap(&mut a, &mut z);
                }
                let view = frozen.slice(a, z);
                prop_assert_eq!(&*view, &data[a..z]);
            }
        }

        /// Round-tripping buffers through the pool never corrupts
        /// unrelated checkouts.
        #[test]
        fn prop_interleaved_checkouts_do_not_alias(
            ops in proptest::collection::vec((any::<u8>(), 1usize..128), 1..64),
        ) {
            let pool = BufPool::new(&[128], 4);
            let mut live: Vec<(PooledBuf, u8, usize)> = Vec::new();
            for (fill, len) in ops {
                if live.len() >= 3 {
                    let (buf, fill, len) = live.remove(0);
                    let want = vec![fill; len];
                    prop_assert_eq!(&buf[..], want.as_slice());
                    drop(buf);
                }
                let mut b = pool.get(len);
                b.vec_mut().clear();
                b.vec_mut().resize(len, fill);
                live.push((b, fill, len));
            }
            for (buf, fill, len) in live {
                let want = vec![fill; len];
                prop_assert_eq!(&buf[..], want.as_slice());
            }
            prop_assert_eq!(pool.stats().in_use, 0);
        }
    }
}
