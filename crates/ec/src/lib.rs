//! GF(256) arithmetic and systematic Reed–Solomon erasure coding.
//!
//! This crate generalizes PRINS's XOR delta algebra to k-of-n striped
//! redundancy: a group of `k + m` nodes stores `n/k` × the logical
//! bytes (instead of `n` × for mirrors) and still survives any `m`
//! node losses. The pieces:
//!
//! * [`gf`] — the field: compile-time log/exp tables, scalar ops, and
//!   the [`MulTable`]-driven `mul_slice`/`mul_xor_slice` strip kernels,
//! * [`ReedSolomon`] — a systematic Cauchy Reed–Solomon codec behind
//!   `prins_parity`'s [`ErasureCodec`] trait, including
//!   [`ReedSolomon::repair_coefficients`], the repair plan that
//!   rebuilds a lost strip from exactly `k` survivors.
//!
//! The PRINS trick carries over unchanged because the code is linear:
//! a small write's delta `Δd = new ⊕ old` updates parity strip `i` by
//! `Δp_i = c_i · Δd`, and `c · 0 = 0` keeps sparse deltas sparse on
//! the wire.
//!
//! # Example
//!
//! ```
//! use prins_ec::ReedSolomon;
//! use prins_parity::ErasureCodec;
//!
//! let rs = ReedSolomon::k4m2();
//! let data: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 64]).collect();
//! let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
//! let parity = rs.encode(&refs).unwrap();
//!
//! // Lose any two strips; the other four reconstruct them.
//! let mut strips: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
//! strips.extend(parity.into_iter().map(Some));
//! strips[1] = None;
//! strips[5] = None;
//! rs.reconstruct(&mut strips).unwrap();
//! assert_eq!(strips[1].as_deref(), Some(&data[1][..]));
//! ```

pub mod gf;
mod rs;

pub use gf::{mul_slice, mul_xor_slice, MulTable};
pub use rs::ReedSolomon;
