//! GF(256) arithmetic: log/exp tables and slice-wise kernels.
//!
//! The field is GF(2^8) with the conventional reduction polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d) and generator 2. Tables are
//! built at compile time; [`mul`]/[`div`]/[`inv`] are single lookups,
//! and [`MulTable`] turns a fixed coefficient into a 256-byte product
//! row so the slice kernels [`mul_slice`]/[`mul_xor_slice`] run one
//! table load per byte — the GF analogue of `prins_parity`'s
//! word-at-a-time XOR kernels (XOR needs no table, so its kernel is
//! 8 bytes per op; a GF multiply is inherently bytewise).

/// The reduction polynomial of the field (degree-8 term implicit).
pub const POLY: u16 = 0x11d;

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        // Doubled table: exp[a + b] is valid for a, b < 255 without a
        // mod-255 in the hot path.
        exp[i + 255] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Positions 510/511 are never indexed (log sums top out at 508);
    // keep them at the cycle start for definedness.
    exp[510] = exp[0];
    exp[511] = exp[1];
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
/// `EXP[i] = g^i` for the generator `g = 2`, doubled to 510 entries.
pub static EXP: [u8; 512] = TABLES.0;
/// `LOG[x] = log_g x` for `x != 0` (`LOG[0]` is unused and 0).
pub static LOG: [u8; 256] = TABLES.1;

/// Field multiplication.
#[inline]
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Field addition — XOR, shared with every GF(2^w).
#[inline]
#[must_use]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplicative inverse of a nonzero element.
///
/// # Panics
///
/// In debug builds if `a == 0`; zero has no inverse.
#[inline]
#[must_use]
pub fn inv(a: u8) -> u8 {
    debug_assert_ne!(a, 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Field division `a / b`.
///
/// # Panics
///
/// In debug builds if `b == 0`.
#[inline]
#[must_use]
pub fn div(a: u8, b: u8) -> u8 {
    debug_assert_ne!(b, 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + 255 - LOG[b as usize] as usize]
    }
}

/// `a^e` by square-and-multiply (used by tests; the codec needs only
/// table lookups).
#[must_use]
pub fn pow(mut a: u8, mut e: u32) -> u8 {
    let mut out = 1u8;
    while e > 0 {
        if e & 1 == 1 {
            out = mul(out, a);
        }
        a = mul(a, a);
        e >>= 1;
    }
    out
}

/// A fixed coefficient's 256-entry product row: `row[x] = c · x`.
///
/// Encoding and repair multiply whole strips by the same generator
/// coefficient; hoisting the double table lookup into one row load
/// per byte is what makes the slice kernels below the hot path.
#[derive(Clone, Debug)]
pub struct MulTable {
    row: [u8; 256],
}

impl MulTable {
    /// Builds the product row of `c`.
    #[must_use]
    pub fn new(c: u8) -> Self {
        let mut row = [0u8; 256];
        if c != 0 {
            let lc = LOG[c as usize] as usize;
            for (x, slot) in row.iter_mut().enumerate().skip(1) {
                *slot = EXP[lc + LOG[x] as usize];
            }
        }
        Self { row }
    }

    /// The coefficient's product for a single byte.
    #[inline]
    #[must_use]
    pub fn mul(&self, x: u8) -> u8 {
        self.row[x as usize]
    }

    /// `dst = c · src`, elementwise.
    ///
    /// The lookups are inherently bytewise, but the eight products of
    /// each lane are composed into one `u64` and written with a single
    /// wide store — 1/8th the stores of the scalar loop.
    ///
    /// # Panics
    ///
    /// If the slices differ in length.
    pub fn mul_slice(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
        // 64-byte blocks, 8-byte lanes inside — the same walk shape as
        // the XOR kernel.
        const WIDE: usize = 64;
        let blocks = src.len() / WIDE;
        for b in 0..blocks {
            let s = &src[b * WIDE..(b + 1) * WIDE];
            let d = &mut dst[b * WIDE..(b + 1) * WIDE];
            for (dc, sc) in d.chunks_exact_mut(8).zip(s.chunks_exact(8)) {
                let products = u64::from_ne_bytes([
                    self.row[sc[0] as usize],
                    self.row[sc[1] as usize],
                    self.row[sc[2] as usize],
                    self.row[sc[3] as usize],
                    self.row[sc[4] as usize],
                    self.row[sc[5] as usize],
                    self.row[sc[6] as usize],
                    self.row[sc[7] as usize],
                ]);
                dc.copy_from_slice(&products.to_ne_bytes());
            }
        }
        for (d, s) in dst[blocks * WIDE..].iter_mut().zip(&src[blocks * WIDE..]) {
            *d = self.row[*s as usize];
        }
    }

    /// `dst ^= c · src`, elementwise — the RMW parity-strip update.
    ///
    /// Eight products per lane fold into one `u64` XOR against the
    /// destination: one wide load, one wide XOR, one wide store instead
    /// of eight read-modify-write byte ops.
    ///
    /// # Panics
    ///
    /// If the slices differ in length.
    pub fn mul_xor_slice(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_xor_slice length mismatch");
        const WIDE: usize = 64;
        let blocks = src.len() / WIDE;
        for b in 0..blocks {
            let s = &src[b * WIDE..(b + 1) * WIDE];
            let d = &mut dst[b * WIDE..(b + 1) * WIDE];
            for (dc, sc) in d.chunks_exact_mut(8).zip(s.chunks_exact(8)) {
                let products = u64::from_ne_bytes([
                    self.row[sc[0] as usize],
                    self.row[sc[1] as usize],
                    self.row[sc[2] as usize],
                    self.row[sc[3] as usize],
                    self.row[sc[4] as usize],
                    self.row[sc[5] as usize],
                    self.row[sc[6] as usize],
                    self.row[sc[7] as usize],
                ]);
                let lane = u64::from_ne_bytes(dc[..8].try_into().unwrap()) ^ products;
                dc.copy_from_slice(&lane.to_ne_bytes());
            }
        }
        for (d, s) in dst[blocks * WIDE..].iter_mut().zip(&src[blocks * WIDE..]) {
            *d ^= self.row[*s as usize];
        }
    }

    /// Byte-at-a-time reference for [`mul_xor_slice`](Self::mul_xor_slice)
    /// — the baseline the kernel benchmarks compare against.
    ///
    /// # Panics
    ///
    /// If the slices differ in length.
    pub fn mul_xor_slice_scalar(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_xor_slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= self.row[*s as usize];
        }
    }
}

/// `dst = c · src` without a prebuilt [`MulTable`] (builds one
/// internally; prefer the table for repeated coefficients).
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => MulTable::new(c).mul_slice(src, dst),
    }
}

/// `dst ^= c · src` without a prebuilt [`MulTable`].
pub fn mul_xor_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    match c {
        0 => {}
        1 => prins_parity::xor_in_place(dst, src),
        _ => MulTable::new(c).mul_xor_slice(src, dst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mul_ref(mut a: u8, mut b: u8) -> u8 {
        // Russian-peasant multiplication straight off the polynomial —
        // the table-free oracle.
        let mut out = 0u8;
        while b != 0 {
            if b & 1 == 1 {
                out ^= a;
            }
            let carry = a & 0x80 != 0;
            a <<= 1;
            if carry {
                a ^= (POLY & 0xff) as u8;
            }
            b >>= 1;
        }
        out
    }

    #[test]
    fn tables_match_the_polynomial_oracle() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_ref(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn inverse_and_division() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(a, a), 1);
            assert_eq!(div(0, a), 0);
        }
        assert_eq!(pow(2, 255), 1); // the generator's order
    }

    #[test]
    fn slice_kernels_match_scalar_for_all_lengths() {
        // Cover the 64-byte blocks, the 8-wide unroll, and ragged tails.
        let src: Vec<u8> = (0..200u16).map(|i| (i * 37 % 251) as u8).collect();
        for c in [0u8, 1, 2, 0x53, 0xff] {
            for len in [0usize, 1, 7, 8, 63, 64, 65, 128, 200] {
                let mut dst = vec![0xa5u8; len];
                mul_slice(c, &src[..len], &mut dst);
                let want: Vec<u8> = src[..len].iter().map(|&x| mul(c, x)).collect();
                assert_eq!(dst, want, "mul_slice c={c} len={len}");

                let mut dst = vec![0xa5u8; len];
                mul_xor_slice(c, &src[..len], &mut dst);
                let want: Vec<u8> = src[..len].iter().map(|&x| 0xa5 ^ mul(c, x)).collect();
                assert_eq!(dst, want, "mul_xor_slice c={c} len={len}");

                let mut dst = vec![0xa5u8; len];
                MulTable::new(c).mul_xor_slice_scalar(&src[..len], &mut dst);
                assert_eq!(dst, want, "mul_xor_slice_scalar c={c} len={len}");
            }
        }
    }

    proptest! {
        /// Multiplication is associative and commutative.
        #[test]
        fn prop_mul_assoc_comm(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        /// Multiplication distributes over addition (XOR).
        #[test]
        fn prop_distributive(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        /// Inverse round-trip: `(a · b) / b == a` for `b != 0`.
        #[test]
        fn prop_inverse_roundtrip(a in any::<u8>(), b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
            prop_assert_eq!(mul(mul(a, b), inv(b)), a);
        }

        /// Identity and annihilator.
        #[test]
        fn prop_identities(a in any::<u8>()) {
            prop_assert_eq!(mul(a, 1), a);
            prop_assert_eq!(mul(a, 0), 0);
            prop_assert_eq!(add(a, a), 0); // characteristic 2
        }

        /// The slice kernel is the scalar multiply, elementwise.
        #[test]
        fn prop_mul_xor_slice_matches_scalar(
            c in any::<u8>(),
            src in proptest::collection::vec(any::<u8>(), 0..300),
        ) {
            let mut dst = vec![0u8; src.len()];
            mul_xor_slice(c, &src, &mut dst);
            let want: Vec<u8> = src.iter().map(|&x| mul(c, x)).collect();
            prop_assert_eq!(dst, want);
        }
    }
}
