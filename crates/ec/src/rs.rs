//! Systematic Reed–Solomon coding over GF(256).
//!
//! The generator is `[I_k; C]` with `C` a k×m Cauchy block,
//! `c_{i,j} = 1 / (x_i ⊕ y_j)` for `x_i = k + i`, `y_j = j`. Every
//! square submatrix of a Cauchy matrix is nonsingular, so any `k` of
//! the `k + m` codeword strips determine the rest — the MDS property
//! the repair planner leans on.
//!
//! Updates are RMW deltas: changing data strip `j` by `Δ` changes
//! parity strip `i` by `c_{i,j} · Δ`, which is
//! [`ErasureCodec::apply_delta`] with that coefficient — linearity of
//! the code over the field, and the reason PRINS's sparse deltas stay
//! sparse (`c · 0 = 0`).

use prins_parity::{EcError, ErasureCodec};

use crate::gf::{self, MulTable};

/// A systematic `k`-of-`(k+m)` Reed–Solomon codec.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// Row-major m×k Cauchy coefficients.
    coeff: Vec<u8>,
    /// Product rows per coefficient, same layout.
    tables: Vec<MulTable>,
}

impl ReedSolomon {
    /// Builds the codec for `k` data strips and `m` parity strips.
    ///
    /// # Panics
    ///
    /// If `k == 0`, `m == 0`, or `k + m > 256` (the Cauchy points must
    /// be distinct field elements).
    #[must_use]
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1 && m >= 1, "RS needs k >= 1 and m >= 1");
        assert!(k + m <= 256, "k + m must not exceed the field size");
        let mut coeff = Vec::with_capacity(m * k);
        for i in 0..m {
            for j in 0..k {
                coeff.push(gf::inv(((k + i) ^ j) as u8));
            }
        }
        let tables = coeff.iter().map(|&c| MulTable::new(c)).collect();
        Self {
            k,
            m,
            coeff,
            tables,
        }
    }

    /// The paper-grade default: 4 data + 2 parity strips.
    #[must_use]
    pub fn k4m2() -> Self {
        Self::new(4, 2)
    }

    fn generator_row(&self, strip: usize) -> Vec<u8> {
        let mut row = vec![0u8; self.k];
        if strip < self.k {
            row[strip] = 1;
        } else {
            row.copy_from_slice(
                &self.coeff[(strip - self.k) * self.k..(strip - self.k + 1) * self.k],
            );
        }
        row
    }

    /// Expresses strip `lost` as a GF(256)-linear combination of the
    /// `k` chosen `survivors`: returns `λ` with
    /// `strip_lost = Σ_s λ_s · strip_{survivors[s]}`.
    ///
    /// This is the repair plan: a rebuild reads exactly `k` surviving
    /// strips — not all `n` — and scales each contribution once.
    ///
    /// # Errors
    ///
    /// [`EcError::TooManyErasures`] unless exactly `k` distinct
    /// survivors (none of them `lost`) are given;
    /// [`EcError::Singular`] if they cannot express the strip (never
    /// for distinct codeword positions of an MDS code).
    pub fn repair_coefficients(
        &self,
        lost: usize,
        survivors: &[usize],
    ) -> Result<Vec<u8>, EcError> {
        let n = self.k + self.m;
        if survivors.len() != self.k
            || survivors.contains(&lost)
            || survivors.iter().any(|&s| s >= n)
            || lost >= n
        {
            return Err(EcError::TooManyErasures {
                missing: n - survivors.len().min(n),
                tolerated: self.m,
            });
        }
        // Rows of the generator for the survivors: A · data = survivors.
        let a: Vec<Vec<u8>> = survivors.iter().map(|&s| self.generator_row(s)).collect();
        let a_inv = invert(a)?;
        // g_lost · A⁻¹ maps survivor strips straight to the lost strip.
        let g = self.generator_row(lost);
        let mut lambda = vec![0u8; self.k];
        for (s, slot) in lambda.iter_mut().enumerate() {
            let mut acc = 0u8;
            for (j, &gj) in g.iter().enumerate() {
                acc ^= gf::mul(gj, a_inv[j][s]);
            }
            *slot = acc;
        }
        Ok(lambda)
    }
}

/// Gauss–Jordan inversion of a square matrix over GF(256).
fn invert(mut a: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, EcError> {
    let n = a.len();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..n).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..n {
        let pivot = (col..n)
            .find(|&r| a[r][col] != 0)
            .ok_or(EcError::Singular)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let p = gf::inv(a[col][col]);
        for j in 0..n {
            a[col][j] = gf::mul(a[col][j], p);
            inv[col][j] = gf::mul(inv[col][j], p);
        }
        for r in 0..n {
            if r == col || a[r][col] == 0 {
                continue;
            }
            let f = a[r][col];
            for j in 0..n {
                let ac = gf::mul(f, a[col][j]);
                a[r][j] ^= ac;
                let ic = gf::mul(f, inv[col][j]);
                inv[r][j] ^= ic;
            }
        }
    }
    Ok(inv)
}

impl ErasureCodec for ReedSolomon {
    fn data_strips(&self) -> usize {
        self.k
    }

    fn parity_strips(&self) -> usize {
        self.m
    }

    fn coefficient(&self, parity: usize, data: usize) -> u8 {
        self.coeff[parity * self.k + data]
    }

    fn apply_delta(&self, base: &mut [u8], coeff: u8, delta: &[u8]) -> Result<(), EcError> {
        if base.len() != delta.len() {
            return Err(EcError::LenMismatch {
                expected: base.len(),
                got: delta.len(),
            });
        }
        gf::mul_xor_slice(coeff, delta, base);
        Ok(())
    }

    fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        if data.len() != self.k {
            return Err(EcError::WrongStripCount {
                got: data.len(),
                want: self.k,
            });
        }
        let len = data[0].len();
        for s in data {
            if s.len() != len {
                return Err(EcError::LenMismatch {
                    expected: len,
                    got: s.len(),
                });
            }
        }
        let mut parity = vec![vec![0u8; len]; self.m];
        for (i, p) in parity.iter_mut().enumerate() {
            for (j, d) in data.iter().enumerate() {
                self.tables[i * self.k + j].mul_xor_slice(d, p);
            }
        }
        Ok(parity)
    }

    fn reconstruct(&self, strips: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let n = self.k + self.m;
        if strips.len() != n {
            return Err(EcError::WrongStripCount {
                got: strips.len(),
                want: n,
            });
        }
        let missing: Vec<usize> = (0..n).filter(|&i| strips[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > self.m {
            return Err(EcError::TooManyErasures {
                missing: missing.len(),
                tolerated: self.m,
            });
        }
        let survivors: Vec<usize> = (0..n)
            .filter(|&i| strips[i].is_some())
            .take(self.k)
            .collect();
        let len = strips[survivors[0]].as_ref().map_or(0, Vec::len);
        for &s in &survivors {
            let got = strips[s].as_ref().map_or(0, Vec::len);
            if got != len {
                return Err(EcError::LenMismatch { expected: len, got });
            }
        }
        for &lost in &missing {
            let lambda = self.repair_coefficients(lost, &survivors)?;
            let mut out = vec![0u8; len];
            for (s, &c) in survivors.iter().zip(&lambda) {
                let strip = strips[*s].as_ref().expect("survivor present");
                gf::mul_xor_slice(c, strip, &mut out);
            }
            strips[lost] = Some(out);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "rs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{RngExt, SeedableRng};

    fn sample_strips(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| {
                let mut s = vec![0u8; len];
                rng.fill_bytes(&mut s);
                s
            })
            .collect()
    }

    fn codeword(rs: &ReedSolomon, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        let mut strips = data.to_vec();
        strips.extend(rs.encode(&refs).unwrap());
        strips
    }

    #[test]
    fn erase_any_m_and_decode() {
        let rs = ReedSolomon::k4m2();
        let data = sample_strips(4, 128, 1);
        let full = codeword(&rs, &data);
        // Every pair of erasures across all 6 positions.
        for a in 0..6 {
            for b in a..6 {
                let mut view: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                view[a] = None;
                view[b] = None;
                rs.reconstruct(&mut view).unwrap();
                for (i, strip) in full.iter().enumerate() {
                    assert_eq!(
                        view[i].as_ref().unwrap(),
                        strip,
                        "erase ({a},{b}) strip {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn three_erasures_with_m2_are_rejected() {
        let rs = ReedSolomon::k4m2();
        let data = sample_strips(4, 32, 2);
        let mut view: Vec<Option<Vec<u8>>> = codeword(&rs, &data).into_iter().map(Some).collect();
        view[0] = None;
        view[2] = None;
        view[5] = None;
        assert!(matches!(
            rs.reconstruct(&mut view),
            Err(EcError::TooManyErasures {
                missing: 3,
                tolerated: 2
            })
        ));
    }

    #[test]
    fn rmw_delta_update_equals_reencode() {
        let rs = ReedSolomon::k4m2();
        let mut data = sample_strips(4, 96, 3);
        let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        let mut parity = rs.encode(&refs).unwrap();
        // Sparse update of data strip 2.
        let mut updated = data[2].clone();
        updated[10..30].fill(0x5a);
        let delta = rs.delta(&data[2], &updated);
        for (i, p) in parity.iter_mut().enumerate() {
            rs.apply_delta(p, rs.coefficient(i, 2), &delta).unwrap();
        }
        data[2] = updated;
        let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        assert_eq!(parity, rs.encode(&refs).unwrap());
    }

    #[test]
    fn repair_coefficients_rebuild_each_strip_from_k_survivors() {
        let rs = ReedSolomon::new(3, 2);
        let data = sample_strips(3, 64, 4);
        let full = codeword(&rs, &data);
        for lost in 0..5 {
            let survivors: Vec<usize> = (0..5).filter(|&s| s != lost).take(3).collect();
            let lambda = rs.repair_coefficients(lost, &survivors).unwrap();
            let mut out = vec![0u8; 64];
            for (&s, &c) in survivors.iter().zip(&lambda) {
                gf::mul_xor_slice(c, &full[s], &mut out);
            }
            assert_eq!(out, full[lost], "lost {lost} via {survivors:?}");
        }
    }

    #[test]
    fn repair_coefficients_reject_bad_survivor_sets() {
        let rs = ReedSolomon::k4m2();
        assert!(rs.repair_coefficients(0, &[1, 2, 3]).is_err()); // too few
        assert!(rs.repair_coefficients(0, &[0, 1, 2, 3]).is_err()); // contains lost
        assert!(rs.repair_coefficients(9, &[1, 2, 3, 4]).is_err()); // out of range
    }

    #[test]
    fn malformed_strip_sets_are_rejected() {
        let rs = ReedSolomon::k4m2();
        assert!(matches!(
            rs.encode(&[&[0u8; 4][..]; 3]),
            Err(EcError::WrongStripCount { got: 3, want: 4 })
        ));
        assert!(matches!(
            rs.encode(&[&[0u8; 4][..], &[0u8; 4], &[0u8; 4], &[0u8; 8]]),
            Err(EcError::LenMismatch { .. })
        ));
        let mut short = vec![Some(vec![0u8; 4]); 5];
        assert!(matches!(
            rs.reconstruct(&mut short),
            Err(EcError::WrongStripCount { .. })
        ));
    }

    #[test]
    fn xor_fast_path_agrees_with_rs_m1() {
        use prins_parity::XorCodec;
        // An RS code with one parity strip over GF(256) still has all-
        // ones coefficients only when the Cauchy points make it so; the
        // XOR codec is the true m=1 fast path. Both must decode any
        // single erasure of the same data.
        let data = sample_strips(4, 40, 5);
        let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        for codec in [
            Box::new(ReedSolomon::new(4, 1)) as Box<dyn ErasureCodec>,
            Box::new(XorCodec::new(4)) as Box<dyn ErasureCodec>,
        ] {
            let mut strips: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
            strips.extend(codec.encode(&refs).unwrap().into_iter().map(Some));
            let saved = strips[1].clone();
            strips[1] = None;
            codec.reconstruct(&mut strips).unwrap();
            assert_eq!(strips[1], saved, "{}", codec.name());
        }
    }

    proptest! {
        /// Encode → erase any ≤ m strips → decode restores the codeword.
        #[test]
        fn prop_encode_erase_decode(
            k in 1usize..6,
            m in 1usize..4,
            len in 1usize..80,
            seed in any::<u64>(),
            picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
        ) {
            let rs = ReedSolomon::new(k, m);
            let data = sample_strips(k, len, seed);
            let full = codeword(&rs, &data);
            let mut view: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            let mut erased = std::collections::BTreeSet::new();
            for p in picks.iter().take(m) {
                erased.insert(p.index(k + m));
            }
            for &e in &erased {
                view[e] = None;
            }
            rs.reconstruct(&mut view).unwrap();
            for (i, strip) in full.iter().enumerate() {
                prop_assert_eq!(view[i].as_ref().unwrap(), strip);
            }
        }

        /// RMW parity updates commute with re-encoding for random
        /// deltas on random strips.
        #[test]
        fn prop_rmw_update_equals_reencode(
            seed in any::<u64>(),
            strip in 0usize..4,
            at in 0usize..60,
            val in any::<u8>(),
        ) {
            let rs = ReedSolomon::k4m2();
            let mut data = sample_strips(4, 64, seed);
            let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
            let mut parity = rs.encode(&refs).unwrap();
            let mut updated = data[strip].clone();
            updated[at] ^= val;
            let delta = rs.delta(&data[strip], &updated);
            for (i, p) in parity.iter_mut().enumerate() {
                rs.apply_delta(p, rs.coefficient(i, strip), &delta).unwrap();
            }
            data[strip] = updated;
            let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
            prop_assert_eq!(parity, rs.encode(&refs).unwrap());
        }
    }
}
