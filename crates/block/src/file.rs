//! File-backed block device.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::{BlockDevice, BlockSize, Geometry, Lba, Result};

/// A block device persisted in a regular file.
///
/// The paper's testbed stored database volumes on real disks; this device
/// lets long experiments persist volumes between runs. The file is grown
/// to full size at creation so reads of never-written blocks return
/// zeros, matching the other device types.
///
/// # Example
///
/// ```no_run
/// use prins_block::{BlockDevice, BlockSize, FileDevice, Lba};
///
/// # fn main() -> Result<(), prins_block::BlockError> {
/// let dev = FileDevice::create("/tmp/volume.img", BlockSize::kb4(), 1024)?;
/// dev.write_block(Lba(3), &vec![1u8; 4096])?;
/// dev.flush()?;
/// # Ok(())
/// # }
/// ```
pub struct FileDevice {
    geometry: Geometry,
    file: Mutex<File>,
}

impl FileDevice {
    /// Creates (or truncates) a backing file sized for the geometry.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating or sizing the file.
    pub fn create<P: AsRef<Path>>(path: P, block_size: BlockSize, num_blocks: u64) -> Result<Self> {
        let geometry = Geometry::new(block_size, num_blocks);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(geometry.capacity_bytes())?;
        Ok(Self {
            geometry,
            file: Mutex::new(file),
        })
    }

    /// Opens an existing backing file created by [`create`](Self::create).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be opened, or
    /// [`BlockError::BufferSize`](crate::BlockError::BufferSize) if its
    /// length is not a whole number of blocks.
    pub fn open<P: AsRef<Path>>(path: P, block_size: BlockSize) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let bs = block_size.bytes() as u64;
        if len % bs != 0 {
            return Err(crate::BlockError::BufferSize {
                expected: bs as usize,
                actual: (len % bs) as usize,
            });
        }
        Ok(Self {
            geometry: Geometry::new(block_size, len / bs),
            file: Mutex::new(file),
        })
    }
}

impl BlockDevice for FileDevice {
    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.geometry.check_lba(lba)?;
        self.geometry.check_buf(buf)?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(lba.byte_offset(self.geometry.block_size())))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        self.geometry.check_lba(lba)?;
        self.geometry.check_buf(buf)?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(lba.byte_offset(self.geometry.block_size())))?;
        file.write_all(buf)?;
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

impl std::fmt::Debug for FileDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileDevice")
            .field("geometry", &self.geometry)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prins-file-dev-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_write_read_round_trip() {
        let path = temp_path("rt");
        let dev = FileDevice::create(&path, BlockSize::new(512).unwrap(), 4).unwrap();
        dev.write_block(Lba(2), &vec![0xcdu8; 512]).unwrap();
        dev.flush().unwrap();
        assert_eq!(dev.read_block_vec(Lba(2)).unwrap(), vec![0xcdu8; 512]);
        // Unwritten blocks read as zero.
        assert!(dev.read_block_vec(Lba(0)).unwrap().iter().all(|&b| b == 0));
        drop(dev);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reopen_preserves_contents_and_geometry() {
        let path = temp_path("reopen");
        {
            let dev = FileDevice::create(&path, BlockSize::new(512).unwrap(), 8).unwrap();
            dev.write_block(Lba(5), &vec![0x11u8; 512]).unwrap();
            dev.flush().unwrap();
        }
        let dev = FileDevice::open(&path, BlockSize::new(512).unwrap()).unwrap();
        assert_eq!(dev.geometry().num_blocks(), 8);
        assert_eq!(dev.read_block_vec(Lba(5)).unwrap(), vec![0x11u8; 512]);
        drop(dev);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_rejects_ragged_file() {
        let path = temp_path("ragged");
        std::fs::write(&path, vec![0u8; 700]).unwrap();
        assert!(FileDevice::open(&path, BlockSize::new(512).unwrap()).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
