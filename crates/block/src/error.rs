//! Error type shared by all block devices.

use std::fmt;
use std::io;

use crate::Lba;

/// Errors returned by [`BlockDevice`](crate::BlockDevice) operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum BlockError {
    /// The requested block size is not a power of two in the supported
    /// range.
    InvalidBlockSize {
        /// The rejected size in bytes.
        bytes: u32,
    },
    /// An address past the end of the device was used.
    OutOfRange {
        /// The offending address.
        lba: Lba,
        /// Device capacity in blocks.
        num_blocks: u64,
    },
    /// A buffer whose length does not match the device block size was
    /// supplied.
    BufferSize {
        /// Required length in bytes.
        expected: usize,
        /// Supplied length in bytes.
        actual: usize,
    },
    /// An injected or real I/O failure.
    Io(io::Error),
    /// A device (or RAID member) is offline / failed.
    DeviceFailed {
        /// Human-readable identification of the failed device.
        device: String,
    },
    /// Data corruption was detected (e.g. by a RAID scrub or checksum).
    Corruption {
        /// Address at which the corruption was found.
        lba: Lba,
        /// Description of what failed to verify.
        detail: String,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::InvalidBlockSize { bytes } => {
                write!(
                    f,
                    "invalid block size {bytes}: must be a power of two in [512, 1048576]"
                )
            }
            BlockError::OutOfRange { lba, num_blocks } => {
                write!(f, "lba {lba} out of range: device has {num_blocks} blocks")
            }
            BlockError::BufferSize { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match block size {expected}"
                )
            }
            BlockError::Io(e) => write!(f, "i/o error: {e}"),
            BlockError::DeviceFailed { device } => write!(f, "device failed: {device}"),
            BlockError::Corruption { lba, detail } => {
                write!(f, "corruption at lba {lba}: {detail}")
            }
        }
    }
}

impl std::error::Error for BlockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlockError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BlockError {
    fn from(e: io::Error) -> Self {
        BlockError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = BlockError::OutOfRange {
            lba: Lba(12),
            num_blocks: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("12"));
        assert!(msg.contains("10"));

        let e = BlockError::BufferSize {
            expected: 4096,
            actual: 512,
        };
        assert!(e.to_string().contains("4096"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error as _;
        let e = BlockError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BlockError>();
    }
}
