//! Fault-injecting device wrapper for failure and recovery tests.

use parking_lot::Mutex;
use std::collections::HashSet;

use crate::{BlockDevice, BlockError, Geometry, Lba, Result};

/// The kind of failure a [`FaultDevice`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Every read fails (media unreadable).
    FailReads,
    /// Every write fails (media write-protected / dead).
    FailWrites,
    /// All I/O fails (device offline) — what a RAID rebuild test wants.
    FailAll,
    /// Reads succeed but return silently corrupted data (bit flips), which
    /// a scrub must detect.
    CorruptReads,
    /// Writes succeed but persist silently corrupted data (a bit flip on
    /// the way to media). Unlike [`FaultKind::CorruptReads`] the damage is
    /// durable: once the plan is cleared, reads keep returning the bad
    /// bytes until something rewrites the block — exactly the divergence a
    /// scrub-and-repair pass must find and fix.
    CorruptWrites,
}

/// Declarative description of which operations should fail.
#[derive(Debug, Default)]
pub struct FaultPlan {
    kind: Option<FaultKind>,
    bad_lbas: HashSet<u64>,
    /// Fail after this many more operations (countdown), if set.
    fuse: Option<u64>,
    /// Apply the fault to at most this many operations, then go healthy.
    limit: Option<u64>,
}

impl FaultPlan {
    /// A plan that never fails.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// A plan that fails according to `kind` for every LBA.
    pub fn always(kind: FaultKind) -> Self {
        Self {
            kind: Some(kind),
            ..Self::default()
        }
    }

    /// Restricts the failure to the given addresses (e.g. a bad-sector
    /// scenario). No restriction means all addresses fail.
    pub fn only_lbas<I: IntoIterator<Item = Lba>>(mut self, lbas: I) -> Self {
        self.bad_lbas = lbas.into_iter().map(|l| l.index()).collect();
        self
    }

    /// Arms a fuse: the device stays healthy for `ops` more operations and
    /// then starts failing. Models a disk dying mid-run.
    pub fn after_ops(mut self, ops: u64) -> Self {
        self.fuse = Some(ops);
        self
    }

    /// Bounds the fault to at most `ops` affected operations, after which
    /// the device behaves healthily again. Models a transient glitch (a
    /// few corrupted writes) rather than a permanently bad device, so
    /// repair paths can converge.
    pub fn for_ops(mut self, ops: u64) -> Self {
        self.limit = Some(ops);
        self
    }

    fn applies_to(&self, lba: Lba) -> bool {
        self.bad_lbas.is_empty() || self.bad_lbas.contains(&lba.index())
    }
}

/// A [`BlockDevice`] wrapper that injects failures per a [`FaultPlan`].
///
/// # Example
///
/// ```
/// use prins_block::{BlockDevice, BlockSize, FaultDevice, FaultKind, FaultPlan, Lba, MemDevice};
///
/// let dev = FaultDevice::new(MemDevice::new(BlockSize::kb4(), 4));
/// dev.set_plan(FaultPlan::always(FaultKind::FailAll));
/// assert!(dev.read_block_vec(Lba(0)).is_err());
/// dev.set_plan(FaultPlan::healthy());
/// assert!(dev.read_block_vec(Lba(0)).is_ok());
/// ```
pub struct FaultDevice<D> {
    inner: D,
    plan: Mutex<FaultPlan>,
}

impl<D: BlockDevice> FaultDevice<D> {
    /// Wraps `inner` with a healthy plan.
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            plan: Mutex::new(FaultPlan::healthy()),
        }
    }

    /// Replaces the active fault plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// Gives access to the wrapped device (bypasses fault injection).
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Decides whether the next operation at `lba` should fail with
    /// `kind`-relevant behaviour. Burns the fuse if armed.
    fn check(&self, lba: Lba, is_read: bool) -> Result<Option<FaultKind>> {
        let mut plan = self.plan.lock();
        if let Some(fuse) = plan.fuse.as_mut() {
            if *fuse > 0 {
                *fuse -= 1;
                return Ok(None);
            }
        }
        let Some(kind) = plan.kind else {
            return Ok(None);
        };
        if !plan.applies_to(lba) {
            return Ok(None);
        }
        let applies = match kind {
            FaultKind::FailReads | FaultKind::CorruptReads => is_read,
            FaultKind::FailWrites | FaultKind::CorruptWrites => !is_read,
            FaultKind::FailAll => true,
        };
        if !applies {
            return Ok(None);
        }
        if let Some(limit) = plan.limit.as_mut() {
            if *limit == 0 {
                return Ok(None);
            }
            *limit -= 1;
        }
        match kind {
            FaultKind::CorruptReads | FaultKind::CorruptWrites => Ok(Some(kind)),
            _ => Err(BlockError::DeviceFailed {
                device: format!("fault injection ({kind:?}) at lba {lba}"),
            }),
        }
    }
}

impl<D: BlockDevice> BlockDevice for FaultDevice<D> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        let kind = self.check(lba, true)?;
        self.inner.read_block(lba, buf)?;
        if kind == Some(FaultKind::CorruptReads) {
            // Flip a deterministic bit so scrubs can detect the damage.
            let idx = (lba.index() as usize) % buf.len();
            buf[idx] ^= 0x80;
        }
        Ok(())
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        let kind = self.check(lba, false)?;
        if kind == Some(FaultKind::CorruptWrites) && !buf.is_empty() {
            // Persist a deterministically damaged copy: the corruption
            // survives plan clearing, as real media corruption would.
            let mut damaged = buf.to_vec();
            let idx = (lba.index() as usize) % damaged.len();
            damaged[idx] ^= 0x80;
            return self.inner.write_block(lba, &damaged);
        }
        self.inner.write_block(lba, buf)
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }
}

impl<D: BlockDevice> std::fmt::Debug for FaultDevice<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultDevice")
            .field("geometry", &self.geometry())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockSize, MemDevice};

    fn dev() -> FaultDevice<MemDevice> {
        FaultDevice::new(MemDevice::new(BlockSize::kb4(), 8))
    }

    #[test]
    fn healthy_plan_passes_through() {
        let d = dev();
        d.write_block(Lba(1), &vec![1u8; 4096]).unwrap();
        assert_eq!(d.read_block_vec(Lba(1)).unwrap(), vec![1u8; 4096]);
    }

    #[test]
    fn fail_reads_only_blocks_reads() {
        let d = dev();
        d.set_plan(FaultPlan::always(FaultKind::FailReads));
        assert!(d.write_block(Lba(0), &vec![0u8; 4096]).is_ok());
        assert!(d.read_block_vec(Lba(0)).is_err());
    }

    #[test]
    fn fail_writes_only_blocks_writes() {
        let d = dev();
        d.set_plan(FaultPlan::always(FaultKind::FailWrites));
        assert!(d.write_block(Lba(0), &vec![0u8; 4096]).is_err());
        assert!(d.read_block_vec(Lba(0)).is_ok());
    }

    #[test]
    fn scoped_lbas_limit_the_blast_radius() {
        let d = dev();
        d.set_plan(FaultPlan::always(FaultKind::FailAll).only_lbas([Lba(3)]));
        assert!(d.read_block_vec(Lba(2)).is_ok());
        assert!(d.read_block_vec(Lba(3)).is_err());
    }

    #[test]
    fn fuse_delays_the_failure() {
        let d = dev();
        d.set_plan(FaultPlan::always(FaultKind::FailAll).after_ops(2));
        assert!(d.read_block_vec(Lba(0)).is_ok());
        assert!(d.read_block_vec(Lba(0)).is_ok());
        assert!(d.read_block_vec(Lba(0)).is_err());
    }

    #[test]
    fn corrupt_reads_flip_bits_silently() {
        let d = dev();
        d.write_block(Lba(2), &vec![0u8; 4096]).unwrap();
        d.set_plan(FaultPlan::always(FaultKind::CorruptReads));
        let data = d.read_block_vec(Lba(2)).unwrap();
        assert_eq!(data.iter().filter(|&&b| b != 0).count(), 1);
        // Writes still work under CorruptReads.
        assert!(d.write_block(Lba(2), &vec![1u8; 4096]).is_ok());
    }

    #[test]
    fn corrupt_writes_persist_damage_after_plan_clears() {
        let d = dev();
        d.set_plan(FaultPlan::always(FaultKind::CorruptWrites));
        d.write_block(Lba(5), &vec![0u8; 4096]).unwrap();
        d.set_plan(FaultPlan::healthy());
        let data = d.read_block_vec(Lba(5)).unwrap();
        assert_eq!(data.iter().filter(|&&b| b != 0).count(), 1);
        // Rewriting under a healthy plan heals the block.
        d.write_block(Lba(5), &vec![0u8; 4096]).unwrap();
        assert_eq!(d.read_block_vec(Lba(5)).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn for_ops_bounds_the_fault() {
        let d = dev();
        d.write_block(Lba(0), &vec![0u8; 4096]).unwrap();
        d.set_plan(FaultPlan::always(FaultKind::CorruptWrites).for_ops(1));
        d.write_block(Lba(1), &vec![0u8; 4096]).unwrap();
        d.write_block(Lba(2), &vec![0u8; 4096]).unwrap();
        let corrupted = |lba| {
            d.read_block_vec(lba)
                .unwrap()
                .iter()
                .filter(|&&b| b != 0)
                .count()
        };
        assert_eq!(corrupted(Lba(1)), 1);
        assert_eq!(corrupted(Lba(2)), 0);
        // Reads never burned the limit.
        assert_eq!(corrupted(Lba(0)), 0);
    }
}
