//! Block device abstraction for the PRINS reproduction.
//!
//! Everything in the PRINS paper — the RAID array, the iSCSI target, the
//! PRINS-engine itself, the databases and the filesystem driving the
//! benchmarks — sits on top of an LBA-addressed block device. This crate
//! provides that substrate:
//!
//! * [`BlockDevice`] — the object-safe trait all storage implements,
//! * [`MemDevice`] — a dense in-memory device (the workhorse for tests and
//!   benchmarks),
//! * [`SparseDevice`] — a hash-map backed device for very large address
//!   spaces that are mostly untouched,
//! * [`FileDevice`] — a file-backed device for persistence across runs,
//! * [`InstrumentedDevice`] — a wrapper counting reads/writes/bytes, used to
//!   capture the block-write traces the paper's traffic figures are built
//!   from,
//! * [`FaultDevice`] — a wrapper that injects I/O failures for recovery
//!   tests.
//!
//! All devices use interior mutability and take `&self`, so a single device
//! can be shared behind an [`std::sync::Arc`] between an application thread
//! and the replication thread, mirroring the shared-queue design in §2 of
//! the paper.
//!
//! # Example
//!
//! ```
//! use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
//!
//! # fn main() -> Result<(), prins_block::BlockError> {
//! let dev = MemDevice::new(BlockSize::new(4096)?, 128);
//! let payload = vec![0xabu8; 4096];
//! dev.write_block(Lba(7), &payload)?;
//! let mut back = vec![0u8; 4096];
//! dev.read_block(Lba(7), &mut back)?;
//! assert_eq!(payload, back);
//! # Ok(())
//! # }
//! ```

mod checksum;
mod device;
mod error;
mod fault;
mod file;
mod geometry;
mod instrument;
mod mem;
mod sparse;

pub use checksum::{crc32c, crc32c_append, crc32c_scalar, crc32c_scalar_append};
pub use device::BlockDevice;
pub use error::BlockError;
pub use fault::{FaultDevice, FaultKind, FaultPlan};
pub use file::FileDevice;
pub use geometry::{BlockSize, Geometry, Lba, LbaRange};
pub use instrument::{InstrumentedDevice, IoStats, WriteObserver, WriteRecord};
pub use mem::MemDevice;
pub use sparse::SparseDevice;

/// Convenience alias used by every fallible API in this crate.
pub type Result<T> = std::result::Result<T, BlockError>;
