//! The [`BlockDevice`] trait.

use crate::{Geometry, Lba, Result};

/// An LBA-addressed, fixed-block-size storage device.
///
/// This is the interface between every layer of the reproduction: the
/// RAID array exposes it upward, the iSCSI target serves it over the
/// network, the PRINS engine wraps it, and the page store / filesystem
/// consume it.
///
/// Methods take `&self`; implementations use interior mutability so a
/// device can be shared behind an [`std::sync::Arc`] between the
/// application thread and the replication thread (the paper's
/// PRINS-engine runs as a separate thread next to the iSCSI target
/// thread).
///
/// The trait is object-safe: dynamic dispatch (`Arc<dyn BlockDevice>`) is
/// the common composition style throughout the workspace.
///
/// # Example
///
/// ```
/// use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), prins_block::BlockError> {
/// let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(BlockSize::kb4(), 64));
/// dev.write_block(Lba(0), &vec![1u8; 4096])?;
/// assert_eq!(dev.read_block_vec(Lba(0))?[0], 1);
/// # Ok(())
/// # }
/// ```
pub trait BlockDevice: Send + Sync {
    /// The device's block size and capacity.
    fn geometry(&self) -> Geometry;

    /// Reads the block at `lba` into `buf`.
    ///
    /// # Errors
    ///
    /// * [`BlockError::OutOfRange`](crate::BlockError::OutOfRange) if `lba`
    ///   is past the end of the device.
    /// * [`BlockError::BufferSize`](crate::BlockError::BufferSize) if
    ///   `buf.len()` differs from the block size.
    /// * [`BlockError::Io`](crate::BlockError::Io) /
    ///   [`BlockError::DeviceFailed`](crate::BlockError::DeviceFailed) on
    ///   (possibly injected) hardware failure.
    ///
    /// On error the contents of `buf` are unspecified.
    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` as the new contents of the block at `lba`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`read_block`](Self::read_block).
    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()>;

    /// Forces buffered state to stable storage.
    ///
    /// In-memory devices treat this as a no-op; file-backed devices call
    /// down to the OS.
    ///
    /// # Errors
    ///
    /// Propagates underlying I/O failures.
    fn flush(&self) -> Result<()> {
        Ok(())
    }

    /// Reads the block at `lba` into a freshly allocated buffer.
    ///
    /// Convenience wrapper over [`read_block`](Self::read_block); prefer
    /// the buffer-reuse form on hot paths.
    ///
    /// # Errors
    ///
    /// Same conditions as [`read_block`](Self::read_block).
    fn read_block_vec(&self, lba: Lba) -> Result<Vec<u8>> {
        let mut buf = self.geometry().block_size().zeroed();
        self.read_block(lba, &mut buf)?;
        Ok(buf)
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for &D {
    fn geometry(&self) -> Geometry {
        (**self).geometry()
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        (**self).read_block(lba, buf)
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        (**self).write_block(lba, buf)
    }

    fn flush(&self) -> Result<()> {
        (**self).flush()
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for std::sync::Arc<D> {
    fn geometry(&self) -> Geometry {
        (**self).geometry()
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        (**self).read_block(lba, buf)
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        (**self).write_block(lba, buf)
    }

    fn flush(&self) -> Result<()> {
        (**self).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockSize, MemDevice};
    use std::sync::Arc;

    #[test]
    fn trait_is_object_safe_and_arc_forwards() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new(BlockSize::kb4(), 4));
        assert_eq!(dev.geometry().num_blocks(), 4);
        dev.write_block(Lba(2), &vec![9u8; 4096]).unwrap();
        assert_eq!(dev.read_block_vec(Lba(2)).unwrap()[4095], 9);
        dev.flush().unwrap();
    }

    #[test]
    fn arc_of_concrete_device_is_a_device() {
        fn takes_device<D: BlockDevice>(d: &D) -> u64 {
            d.geometry().num_blocks()
        }
        let dev = Arc::new(MemDevice::new(BlockSize::kb4(), 7));
        assert_eq!(takes_device(&dev), 7);
    }
}
