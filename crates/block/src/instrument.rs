//! Instrumented device wrapper: I/O counters, write tracing, and online
//! write observation.
//!
//! The paper's traffic figures are functions of the *write stream* an
//! application produces: for every block write we need the address, the
//! old contents and the new contents (the PRINS parity is exactly
//! `old ⊕ new`). [`InstrumentedDevice`] captures that stream either as an
//! in-memory trace ([`WriteRecord`]s) or by invoking an observer callback
//! inline, which keeps memory flat during long benchmark runs.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{BlockDevice, Geometry, Lba, Result};

/// Counters accumulated by an [`InstrumentedDevice`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of completed block reads.
    pub reads: u64,
    /// Number of completed block writes.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Writes that left the block bit-identical (the application rewrote
    /// the same contents). PRINS sends almost nothing for these.
    pub unchanged_writes: u64,
}

/// One observed block write: address plus before/after images.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteRecord {
    /// Monotonic sequence number of the write on this device (0-based).
    pub seq: u64,
    /// Address that was written.
    pub lba: Lba,
    /// Block contents before the write.
    pub old: Vec<u8>,
    /// Block contents after the write.
    pub new: Vec<u8>,
}

impl WriteRecord {
    /// Fraction of bytes that differ between the old and new images, in
    /// `[0, 1]`. The paper cites 5–20 % for real applications.
    pub fn change_ratio(&self) -> f64 {
        if self.old.is_empty() {
            return 0.0;
        }
        let changed = self
            .old
            .iter()
            .zip(&self.new)
            .filter(|(a, b)| a != b)
            .count();
        changed as f64 / self.old.len() as f64
    }
}

/// Callback invoked for every write with `(seq, lba, old, new)`.
pub type WriteObserver = Box<dyn FnMut(u64, Lba, &[u8], &[u8]) + Send>;

/// A [`BlockDevice`] wrapper that counts I/O and captures the write
/// stream.
///
/// Reads pass straight through (plus a counter bump). Writes first read
/// the old image from the inner device, then perform the write, then
/// deliver `(old, new)` to the configured sinks. The read-before-write is
/// precisely the read a RAID-4/5 small write performs anyway — PRINS
/// inherits the old image "for free", which is the crux of the paper.
///
/// # Example
///
/// ```
/// use prins_block::{BlockDevice, BlockSize, InstrumentedDevice, Lba, MemDevice};
///
/// # fn main() -> Result<(), prins_block::BlockError> {
/// let dev = InstrumentedDevice::new(MemDevice::new(BlockSize::kb4(), 8));
/// dev.set_tracing(true);
/// dev.write_block(Lba(1), &vec![3u8; 4096])?;
/// let trace = dev.take_trace();
/// assert_eq!(trace.len(), 1);
/// assert!(trace[0].old.iter().all(|&b| b == 0));
/// assert!(trace[0].new.iter().all(|&b| b == 3));
/// # Ok(())
/// # }
/// ```
pub struct InstrumentedDevice<D> {
    inner: D,
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    unchanged_writes: AtomicU64,
    tracing: std::sync::atomic::AtomicBool,
    trace: Mutex<Vec<WriteRecord>>,
    observer: Mutex<Option<WriteObserver>>,
}

impl<D: BlockDevice> InstrumentedDevice<D> {
    /// Wraps `inner` with fresh counters, tracing disabled and no
    /// observer.
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            unchanged_writes: AtomicU64::new(0),
            tracing: std::sync::atomic::AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
            observer: Mutex::new(None),
        }
    }

    /// Current counter values.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            unchanged_writes: self.unchanged_writes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (the trace and observer are left
    /// untouched).
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.unchanged_writes.store(0, Ordering::Relaxed);
    }

    /// Enables or disables in-memory trace capture.
    ///
    /// Tracing stores both images of every write; for long runs prefer
    /// [`set_observer`](Self::set_observer), which lets the caller consume
    /// the stream without accumulation.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Drains and returns the captured trace.
    pub fn take_trace(&self) -> Vec<WriteRecord> {
        std::mem::take(&mut *self.trace.lock())
    }

    /// Installs (or replaces) the online write observer.
    ///
    /// The observer runs inline on the writing thread, after the write has
    /// been applied to the inner device.
    pub fn set_observer(&self, observer: WriteObserver) {
        *self.observer.lock() = Some(observer);
    }

    /// Removes the observer, returning it if one was installed.
    pub fn clear_observer(&self) -> Option<WriteObserver> {
        self.observer.lock().take()
    }

    /// Gives access to the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps the instrumentation, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for InstrumentedDevice<D> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.inner.read_block(lba, buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        // Read the before-image first (the RAID small-write read).
        let mut old = self.geometry().block_size().zeroed();
        self.inner.read_block(lba, &mut old)?;
        self.inner.write_block(lba, buf)?;

        let seq = self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        if old == buf {
            self.unchanged_writes.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(obs) = self.observer.lock().as_mut() {
            obs(seq, lba, &old, buf);
        }
        if self.tracing.load(Ordering::Relaxed) {
            self.trace.lock().push(WriteRecord {
                seq,
                lba,
                old,
                new: buf.to_vec(),
            });
        }
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }
}

impl<D: BlockDevice> std::fmt::Debug for InstrumentedDevice<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstrumentedDevice")
            .field("geometry", &self.geometry())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockSize, MemDevice};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn dev() -> InstrumentedDevice<MemDevice> {
        InstrumentedDevice::new(MemDevice::new(BlockSize::kb4(), 8))
    }

    #[test]
    fn counters_track_reads_and_writes() {
        let d = dev();
        d.write_block(Lba(0), &vec![1u8; 4096]).unwrap();
        d.write_block(Lba(1), &vec![2u8; 4096]).unwrap();
        let _ = d.read_block_vec(Lba(0)).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 2 * 4096);
        assert_eq!(s.bytes_read, 4096);
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
    }

    #[test]
    fn unchanged_write_detection() {
        let d = dev();
        let buf = vec![7u8; 4096];
        d.write_block(Lba(3), &buf).unwrap();
        d.write_block(Lba(3), &buf).unwrap();
        assert_eq!(d.stats().unchanged_writes, 1);
    }

    #[test]
    fn trace_captures_before_and_after_images() {
        let d = dev();
        d.set_tracing(true);
        d.write_block(Lba(2), &vec![9u8; 4096]).unwrap();
        d.write_block(Lba(2), &vec![4u8; 4096]).unwrap();
        let t = d.take_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].seq, 0);
        assert_eq!(t[1].seq, 1);
        assert!(t[1].old.iter().all(|&b| b == 9));
        assert!(t[1].new.iter().all(|&b| b == 4));
        // Trace drained.
        assert!(d.take_trace().is_empty());
    }

    #[test]
    fn observer_sees_every_write_inline() {
        let d = dev();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        d.set_observer(Box::new(move |_seq, _lba, old, new| {
            assert_eq!(old.len(), new.len());
            c2.fetch_add(1, Ordering::Relaxed);
        }));
        for i in 0..5 {
            d.write_block(Lba(i), &vec![i as u8; 4096]).unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), 5);
        assert!(d.clear_observer().is_some());
        assert!(d.clear_observer().is_none());
    }

    #[test]
    fn change_ratio_reflects_modified_fraction() {
        let mut old = vec![0u8; 1000];
        let new_data = {
            let mut n = old.clone();
            n[..100].fill(1);
            n
        };
        old.fill(0);
        let rec = WriteRecord {
            seq: 0,
            lba: Lba(0),
            old,
            new: new_data,
        };
        assert!((rec.change_ratio() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn writes_pass_through_to_inner_device() {
        let d = dev();
        d.write_block(Lba(5), &vec![0x42u8; 4096]).unwrap();
        assert_eq!(
            d.inner().read_block_vec(Lba(5)).unwrap(),
            vec![0x42u8; 4096]
        );
        let inner = d.into_inner();
        assert_eq!(inner.read_block_vec(Lba(5)).unwrap(), vec![0x42u8; 4096]);
    }
}
