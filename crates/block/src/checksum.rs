//! CRC32C (Castagnoli) checksum, implemented from scratch.
//!
//! The integrity layer needs one checksum shared by every crate that
//! touches bytes — the wire envelope in `prins-repl`, the per-block
//! verify-on-apply table in the replica applier, and the scrubber's
//! digest comparison in `prins-cluster`. CRC32C is the natural choice:
//! it is the checksum iSCSI itself mandates for data digests, so the
//! reproduction matches the paper's deployment environment, and its
//! error-detection properties (all single-bit errors, all 2-bit errors
//! within the typical frame sizes here) cover exactly the faults the
//! sim injects.
//!
//! This is the reflected Castagnoli polynomial `0x1EDC6F41`
//! (`0x82F63B78` reversed), computed with the slicing-by-8 technique
//! from const-generated tables: eight bytes are folded into the state
//! per iteration through eight 256-entry tables, so the carry chain
//! runs once per `u64` instead of once per byte. The byte-at-a-time
//! variant ([`crc32c_scalar`]) is kept as the executable reference and
//! as the baseline of the criterion width-sweep series. No hardware
//! instructions, no dependencies.

/// Reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table for byte-at-a-time CRC32C (also slice 0 of
/// the slicing-by-8 tables).
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Slicing-by-8 tables: `TABLE8[k][b]` is the CRC contribution of byte
/// value `b` seen `k` positions before the end of an 8-byte group
/// (`TABLE8[0]` is the plain byte table).
const TABLE8: [[u32; 256]; 8] = build_table8();

const fn build_table8() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = build_table();
    let mut k = 1;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            let prev = tables[k - 1][b];
            tables[k][b] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            b += 1;
        }
        k += 1;
    }
    tables
}

/// CRC32C of `bytes` (initial value all-ones, final XOR all-ones, as in
/// iSCSI/SCTP).
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(0, bytes)
}

/// Continue a CRC32C over more bytes: `crc32c_append(crc32c(a), b)`
/// equals `crc32c(a ++ b)`. Lets callers checksum a frame in pieces
/// (header then body) without concatenating buffers.
pub fn crc32c_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut state = !crc;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        // Fold the state into the first four bytes, then look all eight
        // up in parallel tables — one XOR reduction per 8 bytes.
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ state;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        state = TABLE8[7][(lo & 0xff) as usize]
            ^ TABLE8[6][((lo >> 8) & 0xff) as usize]
            ^ TABLE8[5][((lo >> 16) & 0xff) as usize]
            ^ TABLE8[4][(lo >> 24) as usize]
            ^ TABLE8[3][(hi & 0xff) as usize]
            ^ TABLE8[2][((hi >> 8) & 0xff) as usize]
            ^ TABLE8[1][((hi >> 16) & 0xff) as usize]
            ^ TABLE8[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xff) as usize];
    }
    !state
}

/// Reference byte-at-a-time CRC32C, kept as the executable
/// specification of [`crc32c`] and the scalar baseline of the kernel
/// benchmarks (mirroring `xor_in_place_scalar` in `prins-parity`).
pub fn crc32c_scalar(bytes: &[u8]) -> u32 {
    crc32c_scalar_append(0, bytes)
}

/// Byte-at-a-time form of [`crc32c_append`].
pub fn crc32c_scalar_append(crc: u32, bytes: &[u8]) -> u32 {
    let mut state = !crc;
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xff) as usize];
    }
    !state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical CRC32C test vectors (RFC 3720 appendix / rfc3385 lineage).
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn append_matches_one_shot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for split in [0, 1, 7, 499, 999, 1000] {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32c_append(crc32c(a), b), crc32c(&data));
        }
    }

    #[test]
    fn sliced_kernel_matches_scalar_reference() {
        // Cover the 8-byte groups, the scalar tail, and unaligned
        // continuation states.
        let data: Vec<u8> = (0u8..=255).cycle().take(613).collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 512, 613] {
            assert_eq!(
                crc32c(&data[..len]),
                crc32c_scalar(&data[..len]),
                "len={len}"
            );
        }
        for split in [0usize, 1, 3, 8, 100, 613] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32c_append(crc32c_scalar(a), b),
                crc32c_scalar_append(crc32c(a), b),
                "split={split}"
            );
        }
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let data = b"prins end-to-end integrity".to_vec();
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
