//! Block-addressing primitives: block sizes, logical block addresses and
//! LBA ranges.

use std::fmt;

use crate::{BlockError, Result};

/// Size of one block in bytes.
///
/// The paper evaluates block sizes from 4 KB to 64 KB; real SCSI devices go
/// down to 512-byte sectors. We accept any power of two in
/// `[512, 1 MiB]` so tests can exercise odd corners without allowing
/// nonsensical geometry.
///
/// # Example
///
/// ```
/// use prins_block::BlockSize;
///
/// # fn main() -> Result<(), prins_block::BlockError> {
/// let bs = BlockSize::new(8192)?;
/// assert_eq!(bs.bytes(), 8192);
/// assert!(BlockSize::new(1000).is_err()); // not a power of two
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockSize(u32);

impl BlockSize {
    /// Smallest supported block size (one legacy disk sector).
    pub const MIN: u32 = 512;
    /// Largest supported block size.
    pub const MAX: u32 = 1 << 20;

    /// Creates a block size, validating that `bytes` is a power of two in
    /// `[512, 1 MiB]`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::InvalidBlockSize`] when `bytes` is outside the
    /// supported range or not a power of two.
    pub fn new(bytes: u32) -> Result<Self> {
        if !(Self::MIN..=Self::MAX).contains(&bytes) || !bytes.is_power_of_two() {
            return Err(BlockError::InvalidBlockSize { bytes });
        }
        Ok(Self(bytes))
    }

    /// The canonical 4 KB block size.
    pub const fn kb4() -> Self {
        Self(4 * 1024)
    }

    /// The paper's headline 8 KB block size ("typical in commercial
    /// applications").
    pub const fn kb8() -> Self {
        Self(8 * 1024)
    }

    /// 16 KB blocks.
    pub const fn kb16() -> Self {
        Self(16 * 1024)
    }

    /// 32 KB blocks.
    pub const fn kb32() -> Self {
        Self(32 * 1024)
    }

    /// The paper's largest evaluated block size, 64 KB.
    pub const fn kb64() -> Self {
        Self(64 * 1024)
    }

    /// Size in bytes.
    pub const fn bytes(self) -> usize {
        self.0 as usize
    }

    /// Size in bytes as `u32` (handy for wire formats).
    pub const fn bytes_u32(self) -> u32 {
        self.0
    }

    /// log2 of the size; exact because the size is a power of two.
    pub const fn log2(self) -> u32 {
        self.0.trailing_zeros()
    }

    /// Allocates a zero-filled buffer of exactly one block.
    pub fn zeroed(self) -> Vec<u8> {
        vec![0u8; self.bytes()]
    }

    /// The five block sizes swept by the paper's traffic figures
    /// (Figures 4–7): 4, 8, 16, 32 and 64 KB.
    pub const fn paper_sweep() -> [BlockSize; 5] {
        [
            Self::kb4(),
            Self::kb8(),
            Self::kb16(),
            Self::kb32(),
            Self::kb64(),
        ]
    }
}

impl fmt::Debug for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockSize({})", self.0)
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1024) {
            write!(f, "{}KB", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl TryFrom<u32> for BlockSize {
    type Error = BlockError;

    fn try_from(bytes: u32) -> Result<Self> {
        Self::new(bytes)
    }
}

impl From<BlockSize> for u32 {
    fn from(bs: BlockSize) -> u32 {
        bs.0
    }
}

/// A logical block address: the index of a block on a device.
///
/// Plain `u64` indices are easy to confuse with byte offsets or stripe
/// numbers; the newtype keeps those spaces statically apart
/// (API guideline C-NEWTYPE).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lba(pub u64);

impl Lba {
    /// Block address zero.
    pub const ZERO: Lba = Lba(0);

    /// The raw index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Address of the block `n` places after this one.
    ///
    /// # Panics
    ///
    /// Panics on `u64` overflow, which would indicate a corrupted address
    /// computation rather than a recoverable condition.
    pub fn offset(self, n: u64) -> Lba {
        Lba(self.0.checked_add(n).expect("LBA overflow"))
    }

    /// Byte offset of this block on a device with the given block size.
    pub fn byte_offset(self, bs: BlockSize) -> u64 {
        self.0 << bs.log2()
    }
}

impl fmt::Debug for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lba({})", self.0)
    }
}

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Lba {
    fn from(v: u64) -> Self {
        Lba(v)
    }
}

impl From<Lba> for u64 {
    fn from(l: Lba) -> u64 {
        l.0
    }
}

/// A half-open range of logical block addresses `[start, end)`.
///
/// # Example
///
/// ```
/// use prins_block::{Lba, LbaRange};
///
/// let r = LbaRange::new(Lba(10), Lba(13));
/// assert_eq!(r.len(), 3);
/// assert!(r.contains(Lba(12)));
/// assert!(!r.contains(Lba(13)));
/// let collected: Vec<_> = r.iter().collect();
/// assert_eq!(collected, vec![Lba(10), Lba(11), Lba(12)]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LbaRange {
    start: Lba,
    end: Lba,
}

impl LbaRange {
    /// Creates the range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: Lba, end: Lba) -> Self {
        assert!(start <= end, "LbaRange start {start} after end {end}");
        Self { start, end }
    }

    /// Range covering `count` blocks starting at `start`.
    pub fn with_len(start: Lba, count: u64) -> Self {
        Self::new(start, start.offset(count))
    }

    /// First address in the range.
    pub const fn start(self) -> Lba {
        self.start
    }

    /// One past the last address in the range.
    pub const fn end(self) -> Lba {
        self.end
    }

    /// Number of blocks in the range.
    pub const fn len(self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Whether the range is empty.
    pub const fn is_empty(self) -> bool {
        self.start.0 == self.end.0
    }

    /// Whether `lba` falls inside the range.
    pub fn contains(self, lba: Lba) -> bool {
        self.start <= lba && lba < self.end
    }

    /// Iterates over every address in the range.
    pub fn iter(self) -> impl Iterator<Item = Lba> {
        (self.start.0..self.end.0).map(Lba)
    }
}

/// The shape of a block device: its block size and capacity in blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Geometry {
    block_size: BlockSize,
    num_blocks: u64,
}

impl Geometry {
    /// Creates a geometry of `num_blocks` blocks of `block_size` each.
    pub fn new(block_size: BlockSize, num_blocks: u64) -> Self {
        Self {
            block_size,
            num_blocks,
        }
    }

    /// Block size of the device.
    pub const fn block_size(self) -> BlockSize {
        self.block_size
    }

    /// Capacity in blocks.
    pub const fn num_blocks(self) -> u64 {
        self.num_blocks
    }

    /// Capacity in bytes.
    pub const fn capacity_bytes(self) -> u64 {
        self.num_blocks * self.block_size.bytes() as u64
    }

    /// The full addressable range `[0, num_blocks)`.
    pub fn range(self) -> LbaRange {
        LbaRange::with_len(Lba::ZERO, self.num_blocks)
    }

    /// Validates that `lba` is addressable on this geometry.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::OutOfRange`] when `lba` is past the end of the
    /// device.
    pub fn check_lba(self, lba: Lba) -> Result<()> {
        if lba.0 >= self.num_blocks {
            return Err(BlockError::OutOfRange {
                lba,
                num_blocks: self.num_blocks,
            });
        }
        Ok(())
    }

    /// Validates that `buf` is exactly one block long.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::BufferSize`] on any length mismatch.
    pub fn check_buf(self, buf: &[u8]) -> Result<()> {
        if buf.len() != self.block_size.bytes() {
            return Err(BlockError::BufferSize {
                expected: self.block_size.bytes(),
                actual: buf.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x {} blocks", self.block_size, self.num_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_accepts_powers_of_two_in_range() {
        for shift in 9..=20 {
            let bytes = 1u32 << shift;
            assert_eq!(BlockSize::new(bytes).unwrap().bytes(), bytes as usize);
        }
    }

    #[test]
    fn block_size_rejects_out_of_range_and_non_powers() {
        assert!(BlockSize::new(256).is_err());
        assert!(BlockSize::new(0).is_err());
        assert!(BlockSize::new(3 * 1024).is_err());
        assert!(BlockSize::new(2 << 20).is_err());
    }

    #[test]
    fn block_size_display_uses_kb() {
        assert_eq!(BlockSize::kb8().to_string(), "8KB");
        assert_eq!(BlockSize::new(512).unwrap().to_string(), "512B");
    }

    #[test]
    fn paper_sweep_is_sorted_and_distinct() {
        let sweep = BlockSize::paper_sweep();
        for w in sweep.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(sweep[1], BlockSize::kb8());
        assert_eq!(sweep[4], BlockSize::kb64());
    }

    #[test]
    fn lba_byte_offset() {
        assert_eq!(Lba(3).byte_offset(BlockSize::kb4()), 3 * 4096);
        assert_eq!(Lba::ZERO.byte_offset(BlockSize::kb64()), 0);
    }

    #[test]
    #[should_panic(expected = "LBA overflow")]
    fn lba_offset_overflow_panics() {
        let _ = Lba(u64::MAX).offset(1);
    }

    #[test]
    fn range_iteration_and_membership() {
        let r = LbaRange::with_len(Lba(5), 4);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!(r.contains(Lba(5)));
        assert!(r.contains(Lba(8)));
        assert!(!r.contains(Lba(9)));
        assert_eq!(r.iter().count(), 4);
        assert!(LbaRange::new(Lba(2), Lba(2)).is_empty());
    }

    #[test]
    #[should_panic(expected = "start")]
    fn inverted_range_panics() {
        let _ = LbaRange::new(Lba(4), Lba(1));
    }

    #[test]
    fn geometry_checks() {
        let g = Geometry::new(BlockSize::kb4(), 10);
        assert_eq!(g.capacity_bytes(), 10 * 4096);
        assert!(g.check_lba(Lba(9)).is_ok());
        assert!(matches!(
            g.check_lba(Lba(10)),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(g.check_buf(&vec![0u8; 4096]).is_ok());
        assert!(matches!(
            g.check_buf(&[0u8; 100]),
            Err(BlockError::BufferSize { .. })
        ));
        assert_eq!(g.range().len(), 10);
    }
}
