//! Sparse in-memory block device for large, mostly-empty address spaces.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::{BlockDevice, BlockSize, Geometry, Lba, Result};

/// A block device that stores only blocks that have been written.
///
/// Unwritten blocks read back as zeros, exactly like a fresh disk. This
/// lets tests address multi-gigabyte geometries (e.g. a replica of a large
/// database volume) while only paying memory for the touched working set.
///
/// # Example
///
/// ```
/// use prins_block::{BlockDevice, BlockSize, Lba, SparseDevice};
///
/// # fn main() -> Result<(), prins_block::BlockError> {
/// // 1 TB address space, near-zero memory.
/// let dev = SparseDevice::new(BlockSize::kb8(), 1 << 27);
/// dev.write_block(Lba(123_456_789), &vec![5u8; 8192])?;
/// assert_eq!(dev.allocated_blocks(), 1);
/// assert!(dev.read_block_vec(Lba(0))?.iter().all(|&b| b == 0));
/// # Ok(())
/// # }
/// ```
pub struct SparseDevice {
    geometry: Geometry,
    blocks: RwLock<HashMap<u64, Vec<u8>>>,
}

impl SparseDevice {
    /// Creates an all-zero sparse device.
    pub fn new(block_size: BlockSize, num_blocks: u64) -> Self {
        Self {
            geometry: Geometry::new(block_size, num_blocks),
            blocks: RwLock::new(HashMap::new()),
        }
    }

    /// Number of blocks that have been materialized by writes.
    pub fn allocated_blocks(&self) -> usize {
        self.blocks.read().len()
    }

    /// Drops any block whose contents are all zeros, reclaiming memory.
    ///
    /// Returns the number of blocks reclaimed. Semantically a no-op:
    /// reads observe identical data before and after.
    pub fn compact(&self) -> usize {
        let mut blocks = self.blocks.write();
        let before = blocks.len();
        blocks.retain(|_, v| v.iter().any(|&b| b != 0));
        before - blocks.len()
    }
}

impl BlockDevice for SparseDevice {
    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.geometry.check_lba(lba)?;
        self.geometry.check_buf(buf)?;
        match self.blocks.read().get(&lba.index()) {
            Some(data) => buf.copy_from_slice(data),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        self.geometry.check_lba(lba)?;
        self.geometry.check_buf(buf)?;
        self.blocks.write().insert(lba.index(), buf.to_vec());
        Ok(())
    }
}

impl std::fmt::Debug for SparseDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseDevice")
            .field("geometry", &self.geometry)
            .field("allocated_blocks", &self.allocated_blocks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_blocks_are_zero() {
        let dev = SparseDevice::new(BlockSize::kb4(), 1000);
        assert!(dev
            .read_block_vec(Lba(999))
            .unwrap()
            .iter()
            .all(|&b| b == 0));
        assert_eq!(dev.allocated_blocks(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let dev = SparseDevice::new(BlockSize::kb4(), 1 << 30);
        let block = vec![0x5au8; 4096];
        dev.write_block(Lba(1 << 29), &block).unwrap();
        assert_eq!(dev.read_block_vec(Lba(1 << 29)).unwrap(), block);
        assert_eq!(dev.allocated_blocks(), 1);
    }

    #[test]
    fn compact_reclaims_zero_blocks_without_changing_reads() {
        let dev = SparseDevice::new(BlockSize::kb4(), 16);
        dev.write_block(Lba(1), &vec![0u8; 4096]).unwrap();
        dev.write_block(Lba(2), &vec![1u8; 4096]).unwrap();
        assert_eq!(dev.allocated_blocks(), 2);
        assert_eq!(dev.compact(), 1);
        assert_eq!(dev.allocated_blocks(), 1);
        assert!(dev.read_block_vec(Lba(1)).unwrap().iter().all(|&b| b == 0));
        assert_eq!(dev.read_block_vec(Lba(2)).unwrap(), vec![1u8; 4096]);
    }

    #[test]
    fn bounds_are_enforced() {
        let dev = SparseDevice::new(BlockSize::kb4(), 4);
        assert!(dev.write_block(Lba(4), &vec![0u8; 4096]).is_err());
    }
}
