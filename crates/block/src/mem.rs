//! Dense in-memory block device.

use parking_lot::RwLock;

use crate::{BlockDevice, BlockSize, Geometry, Lba, Result};

/// A block device backed by one contiguous in-memory allocation.
///
/// This is the default substrate for tests and benchmarks: the PRINS
/// traffic results depend on block *contents*, not on storage latency, so
/// RAM-backed blocks reproduce the paper's measurements faithfully while
/// keeping experiments fast.
///
/// Concurrent readers proceed in parallel; writers take the exclusive
/// lock. Lock granularity is the whole device, which is adequate because
/// every workload in this reproduction is driven single-threaded per
/// device.
///
/// # Example
///
/// ```
/// use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
///
/// # fn main() -> Result<(), prins_block::BlockError> {
/// let dev = MemDevice::new(BlockSize::kb8(), 32);
/// assert_eq!(dev.geometry().capacity_bytes(), 32 * 8192);
/// // Fresh devices read back as zeros.
/// assert!(dev.read_block_vec(Lba(31))?.iter().all(|&b| b == 0));
/// # Ok(())
/// # }
/// ```
pub struct MemDevice {
    geometry: Geometry,
    data: RwLock<Vec<u8>>,
}

impl MemDevice {
    /// Creates a zero-filled device of `num_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if the total capacity overflows `usize` (only possible on a
    /// 32-bit host with absurd parameters).
    pub fn new(block_size: BlockSize, num_blocks: u64) -> Self {
        let geometry = Geometry::new(block_size, num_blocks);
        let capacity =
            usize::try_from(geometry.capacity_bytes()).expect("MemDevice capacity exceeds usize");
        Self {
            geometry,
            data: RwLock::new(vec![0u8; capacity]),
        }
    }

    /// Creates a device initialized from `contents`, padding the final
    /// block with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
    ///
    /// # fn main() -> Result<(), prins_block::BlockError> {
    /// let dev = MemDevice::from_contents(BlockSize::new(512)?, b"hello");
    /// assert_eq!(dev.geometry().num_blocks(), 1);
    /// assert_eq!(&dev.read_block_vec(Lba(0))?[..5], b"hello");
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_contents(block_size: BlockSize, contents: &[u8]) -> Self {
        let bs = block_size.bytes();
        let num_blocks = contents.len().div_ceil(bs).max(1) as u64;
        let dev = Self::new(block_size, num_blocks);
        dev.data.write()[..contents.len()].copy_from_slice(contents);
        dev
    }

    /// Takes a full snapshot of the device contents.
    ///
    /// Used by consistency checks that compare a primary and a replica
    /// byte-for-byte.
    pub fn snapshot(&self) -> Vec<u8> {
        self.data.read().clone()
    }

    /// Returns whether this device and `other` hold identical bytes.
    pub fn contents_eq(&self, other: &MemDevice) -> bool {
        *self.data.read() == *other.data.read()
    }
}

impl BlockDevice for MemDevice {
    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.geometry.check_lba(lba)?;
        self.geometry.check_buf(buf)?;
        let off = lba.byte_offset(self.geometry.block_size()) as usize;
        let data = self.data.read();
        buf.copy_from_slice(&data[off..off + buf.len()]);
        Ok(())
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        self.geometry.check_lba(lba)?;
        self.geometry.check_buf(buf)?;
        let off = lba.byte_offset(self.geometry.block_size()) as usize;
        let mut data = self.data.write();
        data[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }
}

impl std::fmt::Debug for MemDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDevice")
            .field("geometry", &self.geometry)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockError;

    #[test]
    fn round_trip_all_blocks() {
        let dev = MemDevice::new(BlockSize::new(512).unwrap(), 8);
        for i in 0..8u64 {
            let block = vec![i as u8; 512];
            dev.write_block(Lba(i), &block).unwrap();
        }
        for i in 0..8u64 {
            assert_eq!(dev.read_block_vec(Lba(i)).unwrap(), vec![i as u8; 512]);
        }
    }

    #[test]
    fn rejects_bad_lba_and_buffer() {
        let dev = MemDevice::new(BlockSize::kb4(), 2);
        let mut buf = vec![0u8; 4096];
        assert!(matches!(
            dev.read_block(Lba(2), &mut buf),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            dev.write_block(Lba(0), &[0u8; 10]),
            Err(BlockError::BufferSize { .. })
        ));
    }

    #[test]
    fn from_contents_pads_last_block() {
        let dev = MemDevice::from_contents(BlockSize::new(512).unwrap(), &[7u8; 700]);
        assert_eq!(dev.geometry().num_blocks(), 2);
        let b1 = dev.read_block_vec(Lba(1)).unwrap();
        assert_eq!(&b1[..188], &[7u8; 188][..]);
        assert!(b1[188..].iter().all(|&b| b == 0));
    }

    #[test]
    fn snapshot_and_contents_eq() {
        let a = MemDevice::new(BlockSize::kb4(), 2);
        let b = MemDevice::new(BlockSize::kb4(), 2);
        assert!(a.contents_eq(&b));
        a.write_block(Lba(1), &vec![1u8; 4096]).unwrap();
        assert!(!a.contents_eq(&b));
        assert_eq!(a.snapshot().len(), 2 * 4096);
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_deadlock() {
        use std::sync::Arc;
        let dev = Arc::new(MemDevice::new(BlockSize::kb4(), 16));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let dev = Arc::clone(&dev);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let lba = Lba((t * 4 + i % 4) % 16);
                    dev.write_block(lba, &vec![t as u8; 4096]).unwrap();
                    let _ = dev.read_block_vec(lba).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
