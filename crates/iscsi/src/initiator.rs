//! The iSCSI-lite initiator: client-side session logic.

use prins_net::Transport;

use crate::{Bhs, Cdb, IscsiError, Opcode, Pdu, ScsiStatus};

/// An initiator session bound to one transport connection.
///
/// Created by [`Initiator::login`], which performs the login exchange and
/// discovers the target's capacity. All I/O methods are synchronous: they
/// issue a command and block until the matching response arrives.
///
/// See the [crate docs](crate) for a complete initiator/target example.
pub struct Initiator<T> {
    transport: T,
    itt: u32,
    cmd_sn: u32,
    exp_stat_sn: u32,
    num_blocks: u64,
    block_size: u32,
    max_data_segment: usize,
    logged_in: bool,
}

impl<T: Transport> Initiator<T> {
    /// Performs the login exchange and capacity discovery.
    ///
    /// # Errors
    ///
    /// * [`IscsiError::LoginRejected`] if the target refuses the session,
    /// * [`IscsiError::Net`] / [`IscsiError::Protocol`] on transport or
    ///   framing problems.
    pub fn login(transport: T, initiator_name: &str) -> Result<Self, IscsiError> {
        let mut ini = Self {
            transport,
            itt: 0,
            cmd_sn: 1,
            exp_stat_sn: 0,
            num_blocks: 0,
            block_size: 0,
            max_data_segment: 64 * 1024,
            logged_in: false,
        };
        let text = format!(
            "InitiatorName={initiator_name}\0SessionType=Normal\0MaxRecvDataSegmentLength={}\0",
            ini.max_data_segment
        );
        let mut pdu = Pdu::with_data(Opcode::LoginRequest, text.into_bytes());
        pdu.bhs.itt = ini.next_itt();
        ini.send(&pdu)?;
        let resp = ini.recv()?;
        if resp.bhs.opcode != Opcode::LoginResponse {
            return Err(IscsiError::Protocol(format!(
                "expected login response, got {:?}",
                resp.bhs.opcode
            )));
        }
        let text = String::from_utf8_lossy(&resp.data);
        if resp.bhs.flags & 0x01 != 0 {
            return Err(IscsiError::LoginRejected(text.into_owned()));
        }
        // Honour the target's MaxRecvDataSegmentLength if smaller.
        for kv in text.split('\0') {
            if let Some(v) = kv.strip_prefix("MaxRecvDataSegmentLength=") {
                if let Ok(v) = v.parse::<usize>() {
                    ini.max_data_segment = ini.max_data_segment.min(v);
                }
            }
        }
        ini.logged_in = true;
        let (blocks, bs) = ini.read_capacity()?;
        ini.num_blocks = blocks;
        ini.block_size = bs;
        Ok(ini)
    }

    /// Target capacity in blocks, discovered at login.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Target block size in bytes, discovered at login.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// The underlying transport (e.g. to inspect its traffic meter).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn next_itt(&mut self) -> u32 {
        self.itt = self.itt.wrapping_add(1);
        self.itt
    }

    fn send(&self, pdu: &Pdu) -> Result<(), IscsiError> {
        self.transport.send(&pdu.to_bytes())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Pdu, IscsiError> {
        let pdu = Pdu::from_bytes(&self.transport.recv()?)?;
        self.exp_stat_sn = pdu.bhs.exp_stat_sn.wrapping_add(1);
        Ok(pdu)
    }

    fn command_bhs(&mut self, cdb: Cdb, edtl: u32) -> Bhs {
        let mut bhs = Bhs::new(Opcode::ScsiCommand);
        bhs.itt = self.next_itt();
        bhs.cmd_sn = self.cmd_sn;
        self.cmd_sn = self.cmd_sn.wrapping_add(1);
        bhs.exp_stat_sn = self.exp_stat_sn;
        bhs.dword5 = edtl;
        bhs.cdb = cdb.to_bytes();
        bhs
    }

    fn expect_response(&mut self, itt: u32) -> Result<(ScsiStatus, Vec<u8>), IscsiError> {
        let resp = self.recv()?;
        if resp.bhs.opcode != Opcode::ScsiResponse {
            return Err(IscsiError::Protocol(format!(
                "expected scsi response, got {:?}",
                resp.bhs.opcode
            )));
        }
        if resp.bhs.itt != itt {
            return Err(IscsiError::Protocol(format!(
                "response itt {} does not match command itt {itt}",
                resp.bhs.itt
            )));
        }
        let status = ScsiStatus::from_wire(resp.bhs.flags & 0x3f)?;
        Ok((status, resp.data))
    }

    fn check_good(status: ScsiStatus, sense: Vec<u8>) -> Result<(), IscsiError> {
        match status {
            ScsiStatus::Good => Ok(()),
            ScsiStatus::CheckCondition => Err(IscsiError::CheckCondition(
                String::from_utf8_lossy(&sense).into_owned(),
            )),
            ScsiStatus::Busy => Err(IscsiError::CheckCondition("target busy".into())),
        }
    }

    fn ensure_logged_in(&self) -> Result<(), IscsiError> {
        if self.logged_in {
            Ok(())
        } else {
            Err(IscsiError::NotLoggedIn)
        }
    }

    /// Issues `READ CAPACITY(10)`, returning `(num_blocks, block_size)`.
    ///
    /// # Errors
    ///
    /// [`IscsiError::CheckCondition`] if the target reports an error;
    /// transport and protocol errors otherwise.
    pub fn read_capacity(&mut self) -> Result<(u64, u32), IscsiError> {
        self.ensure_logged_in()?;
        let bhs = self.command_bhs(Cdb::ReadCapacity10, 8);
        let itt = bhs.itt;
        self.send(&Pdu {
            bhs,
            data: Vec::new(),
        })?;
        let data_in = self.recv()?;
        if data_in.bhs.opcode != Opcode::DataIn || data_in.data.len() != 8 {
            return Err(IscsiError::Protocol(
                "malformed read-capacity data-in".into(),
            ));
        }
        let max_lba = u32::from_be_bytes(data_in.data[0..4].try_into().unwrap());
        let bs = u32::from_be_bytes(data_in.data[4..8].try_into().unwrap());
        let (status, sense) = self.expect_response(itt)?;
        Self::check_good(status, sense)?;
        Ok((max_lba as u64 + 1, bs))
    }

    /// Issues `TEST UNIT READY`.
    ///
    /// # Errors
    ///
    /// [`IscsiError::CheckCondition`] if the unit is not ready.
    pub fn test_unit_ready(&mut self) -> Result<(), IscsiError> {
        self.ensure_logged_in()?;
        let bhs = self.command_bhs(Cdb::TestUnitReady, 0);
        let itt = bhs.itt;
        self.send(&Pdu {
            bhs,
            data: Vec::new(),
        })?;
        let (status, sense) = self.expect_response(itt)?;
        Self::check_good(status, sense)
    }

    /// Reads `count` blocks starting at `lba`.
    ///
    /// The target may deliver the payload as several Data-In PDUs
    /// (bounded by the negotiated segment size); this method reassembles
    /// them in offset order.
    ///
    /// # Errors
    ///
    /// [`IscsiError::CheckCondition`] for out-of-range reads; transport
    /// and protocol errors otherwise.
    pub fn read_blocks(&mut self, lba: u64, count: u16) -> Result<Vec<u8>, IscsiError> {
        self.ensure_logged_in()?;
        let edtl = count as u32 * self.block_size;
        let bhs = self.command_bhs(
            Cdb::Read10 {
                lba: lba as u32,
                blocks: count,
            },
            edtl,
        );
        let itt = bhs.itt;
        self.send(&Pdu {
            bhs,
            data: Vec::new(),
        })?;
        let mut payload = vec![0u8; edtl as usize];
        loop {
            let pdu = self.recv()?;
            match pdu.bhs.opcode {
                Opcode::DataIn => {
                    if pdu.bhs.itt != itt {
                        return Err(IscsiError::Protocol("data-in for wrong task".into()));
                    }
                    let off = pdu.bhs.dword5 as usize;
                    if off + pdu.data.len() > payload.len() {
                        return Err(IscsiError::Protocol(
                            "data-in segment exceeds transfer length".into(),
                        ));
                    }
                    payload[off..off + pdu.data.len()].copy_from_slice(&pdu.data);
                    if pdu.bhs.is_final() {
                        let (status, sense) = self.expect_response(itt)?;
                        Self::check_good(status, sense)?;
                        return Ok(payload);
                    }
                }
                Opcode::ScsiResponse => {
                    // Error response without data phase.
                    let status = ScsiStatus::from_wire(pdu.bhs.flags & 0x3f)?;
                    Self::check_good(status, pdu.data)?;
                    return Err(IscsiError::Protocol(
                        "good status without final data-in".into(),
                    ));
                }
                other => {
                    return Err(IscsiError::Protocol(format!(
                        "unexpected {other:?} during read"
                    )))
                }
            }
        }
    }

    /// Writes `data` (a whole number of blocks) starting at `lba`, using
    /// immediate data.
    ///
    /// # Errors
    ///
    /// [`IscsiError::Protocol`] if `data` is not a whole number of
    /// blocks; [`IscsiError::CheckCondition`] for out-of-range writes.
    pub fn write_blocks(&mut self, lba: u64, data: &[u8]) -> Result<(), IscsiError> {
        self.ensure_logged_in()?;
        let bs = self.block_size as usize;
        if bs == 0 || !data.len().is_multiple_of(bs) || data.is_empty() {
            return Err(IscsiError::Protocol(format!(
                "write of {} bytes is not a positive multiple of the {bs}-byte block size",
                data.len()
            )));
        }
        let blocks = (data.len() / bs) as u16;
        let bhs = self.command_bhs(
            Cdb::Write10 {
                lba: lba as u32,
                blocks,
            },
            data.len() as u32,
        );
        let itt = bhs.itt;
        self.send(&Pdu {
            bhs,
            data: data.to_vec(),
        })?;
        let (status, sense) = self.expect_response(itt)?;
        Self::check_good(status, sense)
    }

    /// Writes `data` starting at `lba` using the solicited-data (R2T)
    /// flow: the command goes out without payload, the target answers
    /// with Ready-To-Transfer grants, and the data follows as Data-Out
    /// PDUs bounded by the negotiated segment size.
    ///
    /// Functionally identical to [`write_blocks`](Self::write_blocks);
    /// exists because real initiators must speak both flows (immediate
    /// data is a negotiable optimization in RFC 3720).
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_blocks`](Self::write_blocks).
    pub fn write_blocks_r2t(&mut self, lba: u64, data: &[u8]) -> Result<(), IscsiError> {
        self.ensure_logged_in()?;
        let bs = self.block_size as usize;
        if bs == 0 || !data.len().is_multiple_of(bs) || data.is_empty() {
            return Err(IscsiError::Protocol(format!(
                "write of {} bytes is not a positive multiple of the {bs}-byte block size",
                data.len()
            )));
        }
        let blocks = (data.len() / bs) as u16;
        let bhs = self.command_bhs(
            Cdb::Write10 {
                lba: lba as u32,
                blocks,
            },
            data.len() as u32,
        );
        let itt = bhs.itt;
        // Unsolicited-data-absent command: empty data segment.
        self.send(&Pdu {
            bhs,
            data: Vec::new(),
        })?;
        // Serve R2T grants until the target switches to the response.
        loop {
            let pdu = self.recv()?;
            match pdu.bhs.opcode {
                Opcode::R2t => {
                    if pdu.bhs.itt != itt {
                        return Err(IscsiError::Protocol("r2t for wrong task".into()));
                    }
                    let offset = pdu.bhs.dword5 as usize;
                    let length = pdu.bhs.cmd_sn as usize; // desired transfer length
                    if offset + length > data.len() {
                        return Err(IscsiError::Protocol(format!(
                            "r2t grant [{offset}, {}) exceeds data length {}",
                            offset + length,
                            data.len()
                        )));
                    }
                    let mut out =
                        Pdu::with_data(Opcode::DataOut, data[offset..offset + length].to_vec());
                    out.bhs.itt = itt;
                    out.bhs.dword5 = offset as u32;
                    out.bhs.flags = 0x80;
                    self.send(&out)?;
                }
                Opcode::ScsiResponse => {
                    if pdu.bhs.itt != itt {
                        return Err(IscsiError::Protocol("response for wrong task".into()));
                    }
                    let status = ScsiStatus::from_wire(pdu.bhs.flags & 0x3f)?;
                    return Self::check_good(status, pdu.data);
                }
                other => {
                    return Err(IscsiError::Protocol(format!(
                        "unexpected {other:?} during r2t write"
                    )))
                }
            }
        }
    }

    /// Issues `SYNCHRONIZE CACHE(10)` (maps to a device flush).
    ///
    /// # Errors
    ///
    /// Propagates target-side flush failures as check conditions.
    pub fn synchronize_cache(&mut self) -> Result<(), IscsiError> {
        self.ensure_logged_in()?;
        let bhs = self.command_bhs(Cdb::SynchronizeCache10, 0);
        let itt = bhs.itt;
        self.send(&Pdu {
            bhs,
            data: Vec::new(),
        })?;
        let (status, sense) = self.expect_response(itt)?;
        Self::check_good(status, sense)
    }

    /// Sends a NOP-Out ping carrying `payload` and returns the echoed
    /// payload from the NOP-In.
    ///
    /// # Errors
    ///
    /// Transport and protocol errors.
    pub fn nop(&mut self, payload: &[u8]) -> Result<Vec<u8>, IscsiError> {
        self.ensure_logged_in()?;
        let mut pdu = Pdu::with_data(Opcode::NopOut, payload.to_vec());
        pdu.bhs.itt = self.next_itt();
        let itt = pdu.bhs.itt;
        self.send(&pdu)?;
        let resp = self.recv()?;
        if resp.bhs.opcode != Opcode::NopIn || resp.bhs.itt != itt {
            return Err(IscsiError::Protocol("mismatched nop-in".into()));
        }
        Ok(resp.data)
    }

    /// Closes the session with a logout exchange.
    ///
    /// # Errors
    ///
    /// Transport and protocol errors; the session is unusable afterwards
    /// either way.
    pub fn logout(mut self) -> Result<(), IscsiError> {
        self.ensure_logged_in()?;
        let mut pdu = Pdu::new(Opcode::LogoutRequest);
        pdu.bhs.itt = self.next_itt();
        self.send(&pdu)?;
        let resp = self.recv()?;
        if resp.bhs.opcode != Opcode::LogoutResponse {
            return Err(IscsiError::Protocol(format!(
                "expected logout response, got {:?}",
                resp.bhs.opcode
            )));
        }
        self.logged_in = false;
        Ok(())
    }
}

impl<T> std::fmt::Debug for Initiator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Initiator")
            .field("logged_in", &self.logged_in)
            .field("num_blocks", &self.num_blocks)
            .field("block_size", &self.block_size)
            .finish_non_exhaustive()
    }
}
