//! SCSI Command Descriptor Blocks for the block-storage command subset.

use crate::IscsiError;

/// The SCSI commands the target serves, with their SBC-2 wire encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cdb {
    /// `TEST UNIT READY` (opcode 0x00).
    TestUnitReady,
    /// `READ(10)` (opcode 0x28): read `blocks` blocks starting at `lba`.
    Read10 {
        /// Starting logical block address.
        lba: u32,
        /// Number of blocks to transfer.
        blocks: u16,
    },
    /// `WRITE(10)` (opcode 0x2A): write `blocks` blocks starting at
    /// `lba`.
    Write10 {
        /// Starting logical block address.
        lba: u32,
        /// Number of blocks to transfer.
        blocks: u16,
    },
    /// `READ CAPACITY(10)` (opcode 0x25).
    ReadCapacity10,
    /// `SYNCHRONIZE CACHE(10)` (opcode 0x35).
    SynchronizeCache10,
}

impl Cdb {
    /// Encodes into the 16-byte CDB field of a SCSI Command PDU.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        match *self {
            Cdb::TestUnitReady => {}
            Cdb::Read10 { lba, blocks } => {
                b[0] = 0x28;
                b[2..6].copy_from_slice(&lba.to_be_bytes());
                b[7..9].copy_from_slice(&blocks.to_be_bytes());
            }
            Cdb::Write10 { lba, blocks } => {
                b[0] = 0x2a;
                b[2..6].copy_from_slice(&lba.to_be_bytes());
                b[7..9].copy_from_slice(&blocks.to_be_bytes());
            }
            Cdb::ReadCapacity10 => b[0] = 0x25,
            Cdb::SynchronizeCache10 => b[0] = 0x35,
        }
        b
    }

    /// Decodes a CDB field.
    ///
    /// # Errors
    ///
    /// Returns [`IscsiError::Protocol`] for operation codes outside the
    /// supported subset.
    pub fn from_bytes(b: &[u8; 16]) -> Result<Self, IscsiError> {
        Ok(match b[0] {
            0x00 => Cdb::TestUnitReady,
            0x25 => Cdb::ReadCapacity10,
            0x28 => Cdb::Read10 {
                lba: u32::from_be_bytes(b[2..6].try_into().unwrap()),
                blocks: u16::from_be_bytes(b[7..9].try_into().unwrap()),
            },
            0x2a => Cdb::Write10 {
                lba: u32::from_be_bytes(b[2..6].try_into().unwrap()),
                blocks: u16::from_be_bytes(b[7..9].try_into().unwrap()),
            },
            0x35 => Cdb::SynchronizeCache10,
            other => {
                return Err(IscsiError::Protocol(format!(
                    "unsupported scsi opcode 0x{other:02x}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn read10_layout_matches_sbc() {
        let b = Cdb::Read10 {
            lba: 0x0102_0304,
            blocks: 0x0506,
        }
        .to_bytes();
        assert_eq!(b[0], 0x28);
        assert_eq!(&b[2..6], &[1, 2, 3, 4]);
        assert_eq!(&b[7..9], &[5, 6]);
    }

    #[test]
    fn all_variants_roundtrip() {
        for cdb in [
            Cdb::TestUnitReady,
            Cdb::Read10 { lba: 7, blocks: 3 },
            Cdb::Write10 {
                lba: u32::MAX,
                blocks: u16::MAX,
            },
            Cdb::ReadCapacity10,
            Cdb::SynchronizeCache10,
        ] {
            assert_eq!(Cdb::from_bytes(&cdb.to_bytes()).unwrap(), cdb);
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut b = [0u8; 16];
        b[0] = 0x12; // INQUIRY — deliberately unsupported
        assert!(Cdb::from_bytes(&b).is_err());
    }

    proptest! {
        #[test]
        fn prop_cdb_decode_never_panics(bytes in any::<[u8; 16]>()) {
            let _ = Cdb::from_bytes(&bytes);
        }

        #[test]
        fn prop_rw_roundtrip(lba in any::<u32>(), blocks in any::<u16>(), write in any::<bool>()) {
            let cdb = if write {
                Cdb::Write10 { lba, blocks }
            } else {
                Cdb::Read10 { lba, blocks }
            };
            prop_assert_eq!(Cdb::from_bytes(&cdb.to_bytes()).unwrap(), cdb);
        }
    }
}
