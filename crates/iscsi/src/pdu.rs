//! PDU and Basic Header Segment encoding.

use crate::IscsiError;

/// Length of the Basic Header Segment in bytes, per RFC 3720.
pub const BHS_LEN: usize = 48;

/// Maximum data segment length we ever accept (24-bit field upper bound).
const MAX_DATA_SEGMENT: usize = (1 << 24) - 1;

/// iSCSI opcodes (the subset this implementation speaks).
///
/// Values match RFC 3720 §10.2.1.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Initiator → target keep-alive / ping.
    NopOut = 0x00,
    /// SCSI command carrying a CDB.
    ScsiCommand = 0x01,
    /// Login request (leading PDU of a session).
    LoginRequest = 0x03,
    /// SCSI Data-Out (write payload; we use immediate data instead, but
    /// the opcode is decoded for completeness).
    DataOut = 0x05,
    /// Logout request.
    LogoutRequest = 0x06,
    /// Target → initiator NOP.
    NopIn = 0x20,
    /// SCSI response with status.
    ScsiResponse = 0x21,
    /// Login response.
    LoginResponse = 0x23,
    /// SCSI Data-In (read payload).
    DataIn = 0x25,
    /// Logout response.
    LogoutResponse = 0x26,
    /// Ready-to-transfer (R2T) — decoded but never emitted (immediate
    /// data mode).
    R2t = 0x31,
}

impl Opcode {
    /// Parses a wire opcode byte (immediate-delivery bit 0x40 is
    /// tolerated and masked off).
    ///
    /// # Errors
    ///
    /// Returns [`IscsiError::Protocol`] for opcodes outside the supported
    /// subset.
    pub fn from_wire(byte: u8) -> Result<Self, IscsiError> {
        Ok(match byte & 0x3f {
            0x00 => Opcode::NopOut,
            0x01 => Opcode::ScsiCommand,
            0x03 => Opcode::LoginRequest,
            0x05 => Opcode::DataOut,
            0x06 => Opcode::LogoutRequest,
            0x20 => Opcode::NopIn,
            0x21 => Opcode::ScsiResponse,
            0x23 => Opcode::LoginResponse,
            0x25 => Opcode::DataIn,
            0x26 => Opcode::LogoutResponse,
            0x31 => Opcode::R2t,
            other => {
                return Err(IscsiError::Protocol(format!(
                    "unsupported opcode 0x{other:02x}"
                )))
            }
        })
    }
}

/// SCSI status codes carried in a [`Opcode::ScsiResponse`] PDU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ScsiStatus {
    /// Command completed successfully.
    Good = 0x00,
    /// Command failed; sense data describes why.
    CheckCondition = 0x02,
    /// Device busy.
    Busy = 0x08,
}

impl ScsiStatus {
    /// Parses a wire status byte.
    ///
    /// # Errors
    ///
    /// Returns [`IscsiError::Protocol`] for statuses outside the
    /// supported subset.
    pub fn from_wire(byte: u8) -> Result<Self, IscsiError> {
        Ok(match byte {
            0x00 => ScsiStatus::Good,
            0x02 => ScsiStatus::CheckCondition,
            0x08 => ScsiStatus::Busy,
            other => {
                return Err(IscsiError::Protocol(format!(
                    "unsupported scsi status 0x{other:02x}"
                )))
            }
        })
    }
}

/// The 48-byte Basic Header Segment.
///
/// Field layout (matching RFC 3720's SCSI Command PDU, reused for all
/// opcodes we speak):
///
/// ```text
/// byte  0      opcode
/// byte  1      flags (bit7 = Final, bit6 = opcode-specific, low bits status)
/// bytes 2-3    reserved
/// byte  4      TotalAHSLength (always 0 here)
/// bytes 5-7    DataSegmentLength (24-bit big-endian)
/// bytes 8-15   LUN (big-endian)
/// bytes 16-19  Initiator Task Tag
/// bytes 20-23  Expected Data Transfer Length / Target Transfer Tag / offset
/// bytes 24-27  CmdSN / ExpCmdSN / DataSN
/// bytes 28-31  ExpStatSN / StatSN
/// bytes 32-47  CDB (SCSI Command) or reserved
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bhs {
    /// PDU opcode.
    pub opcode: Opcode,
    /// Flags byte; bit 0x80 marks the final PDU of a sequence.
    pub flags: u8,
    /// Logical unit number.
    pub lun: u64,
    /// Initiator task tag correlating requests and responses.
    pub itt: u32,
    /// Expected data transfer length, buffer offset, or transfer tag
    /// depending on the opcode.
    pub dword5: u32,
    /// Command sequence number (or DataSN for Data-In).
    pub cmd_sn: u32,
    /// Expected status sequence number (or StatSN on responses).
    pub exp_stat_sn: u32,
    /// Embedded CDB for SCSI Command PDUs; zeroed otherwise.
    pub cdb: [u8; 16],
}

impl Bhs {
    /// Creates a header with all sequence fields zeroed.
    pub fn new(opcode: Opcode) -> Self {
        Self {
            opcode,
            flags: 0x80,
            lun: 0,
            itt: 0,
            dword5: 0,
            cmd_sn: 0,
            exp_stat_sn: 0,
            cdb: [0; 16],
        }
    }

    /// Whether the final bit is set.
    pub fn is_final(&self) -> bool {
        self.flags & 0x80 != 0
    }
}

/// One iSCSI PDU: header plus data segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pdu {
    /// The Basic Header Segment.
    pub bhs: Bhs,
    /// The data segment (possibly empty).
    pub data: Vec<u8>,
}

impl Pdu {
    /// Creates a PDU with an empty data segment.
    pub fn new(opcode: Opcode) -> Self {
        Self {
            bhs: Bhs::new(opcode),
            data: Vec::new(),
        }
    }

    /// Creates a PDU carrying `data`.
    pub fn with_data(opcode: Opcode, data: Vec<u8>) -> Self {
        Self {
            bhs: Bhs::new(opcode),
            data,
        }
    }

    /// Serializes to wire bytes (48-byte BHS + data segment).
    ///
    /// # Panics
    ///
    /// Panics if the data segment exceeds the 24-bit length field — the
    /// initiator/target never construct such PDUs.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(
            self.data.len() <= MAX_DATA_SEGMENT,
            "data segment exceeds 24-bit length"
        );
        let mut out = vec![0u8; BHS_LEN + self.data.len()];
        out[0] = self.bhs.opcode as u8;
        out[1] = self.bhs.flags;
        // bytes 2-4 reserved / TotalAHSLength = 0
        let dlen = self.data.len() as u32;
        out[5] = (dlen >> 16) as u8;
        out[6] = (dlen >> 8) as u8;
        out[7] = dlen as u8;
        out[8..16].copy_from_slice(&self.bhs.lun.to_be_bytes());
        out[16..20].copy_from_slice(&self.bhs.itt.to_be_bytes());
        out[20..24].copy_from_slice(&self.bhs.dword5.to_be_bytes());
        out[24..28].copy_from_slice(&self.bhs.cmd_sn.to_be_bytes());
        out[28..32].copy_from_slice(&self.bhs.exp_stat_sn.to_be_bytes());
        out[32..48].copy_from_slice(&self.bhs.cdb);
        out[BHS_LEN..].copy_from_slice(&self.data);
        out
    }

    /// Parses wire bytes produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`IscsiError::Protocol`] when the buffer is shorter than a
    /// BHS, the declared data segment length disagrees with the buffer,
    /// or the opcode is unsupported.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IscsiError> {
        if bytes.len() < BHS_LEN {
            return Err(IscsiError::Protocol(format!(
                "pdu of {} bytes is shorter than the 48-byte BHS",
                bytes.len()
            )));
        }
        let opcode = Opcode::from_wire(bytes[0])?;
        let dlen = ((bytes[5] as usize) << 16) | ((bytes[6] as usize) << 8) | bytes[7] as usize;
        if bytes.len() != BHS_LEN + dlen {
            return Err(IscsiError::Protocol(format!(
                "data segment length {dlen} disagrees with pdu size {}",
                bytes.len()
            )));
        }
        let mut cdb = [0u8; 16];
        cdb.copy_from_slice(&bytes[32..48]);
        Ok(Self {
            bhs: Bhs {
                opcode,
                flags: bytes[1],
                lun: u64::from_be_bytes(bytes[8..16].try_into().unwrap()),
                itt: u32::from_be_bytes(bytes[16..20].try_into().unwrap()),
                dword5: u32::from_be_bytes(bytes[20..24].try_into().unwrap()),
                cmd_sn: u32::from_be_bytes(bytes[24..28].try_into().unwrap()),
                exp_stat_sn: u32::from_be_bytes(bytes[28..32].try_into().unwrap()),
                cdb,
            },
            data: bytes[BHS_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_all_fields() {
        let mut pdu = Pdu::with_data(Opcode::ScsiCommand, vec![1, 2, 3, 4]);
        pdu.bhs.flags = 0xc1;
        pdu.bhs.lun = 0x0123_4567_89ab_cdef;
        pdu.bhs.itt = 0xdead_beef;
        pdu.bhs.dword5 = 42;
        pdu.bhs.cmd_sn = 7;
        pdu.bhs.exp_stat_sn = 9;
        pdu.bhs.cdb = [0x2a; 16];
        let bytes = pdu.to_bytes();
        assert_eq!(bytes.len(), BHS_LEN + 4);
        assert_eq!(Pdu::from_bytes(&bytes).unwrap(), pdu);
    }

    #[test]
    fn empty_data_segment_roundtrips() {
        let pdu = Pdu::new(Opcode::NopOut);
        let bytes = pdu.to_bytes();
        assert_eq!(bytes.len(), BHS_LEN);
        assert_eq!(Pdu::from_bytes(&bytes).unwrap(), pdu);
    }

    #[test]
    fn short_buffer_is_rejected() {
        assert!(Pdu::from_bytes(&[0u8; 47]).is_err());
        assert!(Pdu::from_bytes(&[]).is_err());
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let mut bytes = Pdu::with_data(Opcode::NopOut, vec![0; 10]).to_bytes();
        bytes.pop();
        assert!(Pdu::from_bytes(&bytes).is_err());
        bytes.extend_from_slice(&[0, 0]);
        assert!(Pdu::from_bytes(&bytes).is_err());
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let mut bytes = Pdu::new(Opcode::NopOut).to_bytes();
        bytes[0] = 0x3e;
        assert!(matches!(
            Pdu::from_bytes(&bytes),
            Err(IscsiError::Protocol(_))
        ));
    }

    #[test]
    fn immediate_bit_is_masked() {
        let mut bytes = Pdu::new(Opcode::ScsiCommand).to_bytes();
        bytes[0] = 0x41; // immediate-delivery SCSI command
        assert_eq!(
            Pdu::from_bytes(&bytes).unwrap().bhs.opcode,
            Opcode::ScsiCommand
        );
    }

    #[test]
    fn final_flag_detection() {
        let mut bhs = Bhs::new(Opcode::DataIn);
        assert!(bhs.is_final());
        bhs.flags = 0;
        assert!(!bhs.is_final());
    }

    #[test]
    fn status_parse() {
        assert_eq!(ScsiStatus::from_wire(0).unwrap(), ScsiStatus::Good);
        assert_eq!(
            ScsiStatus::from_wire(2).unwrap(),
            ScsiStatus::CheckCondition
        );
        assert!(ScsiStatus::from_wire(0x55).is_err());
    }

    proptest! {
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Arbitrary wire garbage must produce Err, never a panic.
            let _ = Pdu::from_bytes(&bytes);
        }

        #[test]
        fn prop_pdu_roundtrip(flags in any::<u8>(), lun in any::<u64>(), itt in any::<u32>(),
                              dword5 in any::<u32>(), cmd_sn in any::<u32>(),
                              exp in any::<u32>(), cdb in any::<[u8; 16]>(),
                              data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut pdu = Pdu::with_data(Opcode::ScsiResponse, data);
            pdu.bhs.flags = flags;
            pdu.bhs.lun = lun;
            pdu.bhs.itt = itt;
            pdu.bhs.dword5 = dword5;
            pdu.bhs.cmd_sn = cmd_sn;
            pdu.bhs.exp_stat_sn = exp;
            pdu.bhs.cdb = cdb;
            let back = Pdu::from_bytes(&pdu.to_bytes()).unwrap();
            prop_assert_eq!(back, pdu);
        }
    }
}
