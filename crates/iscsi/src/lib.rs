//! iSCSI-lite: a compact implementation of the iSCSI (RFC 3720) wire
//! protocol shape used by the PRINS testbed.
//!
//! The paper implements the PRINS-engine *inside an iSCSI target* and
//! uses a second initiator/target pair between PRINS engines. This crate
//! reproduces the protocol substrate:
//!
//! * [`Pdu`] / [`Bhs`] — 48-byte Basic Header Segment encoding with the
//!   real field layout (opcode, flags, data-segment length, LUN,
//!   initiator task tag, CmdSN/StatSN, embedded 16-byte CDB),
//! * [`Cdb`] — the SCSI block commands the storage path needs:
//!   `READ(10)`, `WRITE(10)`, `READ CAPACITY(10)`, `TEST UNIT READY`,
//!   `SYNCHRONIZE CACHE(10)`,
//! * [`Initiator`] — login, block read/write (with Data-In segmentation),
//!   capacity discovery, NOP ping and logout over any
//!   [`Transport`](prins_net::Transport),
//! * [`Target`] — serves any [`BlockDevice`](prins_block::BlockDevice) to
//!   one initiator connection.
//!
//! Simplifications versus full RFC 3720, documented here deliberately:
//! single connection per session, immediate data on writes (no R2T flow
//! control), no digests or AHS, and login negotiates only the keys the
//! experiments need (`MaxRecvDataSegmentLength`). None of these affect
//! the traffic accounting the paper's figures rest on.
//!
//! # Example
//!
//! ```
//! use prins_block::{BlockSize, MemDevice};
//! use prins_iscsi::{Initiator, Target};
//! use prins_net::{channel_pair, LinkModel};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), prins_iscsi::IscsiError> {
//! let (client_side, server_side) = channel_pair(LinkModel::gigabit_lan());
//! let device = Arc::new(MemDevice::new(BlockSize::kb4(), 64));
//! let handle = Target::spawn(device, server_side);
//!
//! let mut ini = Initiator::login(client_side, "iqn.2006-04.edu.uri:prins")?;
//! ini.write_blocks(3, &vec![0xabu8; 4096])?;
//! assert_eq!(ini.read_blocks(3, 1)?[..4], [0xab, 0xab, 0xab, 0xab]);
//! ini.logout()?;
//! handle.join().expect("target thread");
//! # Ok(())
//! # }
//! ```

mod cdb;
mod error;
mod initiator;
mod pdu;
mod target;

pub use cdb::Cdb;
pub use error::IscsiError;
pub use initiator::Initiator;
pub use pdu::{Bhs, Opcode, Pdu, ScsiStatus, BHS_LEN};
pub use target::Target;
