//! The iSCSI-lite target: serves a block device to one initiator.

use std::sync::Arc;
use std::thread::JoinHandle;

use prins_block::{BlockDevice, Lba};
use prins_net::{NetError, Transport};

use crate::{Cdb, IscsiError, Opcode, Pdu, ScsiStatus};

/// A target bound to one [`BlockDevice`].
///
/// The paper's PRINS-engine lives inside such a target; here the target
/// is generic over the device, so serving a plain volume, a RAID array
/// or a PRINS-wrapped engine is the same code path.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Target {
    device: Arc<dyn BlockDevice>,
    max_data_segment: usize,
    stat_sn: u32,
}

impl Target {
    /// Creates a target serving `device` with the default 64 KB data
    /// segment limit.
    pub fn new(device: Arc<dyn BlockDevice>) -> Self {
        Self {
            device,
            max_data_segment: 64 * 1024,
            stat_sn: 1,
        }
    }

    /// Overrides the maximum Data-In segment size (clamped to ≥ 512).
    pub fn with_max_data_segment(mut self, bytes: usize) -> Self {
        self.max_data_segment = bytes.max(512);
        self
    }

    /// Serves one connection until logout or disconnect.
    ///
    /// # Errors
    ///
    /// Protocol violations and unexpected transport failures are
    /// returned; a clean logout or an orderly peer disconnect returns
    /// `Ok(())`.
    pub fn serve<T: Transport>(mut self, transport: T) -> Result<(), IscsiError> {
        // Login phase.
        let first = match transport.recv() {
            Ok(bytes) => Pdu::from_bytes(&bytes)?,
            Err(NetError::Disconnected) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        if first.bhs.opcode != Opcode::LoginRequest {
            return Err(IscsiError::Protocol(format!(
                "first pdu must be a login request, got {:?}",
                first.bhs.opcode
            )));
        }
        let mut resp = Pdu::with_data(
            Opcode::LoginResponse,
            format!(
                "TargetPortalGroupTag=1\0MaxRecvDataSegmentLength={}\0",
                self.max_data_segment
            )
            .into_bytes(),
        );
        resp.bhs.itt = first.bhs.itt;
        resp.bhs.flags = 0x80; // final, transition to full-feature phase
        resp.bhs.exp_stat_sn = self.next_stat_sn();
        transport.send(&resp.to_bytes())?;

        // Full-feature phase.
        loop {
            let pdu = match transport.recv() {
                Ok(bytes) => Pdu::from_bytes(&bytes)?,
                Err(NetError::Disconnected) => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            match pdu.bhs.opcode {
                Opcode::ScsiCommand => self.handle_command(&transport, &pdu)?,
                Opcode::NopOut => {
                    let mut nop = Pdu::with_data(Opcode::NopIn, pdu.data.clone());
                    nop.bhs.itt = pdu.bhs.itt;
                    nop.bhs.exp_stat_sn = self.next_stat_sn();
                    transport.send(&nop.to_bytes())?;
                }
                Opcode::LogoutRequest => {
                    let mut out = Pdu::new(Opcode::LogoutResponse);
                    out.bhs.itt = pdu.bhs.itt;
                    out.bhs.exp_stat_sn = self.next_stat_sn();
                    transport.send(&out.to_bytes())?;
                    return Ok(());
                }
                other => {
                    return Err(IscsiError::Protocol(format!(
                        "unexpected {other:?} in full-feature phase"
                    )))
                }
            }
        }
    }

    /// Spawns [`serve`](Self::serve) on a dedicated thread (the paper's
    /// "iSCSI target thread"), returning its handle. Serve errors are
    /// reported by the thread's `Result`.
    pub fn spawn<T: Transport + 'static>(
        device: Arc<dyn BlockDevice>,
        transport: T,
    ) -> JoinHandle<Result<(), IscsiError>> {
        let target = Target::new(device);
        std::thread::spawn(move || target.serve(transport))
    }

    fn next_stat_sn(&mut self) -> u32 {
        let sn = self.stat_sn;
        self.stat_sn = self.stat_sn.wrapping_add(1);
        sn
    }

    fn send_status<T: Transport>(
        &mut self,
        transport: &T,
        itt: u32,
        status: ScsiStatus,
        sense: &str,
    ) -> Result<(), IscsiError> {
        let mut resp = Pdu::with_data(Opcode::ScsiResponse, sense.as_bytes().to_vec());
        resp.bhs.itt = itt;
        resp.bhs.flags = 0x80 | status as u8;
        resp.bhs.exp_stat_sn = self.next_stat_sn();
        transport.send(&resp.to_bytes())?;
        Ok(())
    }

    /// Runs the R2T flow for a write of `total` bytes: grants transfers
    /// bounded by the data segment limit and reassembles the Data-Out
    /// PDUs. Returns `None` after sending an error status itself.
    fn solicit_data<T: Transport>(
        &mut self,
        transport: &T,
        itt: u32,
        total: usize,
    ) -> Result<Option<Vec<u8>>, IscsiError> {
        let mut data = vec![0u8; total];
        let mut offset = 0usize;
        while offset < total {
            let length = (total - offset).min(self.max_data_segment);
            let mut r2t = Pdu::new(Opcode::R2t);
            r2t.bhs.itt = itt;
            r2t.bhs.dword5 = offset as u32;
            r2t.bhs.cmd_sn = length as u32; // desired data transfer length
            transport.send(&r2t.to_bytes())?;

            let out = Pdu::from_bytes(&transport.recv()?)?;
            if out.bhs.opcode != Opcode::DataOut
                || out.bhs.itt != itt
                || out.bhs.dword5 as usize != offset
                || out.data.len() != length
            {
                self.send_status(
                    transport,
                    itt,
                    ScsiStatus::CheckCondition,
                    "data-out did not match the outstanding r2t",
                )?;
                return Ok(None);
            }
            data[offset..offset + length].copy_from_slice(&out.data);
            offset += length;
        }
        Ok(Some(data))
    }

    fn handle_command<T: Transport>(&mut self, transport: &T, pdu: &Pdu) -> Result<(), IscsiError> {
        let itt = pdu.bhs.itt;
        let cdb = match Cdb::from_bytes(&pdu.bhs.cdb) {
            Ok(cdb) => cdb,
            Err(e) => {
                return self.send_status(
                    transport,
                    itt,
                    ScsiStatus::CheckCondition,
                    &format!("invalid cdb: {e}"),
                )
            }
        };
        let geometry = self.device.geometry();
        let bs = geometry.block_size().bytes();
        match cdb {
            Cdb::TestUnitReady => self.send_status(transport, itt, ScsiStatus::Good, ""),
            Cdb::ReadCapacity10 => {
                let max_lba = geometry.num_blocks().saturating_sub(1) as u32;
                let mut data = Vec::with_capacity(8);
                data.extend_from_slice(&max_lba.to_be_bytes());
                data.extend_from_slice(&(bs as u32).to_be_bytes());
                let mut din = Pdu::with_data(Opcode::DataIn, data);
                din.bhs.itt = itt;
                din.bhs.flags = 0x80;
                transport.send(&din.to_bytes())?;
                self.send_status(transport, itt, ScsiStatus::Good, "")
            }
            Cdb::SynchronizeCache10 => match self.device.flush() {
                Ok(()) => self.send_status(transport, itt, ScsiStatus::Good, ""),
                Err(e) => self.send_status(
                    transport,
                    itt,
                    ScsiStatus::CheckCondition,
                    &format!("flush failed: {e}"),
                ),
            },
            Cdb::Read10 { lba, blocks } => {
                let total = blocks as usize * bs;
                let mut payload = vec![0u8; total];
                for i in 0..blocks as u64 {
                    if let Err(e) = self.device.read_block(
                        Lba(lba as u64 + i),
                        &mut payload[i as usize * bs..(i as usize + 1) * bs],
                    ) {
                        return self.send_status(
                            transport,
                            itt,
                            ScsiStatus::CheckCondition,
                            &format!("read failed: {e}"),
                        );
                    }
                }
                // Deliver as Data-In segments of at most max_data_segment.
                let mut off = 0usize;
                while off < payload.len() || (payload.is_empty() && off == 0) {
                    let end = (off + self.max_data_segment).min(payload.len());
                    let is_final = end == payload.len();
                    let mut din = Pdu::with_data(Opcode::DataIn, payload[off..end].to_vec());
                    din.bhs.itt = itt;
                    din.bhs.dword5 = off as u32;
                    din.bhs.flags = if is_final { 0x80 } else { 0x00 };
                    transport.send(&din.to_bytes())?;
                    off = end;
                    if is_final {
                        break;
                    }
                }
                self.send_status(transport, itt, ScsiStatus::Good, "")
            }
            Cdb::Write10 { lba, blocks } => {
                let total = blocks as usize * bs;
                let data = if pdu.data.len() == total {
                    // Immediate data: the whole payload rode along.
                    pdu.data.clone()
                } else if pdu.data.is_empty() && total > 0 {
                    // Solicited data: grant R2Ts and collect Data-Out.
                    match self.solicit_data(transport, itt, total)? {
                        Some(data) => data,
                        None => return Ok(()), // status already sent
                    }
                } else {
                    return self.send_status(
                        transport,
                        itt,
                        ScsiStatus::CheckCondition,
                        &format!(
                            "write carries {} bytes, expected {total} for {blocks} blocks",
                            pdu.data.len()
                        ),
                    );
                };
                for i in 0..blocks as usize {
                    if let Err(e) = self
                        .device
                        .write_block(Lba(lba as u64 + i as u64), &data[i * bs..(i + 1) * bs])
                    {
                        return self.send_status(
                            transport,
                            itt,
                            ScsiStatus::CheckCondition,
                            &format!("write failed: {e}"),
                        );
                    }
                }
                self.send_status(transport, itt, ScsiStatus::Good, "")
            }
        }
    }
}

impl std::fmt::Debug for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Target")
            .field("geometry", &self.device.geometry())
            .field("max_data_segment", &self.max_data_segment)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Initiator;
    use prins_block::{BlockSize, MemDevice};
    use prins_net::{channel_pair, LinkModel, TcpTransport};

    fn setup(
        blocks: u64,
    ) -> (
        Initiator<prins_net::ChannelTransport>,
        JoinHandle<Result<(), IscsiError>>,
        Arc<MemDevice>,
    ) {
        let (client, server) = channel_pair(LinkModel::gigabit_lan());
        let device = Arc::new(MemDevice::new(BlockSize::kb4(), blocks));
        let handle = Target::spawn(Arc::clone(&device) as Arc<dyn BlockDevice>, server);
        let ini = Initiator::login(client, "iqn.2006-04.edu.uri.test").unwrap();
        (ini, handle, device)
    }

    #[test]
    fn login_discovers_capacity() {
        let (ini, handle, _dev) = setup(64);
        assert_eq!(ini.num_blocks(), 64);
        assert_eq!(ini.block_size(), 4096);
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn write_then_read_round_trips_through_the_wire() {
        let (mut ini, handle, device) = setup(64);
        let data = vec![0x77u8; 4096 * 3];
        ini.write_blocks(10, &data).unwrap();
        assert_eq!(ini.read_blocks(10, 3).unwrap(), data);
        // The device actually holds the data.
        assert_eq!(device.read_block_vec(Lba(11)).unwrap(), vec![0x77u8; 4096]);
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn large_read_is_segmented_into_multiple_data_in_pdus() {
        let (client, server) = channel_pair(LinkModel::gigabit_lan());
        let device = Arc::new(MemDevice::new(BlockSize::kb4(), 64));
        let target =
            Target::new(Arc::clone(&device) as Arc<dyn BlockDevice>).with_max_data_segment(4096);
        let handle = std::thread::spawn(move || target.serve(server));
        let mut ini = Initiator::login(client, "iqn.test").unwrap();
        let data: Vec<u8> = (0..4096 * 8).map(|i| (i % 251) as u8).collect();
        ini.write_blocks(0, &data).unwrap();
        assert_eq!(ini.read_blocks(0, 8).unwrap(), data);
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn r2t_write_round_trips() {
        let (mut ini, handle, device) = setup(64);
        let data: Vec<u8> = (0..4096 * 2).map(|i| (i % 253) as u8).collect();
        ini.write_blocks_r2t(7, &data).unwrap();
        assert_eq!(ini.read_blocks(7, 2).unwrap(), data);
        assert_eq!(device.read_block_vec(Lba(8)).unwrap(), data[4096..]);
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn r2t_write_is_segmented_by_the_targets_limit() {
        let (client, server) = channel_pair(LinkModel::gigabit_lan());
        let device = Arc::new(MemDevice::new(BlockSize::kb4(), 64));
        let target =
            Target::new(Arc::clone(&device) as Arc<dyn BlockDevice>).with_max_data_segment(2048); // 4 grants per 8 KB write
        let handle = std::thread::spawn(move || target.serve(server));
        let mut ini = Initiator::login(client, "iqn.r2t.test").unwrap();
        let data = vec![0x3cu8; 4096 * 2];
        ini.write_blocks_r2t(0, &data).unwrap();
        assert_eq!(ini.read_blocks(0, 2).unwrap(), data);
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn r2t_out_of_range_still_reports_check_condition() {
        let (mut ini, handle, _dev) = setup(4);
        let err = ini.write_blocks_r2t(3, &vec![0u8; 4096 * 2]).unwrap_err();
        assert!(matches!(err, IscsiError::CheckCondition(_)), "{err}");
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn out_of_range_io_returns_check_condition() {
        let (mut ini, handle, _dev) = setup(8);
        let err = ini.read_blocks(8, 1).unwrap_err();
        assert!(matches!(err, IscsiError::CheckCondition(_)), "{err}");
        let err = ini.write_blocks(7, &vec![0u8; 4096 * 2]).unwrap_err();
        assert!(matches!(err, IscsiError::CheckCondition(_)), "{err}");
        // Session still usable after an error.
        ini.write_blocks(7, &vec![1u8; 4096]).unwrap();
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn nop_echoes_payload() {
        let (mut ini, handle, _dev) = setup(8);
        assert_eq!(ini.nop(b"ping?").unwrap(), b"ping?");
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn test_unit_ready_and_sync_cache() {
        let (mut ini, handle, _dev) = setup(8);
        ini.test_unit_ready().unwrap();
        ini.synchronize_cache().unwrap();
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn misaligned_write_is_rejected_client_side() {
        let (mut ini, handle, _dev) = setup(8);
        assert!(matches!(
            ini.write_blocks(0, &[0u8; 100]),
            Err(IscsiError::Protocol(_))
        ));
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn target_rejects_commands_before_login() {
        let (client, server) = channel_pair(LinkModel::gigabit_lan());
        let device = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let handle = Target::spawn(device, server);
        // Send a SCSI command as the first PDU.
        use prins_net::Transport as _;
        let mut pdu = Pdu::new(Opcode::ScsiCommand);
        pdu.bhs.cdb = Cdb::TestUnitReady.to_bytes();
        client.send(&pdu.to_bytes()).unwrap();
        let result = handle.join().unwrap();
        assert!(matches!(result, Err(IscsiError::Protocol(_))));
    }

    #[test]
    fn disconnect_without_logout_is_a_clean_exit() {
        let (client, server) = channel_pair(LinkModel::gigabit_lan());
        let device = Arc::new(MemDevice::new(BlockSize::kb4(), 8));
        let handle = Target::spawn(device, server);
        let ini = Initiator::login(client, "iqn.test").unwrap();
        drop(ini); // connection drops without logout
        assert!(handle.join().unwrap().is_ok());
    }

    #[test]
    fn works_over_real_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let device = Arc::new(MemDevice::new(BlockSize::kb4(), 32));
        let dev2 = Arc::clone(&device);
        let handle = std::thread::spawn(move || {
            let server = TcpTransport::accept(&listener, LinkModel::gigabit_lan()).unwrap();
            Target::spawn(dev2 as Arc<dyn BlockDevice>, server)
                .join()
                .unwrap()
        });
        let client = TcpTransport::connect(addr, LinkModel::gigabit_lan()).unwrap();
        let mut ini = Initiator::login(client, "iqn.tcp.test").unwrap();
        let data = vec![0x99u8; 4096];
        ini.write_blocks(5, &data).unwrap();
        assert_eq!(ini.read_blocks(5, 1).unwrap(), data);
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn traffic_meter_counts_pdu_bytes() {
        let (mut ini, handle, _dev) = setup(16);
        let before = ini.transport().meter().payload_bytes_sent();
        ini.write_blocks(0, &vec![0u8; 4096]).unwrap();
        let after = ini.transport().meter().payload_bytes_sent();
        // One write: 48-byte BHS + 4096 data.
        assert_eq!(after - before, 48 + 4096);
        ini.logout().unwrap();
        handle.join().unwrap().unwrap();
    }
}
