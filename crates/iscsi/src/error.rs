//! Error type for the iSCSI-lite layer.

use std::fmt;

use prins_net::NetError;

/// Errors from the initiator or target.
#[derive(Debug)]
#[non_exhaustive]
pub enum IscsiError {
    /// Transport-level failure.
    Net(NetError),
    /// A malformed or unexpected PDU.
    Protocol(String),
    /// The target answered with CHECK CONDITION; the string is the sense
    /// text it supplied.
    CheckCondition(String),
    /// An operation was attempted before a successful login.
    NotLoggedIn,
    /// The target rejected the login.
    LoginRejected(String),
}

impl fmt::Display for IscsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IscsiError::Net(e) => write!(f, "transport failure: {e}"),
            IscsiError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            IscsiError::CheckCondition(sense) => write!(f, "check condition: {sense}"),
            IscsiError::NotLoggedIn => write!(f, "session is not logged in"),
            IscsiError::LoginRejected(msg) => write!(f, "login rejected: {msg}"),
        }
    }
}

impl std::error::Error for IscsiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IscsiError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for IscsiError {
    fn from(e: NetError) -> Self {
        IscsiError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error as _;
        let e = IscsiError::from(NetError::Timeout);
        assert!(e.source().is_some());
        assert!(IscsiError::NotLoggedIn.to_string().contains("logged in"));
        assert!(IscsiError::CheckCondition("lba out of range".into())
            .to_string()
            .contains("lba out of range"));
    }
}
