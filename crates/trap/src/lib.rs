//! TRAP: Timely Recovery to Any Point-in-time — the continuous data
//! protection extension the paper's conclusion advertises ("available
//! online … with additional functionalities such as continuous data
//! protection (CDP) and timely recovery to any point-in-time (TRAP)",
//! elaborated in the authors' ISCA'06 paper, reference [42]).
//!
//! The same parity `P' = A_new ⊕ A_old` that PRINS replicates is, kept
//! in a log, a *time machine*: XORing the current block with the logged
//! parities newer than time `t` (in any order — XOR commutes) undoes
//! those writes and yields the block's contents at `t`. Because each
//! log entry is a sparse-encoded parity, the log is a fraction of the
//! size of a full-block journal.
//!
//! * [`TrapDevice`] — a [`BlockDevice`] wrapper that appends every
//!   write's encoded parity to a [`TrapLog`],
//! * [`TrapLog`] — the per-LBA parity chains with sequence numbers,
//! * [`TrapLog::recover_block`] / [`recover_device`](TrapLog::recover_device)
//!   — point-in-time reconstruction.
//!
//! # Example
//!
//! ```
//! use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
//! use prins_trap::TrapDevice;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), prins_block::BlockError> {
//! let dev = TrapDevice::new(MemDevice::new(BlockSize::kb4(), 8));
//! dev.write_block(Lba(0), &vec![1u8; 4096])?; // seq 1
//! dev.write_block(Lba(0), &vec![2u8; 4096])?; // seq 2
//! dev.write_block(Lba(0), &vec![3u8; 4096])?; // seq 3
//!
//! // Roll block 0 back to just after seq 2.
//! let current = dev.read_block_vec(Lba(0))?;
//! let at_seq2 = dev.log().recover_block(&current, Lba(0), 2);
//! assert_eq!(at_seq2, vec![2u8; 4096]);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use prins_block::{BlockDevice, Geometry, Lba, MemDevice, Result};
use prins_parity::{forward_parity, SparseCodec, SparseParity};

/// One logged write: sequence number plus the encoded parity.
#[derive(Clone, Debug)]
pub struct TrapEntry {
    /// Global sequence number of the write (1-based).
    pub seq: u64,
    /// Sparse parity `P' = new ⊕ old`.
    pub parity: SparseParity,
}

/// The parity log: per-LBA chains of [`TrapEntry`]s.
///
/// Shared between a [`TrapDevice`] and recovery code via `Arc`.
#[derive(Debug, Default)]
pub struct TrapLog {
    chains: RwLock<HashMap<u64, Vec<TrapEntry>>>,
    seq: AtomicU64,
    wire_bytes: AtomicU64,
    pruned_through: AtomicU64,
}

impl TrapLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sequence number of the most recent write (0 = none yet).
    pub fn current_seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Total encoded bytes the log holds — the CDP space cost. A
    /// full-block journal would hold `writes × block_size` instead.
    pub fn stored_bytes(&self) -> u64 {
        self.wire_bytes.load(Ordering::Relaxed)
    }

    /// Number of logged writes.
    pub fn entries(&self) -> u64 {
        self.current_seq()
    }

    fn append(&self, lba: Lba, parity: SparseParity) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        self.wire_bytes
            .fetch_add(parity.wire_size() as u64, Ordering::Relaxed);
        self.chains
            .write()
            .entry(lba.index())
            .or_default()
            .push(TrapEntry { seq, parity });
        seq
    }

    /// Reconstructs the contents of `lba` as of sequence number
    /// `to_seq` (inclusive), given the block's *current* contents.
    ///
    /// Undoes every logged write with `seq > to_seq` by XOR — order
    /// does not matter because XOR commutes.
    ///
    /// # Panics
    ///
    /// Panics if `current.len()` differs from the logged parity block
    /// length (callers always pass a block read from the same device).
    pub fn recover_block(&self, current: &[u8], lba: Lba, to_seq: u64) -> Vec<u8> {
        let mut block = current.to_vec();
        if let Some(chain) = self.chains.read().get(&lba.index()) {
            for entry in chain.iter().rev() {
                if entry.seq > to_seq {
                    entry.parity.apply_to(&mut block);
                }
            }
        }
        block
    }

    /// Materializes a full point-in-time image of `device` as of
    /// `to_seq` into a fresh in-memory device.
    ///
    /// # Errors
    ///
    /// Propagates read failures from `device`.
    pub fn recover_device<D: BlockDevice + ?Sized>(
        &self,
        device: &D,
        to_seq: u64,
    ) -> Result<MemDevice> {
        let geometry = device.geometry();
        let out = MemDevice::new(geometry.block_size(), geometry.num_blocks());
        for lba in geometry.range().iter() {
            let current = device.read_block_vec(lba)?;
            let recovered = self.recover_block(&current, lba, to_seq);
            out.write_block(lba, &recovered)?;
        }
        Ok(out)
    }

    /// Drops log entries with `seq <= up_to` (space reclamation once a
    /// recovery window expires). Blocks can no longer be recovered to
    /// points at or before `up_to`, and delta resync from such points
    /// becomes impossible (see [`retains_since`](Self::retains_since)).
    pub fn prune(&self, up_to: u64) {
        let mut chains = self.chains.write();
        let mut freed = 0u64;
        for chain in chains.values_mut() {
            chain.retain(|e| {
                if e.seq <= up_to {
                    freed += e.parity.wire_size() as u64;
                    false
                } else {
                    true
                }
            });
        }
        chains.retain(|_, c| !c.is_empty());
        self.wire_bytes.fetch_sub(freed, Ordering::Relaxed);
        self.pruned_through.fetch_max(up_to, Ordering::SeqCst);
    }

    /// Highest sequence number ever pruned (0 = nothing pruned yet).
    pub fn pruned_through(&self) -> u64 {
        self.pruned_through.load(Ordering::SeqCst)
    }

    /// Whether the log still holds *every* entry with `seq > since` —
    /// the precondition for parity-log delta resync from `since`. When
    /// this is false a rejoining replica last synced at `since` cannot
    /// be caught up by log replay alone and needs full-image blocks for
    /// the gap.
    pub fn retains_since(&self, since: u64) -> bool {
        self.pruned_through() <= since
    }

    /// The entries of `lba`'s chain with `seq >= from`, in sequence
    /// order — the per-block replay suffix a delta resync streams for
    /// one dirty block.
    ///
    /// Callers must check that the log was never pruned at or past
    /// `from` (`pruned_through() < from`), otherwise the suffix may be
    /// missing entries.
    pub fn chain_since(&self, lba: Lba, from: u64) -> Vec<TrapEntry> {
        self.chains
            .read()
            .get(&lba.index())
            .map(|chain| chain.iter().filter(|e| e.seq >= from).cloned().collect())
            .unwrap_or_default()
    }

    /// All log entries with `seq > since`, tagged with their LBA, in
    /// sequence order — the replay suffix a delta resync streams to a
    /// rejoining replica.
    ///
    /// Callers must check [`retains_since`](Self::retains_since) first;
    /// after pruning past `since` the returned suffix is incomplete.
    pub fn entries_since(&self, since: u64) -> Vec<(Lba, TrapEntry)> {
        let chains = self.chains.read();
        let mut out: Vec<(Lba, TrapEntry)> = Vec::new();
        for (lba, chain) in chains.iter() {
            for entry in chain {
                if entry.seq > since {
                    out.push((Lba(*lba), entry.clone()));
                }
            }
        }
        out.sort_by_key(|(_, entry)| entry.seq);
        out
    }
}

/// A [`BlockDevice`] wrapper that logs every write's parity for
/// point-in-time recovery.
pub struct TrapDevice<D> {
    inner: D,
    log: Arc<TrapLog>,
    codec: SparseCodec,
}

impl<D: BlockDevice> TrapDevice<D> {
    /// Wraps `inner` with a fresh log.
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            log: Arc::new(TrapLog::new()),
            codec: SparseCodec::default(),
        }
    }

    /// The shared parity log.
    pub fn log(&self) -> &Arc<TrapLog> {
        &self.log
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDevice> BlockDevice for TrapDevice<D> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read_block(&self, lba: Lba, buf: &mut [u8]) -> Result<()> {
        self.inner.read_block(lba, buf)
    }

    fn write_block(&self, lba: Lba, buf: &[u8]) -> Result<()> {
        let mut old = self.geometry().block_size().zeroed();
        self.inner.read_block(lba, &mut old)?;
        self.inner.write_block(lba, buf)?;
        let parity = self.codec.encode(&forward_parity(&old, buf));
        self.log.append(lba, parity);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }
}

impl<D: BlockDevice> std::fmt::Debug for TrapDevice<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrapDevice")
            .field("geometry", &self.geometry())
            .field("logged_writes", &self.log.entries())
            .field("log_bytes", &self.log.stored_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::BlockSize;
    use rand::{RngExt, SeedableRng};

    fn dev() -> TrapDevice<MemDevice> {
        TrapDevice::new(MemDevice::new(BlockSize::kb4(), 8))
    }

    #[test]
    fn recover_to_every_historical_point() {
        let d = dev();
        let mut history: Vec<Vec<u8>> = vec![vec![0u8; 4096]]; // state at seq 0
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut block = history.last().unwrap().clone();
            let at = rng.random_range(0..4000);
            for b in &mut block[at..at + 64] {
                *b = rng.random();
            }
            d.write_block(Lba(3), &block).unwrap();
            history.push(block);
        }
        let current = d.read_block_vec(Lba(3)).unwrap();
        for (seq, expected) in history.iter().enumerate() {
            let recovered = d.log().recover_block(&current, Lba(3), seq as u64);
            assert_eq!(&recovered, expected, "recovery to seq {seq}");
        }
    }

    #[test]
    fn recover_device_rolls_all_blocks_back() {
        let d = dev();
        // seq 1..=8: write every block.
        for i in 0..8u64 {
            d.write_block(Lba(i), &vec![1u8; 4096]).unwrap();
        }
        let checkpoint = d.log().current_seq();
        // More writes after the checkpoint.
        for i in 0..8u64 {
            d.write_block(Lba(i), &vec![9u8; 4096]).unwrap();
        }
        let snapshot = d.log().recover_device(&d, checkpoint).unwrap();
        for i in 0..8u64 {
            assert_eq!(snapshot.read_block_vec(Lba(i)).unwrap(), vec![1u8; 4096]);
            // The live device is untouched.
            assert_eq!(d.read_block_vec(Lba(i)).unwrap(), vec![9u8; 4096]);
        }
    }

    #[test]
    fn recover_to_seq_zero_is_the_initial_image() {
        let d = dev();
        for _ in 0..5 {
            d.write_block(Lba(0), &vec![7u8; 4096]).unwrap();
            d.write_block(Lba(0), &vec![8u8; 4096]).unwrap();
        }
        let current = d.read_block_vec(Lba(0)).unwrap();
        let initial = d.log().recover_block(&current, Lba(0), 0);
        assert!(initial.iter().all(|&b| b == 0));
    }

    #[test]
    fn log_is_much_smaller_than_full_block_journal() {
        let d = dev();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut block = vec![0u8; 4096];
        for _ in 0..50 {
            let at = rng.random_range(0..4000);
            for b in &mut block[at..at + 40] {
                *b = rng.random();
            }
            d.write_block(Lba(1), &block).unwrap();
        }
        let journal_bytes = 50 * 4096u64;
        let log_bytes = d.log().stored_bytes();
        assert!(
            log_bytes * 10 < journal_bytes,
            "trap log {log_bytes} should be >10x below journal {journal_bytes}"
        );
    }

    #[test]
    fn prune_reclaims_space_and_limits_recovery() {
        let d = dev();
        d.write_block(Lba(0), &vec![1u8; 4096]).unwrap(); // seq 1
        d.write_block(Lba(0), &vec![2u8; 4096]).unwrap(); // seq 2
        d.write_block(Lba(0), &vec![3u8; 4096]).unwrap(); // seq 3
        let before = d.log().stored_bytes();
        d.log().prune(2);
        assert!(d.log().stored_bytes() < before);
        let current = d.read_block_vec(Lba(0)).unwrap();
        // Recovery to seq 2 still works (entry 3 is retained).
        assert_eq!(d.log().recover_block(&current, Lba(0), 2), vec![2u8; 4096]);
    }

    #[test]
    fn entries_since_returns_ordered_replay_suffix() {
        let d = dev();
        d.write_block(Lba(0), &vec![1u8; 4096]).unwrap(); // seq 1
        d.write_block(Lba(3), &vec![2u8; 4096]).unwrap(); // seq 2
        d.write_block(Lba(0), &vec![3u8; 4096]).unwrap(); // seq 3
        d.write_block(Lba(5), &vec![4u8; 4096]).unwrap(); // seq 4

        let suffix = d.log().entries_since(2);
        let seqs: Vec<u64> = suffix.iter().map(|(_, e)| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(suffix[0].0, Lba(0));
        assert_eq!(suffix[1].0, Lba(5));
        assert!(d.log().entries_since(4).is_empty());
        assert_eq!(d.log().entries_since(0).len(), 4);

        let chain = d.log().chain_since(Lba(0), 2);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].seq, 3);
        assert_eq!(d.log().chain_since(Lba(0), 1).len(), 2);
        assert!(d.log().chain_since(Lba(7), 0).is_empty());
    }

    #[test]
    fn replaying_suffix_catches_a_stale_copy_up() {
        let d = dev();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        // Build some history, checkpoint a copy, keep writing.
        let mut write_random = |lba: u64| {
            let mut block = d.read_block_vec(Lba(lba)).unwrap();
            let at = rng.random_range(0..4000);
            for b in &mut block[at..at + 32] {
                *b = rng.random();
            }
            d.write_block(Lba(lba), &block).unwrap();
        };
        for i in 0..6 {
            write_random(i % 3);
        }
        let stale_at = d.log().current_seq();
        let stale = d.log().recover_device(&d, stale_at).unwrap();
        for i in 0..10 {
            write_random(i % 3);
        }

        // Forward-replay the suffix onto the stale copy.
        assert!(d.log().retains_since(stale_at));
        for (lba, entry) in d.log().entries_since(stale_at) {
            let mut block = stale.read_block_vec(lba).unwrap();
            entry.parity.apply_to(&mut block);
            stale.write_block(lba, &block).unwrap();
        }
        for i in 0..3u64 {
            assert_eq!(
                stale.read_block_vec(Lba(i)).unwrap(),
                d.read_block_vec(Lba(i)).unwrap()
            );
        }
    }

    #[test]
    fn prune_invalidates_delta_resync_from_older_points() {
        let d = dev();
        for _ in 0..4 {
            d.write_block(Lba(0), &vec![1u8; 4096]).unwrap();
        }
        assert_eq!(d.log().pruned_through(), 0);
        assert!(d.log().retains_since(0));
        d.log().prune(2);
        assert_eq!(d.log().pruned_through(), 2);
        assert!(!d.log().retains_since(1));
        assert!(d.log().retains_since(2));
        assert!(d.log().retains_since(3));
    }

    #[test]
    fn empty_replay_suffix_for_an_up_to_date_replica() {
        let d = dev();
        for i in 0..4u64 {
            d.write_block(Lba(i), &vec![6u8; 4096]).unwrap();
        }
        let now = d.log().current_seq();
        // A replica synced at the current sequence needs nothing: the
        // suffix is empty (not an error) and replaying it is a no-op.
        assert!(d.log().entries_since(now).is_empty());
        assert!(d.log().chain_since(Lba(0), now + 1).is_empty());
        assert!(d.log().retains_since(now));
        let copy = d.log().recover_device(&d, now).unwrap();
        for (lba, entry) in d.log().entries_since(now) {
            let mut block = copy.read_block_vec(lba).unwrap();
            entry.parity.apply_to(&mut block);
            copy.write_block(lba, &block).unwrap();
        }
        for i in 0..4u64 {
            assert_eq!(
                copy.read_block_vec(Lba(i)).unwrap(),
                d.read_block_vec(Lba(i)).unwrap()
            );
        }
    }

    #[test]
    fn prune_exactly_to_the_replica_boundary_keeps_delta_resync_viable() {
        let d = dev();
        d.write_block(Lba(0), &vec![1u8; 4096]).unwrap(); // seq 1
        d.write_block(Lba(0), &vec![2u8; 4096]).unwrap(); // seq 2
        let stale_at = d.log().current_seq();
        let stale = d.log().recover_device(&d, stale_at).unwrap();
        d.write_block(Lba(0), &vec![3u8; 4096]).unwrap(); // seq 3
        d.write_block(Lba(1), &vec![4u8; 4096]).unwrap(); // seq 4

        // Prune precisely up to the replica's sync point: everything it
        // still needs (seq > stale_at) is retained, so the boundary is
        // inclusive-safe.
        d.log().prune(stale_at);
        assert_eq!(d.log().pruned_through(), stale_at);
        assert!(d.log().retains_since(stale_at));
        assert!(!d.log().retains_since(stale_at - 1));
        let suffix = d.log().entries_since(stale_at);
        assert_eq!(suffix.len(), 2);
        for (lba, entry) in suffix {
            let mut block = stale.read_block_vec(lba).unwrap();
            entry.parity.apply_to(&mut block);
            stale.write_block(lba, &block).unwrap();
        }
        assert_eq!(stale.read_block_vec(Lba(0)).unwrap(), vec![3u8; 4096]);
        assert_eq!(stale.read_block_vec(Lba(1)).unwrap(), vec![4u8; 4096]);
    }

    #[test]
    fn replay_after_prune_is_incomplete_and_must_be_guarded() {
        let d = dev();
        // Values chosen so no partial XOR chain collapses back onto a
        // historical state: 0x11 ⊕ (0x47 ⊕ 0x22) = 0x74 ∉ {0, 0x11,
        // 0x22, 0x47}.
        d.write_block(Lba(0), &vec![0x11u8; 4096]).unwrap(); // seq 1
        let stale_at = d.log().current_seq();
        let stale = d.log().recover_device(&d, stale_at).unwrap();
        d.write_block(Lba(0), &vec![0x22u8; 4096]).unwrap(); // seq 2
        d.write_block(Lba(0), &vec![0x47u8; 4096]).unwrap(); // seq 3

        // Prune past the replica's sync point: seq 2 is gone.
        d.log().prune(stale_at + 1);
        assert!(!d.log().retains_since(stale_at));

        // An unguarded replay of what's left applies seq 3's parity to
        // seq 1's base — a stale-base XOR yielding a state the primary
        // never held. This is exactly why callers must check
        // `retains_since` and fall back to full images.
        for (lba, entry) in d.log().entries_since(stale_at) {
            let mut block = stale.read_block_vec(lba).unwrap();
            entry.parity.apply_to(&mut block);
            stale.write_block(lba, &block).unwrap();
        }
        let replayed = stale.read_block_vec(Lba(0)).unwrap();
        assert_ne!(replayed, d.read_block_vec(Lba(0)).unwrap());
        for historical in [vec![0u8; 4096], vec![0x11u8; 4096], vec![0x22u8; 4096]] {
            assert_ne!(replayed, historical);
        }
        assert_eq!(replayed, vec![0x74u8; 4096]);
    }

    #[test]
    fn unwritten_blocks_recover_to_themselves() {
        let d = dev();
        d.write_block(Lba(0), &vec![5u8; 4096]).unwrap();
        let current = d.read_block_vec(Lba(7)).unwrap();
        assert_eq!(d.log().recover_block(&current, Lba(7), 0), current);
    }

    #[test]
    fn reads_pass_through() {
        let d = dev();
        d.write_block(Lba(2), &vec![4u8; 4096]).unwrap();
        assert_eq!(d.inner().read_block_vec(Lba(2)).unwrap(), vec![4u8; 4096]);
        assert_eq!(d.log().entries(), 1);
        d.flush().unwrap();
    }
}
