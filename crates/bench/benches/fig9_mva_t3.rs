//! Regenerates Figure 9 (closed-network response time over T3).

use criterion::{criterion_group, criterion_main, Criterion};
use prins_bench::fig9_response_t3;
use prins_queueing::{Mva, NodalDelay};

fn bench(c: &mut Criterion) {
    println!("{}", fig9_response_t3(None));
    let s = NodalDelay::t3().service_time(8192.0);
    let mva = Mva::new(0.1, vec![s, s]);
    c.bench_function("fig9/mva_t3/solve_pop100", |b| b.iter(|| mva.solve(100)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
