//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. sparse codec alone vs sparse codec + LZSS over the parity,
//! 2. PRINS win factor as a function of the per-write change ratio
//!    (the paper cites 5–20 % as the real-world band),
//! 3. sparse-codec `min_gap` sensitivity,
//! 4. link-model MTU/header sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prins_block::Lba;
use prins_net::LinkModel;
use prins_parity::{forward_parity, SparseCodec};
use prins_repl::{PrinsReplicator, Replicator, TraditionalReplicator};
use rand::{RngExt, SeedableRng};

fn images_with_change(bs: usize, change: f64, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut old = vec![0u8; bs];
    rng.fill_bytes(&mut old);
    let mut new = old.clone();
    let changed = ((bs as f64) * change).max(1.0) as usize;
    // Two extents, like a row update + page header churn.
    let h = changed / 8;
    for b in &mut new[..h.max(1)] {
        *b = rng.random();
    }
    let second = changed - h;
    let lo = bs / 4;
    let hi = bs.saturating_sub(second);
    // At 100% change the second extent spans (almost) the whole block;
    // place it at 0 rather than sampling an empty range.
    let at = if hi <= lo {
        0
    } else {
        rng.random_range(lo..hi)
    };
    for b in &mut new[at..at + second] {
        *b = rng.random();
    }
    (old, new)
}

fn ablate_parity_compression(c: &mut Criterion) {
    println!("== Ablation: sparse codec vs sparse+LZSS (8KB block, payload bytes) ==");
    println!("{:>8}  {:>10}  {:>12}", "change", "prins", "prins+lzss");
    for change in [0.05, 0.10, 0.20] {
        let (old, new) = images_with_change(8192, change, 7);
        let plain = PrinsReplicator::new()
            .encode_write(Lba(0), &old, &new)
            .len();
        let lz = PrinsReplicator::with_parity_compression()
            .encode_write(Lba(0), &old, &new)
            .len();
        println!("{:>7.0}%  {plain:>10}  {lz:>12}", change * 100.0);
    }
    let (old, new) = images_with_change(8192, 0.10, 7);
    let mut group = c.benchmark_group("ablation/parity_compression");
    group.bench_function("sparse_only", |b| {
        b.iter(|| PrinsReplicator::new().encode_write(Lba(0), &old, &new))
    });
    group.bench_function("sparse_plus_lzss", |b| {
        b.iter(|| PrinsReplicator::with_parity_compression().encode_write(Lba(0), &old, &new))
    });
    group.finish();
}

fn ablate_change_ratio(c: &mut Criterion) {
    println!("\n== Ablation: PRINS win factor vs change ratio (8KB block) ==");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>8}",
        "change", "trad bytes", "prins bytes", "win"
    );
    let mut group = c.benchmark_group("ablation/change_ratio");
    for change in [0.01, 0.05, 0.10, 0.20, 0.50, 1.0] {
        let (old, new) = images_with_change(8192, change, 11);
        let trad = TraditionalReplicator.encode_write(Lba(0), &old, &new).len();
        let prins = PrinsReplicator::new()
            .encode_write(Lba(0), &old, &new)
            .len();
        println!(
            "{:>7.0}%  {trad:>12}  {prins:>12}  {:>7.1}x",
            change * 100.0,
            trad as f64 / prins.max(1) as f64
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", change * 100.0)),
            &change,
            |b, _| b.iter(|| PrinsReplicator::new().encode_write(Lba(0), &old, &new)),
        );
    }
    group.finish();
}

fn ablate_min_gap(_c: &mut Criterion) {
    println!("\n== Ablation: sparse codec min_gap (8KB block, 10% changed, 16 extents) ==");
    println!("{:>8}  {:>10}  {:>10}", "min_gap", "bytes", "segments");
    // Many small extents: the regime where gap merging matters.
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let mut old = vec![0u8; 8192];
    rng.fill_bytes(&mut old);
    let mut new = old.clone();
    for _ in 0..16 {
        let at = rng.random_range(0..8192 - 52);
        for b in &mut new[at..at + 51] {
            *b = rng.random();
        }
    }
    let parity = forward_parity(&old, &new);
    for gap in [1usize, 2, 4, 8, 16, 64] {
        let sp = SparseCodec::new(gap).encode(&parity);
        println!(
            "{gap:>8}  {:>10}  {:>10}",
            sp.wire_size(),
            sp.segments().len()
        );
    }
}

fn ablate_link_model(_c: &mut Criterion) {
    println!("\n== Ablation: packetization overhead by payload size (T1 link) ==");
    println!("{:>10}  {:>10}  {:>8}", "payload", "wire", "overhead");
    let link = LinkModel::t1();
    for payload in [64usize, 512, 1500, 4096, 8192, 65536] {
        let wire = link.wire_bytes(payload);
        println!(
            "{payload:>10}  {wire:>10}  {:>7.1}%",
            (wire as f64 / payload as f64 - 1.0) * 100.0
        );
    }
}

fn ablate_router_count(_c: &mut Criterion) {
    use prins_queueing::{Mva, NodalDelay};
    println!("\n== Ablation: response time vs router count (T1, population 50, 8KB) ==");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "routers", "traditional", "compressed", "prins"
    );
    let link = NodalDelay::t1();
    for routers in [1usize, 2, 4, 8] {
        let mut row = format!("{routers:>8}");
        for bytes in [8192.0, 8192.0 / 2.2, 8192.0 / 100.0] {
            let s = link.service_time(bytes);
            let mva = Mva::new(0.1, vec![s; routers]);
            row.push_str(&format!("  {:>11.3}s", mva.solve(50).response_time));
        }
        println!("{row}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = ablate_parity_compression, ablate_change_ratio, ablate_min_gap, ablate_link_model, ablate_router_count
}
criterion_main!(benches);
