//! Regenerates Figure 4 of the paper and times the underlying measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use prins_bench::{fig4_tpcc_oracle, measure_traffic, TrafficConfig};
use prins_block::BlockSize;
use prins_workloads::Workload;

fn bench(c: &mut Criterion) {
    // Print the regenerated figure once; appears in the bench log.
    println!(
        "{}",
        fig4_tpcc_oracle(40, false).expect("figure generation")
    );
    c.bench_function("fig4_tpcc_oracle/measure_traffic/8KB", |b| {
        b.iter(|| {
            measure_traffic(
                Workload::TpccOracle,
                &TrafficConfig::smoke(BlockSize::kb8()),
            )
            .expect("measurement")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
