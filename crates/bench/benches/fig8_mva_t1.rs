//! Regenerates Figure 8 (closed-network response time over T1) and
//! times the exact MVA solver.

use criterion::{criterion_group, criterion_main, Criterion};
use prins_bench::fig8_response_t1;
use prins_queueing::{Mva, NodalDelay};

fn bench(c: &mut Criterion) {
    println!("{}", fig8_response_t1(None));
    let s = NodalDelay::t1().service_time(8192.0);
    let mva = Mva::new(0.1, vec![s, s]);
    c.bench_function("fig8/mva_t1/solve_pop100", |b| b.iter(|| mva.solve(100)));
    c.bench_function("fig8/mva_t1/full_curve", |b| {
        b.iter(|| mva.response_curve(100))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
