//! Regenerates Figure 5 of the paper and times the underlying measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use prins_bench::{fig5_tpcc_postgres, measure_traffic, TrafficConfig};
use prins_block::BlockSize;
use prins_workloads::Workload;

fn bench(c: &mut Criterion) {
    // Print the regenerated figure once; appears in the bench log.
    println!(
        "{}",
        fig5_tpcc_postgres(40, false).expect("figure generation")
    );
    c.bench_function("fig5_tpcc_postgres/measure_traffic/8KB", |b| {
        b.iter(|| {
            measure_traffic(
                Workload::TpccPostgres,
                &TrafficConfig::smoke(BlockSize::kb8()),
            )
            .expect("measurement")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
