//! The §4 overhead measurement: PRINS's extra CPU work in the write
//! path versus plain writes, with and without the RAID parity tap.
//!
//! The paper: "For all the experiments performed, the overhead is less
//! than 10% of traditional replications. … PRINS can leverage the parity
//! computation of RAID. In this case, the overhead is completely
//! negligible."

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use prins_bench::overhead_experiment;
use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_parity::{forward_parity, SparseCodec};
use prins_raid::{RaidArray, RaidLevel};

fn make_block(bs: usize, step: usize) -> Vec<u8> {
    let mut b = vec![0u8; bs];
    let at = (step * 97) % (bs - bs / 12);
    for x in &mut b[at..at + bs / 12] {
        *x = (step % 251) as u8;
    }
    b
}

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        overhead_experiment(5_000, BlockSize::kb8()).expect("overhead experiment")
    );

    let bs = BlockSize::kb8();
    let n = bs.bytes();

    // Baseline: plain block write (what traditional replication's local
    // path costs).
    let plain = MemDevice::new(bs, 64);
    let mut step = 0usize;
    c.bench_function("overhead/plain_write/8KB", |b| {
        b.iter(|| {
            step += 1;
            plain.write_block(Lba((step % 64) as u64), &make_block(n, step))
        })
    });

    // PRINS without RAID: read old + write + forward parity + encode.
    let dev = MemDevice::new(bs, 64);
    let codec = SparseCodec::default();
    let mut step2 = 0usize;
    c.bench_function("overhead/prins_no_raid/8KB", |b| {
        b.iter(|| {
            step2 += 1;
            let lba = Lba((step2 % 64) as u64);
            let new = make_block(n, step2);
            let old = dev.read_block_vec(lba).unwrap();
            dev.write_block(lba, &new).unwrap();
            let parity = forward_parity(&old, &new);
            codec.encode(&parity).to_bytes()
        })
    });

    // PRINS with RAID: the array's small write already computes P'; the
    // tap only encodes it.
    let members: Vec<Arc<dyn BlockDevice>> = (0..4)
        .map(|_| Arc::new(MemDevice::new(bs, 64)) as Arc<dyn BlockDevice>)
        .collect();
    let raid = RaidArray::new(RaidLevel::Raid5, members).unwrap();
    raid.set_parity_tap(Box::new(move |_lba, pd| {
        let _ = SparseCodec::default().encode(pd).to_bytes();
    }));
    let mut step3 = 0usize;
    c.bench_function("overhead/prins_raid_tap/8KB", |b| {
        b.iter(|| {
            step3 += 1;
            raid.write_block(Lba((step3 % 64) as u64), &make_block(n, step3))
        })
    });

    // RAID small write *without* any tap — the cost PRINS adds on top
    // of RAID is the difference versus the tapped version.
    let members: Vec<Arc<dyn BlockDevice>> = (0..4)
        .map(|_| Arc::new(MemDevice::new(bs, 64)) as Arc<dyn BlockDevice>)
        .collect();
    let raid_plain = RaidArray::new(RaidLevel::Raid5, members).unwrap();
    let mut step4 = 0usize;
    c.bench_function("overhead/raid_write_no_tap/8KB", |b| {
        b.iter(|| {
            step4 += 1;
            raid_plain.write_block(Lba((step4 % 64) as u64), &make_block(n, step4))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
