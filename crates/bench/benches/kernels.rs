//! Micro-kernels: the primitive operations every PRINS write exercises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prins_block::{crc32c, crc32c_scalar};
use prins_compress::{Codec, Lzss, Rle};
use prins_ec::MulTable;
use prins_iscsi::{Opcode, Pdu};
use prins_parity::{forward_parity, scan_nonzero, xor_in_place, xor_in_place_scalar, SparseCodec};
use prins_repl::{seal_batch_frame_into, seal_frame_into};
use rand::{RngExt, SeedableRng};

fn sample_images(bs: usize, change: f64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut old = vec![0u8; bs];
    rng.fill_bytes(&mut old);
    let mut new = old.clone();
    let changed = (((bs as f64) * change) as usize).min(bs);
    let at = if changed >= bs {
        0
    } else {
        rng.random_range(0..bs - changed)
    };
    for b in &mut new[at..at + changed] {
        *b = rng.random();
    }
    (old, new)
}

fn bench_xor(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/xor");
    for bs in [4096usize, 8192, 65536] {
        let (old, new) = sample_images(bs, 0.1);
        group.throughput(Throughput::Bytes(bs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, _| {
            b.iter(|| forward_parity(&old, &new))
        });
    }
    group.finish();
}

fn bench_xor_in_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/xor_in_place");
    for bs in [4096usize, 8192, 65536] {
        let (old, new) = sample_images(bs, 0.1);
        group.throughput(Throughput::Bytes(bs as u64));
        group.bench_with_input(BenchmarkId::new("wide", bs), &bs, |b, _| {
            b.iter(|| {
                let mut dst = old.clone();
                xor_in_place(&mut dst, &new);
                dst
            })
        });
        group.bench_with_input(BenchmarkId::new("scalar", bs), &bs, |b, _| {
            b.iter(|| {
                let mut dst = old.clone();
                xor_in_place_scalar(&mut dst, &new);
                dst
            })
        });
    }
    group.finish();
}

fn bench_nonzero_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/nonzero_scan");
    for change in [0.05, 0.20] {
        let (old, new) = sample_images(8192, change);
        let parity = forward_parity(&old, &new);
        group.throughput(Throughput::Bytes(8192));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", change * 100.0)),
            &parity,
            |b, p| {
                b.iter(|| {
                    // Walk every nonzero run, the codec's scan pattern.
                    let mut runs = 0usize;
                    let mut at = 0usize;
                    while let Some(start) = scan_nonzero(p, at) {
                        let end = p[start..]
                            .iter()
                            .position(|&b| b == 0)
                            .map_or(p.len(), |i| start + i);
                        runs += 1;
                        at = end;
                    }
                    runs
                })
            },
        );
    }
    group.finish();
}

fn bench_sparse_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/sparse_codec");
    let codec = SparseCodec::default();
    for change in [0.05, 0.20] {
        let (old, new) = sample_images(8192, change);
        let parity = forward_parity(&old, &new);
        group.bench_with_input(
            BenchmarkId::new("encode", format!("{:.0}%", change * 100.0)),
            &parity,
            |b, p| b.iter(|| codec.encode(p).to_bytes()),
        );
        let bytes = codec.encode(&parity).to_bytes();
        group.bench_with_input(
            BenchmarkId::new("decode+apply", format!("{:.0}%", change * 100.0)),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let sp = codec.decode(bytes, 8192).unwrap();
                    let mut block = old.clone();
                    sp.apply_to(&mut block);
                    block
                })
            },
        );
    }
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/compression");
    let (_, page) = sample_images(8192, 1.0);
    group.throughput(Throughput::Bytes(8192));
    group.bench_function("lzss/random_8KB", |b| {
        b.iter(|| Lzss::default().compress(&page))
    });
    let text: Vec<u8> = b"select ol_amount from order_line where ol_w_id = 3; "
        .iter()
        .cycle()
        .take(8192)
        .copied()
        .collect();
    group.bench_function("lzss/text_8KB", |b| {
        b.iter(|| Lzss::default().compress(&text))
    });
    group.bench_function("rle/text_8KB", |b| b.iter(|| Rle.compress(&text)));
    group.finish();
}

fn bench_crc32c(c: &mut Criterion) {
    // Width sweep of the sealing checksum: the slice-by-8 kernel vs the
    // bytewise baseline, from a tiny ack up to a 64 KB batch frame.
    let mut group = c.benchmark_group("kernels/crc32c");
    for len in [64usize, 512, 4096, 65536] {
        let (_, data) = sample_images(len, 1.0);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::new("sliced8", len), &data, |b, d| {
            b.iter(|| crc32c(d))
        });
        group.bench_with_input(BenchmarkId::new("scalar", len), &data, |b, d| {
            b.iter(|| crc32c_scalar(d))
        });
    }
    group.finish();
}

fn bench_gf_mul(c: &mut Criterion) {
    // GF(256) coefficient multiply-accumulate, the erasure-coded
    // strip-update kernel: 64-byte-stride wide vs bytewise.
    let mut group = c.benchmark_group("kernels/gf_mul_xor");
    let table = MulTable::new(0x7d);
    for len in [64usize, 512, 4096, 65536] {
        let (src, mut dst) = sample_images(len, 1.0);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::new("wide", len), &src, |b, s| {
            b.iter(|| table.mul_xor_slice(s, &mut dst))
        });
        group.bench_with_input(BenchmarkId::new("scalar", len), &src, |b, s| {
            b.iter(|| table.mul_xor_slice_scalar(s, &mut dst))
        });
    }
    group.finish();
}

fn bench_seal(c: &mut Criterion) {
    // Batch-aware sealing: one CRC pass over a whole BatchFrame versus
    // sealing each 4 KB payload in its own envelope.
    let mut group = c.benchmark_group("kernels/seal");
    for frames in [8usize, 32] {
        let payloads: Vec<Vec<u8>> = (0..frames)
            .map(|i| {
                sample_images(4096, 1.0)
                    .1
                    .iter()
                    .map(|b| b ^ i as u8)
                    .collect()
            })
            .collect();
        let total: usize = payloads.iter().map(Vec::len).sum();
        group.throughput(Throughput::Bytes(total as u64));
        group.bench_with_input(
            BenchmarkId::new("batch", frames),
            &payloads,
            |b, payloads| {
                let mut out = Vec::with_capacity(total + 16 * frames);
                b.iter(|| {
                    out.clear();
                    seal_batch_frame_into(1, payloads, &mut out);
                    out.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_frame", frames),
            &payloads,
            |b, payloads| {
                let mut out = Vec::with_capacity(total + 16 * frames);
                b.iter(|| {
                    out.clear();
                    for p in payloads {
                        seal_frame_into(1, p, &mut out);
                    }
                    out.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_pdu(c: &mut Criterion) {
    let pdu = Pdu::with_data(Opcode::ScsiCommand, vec![0xabu8; 8192]);
    let bytes = pdu.to_bytes();
    c.bench_function("kernels/pdu/encode_8KB", |b| b.iter(|| pdu.to_bytes()));
    c.bench_function("kernels/pdu/decode_8KB", |b| {
        b.iter(|| Pdu::from_bytes(&bytes).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_xor, bench_xor_in_place, bench_nonzero_scan, bench_sparse_codec,
        bench_crc32c, bench_gf_mul, bench_seal, bench_compression, bench_pdu
}
criterion_main!(benches);
