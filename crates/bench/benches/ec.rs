//! Erasure-coding kernels: GF(256) strip scaling, systematic
//! Reed–Solomon encode, erasure reconstruction, and the coefficient
//! delta RMW the parity owners run per write.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prins_ec::{gf, ReedSolomon};
use prins_parity::ErasureCodec;
use rand::{RngExt, SeedableRng};

fn sample_strips(k: usize, bs: usize) -> Vec<Vec<u8>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    (0..k)
        .map(|_| {
            let mut s = vec![0u8; bs];
            rng.fill_bytes(&mut s);
            s
        })
        .collect()
}

fn bench_gf_mul_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("ec/gf_mul_xor_slice");
    for bs in [4096usize, 8192, 65536] {
        let strips = sample_strips(2, bs);
        group.throughput(Throughput::Bytes(bs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, _| {
            b.iter(|| {
                let mut acc = strips[0].clone();
                gf::mul_xor_slice(0x53, &strips[1], &mut acc);
                acc
            })
        });
    }
    group.finish();
}

fn bench_rs_encode(c: &mut Criterion) {
    let codec = ReedSolomon::k4m2();
    let mut group = c.benchmark_group("ec/rs_encode_k4m2");
    for bs in [4096usize, 8192] {
        let strips = sample_strips(4, bs);
        let refs: Vec<&[u8]> = strips.iter().map(Vec::as_slice).collect();
        group.throughput(Throughput::Bytes(4 * bs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, _| {
            b.iter(|| codec.encode(&refs).unwrap())
        });
    }
    group.finish();
}

fn bench_rs_reconstruct(c: &mut Criterion) {
    let codec = ReedSolomon::k4m2();
    let mut group = c.benchmark_group("ec/rs_reconstruct_two_erasures");
    for bs in [4096usize, 8192] {
        let data = sample_strips(4, bs);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let parity = codec.encode(&refs).unwrap();
        let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        group.throughput(Throughput::Bytes(4 * bs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, _| {
            b.iter(|| {
                let mut strips: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                strips[1] = None;
                strips[5] = None;
                codec.reconstruct(&mut strips).unwrap();
                strips
            })
        });
    }
    group.finish();
}

fn bench_parity_delta_rmw(c: &mut Criterion) {
    let codec = ReedSolomon::k4m2();
    let mut group = c.benchmark_group("ec/parity_delta_rmw");
    for bs in [4096usize, 8192] {
        let strips = sample_strips(2, bs);
        let coeff = codec.coefficient(1, 2);
        group.throughput(Throughput::Bytes(bs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, _| {
            b.iter(|| {
                let mut base = strips[0].clone();
                codec.apply_delta(&mut base, coeff, &strips[1]).unwrap();
                base
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gf_mul_slice,
    bench_rs_encode,
    bench_rs_reconstruct,
    bench_parity_delta_rmw
);
criterion_main!(benches);
