//! Regenerates Figure 10 (M/M/1 router saturation over T1).

use criterion::{criterion_group, criterion_main, Criterion};
use prins_bench::fig10_router_saturation;
use prins_queueing::figures::{paper_rates, router_queueing_vs_rate, BytesPerWrite};
use prins_queueing::NodalDelay;

fn bench(c: &mut Criterion) {
    println!("{}", fig10_router_saturation(None));
    let techniques = BytesPerWrite::paper_defaults();
    let rates = paper_rates();
    c.bench_function("fig10/mm1_t1/all_series", |b| {
        b.iter(|| router_queueing_vs_rate(NodalDelay::t1(), &techniques, &rates))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
