//! Observability hot-path micro-benchmarks: the `Span` start/finish
//! pair every pipeline stage pays per write, and the `TraceSink` hop
//! append the flight recorder adds on top. Both must stay deep in the
//! nanoseconds for tracing to be default-on in the engine.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use prins_net::{Clock, WallClock};
use prins_obs::{Histogram, Span, TraceConfig, TraceId, TraceSink, TraceStage};

fn bench_span(c: &mut Criterion) {
    let clock = WallClock::new();
    let hist = Histogram::new();
    c.bench_function("obs/span/start_finish", |b| {
        b.iter(|| Span::start(&clock, &hist).finish())
    });
    c.bench_function("obs/span/start_cancel", |b| {
        b.iter(|| Span::start(&clock, &hist).cancel())
    });
}

fn bench_trace_hop(c: &mut Criterion) {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let sink = TraceSink::new(TraceConfig::default());
    let id = TraceId::from_seq(7);
    sink.begin(id, 0, u32::MAX, clock.now_nanos(), 4096);
    // One live trace, hammered with hop appends: the per-write cost of
    // an event once the slot lock is warm. The huge pending count keeps
    // the trace from finalizing mid-benchmark.
    c.bench_function("obs/trace/event_append", |b| {
        b.iter(|| sink.event(id, TraceStage::Send, 1, clock.now_nanos(), 4096))
    });
    let miss = TraceId::from_seq(8 + 1024);
    c.bench_function("obs/trace/event_inactive_slot", |b| {
        b.iter(|| sink.event(miss, TraceStage::Send, 1, clock.now_nanos(), 4096))
    });
}

fn bench_trace_lifecycle(c: &mut Criterion) {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let sink = TraceSink::new(TraceConfig::default());
    let mut seq = 0u64;
    // The full per-write recorder bill: begin, three hops, complete.
    c.bench_function("obs/trace/begin_to_complete", |b| {
        b.iter(|| {
            seq += 1;
            let id = TraceId::from_seq(seq);
            let t = clock.now_nanos();
            sink.begin(id, 0, 1, t, 4096);
            sink.event(id, TraceStage::Encode, u32::MAX, t, 4096);
            sink.event(id, TraceStage::LaneQueue, 0, t, 4096);
            sink.event(id, TraceStage::Send, 0, t, 4096);
            sink.complete(id, TraceStage::Ack, 0, t, 0);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_span, bench_trace_hop, bench_trace_lifecycle
}
criterion_main!(benches);
