//! Scale-out read serving: a tenants × shards × replicas throughput
//! sweep against the MVA prediction.
//!
//! The measured half runs the real epoch-guarded offload path: a
//! cluster group with three replica nodes on in-process links, every
//! read sealed under the current epoch, round-robined across the
//! replicas, and answered by the stock apply loop. That yields the two
//! quantities the closed queueing network needs — the mean per-read
//! service time and the actual per-replica share of the read stream
//! (plus a freshness sanity check: a healthy cluster must reject
//! nothing).
//!
//! The swept half feeds those measured demands into exact MVA: each
//! in-sync replica is one station serving its measured share of the
//! reads, `tenants` closed-loop customers think for one service time
//! between reads, and throughput is solved per population. A
//! single-station network is exactly the primary-only baseline — every
//! read serializes through one server at the same measured service
//! time — so the replicas=1 column doubles as the no-offload
//! comparison. Harmonia-style near-linear scaling falls out: three
//! in-sync replicas serve ≥ 2.5× the primary-only read rate once
//! enough tenants keep the stations busy.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use prins_block::{BlockSize, Lba, MemDevice};
use prins_cluster::{ClusterConfig, ClusterGroup};
use prins_net::{channel_pair, LinkModel, Transport};
use prins_queueing::Mva;
use prins_repl::ReplError;

/// Throughput curve for one `groups × replicas` configuration.
#[derive(Clone, Debug)]
pub struct ScaleCurve {
    /// Replica groups (shards) sharing the volume.
    pub groups: usize,
    /// In-sync replicas per group serving reads.
    pub replicas: usize,
    /// `(tenants, reads/s)` from MVA on the *measured* demands.
    pub throughput: Vec<(u32, f64)>,
    /// `(tenants, reads/s)` from MVA on the *ideal* uniform split —
    /// the prediction the measured curve is compared against.
    pub predicted: Vec<(u32, f64)>,
}

/// Result of the scale-out read-serving experiment.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// Offloaded reads measured on the real path.
    pub reads: u64,
    /// Mean wall-clock service time of one offloaded read (seconds).
    pub read_service_s: f64,
    /// Measured fraction of reads each replica served.
    pub offload_shares: Vec<f64>,
    /// Offload rejections observed — must be 0 on a healthy cluster.
    pub rejected: u64,
    /// Tenant populations the sweep solved.
    pub tenants: Vec<u32>,
    /// One curve per swept `groups × replicas` configuration.
    pub curves: Vec<ScaleCurve>,
}

impl ScaleReport {
    /// Measured-demand throughput at one sweep point, if swept.
    pub fn throughput(&self, tenants: u32, groups: usize, replicas: usize) -> Option<f64> {
        self.curves
            .iter()
            .find(|c| c.groups == groups && c.replicas == replicas)?
            .throughput
            .iter()
            .find(|(n, _)| *n == tenants)
            .map(|&(_, x)| x)
    }

    /// Read-throughput gain of three in-sync replicas over primary-only
    /// serving (one group, largest swept tenant count). Near-linear
    /// scaling puts this close to 3.
    pub fn replica_speedup(&self) -> f64 {
        let n = *self.tenants.last().expect("sweep is non-empty");
        let three = self.throughput(n, 1, 3).expect("1x3 swept");
        let one = self.throughput(n, 1, 1).expect("1x1 swept");
        three / one
    }

    /// Largest relative deviation of the measured-demand curves from
    /// the ideal uniform-split MVA prediction, over every sweep point.
    pub fn prediction_deviation(&self) -> f64 {
        let mut worst = 0.0f64;
        for c in &self.curves {
            for ((_, x), (_, p)) in c.throughput.iter().zip(&c.predicted) {
                worst = worst.max((x - p).abs() / p.max(f64::MIN_POSITIVE));
            }
        }
        worst
    }
}

impl fmt::Display for ScaleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scale: {} offloaded reads at {:.1} us/read; replica shares {}; {} rejected",
            self.reads,
            self.read_service_s * 1e6,
            self.offload_shares
                .iter()
                .map(|s| format!("{s:.3}"))
                .collect::<Vec<_>>()
                .join("/"),
            self.rejected,
        )?;
        write!(f, "{:>16}", "groups x repl")?;
        for n in &self.tenants {
            write!(f, "{n:>10}")?;
        }
        writeln!(f, "  (tenants; reads/s)")?;
        for c in &self.curves {
            write!(f, "{:>16}", format!("{} x {}", c.groups, c.replicas))?;
            for (_, x) in &c.throughput {
                write!(f, "{x:>10.0}")?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "read speedup, 3 replicas vs primary-only: {:.2}x (linear bound 3x); \
             measured demands within {:.2}% of the MVA prediction",
            self.replica_speedup(),
            self.prediction_deviation() * 100.0,
        )
    }
}

/// Spawns one replica node: a zeroed device behind the stock apply
/// loop, answering sealed writes and epoch-guarded read requests.
fn spawn_replica(
    blocks: u64,
    block_size: BlockSize,
) -> (
    Box<dyn Transport>,
    std::thread::JoinHandle<Result<u64, ReplError>>,
) {
    let (primary_side, replica_side) = channel_pair(LinkModel::t1());
    let device = Arc::new(MemDevice::new(block_size, blocks));
    let worker = std::thread::spawn(move || prins_repl::run_replica(&*device, &replica_side));
    (Box::new(primary_side), worker)
}

/// Runs the scale-out read experiment: measure the real offload path
/// on a three-replica group, then sweep tenants × shards × replicas
/// through MVA on the measured demands.
///
/// `ops` scales the measured read count; `bench_scale` multiplies it
/// for a steadier service-time estimate.
///
/// # Errors
///
/// Propagates replication failures from the warm-up writes and the
/// measured reads.
pub fn scale_experiment(
    ops: usize,
    bench_scale: bool,
) -> Result<ScaleReport, Box<dyn std::error::Error>> {
    let block_size = BlockSize::kb4();
    let blocks: u64 = 64;
    let replicas = 3usize;
    let reads = (ops.max(1) * if bench_scale { 10 } else { 1 }).max(64);

    let mut transports = Vec::new();
    let mut workers = Vec::new();
    for _ in 0..replicas {
        let (t, w) = spawn_replica(blocks, block_size);
        transports.push(t);
        workers.push(w);
    }
    let mut group = ClusterGroup::new(
        MemDevice::new(block_size, blocks),
        ClusterConfig::default(),
        transports,
    );

    // Warm every block so reads return real (non-zero) content.
    for i in 0..blocks {
        let mut data = vec![0u8; block_size.bytes()];
        data[..8].copy_from_slice(&i.to_le_bytes());
        data[8] = 0xa5;
        group.write(Lba(i), &data)?;
    }

    // Measure the offload path: sealed request, replica-side image
    // read, sparse-encoded response, epoch check — round-robined.
    let mut served = vec![0u64; replicas];
    let mut rejected = 0u64;
    let start = Instant::now();
    for i in 0..reads {
        let out = group.read(Lba(i as u64 % blocks))?;
        rejected += out.rejected as u64;
        if let Some(src) = out.source {
            served[src] += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let read_service_s = (elapsed / reads as f64).max(1e-9);
    let offload_shares: Vec<f64> = served.iter().map(|&c| c as f64 / reads as f64).collect();

    drop(group);
    for w in workers {
        w.join().expect("replica thread").map_err(Box::new)?;
    }

    // Closed-network sweep: each in-sync replica is one station whose
    // demand is the measured service time weighted by its measured
    // share of the read stream (renormalized when fewer replicas are
    // in play); shards split the stream uniformly on top. Think time
    // is one service time — tenants re-read as fast as the answer
    // arrives plus one beat.
    let tenants = vec![1u32, 2, 4, 8, 16, 32];
    let z = read_service_s;
    let mut curves = Vec::new();
    for groups in [1usize, 2] {
        for r in 1..=replicas {
            let slice = &offload_shares[..r];
            let norm: f64 = slice.iter().sum();
            let mut demands = Vec::with_capacity(groups * r);
            let mut ideal = Vec::with_capacity(groups * r);
            for _ in 0..groups {
                for &share in slice {
                    let share = if norm > 0.0 {
                        share / norm
                    } else {
                        1.0 / r as f64
                    };
                    demands.push((read_service_s * share / groups as f64).max(1e-12));
                    ideal.push(read_service_s / (groups * r) as f64);
                }
            }
            let measured_mva = Mva::new(z, demands);
            let ideal_mva = Mva::new(z, ideal);
            let throughput: Vec<(u32, f64)> = tenants
                .iter()
                .map(|&n| (n, measured_mva.solve(n).throughput))
                .collect();
            let predicted: Vec<(u32, f64)> = tenants
                .iter()
                .map(|&n| (n, ideal_mva.solve(n).throughput))
                .collect();
            curves.push(ScaleCurve {
                groups,
                replicas: r,
                throughput,
                predicted,
            });
        }
    }

    Ok(ScaleReport {
        reads: reads as u64,
        read_service_s,
        offload_shares,
        rejected,
        tenants,
        curves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_experiment_reads_offload_and_scale_near_linearly() {
        let r = scale_experiment(60, false).unwrap();
        // Every measured read was served by a replica, none rejected:
        // the healthy-cluster freshness guard stayed quiet.
        assert_eq!(r.rejected, 0, "healthy cluster rejected offloads");
        let offloaded: f64 = r.offload_shares.iter().sum();
        assert!(
            (offloaded - 1.0).abs() < 1e-9,
            "reads fell back to the primary: shares {:?}",
            r.offload_shares
        );
        // Round-robin keeps the replica shares near-uniform.
        for &s in &r.offload_shares {
            assert!(
                (s - 1.0 / 3.0).abs() < 0.05,
                "unbalanced shares {:?}",
                r.offload_shares
            );
        }
        // The acceptance bound: three in-sync replicas serve at least
        // 2.5x the primary-only read rate (a throughput ratio of the
        // closed network, independent of the absolute service time).
        assert!(
            r.replica_speedup() >= 2.5,
            "read speedup {} below 2.5x",
            r.replica_speedup()
        );
        // Measured demands must track the uniform-split prediction.
        assert!(
            r.prediction_deviation() < 0.2,
            "measured curves deviate {}x from prediction",
            r.prediction_deviation()
        );
        // Sharding multiplies capacity again at high tenant counts.
        let n = *r.tenants.last().unwrap();
        assert!(r.throughput(n, 2, 3).unwrap() > r.throughput(n, 1, 3).unwrap());
        assert!(!r.to_string().is_empty());
    }
}
