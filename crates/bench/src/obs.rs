//! The observability run: a TPC-C mirror replayed through the real
//! engine over simulated links, entirely in virtual time, emitting the
//! full unified metrics snapshot.
//!
//! Everything is deterministic: the trace is captured from a seeded
//! workload, the links are a [`SimNet`] with fixed delays, and the
//! virtual clock auto-ticks a fixed amount on every read so compute
//! stages (old-image capture, parity encode) get non-zero, repeatable
//! durations. Two runs at the same `ops` produce byte-identical JSON —
//! which is what lets CI diff the event-count summary against a
//! checked-in golden file (`obs-dump --summary`).

use std::sync::Arc;
use std::time::Duration;

use prins_block::{BlockDevice, BlockSize, MemDevice};
use prins_core::EngineBuilder;
use prins_net::{SimNet, Transport};
use prins_obs::{register_meter, Registry, Snapshot};
use prins_repl::{verify_consistent, AckPolicy, ReplicaApplier, ACK, NAK};
use prins_workloads::{capture_trace, Workload};

use crate::pipeline::trace_writes;
use crate::TrafficConfig;

/// Virtual nanoseconds the clock advances on every read — stands in for
/// the per-operation CPU cost a wall clock would observe.
const AUTO_TICK_NANOS: u64 = 75;
/// Replica fan-out of the mirror.
const REPLICAS: usize = 2;
/// One-way frame delay per simulated link.
const LINK_DELAY: Duration = Duration::from_micros(200);

/// Replays a captured TPC-C trace (about `ops` transactions' worth of
/// block writes) through an observed engine mirroring to two simulated
/// replicas, and returns the registry snapshot: per-stage latency
/// histograms (capture, encode, reorder hold, lane queue, send, ack
/// RTT), engine and lane gauges, and the typed event trace.
///
/// # Errors
///
/// Propagates workload and device failures, and fails if a replica is
/// not bit-identical to the primary after the final barrier.
pub fn obs_experiment(ops: usize) -> Result<Snapshot, Box<dyn std::error::Error>> {
    let block_size = BlockSize::kb8();
    let mut config = TrafficConfig::smoke(block_size);
    config.ops = ops;
    let trace = capture_trace(Workload::TpccOracle, &config.run_config())?;
    if trace.is_empty() {
        return Err("obs run needs a non-empty trace; increase --ops".into());
    }
    let stream = trace_writes(&trace);

    let net = SimNet::new();
    net.clock().set_auto_tick(AUTO_TICK_NANOS);
    let registry = Registry::new();

    let primary = Arc::new(MemDevice::new(block_size, stream.num_blocks));
    for (lba, image) in &stream.initial {
        primary.write_block(*lba, image)?;
    }
    let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
        .manual_stepping(true)
        .clock(net.clock())
        .observe(Arc::clone(&registry))
        .coalesce(true)
        .batch_frames(2)
        .ack_policy(AckPolicy::Window(4));
    let mut replica_devs = Vec::new();
    for idx in 0..REPLICAS {
        let (a, b, _ctl) = net.add_link(&format!("replica{idx}"), LINK_DELAY);
        let device = Arc::new(MemDevice::new(block_size, stream.num_blocks));
        for (lba, image) in &stream.initial {
            device.write_block(*lba, image)?;
        }
        let dev = Arc::clone(&device);
        let tr = b.clone();
        net.set_actor(
            &b,
            Box::new(move || {
                let mut applier = ReplicaApplier::new(&*dev);
                while let Ok(Some(frame)) = tr.try_recv() {
                    let ok = applier.apply(&frame).is_ok();
                    let _ = tr.send(&[if ok { ACK } else { NAK }]);
                }
            }),
        );
        register_meter(&registry, &format!("link{idx}"), Arc::clone(a.meter()));
        builder = builder.replica(Box::new(a));
        replica_devs.push(device);
    }

    let engine = builder.build();
    for (i, (lba, new)) in stream.writes.iter().enumerate() {
        engine.write_block(*lba, new)?;
        // Drain the pipeline periodically so the run exercises the whole
        // stage sequence continuously instead of folding the entire
        // trace into one burst at the final barrier. The window is wide
        // enough that hot TPC-C blocks still coalesce in the queue.
        if i % 64 == 63 {
            engine.step();
        }
    }
    engine.flush()?;
    engine.shutdown()?;
    for dev in &replica_devs {
        if !verify_consistent(&*primary, &**dev)? {
            return Err("replica diverged from primary during obs run".into());
        }
    }
    Ok(registry.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_run_is_deterministic_and_populates_stage_histograms() {
        let a = obs_experiment(30).expect("obs run");
        let b = obs_experiment(30).expect("obs run");
        assert_eq!(a.to_json(), b.to_json(), "same ops => identical snapshot");
        assert_eq!(a.event_summary_json(), b.event_summary_json());

        for stage in [
            "stage_encode_nanos",
            "stage_lane_queue_nanos",
            "stage_ack_rtt_nanos",
        ] {
            let h = &a.histograms[stage];
            assert!(h.count > 0, "{stage} recorded no samples");
            assert!(h.p50 > 0, "{stage} p50 must be non-zero under auto-tick");
            assert!(h.p99 >= h.p50);
        }
        assert!(a.gauges["engine_writes"] > 0);
        let admits = a.event_counts.get("admit").copied().unwrap_or(0);
        let folds = a.event_counts.get("coalesce").copied().unwrap_or(0);
        assert_eq!(admits + folds, a.gauges["engine_writes"]);
    }
}
