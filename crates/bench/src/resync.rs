//! Resync catch-up traffic: full-image vs dirty-bitmap vs parity-log.
//!
//! The paper measures foreground replication traffic; this experiment
//! measures the *recovery* side. A replica drops out mid-trace, the
//! primary keeps writing in degraded mode, the replica rejoins, and we
//! count the bytes each [`ResyncStrategy`] puts on the wire to catch it
//! back up. Parity-log resync replays the same sparse parities that made
//! foreground replication cheap, so the catch-up cost tracks the bytes
//! the outage actually changed — not the volume size (full image) and
//! not even the dirty block count (dirty bitmap).

use std::collections::HashSet;
use std::sync::Arc;

use prins_block::{BlockDevice, Lba, MemDevice};
use prins_cluster::{ClusterConfig, ClusterGroup, ReplicaState, ResyncStrategy};
use prins_net::{channel_pair, FaultTransport, LinkModel};
use prins_repl::{run_replica, verify_consistent};
use prins_workloads::{capture_trace, Workload, WriteTrace};

use crate::{FigureTable, TrafficConfig};

/// Result of one outage + resync run.
#[derive(Clone, Debug)]
pub struct ResyncMeasurement {
    /// Strategy used to catch the replica back up.
    pub strategy: ResyncStrategy,
    /// Trace writes the replica missed while down.
    pub outage_writes: usize,
    /// Distinct blocks dirtied by the outage (at rejoin time).
    pub dirty_blocks: usize,
    /// Payload bytes sent as resync traffic.
    pub resync_bytes: u64,
    /// Payload bytes sent as foreground replication around the outage.
    pub foreground_bytes: u64,
    /// Whether the replica image matched the primary after the run.
    pub consistent: bool,
}

/// A trace flattened for replay: the write stream, each touched block's
/// pre-trace image, and the device size the stream needs.
struct TraceStream {
    writes: Vec<(Lba, Vec<u8>)>,
    initial: Vec<(Lba, Vec<u8>)>,
    num_blocks: u64,
}

/// Collects the trace's write stream plus each block's pre-trace image.
fn trace_writes(trace: &WriteTrace) -> TraceStream {
    let mut writes = Vec::with_capacity(trace.len());
    let mut initial = Vec::new();
    let mut seen = HashSet::new();
    let mut max_lba = 0u64;
    trace.replay(|lba, old, new| {
        if seen.insert(lba.index()) {
            initial.push((lba, old.to_vec()));
        }
        max_lba = max_lba.max(lba.index());
        writes.push((lba, new.to_vec()));
    });
    TraceStream {
        writes,
        initial,
        num_blocks: max_lba + 1,
    }
}

/// Replays `trace` through a one-replica [`ClusterGroup`], severing the
/// replica's link for `outage_writes` writes starting at `outage_start`,
/// then rejoining with `strategy`. Resync runs interleaved with the
/// remaining foreground writes, a few frames per write.
///
/// Both images are pre-seeded with the trace's first-touch block
/// contents so the parity chain applies to the same base the capture
/// ran against.
///
/// # Errors
///
/// Propagates cluster and replication errors.
///
/// # Panics
///
/// Panics if the trace is empty or the replica worker thread panics.
pub fn resync_experiment(
    trace: &WriteTrace,
    outage_start: usize,
    outage_writes: usize,
    strategy: ResyncStrategy,
) -> Result<ResyncMeasurement, Box<dyn std::error::Error>> {
    assert!(!trace.is_empty(), "need a non-empty trace");
    let TraceStream {
        writes,
        initial,
        num_blocks,
    } = trace_writes(trace);
    let primary = MemDevice::new(trace.block_size(), num_blocks);
    let replica = Arc::new(MemDevice::new(trace.block_size(), num_blocks));
    for (lba, image) in &initial {
        primary.write_block(*lba, image)?;
        replica.write_block(*lba, image)?;
    }

    let (primary_side, replica_side) = channel_pair(LinkModel::t1());
    let (faulty, link) = FaultTransport::new(primary_side);
    let dev = Arc::clone(&replica);
    let worker = std::thread::spawn(move || run_replica(&*dev, &replica_side));

    let config = ClusterConfig {
        offline_after: 1,
        ..ClusterConfig::default()
    };
    let mut cluster = ClusterGroup::new(primary, config, vec![Box::new(faulty)]);

    let outage_end = outage_start.saturating_add(outage_writes).min(writes.len());
    let mut dirty_blocks = 0;
    let rejoin = |cluster: &mut ClusterGroup<MemDevice>,
                  dirty: &mut usize|
     -> Result<(), Box<dyn std::error::Error>> {
        link.restore();
        *dirty = cluster.status(0).dirty_blocks;
        cluster.rejoin(0, strategy)?;
        Ok(())
    };
    for (i, (lba, new)) in writes.iter().enumerate() {
        if i == outage_start && outage_writes > 0 {
            link.sever();
        }
        if i == outage_end && i > outage_start && outage_writes > 0 {
            rejoin(&mut cluster, &mut dirty_blocks)?;
        }
        if cluster.state(0) == ReplicaState::Resyncing {
            cluster.resync_step(0, 4)?;
        }
        cluster.write(*lba, new)?;
    }
    if matches!(
        cluster.state(0),
        ReplicaState::Offline | ReplicaState::Lagging
    ) {
        rejoin(&mut cluster, &mut dirty_blocks)?;
    }
    if cluster.state(0) == ReplicaState::Resyncing {
        cluster.resync_to_completion(0, 32)?;
    }

    let status = cluster.status(0);
    let consistent = verify_consistent(cluster.device(), &*replica)?;
    drop(cluster);
    worker.join().expect("replica worker")?;

    Ok(ResyncMeasurement {
        strategy,
        outage_writes: outage_end - outage_start,
        dirty_blocks,
        resync_bytes: status.resync_bytes,
        foreground_bytes: status.foreground_bytes,
        consistent,
    })
}

fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// The resync series: catch-up bytes per strategy across outage lengths
/// on the TPC-C trace.
///
/// Each row severs the replica for a growing slice of the trace (5% to
/// 50% of its writes), rejoins with each strategy in turn, and tabulates
/// the measured catch-up traffic.
///
/// # Errors
///
/// Propagates workload and cluster errors.
pub fn resync_figure(
    ops: usize,
    bench_scale: bool,
) -> Result<FigureTable, Box<dyn std::error::Error>> {
    let mut config = if bench_scale {
        TrafficConfig::bench(prins_block::BlockSize::kb8(), ops)
    } else {
        TrafficConfig::smoke(prins_block::BlockSize::kb8())
    };
    config.ops = ops;
    let trace = capture_trace(Workload::TpccOracle, &config.run_config())?;
    if trace.is_empty() {
        return Err("resync series needs a non-empty trace; increase --ops".into());
    }

    let mut rows = Vec::new();
    for pct in [5usize, 10, 25, 50] {
        let outage = (trace.len() * pct / 100).max(1);
        let start = (trace.len() - outage) / 2;
        let mut cells = vec![format!("{pct}%"), outage.to_string()];
        let mut per_strategy = Vec::new();
        for strategy in [
            ResyncStrategy::FullImage,
            ResyncStrategy::DirtyBitmap,
            ResyncStrategy::ParityLog,
        ] {
            let m = resync_experiment(&trace, start, outage, strategy)?;
            assert!(m.consistent, "{strategy} resync left the replica stale");
            per_strategy.push(m);
        }
        cells.push(per_strategy[0].dirty_blocks.to_string());
        for m in &per_strategy {
            cells.push(kb(m.resync_bytes));
        }
        cells.push(format!(
            "{:.1}x",
            per_strategy[0].resync_bytes as f64 / per_strategy[2].resync_bytes.max(1) as f64
        ));
        rows.push(cells);
    }
    Ok(FigureTable {
        title: format!(
            "Resync catch-up traffic, TPC-C / Oracle profile ({} trace writes, 8 KB blocks)",
            trace.len()
        ),
        headers: [
            "outage",
            "missed",
            "dirty",
            "full KB",
            "bitmap KB",
            "parity KB",
            "full/parity",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_trace() -> WriteTrace {
        let config = TrafficConfig::smoke(prins_block::BlockSize::kb8());
        capture_trace(Workload::TpccOracle, &config.run_config()).expect("trace captures")
    }

    #[test]
    fn parity_log_resync_is_cheapest_and_correct() {
        let trace = smoke_trace();
        let outage = trace.len() / 4;
        let start = trace.len() / 4;
        let full = resync_experiment(&trace, start, outage, ResyncStrategy::FullImage).unwrap();
        let bitmap = resync_experiment(&trace, start, outage, ResyncStrategy::DirtyBitmap).unwrap();
        let parity = resync_experiment(&trace, start, outage, ResyncStrategy::ParityLog).unwrap();
        for m in [&full, &bitmap, &parity] {
            assert!(m.consistent, "{:?} left the replica stale", m.strategy);
            assert!(m.dirty_blocks > 0, "outage dirtied nothing");
        }
        assert!(
            bitmap.resync_bytes < full.resync_bytes,
            "bitmap {} should beat full image {}",
            bitmap.resync_bytes,
            full.resync_bytes
        );
        assert!(
            parity.resync_bytes < bitmap.resync_bytes,
            "parity {} should beat bitmap {}",
            parity.resync_bytes,
            bitmap.resync_bytes
        );
    }

    #[test]
    fn no_outage_means_no_resync_traffic() {
        let trace = smoke_trace();
        let m = resync_experiment(&trace, 0, 0, ResyncStrategy::ParityLog).unwrap();
        assert!(m.consistent);
        assert_eq!(m.resync_bytes, 0);
        assert_eq!(m.dirty_blocks, 0);
        assert!(m.foreground_bytes > 0);
    }

    #[test]
    fn outage_running_to_trace_end_still_recovers() {
        let trace = smoke_trace();
        let start = trace.len() / 2;
        let m = resync_experiment(&trace, start, trace.len(), ResyncStrategy::ParityLog).unwrap();
        assert!(m.consistent);
        assert_eq!(m.outage_writes, trace.len() - start);
        assert!(m.resync_bytes > 0);
    }

    #[test]
    fn resync_figure_smoke_has_all_columns() {
        let table = resync_figure(40, false).unwrap();
        assert_eq!(table.headers.len(), 7);
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            assert_eq!(row.len(), table.headers.len());
        }
    }
}
