//! Figure and table generators: one function per paper artifact.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use prins_block::{BlockDevice, BlockSize, Lba, MemDevice};
use prins_core::EngineBuilder;
use prins_queueing::figures::{
    paper_populations, paper_rates, response_vs_population, router_queueing_vs_rate, BytesPerWrite,
};
use prins_queueing::NodalDelay;
use prins_repl::ReplicationMode;
use prins_workloads::{run, RunConfig, Workload, WorkloadError};

use crate::{measure_traffic, TrafficConfig, TrafficMeasurement};

/// A printable table representing one figure.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureTable {
    /// Figure caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "{cell:>w$}  ", w = w)?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Builds one traffic figure: the block-size sweep for `workload`.
fn traffic_figure(
    number: u32,
    caption: &str,
    workload: Workload,
    ops: usize,
    bench_scale: bool,
) -> Result<FigureTable, WorkloadError> {
    let mut rows = Vec::new();
    for block_size in BlockSize::paper_sweep() {
        let mut config = if bench_scale {
            TrafficConfig::bench(block_size, ops)
        } else {
            TrafficConfig::smoke(block_size)
        };
        config.ops = ops;
        let m = measure_traffic(workload, &config)?;
        rows.push(vec![
            block_size.to_string(),
            kb(m.payload_bytes(ReplicationMode::Traditional)),
            kb(m.payload_bytes(ReplicationMode::Compressed)),
            kb(m.payload_bytes(ReplicationMode::Prins)),
            format!(
                "{:.1}x",
                m.ratio(ReplicationMode::Traditional, ReplicationMode::Prins)
            ),
            format!(
                "{:.1}x",
                m.ratio(ReplicationMode::Compressed, ReplicationMode::Prins)
            ),
        ]);
    }
    Ok(FigureTable {
        title: format!("Figure {number}: {caption} ({ops} ops/block size)"),
        headers: [
            "block",
            "trad KB",
            "comp KB",
            "prins KB",
            "trad/prins",
            "comp/prins",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    })
}

/// Figure 4: replication traffic, TPC-C on the Oracle profile.
///
/// # Errors
///
/// Propagates workload failures.
pub fn fig4_tpcc_oracle(ops: usize, bench_scale: bool) -> Result<FigureTable, WorkloadError> {
    traffic_figure(
        4,
        "network traffic, TPC-C / Oracle profile",
        Workload::TpccOracle,
        ops,
        bench_scale,
    )
}

/// Figure 5: replication traffic, TPC-C on the Postgres profile.
///
/// # Errors
///
/// Propagates workload failures.
pub fn fig5_tpcc_postgres(ops: usize, bench_scale: bool) -> Result<FigureTable, WorkloadError> {
    traffic_figure(
        5,
        "network traffic, TPC-C / Postgres profile",
        Workload::TpccPostgres,
        ops,
        bench_scale,
    )
}

/// Figure 6: replication traffic, TPC-W on the MySQL profile.
///
/// # Errors
///
/// Propagates workload failures.
pub fn fig6_tpcw(ops: usize, bench_scale: bool) -> Result<FigureTable, WorkloadError> {
    traffic_figure(
        6,
        "network traffic, TPC-W / MySQL profile",
        Workload::TpcwMysql,
        ops,
        bench_scale,
    )
}

/// Figure 7: replication traffic, Ext2 tar micro-benchmark.
///
/// # Errors
///
/// Propagates workload failures.
pub fn fig7_fs_micro(ops: usize, bench_scale: bool) -> Result<FigureTable, WorkloadError> {
    traffic_figure(
        7,
        "network traffic, Ext2 micro-benchmark",
        Workload::FsMicro,
        ops,
        bench_scale,
    )
}

/// Derives the queueing model's bytes-per-write from a measured 8 KB
/// traffic run (falls back to paper defaults when `measurement` is
/// `None`).
fn bytes_per_write(measurement: Option<&TrafficMeasurement>) -> Vec<BytesPerWrite> {
    match measurement {
        Some(m) => ReplicationMode::PAPER
            .iter()
            .map(|mode| BytesPerWrite::new(mode.to_string(), m.traffic(*mode).mean_payload()))
            .collect(),
        None => BytesPerWrite::paper_defaults(),
    }
}

fn response_figure(
    number: u32,
    link: NodalDelay,
    link_name: &str,
    measurement: Option<&TrafficMeasurement>,
) -> FigureTable {
    let series = response_vs_population(link, &bytes_per_write(measurement), &paper_populations());
    let sample: Vec<u32> = vec![1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    let mut rows = Vec::new();
    for n in &sample {
        let idx = (*n as usize) - 1;
        let mut row = vec![n.to_string()];
        for s in &series {
            row.push(format!("{:.3}", s.y[idx]));
        }
        rows.push(row);
    }
    let mut headers = vec!["population".to_string()];
    headers.extend(series.iter().map(|s| format!("{} RespT(s)", s.label)));
    FigureTable {
        title: format!(
            "Figure {number}: response time vs population, {link_name}, 2 routers, 8KB blocks"
        ),
        headers,
        rows,
    }
}

/// Figure 8: closed-network response time over T1 lines.
pub fn fig8_response_t1(measurement: Option<&TrafficMeasurement>) -> FigureTable {
    response_figure(8, NodalDelay::t1(), "T1", measurement)
}

/// Figure 9: closed-network response time over T3 lines.
pub fn fig9_response_t3(measurement: Option<&TrafficMeasurement>) -> FigureTable {
    response_figure(9, NodalDelay::t3(), "T3", measurement)
}

/// Figure 10: single-router M/M/1 queueing time vs write rate over T1.
pub fn fig10_router_saturation(measurement: Option<&TrafficMeasurement>) -> FigureTable {
    let series = router_queueing_vs_rate(
        NodalDelay::t1(),
        &bytes_per_write(measurement),
        &paper_rates(),
    );
    let sample = [1usize, 6, 11, 16, 21, 26, 31, 36, 41, 46, 51, 56];
    let mut rows = Vec::new();
    for r in sample {
        let idx = r - 1;
        let mut row = vec![r.to_string()];
        for s in &series {
            row.push(if s.y[idx].is_nan() {
                "saturated".to_string()
            } else {
                format!("{:.4}", s.y[idx])
            });
        }
        rows.push(row);
    }
    let mut headers = vec!["writes/s".to_string()];
    headers.extend(series.iter().map(|s| format!("{} Wq(s)", s.label)));
    FigureTable {
        title: "Figure 10: router queueing time vs write rate, T1, 8KB blocks".to_string(),
        headers,
        rows,
    }
}

/// Result of the §4 overhead experiment.
#[derive(Clone, Copy, Debug)]
pub struct OverheadReport {
    /// Writes timed.
    pub writes: u64,
    /// Time in the plain local write path.
    pub local_write_time: Duration,
    /// Additional time in old-image capture + parity encoding.
    pub overhead_time: Duration,
    /// `overhead_time / local_write_time` against the *RAM-backed*
    /// device used here. Meaningless as a percentage (a RAM write is a
    /// memcpy); the honest comparisons are
    /// [`per_write_overhead`](Self::per_write_overhead) against a real
    /// disk service time or a WAN transmission — see `Display`.
    pub ratio: f64,
}

impl OverheadReport {
    /// Mean PRINS-specific compute time per write.
    pub fn per_write_overhead(&self) -> Duration {
        if self.writes == 0 {
            Duration::ZERO
        } else {
            self.overhead_time / self.writes as u32
        }
    }

    /// The overhead as a fraction of a given storage service time (the
    /// paper's < 10 % was measured against disk-backed writes).
    pub fn fraction_of(&self, storage_service_time: Duration) -> f64 {
        self.per_write_overhead().as_secs_f64() / storage_service_time.as_secs_f64()
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let per_write = self.per_write_overhead();
        write!(
            f,
            "overhead: {} writes; prins compute {:.1?}/write = {:.2}% of a 5ms disk write, \
             {:.2}% of that block's T1 transmission (57ms); ~0 with the RAID parity tap \
             (paper: <10% without RAID, negligible with)",
            self.writes,
            per_write,
            self.fraction_of(Duration::from_millis(5)) * 100.0,
            self.fraction_of(Duration::from_millis(57)) * 100.0,
        )
    }
}

/// Measures the PRINS-specific CPU cost in the write path (no RAID
/// assist, no replicas — pure computation overhead, §4's "less than 10%
/// of traditional replications" measurement).
///
/// # Errors
///
/// Propagates engine failures.
pub fn overhead_experiment(
    writes: usize,
    block_size: BlockSize,
) -> Result<OverheadReport, prins_block::BlockError> {
    let device = Arc::new(MemDevice::new(block_size, 256));
    let engine = EngineBuilder::new(device as Arc<dyn BlockDevice>)
        .mode(ReplicationMode::Prins)
        .build();
    let bs = block_size.bytes();
    let mut block = vec![0u8; bs];
    for i in 0..writes {
        // Realistic partial update: ~8% of the block changes.
        let at = (i * 97) % (bs - bs / 12);
        for b in &mut block[at..at + bs / 12] {
            *b = b.wrapping_add(1 + (i % 7) as u8);
        }
        engine.write_block(Lba((i % 256) as u64), &block)?;
    }
    engine.flush()?;
    let stats = engine.stats();
    engine.shutdown()?;
    Ok(OverheadReport {
        writes: stats.writes,
        local_write_time: stats.local_write_time(),
        overhead_time: stats.overhead_time(),
        ratio: stats.overhead_ratio(),
    })
}

/// Result of the §3.3 write-rate measurement (the paper measured 10.22
/// writes/s per TPC-C node, hence the 0.1 s think time).
#[derive(Clone, Copy, Debug)]
pub struct WriteRateReport {
    /// Device-level block writes observed.
    pub writes: u64,
    /// Transactions executed.
    pub transactions: u64,
    /// Block writes per transaction — the paper's per-node write rate
    /// divided by its transaction rate.
    pub writes_per_txn: f64,
}

impl fmt::Display for WriteRateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write rate: {} block writes / {} transactions = {:.2} writes/txn \
             (paper: 10.22 writes/s at ~1 txn/s per terminal -> think time 0.1s)",
            self.writes, self.transactions, self.writes_per_txn
        )
    }
}

/// Measures block writes per TPC-C transaction, the input behind the
/// queueing model's think time.
///
/// # Errors
///
/// Propagates workload failures.
pub fn write_rate_experiment(ops: usize) -> Result<WriteRateReport, WorkloadError> {
    let mut config = RunConfig::smoke(BlockSize::kb8());
    config.ops = ops;
    let report = run(Workload::TpccOracle, &config, None)?;
    Ok(WriteRateReport {
        writes: report.device_writes,
        transactions: report.ops,
        writes_per_txn: report.writes_per_op(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_figure_has_five_block_sizes() {
        let t = fig7_fs_micro(2, false).unwrap();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[0][0], "4KB");
        assert_eq!(t.rows[4][0], "64KB");
        // Rendered table contains the caption and data.
        let text = t.to_string();
        assert!(text.contains("Figure 7"));
        assert!(text.contains("trad/prins"));
    }

    #[test]
    fn queueing_figures_render_with_defaults() {
        let f8 = fig8_response_t1(None);
        assert_eq!(f8.rows.len(), 11);
        let f9 = fig9_response_t3(None);
        assert!(f9.title.contains("T3"));
        let f10 = fig10_router_saturation(None);
        let text = f10.to_string();
        assert!(text.contains("saturated"), "{text}");
    }

    #[test]
    fn queueing_figures_accept_measured_traffic() {
        let m = measure_traffic(
            Workload::TpccOracle,
            &TrafficConfig::smoke(BlockSize::kb8()),
        )
        .unwrap();
        let f8 = fig8_response_t1(Some(&m));
        // Traditional response at population 100 must dominate PRINS's.
        let last = f8.rows.last().unwrap();
        let trad: f64 = last[1].parse().unwrap();
        let prins: f64 = last[3].parse().unwrap();
        assert!(trad > prins * 5.0, "trad {trad} vs prins {prins}");
    }

    #[test]
    fn overhead_experiment_completes() {
        let report = overhead_experiment(200, BlockSize::kb8()).unwrap();
        assert_eq!(report.writes, 200);
        assert!(report.ratio > 0.0);
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn write_rate_experiment_reports_writes_per_txn() {
        let report = write_rate_experiment(60).unwrap();
        assert_eq!(report.transactions, 60);
        assert!(report.writes_per_txn > 0.0);
    }
}
