//! Measurement harness regenerating every table and figure of the PRINS
//! paper's evaluation (§4).
//!
//! The heart of the harness is [`measure_traffic`]: it runs one workload
//! at one block size, streams every block write through the three
//! replication strategies (plus the PRINS+LZSS ablation), and accumulates
//! the payload and wire bytes each strategy would put on the network —
//! exactly the quantity Figures 4–7 plot. [`figures`] assembles those
//! measurements (and the queueing models of `prins-queueing`) into the
//! paper's figures; the `figures` binary prints them.
//!
//! # Example
//!
//! ```
//! use prins_bench::{measure_traffic, TrafficConfig};
//! use prins_block::BlockSize;
//! use prins_repl::ReplicationMode;
//! use prins_workloads::Workload;
//!
//! let m = measure_traffic(
//!     Workload::TpccOracle,
//!     &TrafficConfig::smoke(BlockSize::kb8()),
//! )
//! .expect("measurement runs");
//! let trad = m.payload_bytes(ReplicationMode::Traditional);
//! let prins = m.payload_bytes(ReplicationMode::Prins);
//! assert!(prins * 2 < trad, "PRINS must beat traditional");
//! ```

mod adaptive;
mod ec;
mod figures;
mod kernels;
mod obs;
mod pipeline;
mod resync;
mod scale;
mod tailtrace;
mod traffic;

pub use adaptive::{adaptive_figure, measure_adaptive, AdaptiveMeasurement};
pub use ec::{ec_experiment, EcReport};
pub use figures::{
    fig10_router_saturation, fig4_tpcc_oracle, fig5_tpcc_postgres, fig6_tpcw, fig7_fs_micro,
    fig8_response_t1, fig9_response_t3, overhead_experiment, write_rate_experiment, FigureTable,
    OverheadReport, WriteRateReport,
};
pub use kernels::{seal_experiment, SealMeasurement};
pub use obs::obs_experiment;
pub use pipeline::{pipeline_experiment, pipeline_figure, PipelineKnobs, PipelineMeasurement};
pub use resync::{resync_experiment, resync_figure, ResyncMeasurement};
pub use scale::{scale_experiment, ScaleCurve, ScaleReport};
pub use tailtrace::{trace_experiment, TailTraceReport};
pub use traffic::{measure_traffic, ModeTraffic, TrafficConfig, TrafficMeasurement};
