//! Measured micro-kernel experiment: batch-aware sealing versus the
//! per-frame byte-at-a-time sealing it replaced.
//!
//! The criterion series in `benches/kernels.rs` plots the full width
//! sweep; this module is the self-checking form — a wall-clock
//! comparison over identical payloads whose `>= 2x` claim runs in the
//! release test suite (`cargo test --release`), like the pipeline
//! speedup test in [`crate::pipeline_experiment`].

use std::fmt;
use std::time::Instant;

use prins_block::{crc32c_scalar, crc32c_scalar_append};
use prins_parity::encode_varint;
use prins_repl::{seal_batch_frame_into, SEAL_TAG};

/// Wall-clock comparison of sealing one batch of payloads.
#[derive(Clone, Debug)]
pub struct SealMeasurement {
    /// Payloads per batch frame.
    pub frames: usize,
    /// Total payload bytes sealed per iteration.
    pub payload_bytes: usize,
    /// Best-of-N nanos for the per-frame byte-at-a-time baseline.
    pub per_frame_scalar_nanos: u64,
    /// Best-of-N nanos for one batch-sealing pass (slicing-by-8).
    pub batch_nanos: u64,
}

impl SealMeasurement {
    /// How many times faster the batch-seal pass is.
    pub fn speedup(&self) -> f64 {
        self.per_frame_scalar_nanos as f64 / (self.batch_nanos.max(1)) as f64
    }
}

impl fmt::Display for SealMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seal {} x {} B: per-frame scalar {} ns, batch {} ns ({:.2}x)",
            self.frames,
            self.payload_bytes / self.frames.max(1),
            self.per_frame_scalar_nanos,
            self.batch_nanos,
            self.speedup()
        )
    }
}

/// The sealing the sender lanes performed before batch-aware sealing:
/// one envelope per payload, checksummed byte-at-a-time.
fn seal_per_frame_scalar(epoch: u64, payloads: &[Vec<u8>], out: &mut Vec<u8>) {
    for inner in payloads {
        out.push(SEAL_TAG);
        encode_varint(out, epoch);
        let crc = crc32c_scalar_append(crc32c_scalar(&epoch.to_le_bytes()), inner);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(inner);
    }
}

fn best_of(iters: u32, mut run: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

/// Seals `frames` 4 KB payloads both ways and returns the timings.
pub fn seal_experiment(frames: usize, iters: u32) -> SealMeasurement {
    let payloads: Vec<Vec<u8>> = (0..frames)
        .map(|i| {
            (0..4096usize)
                .map(|j| (i as u8).wrapping_mul(31).wrapping_add(j as u8))
                .collect()
        })
        .collect();
    let payload_bytes = payloads.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(payload_bytes + 16 * frames);

    let per_frame_scalar_nanos = best_of(iters, || {
        out.clear();
        seal_per_frame_scalar(1, &payloads, &mut out);
    });
    let batch_nanos = best_of(iters, || {
        out.clear();
        seal_batch_frame_into(1, &payloads, &mut out);
    });
    SealMeasurement {
        frames,
        payload_bytes,
        per_frame_scalar_nanos,
        batch_nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_reports_both_sides() {
        let m = seal_experiment(8, 3);
        assert_eq!(m.frames, 8);
        assert_eq!(m.payload_bytes, 8 * 4096);
        assert!(m.per_frame_scalar_nanos > 0 && m.batch_nanos > 0);
        assert!(m.to_string().contains("batch"));
    }

    // Wall-clock assertion: meaningless under an unoptimized build, so
    // it only runs in the release suite.
    #[cfg(not(debug_assertions))]
    #[test]
    fn batch_seal_beats_per_frame_scalar_by_2x() {
        let m = seal_experiment(32, 20);
        assert!(m.speedup() >= 2.0, "batch seal must be >=2x: {m}");
    }
}
