//! Tail-latency attribution run: the deterministic TPC-C mirror with
//! one replica link 10x slower than the rest, traced end to end by the
//! flight recorder.
//!
//! The point of the run is the question an operator actually asks when
//! p99 blows up: *which hop is it?* Every write mints a trace at
//! capture; each pipeline hop appends a stage event; above-p99 traces
//! charge each closed gap to its (stage, lane). With lane 2 at 10x the
//! delay of lanes 0 and 1, the attribution must finger lane 2 — the
//! release-gated test below holds it to at least 80% of all above-p99
//! virtual time, the bound `figures trace` demonstrates.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use prins_block::{BlockDevice, BlockSize, MemDevice};
use prins_core::EngineBuilder;
use prins_net::{SimNet, Transport};
use prins_obs::{lane_bucket, TraceConfig, TraceSink, LANE_BUCKETS};
use prins_repl::{verify_consistent, AckPolicy, ReplicaApplier, ACK, NAK};
use prins_workloads::{capture_trace, Workload};

use crate::pipeline::trace_writes;
use crate::TrafficConfig;

/// Virtual nanoseconds the clock advances on every read — stands in for
/// the per-operation CPU cost a wall clock would observe.
const AUTO_TICK_NANOS: u64 = 75;
/// Replica fan-out of the mirror; the last lane is the slow one.
const REPLICAS: usize = 3;
/// One-way frame delay of the healthy links.
const FAST_DELAY: Duration = Duration::from_micros(200);
/// One-way frame delay of the degraded link — 10x the healthy delay.
const SLOW_DELAY: Duration = Duration::from_millis(2);

/// What the traced run leaves behind: the shared flight-recorder sink
/// and which lane was degraded, plus the attribution arithmetic the
/// figure and the test both use.
pub struct TailTraceReport {
    /// The engine's trace sink after the run completed.
    pub sink: Arc<TraceSink>,
    /// Index of the 10x-slow lane.
    pub slow_lane: usize,
}

impl TailTraceReport {
    /// Total above-p99 virtual nanoseconds attributed across every
    /// (stage, lane) cell.
    #[must_use]
    pub fn tail_total_nanos(&self) -> u64 {
        (0..LANE_BUCKETS)
            .map(|b| self.sink.tail_bucket_nanos(b))
            .sum()
    }

    /// Share (in permille) of all above-p99 time charged to the slow
    /// lane, whatever the stage.
    #[must_use]
    pub fn slow_lane_share_permille(&self) -> u64 {
        let total = self.tail_total_nanos();
        if total == 0 {
            return 0;
        }
        self.sink
            .tail_bucket_nanos(lane_bucket(self.slow_lane as u32))
            .saturating_mul(1000)
            / total
    }
}

impl fmt::Display for TailTraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sink.to_table())?;
        writeln!(
            f,
            "tail attribution: lane {} (10x slow) holds {} permille of \
             above-p99 time",
            self.slow_lane,
            self.slow_lane_share_permille()
        )
    }
}

/// Replays a captured TPC-C trace through a traced engine mirroring to
/// three simulated replicas, the last behind a 10x-slow link, and
/// returns the flight recorder's verdict. Deterministic: same `ops`,
/// byte-identical trace summary.
///
/// # Errors
///
/// Propagates workload and device failures, and fails if a replica is
/// not bit-identical to the primary after the final barrier.
pub fn trace_experiment(ops: usize) -> Result<TailTraceReport, Box<dyn std::error::Error>> {
    let block_size = BlockSize::kb8();
    let mut config = TrafficConfig::smoke(block_size);
    config.ops = ops;
    let trace = capture_trace(Workload::TpccOracle, &config.run_config())?;
    if trace.is_empty() {
        return Err("trace run needs a non-empty trace; increase --ops".into());
    }
    let stream = trace_writes(&trace);

    let net = SimNet::new();
    net.clock().set_auto_tick(AUTO_TICK_NANOS);

    let primary = Arc::new(MemDevice::new(block_size, stream.num_blocks));
    for (lba, image) in &stream.initial {
        primary.write_block(*lba, image)?;
    }
    let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
        .manual_stepping(true)
        .clock(net.clock())
        .flight_recorder(TraceConfig::default())
        .coalesce(true)
        .batch_frames(2)
        // Per-write acks: each lane's wait is closed by its own ack
        // event, so above-p99 gaps land on the lane that caused them.
        // A pipelined window would collect the fast lanes' acks after
        // the slow lane already advanced the virtual clock, smearing
        // the slow link's cost across healthy lanes.
        .ack_policy(AckPolicy::PerWrite);
    let mut replica_devs = Vec::new();
    for idx in 0..REPLICAS {
        let delay = if idx == REPLICAS - 1 {
            SLOW_DELAY
        } else {
            FAST_DELAY
        };
        let (a, b, _ctl) = net.add_link(&format!("replica{idx}"), delay);
        let device = Arc::new(MemDevice::new(block_size, stream.num_blocks));
        for (lba, image) in &stream.initial {
            device.write_block(*lba, image)?;
        }
        let dev = Arc::clone(&device);
        let tr = b.clone();
        net.set_actor(
            &b,
            Box::new(move || {
                let mut applier = ReplicaApplier::new(&*dev);
                while let Ok(Some(frame)) = tr.try_recv() {
                    let ok = applier.apply(&frame).is_ok();
                    let _ = tr.send(&[if ok { ACK } else { NAK }]);
                }
            }),
        );
        builder = builder.replica(Box::new(a));
        replica_devs.push(device);
    }

    let engine = builder.build();
    let sink = Arc::clone(engine.trace_sink().expect("flight recorder enabled above"));
    for (i, (lba, new)) in stream.writes.iter().enumerate() {
        engine.write_block(*lba, new)?;
        // Drain often: a sparse step cadence would charge queue wait to
        // the healthy lanes too and blur the slow link's signature.
        if i % 16 == 15 {
            engine.step();
        }
    }
    engine.flush()?;
    engine.shutdown()?;
    for dev in &replica_devs {
        if !verify_consistent(&*primary, &**dev)? {
            return Err("replica diverged from primary during trace run".into());
        }
    }
    Ok(TailTraceReport {
        sink,
        slow_lane: REPLICAS - 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_run_is_deterministic() {
        let a = trace_experiment(30).expect("trace run");
        let b = trace_experiment(30).expect("trace run");
        assert_eq!(a.sink.summary_json(), b.sink.summary_json());
        assert!(a.sink.completed() > 0, "run completed no traces");
        assert_eq!(
            a.sink.started(),
            a.sink.completed(),
            "every trace must finalize by the final barrier"
        );
    }

    // Debug-profile virtual time is identical to release (the clock is
    // simulated), but the run is big enough to keep out of `cargo test`
    // dev cycles.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "release-gated: run with --release")]
    fn slow_lane_dominates_above_p99_attribution() {
        let report = trace_experiment(120).expect("trace run");
        assert!(
            report.tail_total_nanos() > 0,
            "no above-p99 time was attributed"
        );
        let share = report.slow_lane_share_permille();
        assert!(
            share >= 800,
            "10x-slow lane {} holds only {share} permille of above-p99 time",
            report.slow_lane
        );
    }
}
