//! Replication-pipeline throughput: the staged pipeline (concurrent
//! parity encoding, per-replica sender lanes, frame batching, windowed
//! acks, XOR-folding coalescing) against the serial fan-out baseline.
//!
//! The scenario is the paper's multi-site setting with one bad hop:
//! three replicas, one of whose links is 10x slower than its peers
//! (injected with [`prins_net::LinkHandle::set_send_cost`]). The serial
//! baseline — encode, send to every replica from the caller's thread,
//! await every acknowledgement, repeat — pays the slow hop on *every*
//! write. The pipeline hides it: encoding overlaps sending, each lane
//! pays only its own link, batching amortizes the slow hop's per-frame
//! cost, and the ack window keeps frames in flight across the RTT.
//!
//! Both sides replay the same captured TPC-C trace and both must leave
//! every replica bit-identical to the primary; the measurement is
//! rejected otherwise.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use prins_block::{BlockDevice, Lba, MemDevice};
use prins_core::EngineBuilder;
use prins_net::{channel_pair, FaultTransport, LinkModel, MeterSnapshot, TrafficMeter, Transport};
use prins_repl::{
    run_replica, verify_consistent, AckPolicy, ReplError, ReplicationGroup, ReplicationMode,
};
use prins_workloads::{capture_trace, Workload, WriteTrace};

use crate::{FigureTable, TrafficConfig};

/// Per-frame send cost of a healthy link in the scenario.
const FAST_LINK_COST: Duration = Duration::from_micros(30);
/// Per-frame send cost of the degraded link (10x the healthy cost).
const SLOW_LINK_COST: Duration = Duration::from_micros(300);

/// Pipeline knob settings for one measured run.
#[derive(Clone, Copy, Debug)]
pub struct PipelineKnobs {
    /// Parity-encoding worker threads.
    pub encode_workers: usize,
    /// In-flight frames allowed per sender lane.
    pub ack_window: usize,
    /// Payloads packed per wire frame.
    pub batch_frames: usize,
    /// XOR-folding write coalescing.
    pub coalesce: bool,
}

impl PipelineKnobs {
    /// The full pipeline: encode pool, deep ack window, batching, and
    /// coalescing all on.
    pub fn full() -> Self {
        Self {
            encode_workers: 4,
            ack_window: 8,
            batch_frames: 8,
            coalesce: true,
        }
    }
}

/// Result of one serial-vs-pipelined comparison.
#[derive(Clone, Copy, Debug)]
pub struct PipelineMeasurement {
    /// Trace writes replayed through each side.
    pub writes: u64,
    /// Replicas fanned out to.
    pub replicas: usize,
    /// Wall-clock time of the serial fan-out baseline.
    pub serial: Duration,
    /// Wall-clock time of the pipelined engine (including the final
    /// barrier).
    pub pipelined: Duration,
    /// Writes folded into a queued same-LBA job by the pipeline.
    pub coalesced_writes: u64,
    /// Admission-queue high-water mark observed by the pipeline.
    pub queue_depth_hwm: u64,
    /// Wire bytes the serial baseline put on its links during the timed
    /// window (a [`MeterSnapshot`] delta, excluding settle traffic).
    pub serial_wire_bytes: u64,
    /// Wire bytes the pipelined engine put on its links during the
    /// timed window.
    pub pipelined_wire_bytes: u64,
}

impl PipelineMeasurement {
    /// Serial wall-clock over pipelined wall-clock.
    pub fn speedup(&self) -> f64 {
        self.serial.as_secs_f64() / self.pipelined.as_secs_f64().max(f64::EPSILON)
    }

    /// Pipelined throughput in writes per second.
    pub fn pipelined_writes_per_sec(&self) -> f64 {
        self.writes as f64 / self.pipelined.as_secs_f64().max(f64::EPSILON)
    }

    /// Serial-baseline throughput in writes per second.
    pub fn serial_writes_per_sec(&self) -> f64 {
        self.writes as f64 / self.serial.as_secs_f64().max(f64::EPSILON)
    }
}

impl fmt::Display for PipelineMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline: {} writes x {} replicas (one link 10x slow); \
             serial {:.0} w/s, pipelined {:.0} w/s = {:.1}x \
             ({} coalesced, queue hwm {}, wire {} -> {} KB)",
            self.writes,
            self.replicas,
            self.serial_writes_per_sec(),
            self.pipelined_writes_per_sec(),
            self.speedup(),
            self.coalesced_writes,
            self.queue_depth_hwm,
            self.serial_wire_bytes / 1024,
            self.pipelined_wire_bytes / 1024,
        )
    }
}

/// A trace flattened for replay plus each touched block's pre-trace
/// image and the device size the stream needs.
pub(crate) struct TraceStream {
    pub(crate) writes: Vec<(Lba, Vec<u8>)>,
    pub(crate) initial: Vec<(Lba, Vec<u8>)>,
    pub(crate) num_blocks: u64,
}

pub(crate) fn trace_writes(trace: &WriteTrace) -> TraceStream {
    let mut writes = Vec::with_capacity(trace.len());
    let mut initial = Vec::new();
    let mut seen = HashSet::new();
    let mut max_lba = 0u64;
    trace.replay(|lba, old, new| {
        if seen.insert(lba.index()) {
            initial.push((lba, old.to_vec()));
        }
        max_lba = max_lba.max(lba.index());
        writes.push((lba, new.to_vec()));
    });
    TraceStream {
        writes,
        initial,
        num_blocks: max_lba + 1,
    }
}

/// One replica fan-out: transports for the primary, the replica devices
/// (pre-seeded with the trace's first-touch images), and the worker
/// threads applying frames. The last replica's link carries the 10x
/// send cost.
struct ReplicaSet {
    transports: Vec<Box<dyn Transport>>,
    devices: Vec<Arc<MemDevice>>,
    workers: Vec<std::thread::JoinHandle<Result<u64, ReplError>>>,
}

fn replica_set(
    n: usize,
    stream: &TraceStream,
    block_size: prins_block::BlockSize,
) -> Result<ReplicaSet, Box<dyn std::error::Error>> {
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut devices = Vec::new();
    let mut workers = Vec::new();
    for i in 0..n {
        let (primary_side, replica_side) = channel_pair(LinkModel::t1());
        let (faulty, link) = FaultTransport::new(primary_side);
        let cost = if i + 1 == n {
            SLOW_LINK_COST
        } else {
            FAST_LINK_COST
        };
        link.set_send_cost(cost, Duration::ZERO);
        let device = Arc::new(MemDevice::new(block_size, stream.num_blocks));
        for (lba, image) in &stream.initial {
            device.write_block(*lba, image)?;
        }
        let dev = Arc::clone(&device);
        workers.push(std::thread::spawn(move || {
            run_replica(&*dev, &replica_side)
        }));
        transports.push(Box::new(faulty));
        devices.push(device);
    }
    Ok(ReplicaSet {
        transports,
        devices,
        workers,
    })
}

fn seeded_primary(
    stream: &TraceStream,
    block_size: prins_block::BlockSize,
) -> Result<Arc<MemDevice>, Box<dyn std::error::Error>> {
    let primary = Arc::new(MemDevice::new(block_size, stream.num_blocks));
    for (lba, image) in &stream.initial {
        primary.write_block(*lba, image)?;
    }
    Ok(primary)
}

/// Checks every replica against the primary and joins the workers.
fn settle(primary: &MemDevice, set: ReplicaSet) -> Result<(), Box<dyn std::error::Error>> {
    let ReplicaSet {
        transports,
        devices,
        workers,
    } = set;
    drop(transports);
    for w in workers {
        w.join().expect("replica worker")?;
    }
    for dev in &devices {
        if !verify_consistent(primary, &**dev)? {
            return Err("replica diverged from primary".into());
        }
    }
    Ok(())
}

/// The baseline: encode, fan out, and await every acknowledgement from
/// the caller's thread, one write at a time.
fn run_serial(
    stream: &TraceStream,
    set: ReplicaSet,
    primary: &MemDevice,
) -> Result<(Duration, u64), Box<dyn std::error::Error>> {
    let (meters, before) = meter_window(&set.transports);
    let mut group = ReplicationGroup::new(ReplicationMode::Prins, set.transports);
    let start = Instant::now();
    for (lba, new) in &stream.writes {
        let old = primary.read_block_vec(*lba)?;
        primary.write_block(*lba, new)?;
        group.replicate(*lba, &old, new)?;
    }
    let elapsed = start.elapsed();
    let wire_bytes = window_wire_bytes(&meters, &before);
    let remainder = ReplicaSet {
        transports: group.into_transports(),
        devices: set.devices,
        workers: set.workers,
    };
    settle(primary, remainder)?;
    Ok((elapsed, wire_bytes))
}

/// Clones each transport's meter and snapshots it, opening a
/// measurement window: the matching [`window_wire_bytes`] call reads
/// only the traffic sent in between.
fn meter_window(transports: &[Box<dyn Transport>]) -> (Vec<Arc<TrafficMeter>>, Vec<MeterSnapshot>) {
    let meters: Vec<Arc<TrafficMeter>> = transports.iter().map(|t| Arc::clone(t.meter())).collect();
    let before = meters.iter().map(|m| m.snapshot()).collect();
    (meters, before)
}

/// Closes a [`meter_window`]: total wire bytes sent since it opened.
fn window_wire_bytes(meters: &[Arc<TrafficMeter>], before: &[MeterSnapshot]) -> u64 {
    meters
        .iter()
        .zip(before)
        .map(|(m, b)| m.snapshot().delta(b).wire_bytes_sent)
        .sum()
}

/// The pipelined side: the same trace through a [`prins_core`] engine
/// with the given knobs; the clock stops after the flush barrier.
fn run_pipelined(
    stream: &TraceStream,
    set: ReplicaSet,
    primary: Arc<MemDevice>,
    knobs: PipelineKnobs,
) -> Result<(Duration, prins_core::EngineStats, u64), Box<dyn std::error::Error>> {
    let (meters, before) = meter_window(&set.transports);
    let mut builder = EngineBuilder::new(Arc::clone(&primary) as Arc<dyn BlockDevice>)
        .mode(ReplicationMode::Prins)
        .encode_workers(knobs.encode_workers)
        .ack_policy(AckPolicy::Window(knobs.ack_window))
        .batch_frames(knobs.batch_frames)
        .coalesce(knobs.coalesce);
    for transport in set.transports {
        builder = builder.replica(transport);
    }
    let engine = builder.build();
    let start = Instant::now();
    for (lba, new) in &stream.writes {
        engine.write_block(*lba, new)?;
    }
    engine.flush()?;
    let elapsed = start.elapsed();
    let wire_bytes = window_wire_bytes(&meters, &before);
    let stats = engine.stats();
    engine.shutdown()?;
    let remainder = ReplicaSet {
        transports: Vec::new(),
        devices: set.devices,
        workers: set.workers,
    };
    settle(&primary, remainder)?;
    Ok((elapsed, stats, wire_bytes))
}

/// Runs the headline comparison: a captured TPC-C trace against 3
/// replicas (one link 10x slower), serial fan-out vs the full pipeline.
///
/// # Errors
///
/// Propagates workload, device, and replication failures, and fails if
/// either side leaves a replica inconsistent with the primary.
pub fn pipeline_experiment(
    ops: usize,
    bench_scale: bool,
) -> Result<PipelineMeasurement, Box<dyn std::error::Error>> {
    let block_size = prins_block::BlockSize::kb8();
    let mut config = if bench_scale {
        TrafficConfig::bench(block_size, ops)
    } else {
        TrafficConfig::smoke(block_size)
    };
    config.ops = ops;
    let trace = capture_trace(Workload::TpccOracle, &config.run_config())?;
    if trace.is_empty() {
        return Err("pipeline experiment needs a non-empty trace; increase --ops".into());
    }
    let stream = trace_writes(&trace);
    let replicas = 3;

    let serial_primary = seeded_primary(&stream, block_size)?;
    let serial_set = replica_set(replicas, &stream, block_size)?;
    let (serial, serial_wire_bytes) = run_serial(&stream, serial_set, &serial_primary)?;

    let piped_primary = seeded_primary(&stream, block_size)?;
    let piped_set = replica_set(replicas, &stream, block_size)?;
    let (pipelined, stats, pipelined_wire_bytes) =
        run_pipelined(&stream, piped_set, piped_primary, PipelineKnobs::full())?;

    Ok(PipelineMeasurement {
        writes: stream.writes.len() as u64,
        replicas,
        serial,
        pipelined,
        coalesced_writes: stats.coalesced_writes,
        queue_depth_hwm: stats.queue_depth_hwm,
        serial_wire_bytes,
        pipelined_wire_bytes,
    })
}

/// The pipeline sweep: encode workers x replica count x ack window
/// (batching tied to the window), each cell's throughput and speedup
/// over the serial baseline at the same replica count.
///
/// # Errors
///
/// As [`pipeline_experiment`].
pub fn pipeline_figure(
    ops: usize,
    bench_scale: bool,
) -> Result<FigureTable, Box<dyn std::error::Error>> {
    let block_size = prins_block::BlockSize::kb8();
    let mut config = if bench_scale {
        TrafficConfig::bench(block_size, ops)
    } else {
        TrafficConfig::smoke(block_size)
    };
    config.ops = ops;
    let trace = capture_trace(Workload::TpccOracle, &config.run_config())?;
    if trace.is_empty() {
        return Err("pipeline series needs a non-empty trace; increase --ops".into());
    }
    let stream = trace_writes(&trace);

    let sweep = [
        PipelineKnobs {
            encode_workers: 1,
            ack_window: 1,
            batch_frames: 1,
            coalesce: false,
        },
        PipelineKnobs {
            encode_workers: 2,
            ack_window: 4,
            batch_frames: 4,
            coalesce: false,
        },
        PipelineKnobs::full(),
    ];
    let mut rows = Vec::new();
    for replicas in [1usize, 3] {
        let primary = seeded_primary(&stream, block_size)?;
        let set = replica_set(replicas, &stream, block_size)?;
        let (serial, _) = run_serial(&stream, set, &primary)?;
        let serial_wps = stream.writes.len() as f64 / serial.as_secs_f64().max(f64::EPSILON);
        rows.push(vec![
            replicas.to_string(),
            "serial".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{serial_wps:.0}"),
            "1.0x".to_string(),
            "0".to_string(),
        ]);
        for knobs in sweep {
            let primary = seeded_primary(&stream, block_size)?;
            let set = replica_set(replicas, &stream, block_size)?;
            let (elapsed, stats, _) = run_pipelined(&stream, set, primary, knobs)?;
            let wps = stream.writes.len() as f64 / elapsed.as_secs_f64().max(f64::EPSILON);
            rows.push(vec![
                replicas.to_string(),
                knobs.encode_workers.to_string(),
                knobs.ack_window.to_string(),
                knobs.batch_frames.to_string(),
                if knobs.coalesce { "on" } else { "off" }.to_string(),
                format!("{wps:.0}"),
                format!("{:.1}x", wps / serial_wps),
                stats.coalesced_writes.to_string(),
            ]);
        }
    }
    Ok(FigureTable {
        title: format!(
            "Pipeline: TPC-C replication throughput, one link 10x slow ({} writes)",
            stream.writes.len()
        ),
        headers: [
            "replicas", "workers", "window", "batch", "coalesce", "writes/s", "speedup", "folded",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_beats_serial_fanout_by_2x() {
        let m = pipeline_experiment(20, false).expect("experiment runs");
        assert_eq!(m.replicas, 3);
        assert!(m.writes > 0);
        assert!(m.speedup() >= 2.0, "pipeline must be >=2x serial: {m}");
        // The windowed meter deltas saw the replication traffic, and
        // both sides shipped the same PRINS payloads (batch framing
        // differs by only a few header bytes per frame).
        assert!(m.serial_wire_bytes > 0 && m.pipelined_wire_bytes > 0);
    }

    #[test]
    fn pipeline_figure_covers_the_sweep() {
        let t = pipeline_figure(10, false).expect("figure runs");
        // 2 replica counts x (serial + 3 knob settings).
        assert_eq!(t.rows.len(), 8);
        let text = t.to_string();
        assert!(text.contains("speedup"), "{text}");
        assert!(text.contains("serial"), "{text}");
    }
}
