//! Erasure-coded group economics: storage overhead versus 3-way
//! mirroring and single-strip repair bandwidth, measured on a real
//! [`EcGroup`] replaying a captured workload write stream.
//!
//! Two bounds anchor the experiment (and its tests):
//!
//! * **Storage** — `k = 4, m = 2` stores `(k + m)/k = 1.5×` the
//!   logical bytes while tolerating two node losses; a 3-way mirror
//!   with the same tolerance stores `3×`.
//! * **Repair** — rebuilding one lost strip moves at most `1.25×` the
//!   `k` survivors' dense image bytes over the wire (`k` strip reads
//!   plus one zero-run-encoded shipment per stripe), never `n` full
//!   images.

use std::fmt;
use std::sync::{Arc, Mutex};

use prins_block::{BlockSize, Lba, MemDevice};
use prins_cluster::{EcConfig, EcGroup};
use prins_ec::ReedSolomon;
use prins_net::{channel_pair, LinkModel, Transport};
use prins_parity::ErasureCodec;
use prins_repl::{run_replica_applier, ReplError, ReplicaApplier};
use prins_workloads::{run, RunConfig, Workload};

/// Result of the erasure-coding economics experiment.
#[derive(Clone, Copy, Debug)]
pub struct EcReport {
    /// Logical block writes replayed through the group.
    pub writes: u64,
    /// User-visible capacity of the group.
    pub logical_bytes: u64,
    /// Bytes stored across all strips.
    pub physical_bytes: u64,
    /// Foreground wire bytes (data + coefficient-scaled parity deltas).
    pub write_wire_bytes: u64,
    /// Wire bytes the single-node rebuild moved.
    pub rebuild_wire_bytes: u64,
    /// Dense image bytes of the `k` survivor strips read per stripe —
    /// the repair-bandwidth denominator.
    pub survivor_image_bytes: u64,
}

impl EcReport {
    /// `physical / logical` — 1.5 at `k = 4, m = 2`.
    pub fn storage_overhead(&self) -> f64 {
        self.physical_bytes as f64 / self.logical_bytes as f64
    }

    /// What a 3-way mirror of the same volume stores, relative to
    /// logical bytes.
    pub fn mirror_overhead(&self) -> f64 {
        3.0
    }

    /// `rebuild wire bytes / survivor image bytes` — bounded by 1.25.
    pub fn repair_ratio(&self) -> f64 {
        self.rebuild_wire_bytes as f64 / self.survivor_image_bytes.max(1) as f64
    }
}

impl fmt::Display for EcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ec k=4,m=2: {} writes; storage {:.2}x logical (3-way mirror: {:.1}x, \
             same 2-loss tolerance); foreground wire {} B; rebuild moved {} B \
             against {} B of survivor images = {:.3}x (bound 1.25x)",
            self.writes,
            self.storage_overhead(),
            self.mirror_overhead(),
            self.write_wire_bytes,
            self.rebuild_wire_bytes,
            self.survivor_image_bytes,
            self.repair_ratio(),
        )
    }
}

/// Spawns one strip-holding node: a zeroed device behind the stock
/// apply loop with a Reed–Solomon applier in strict sealed mode.
fn spawn_node(
    stripes: u64,
    block_size: BlockSize,
) -> (
    Box<dyn Transport>,
    std::thread::JoinHandle<Result<u64, ReplError>>,
) {
    let (primary_side, node_side) = channel_pair(LinkModel::t1());
    let device = Arc::new(MemDevice::new(block_size, stripes));
    let worker = std::thread::spawn(move || {
        let applier = ReplicaApplier::new(&*device)
            .with_codec(Box::new(ReedSolomon::k4m2()))
            .require_sealed(true);
        run_replica_applier(applier, &node_side)
    });
    (Box::new(primary_side), worker)
}

/// Captures a TPC-C write stream, replays it through a six-node
/// `k = 4, m = 2` erasure-coded group, then loses and rebuilds one
/// node — reporting storage and repair-bandwidth economics.
///
/// # Errors
///
/// Propagates workload, replication, and reconstruction failures.
pub fn ec_experiment(
    ops: usize,
    bench_scale: bool,
) -> Result<EcReport, Box<dyn std::error::Error>> {
    let block_size = BlockSize::kb4();
    // Capture the workload's write stream (post-images only: the
    // group computes its own deltas against its logical device).
    type WriteTrace = Vec<(u64, Vec<u8>)>;
    let trace: Arc<Mutex<WriteTrace>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&trace);
    let observer = Box::new(move |_seq: u64, lba: Lba, _old: &[u8], new: &[u8]| {
        sink.lock()
            .expect("trace mutex")
            .push((lba.index(), new.to_vec()));
    });
    let mut config = if bench_scale {
        RunConfig::bench(block_size, ops)
    } else {
        let mut c = RunConfig::smoke(block_size);
        c.ops = ops;
        c
    };
    config.seed = 42;
    run(Workload::TpccOracle, &config, Some(observer))?;
    let trace = Arc::try_unwrap(trace)
        .expect("observer dropped")
        .into_inner()
        .expect("trace mutex");

    let stripes: u64 = 64;
    let codec = ReedSolomon::k4m2();
    let blocks = stripes * codec.data_strips() as u64;
    let mut transports = Vec::new();
    let mut workers = Vec::new();
    for _ in 0..codec.total_strips() {
        let (t, w) = spawn_node(stripes, block_size);
        transports.push(t);
        workers.push(w);
    }
    let logical = MemDevice::new(block_size, blocks);
    let mut group = EcGroup::new(logical, codec, EcConfig::default(), transports);

    let mut report = EcReport {
        writes: 0,
        logical_bytes: group.logical_bytes(),
        physical_bytes: group.physical_bytes(),
        write_wire_bytes: 0,
        rebuild_wire_bytes: 0,
        survivor_image_bytes: 0,
    };
    // Replay the stream, folding the workload's LBA space onto the
    // group's (the economics are per-write, not per-address).
    for (lba, data) in trace.iter().take(2_000) {
        let outcome = group.write(Lba(lba % blocks), data)?;
        report.writes += 1;
        report.write_wire_bytes += outcome.wire_bytes;
    }

    // Lose node 2 and rebuild it onto a fresh replacement from k
    // survivors' strip images.
    let lost = 2;
    group.mark_down(lost)?;
    let (t, w) = spawn_node(stripes, block_size);
    workers.push(w);
    group.replace_node(lost, t)?;
    let rebuild = group.rebuild(lost)?;
    report.rebuild_wire_bytes = rebuild.wire_bytes;
    report.survivor_image_bytes = rebuild.survivor_image_bytes;

    drop(group);
    for w in workers {
        w.join().expect("node thread").map_err(Box::new)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec_experiment_meets_storage_and_repair_bounds() {
        let r = ec_experiment(20, false).unwrap();
        assert!(r.writes > 0, "trace replayed no writes");
        // (a) k=4,m=2 stores at most 1.6x logical vs 3x for mirroring.
        assert!(
            r.storage_overhead() <= 1.6,
            "storage overhead {}",
            r.storage_overhead()
        );
        assert!((r.storage_overhead() - 1.5).abs() < 1e-9);
        assert!(r.mirror_overhead() >= 3.0);
        // (b) single-strip rebuild within the repair-bandwidth bound.
        assert!(
            r.repair_ratio() <= 1.25,
            "rebuild moved {}x the survivor images",
            r.repair_ratio()
        );
        assert!(!r.to_string().is_empty());
    }
}
