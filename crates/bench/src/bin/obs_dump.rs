//! Dumps the unified metrics snapshot of a deterministic TPC-C mirror
//! run (see [`prins_bench::obs_experiment`]).
//!
//! ```text
//! obs-dump                   # full JSON snapshot
//! obs-dump --ops 600         # bigger run
//! obs-dump --summary         # event-count summary only (the CI golden)
//! obs-dump --table           # human-readable table
//! obs-dump --prometheus      # Prometheus text exposition
//! obs-dump --traces          # flight-recorder dump of the traced
//!                            # 10x-slow-link run: summary JSON, then
//!                            # the retained traces as a table
//! ```
//!
//! The run is virtual-time simulation: two runs with the same `--ops`
//! print byte-identical output, so the summary can be diffed against a
//! checked-in golden file in CI.

use std::process::ExitCode;

use prins_bench::{obs_experiment, trace_experiment};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ops: usize = 300;
    let mut format = "json";
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ops" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => ops = v,
                None => {
                    eprintln!("--ops needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--summary" => format = "summary",
            "--table" => format = "table",
            "--prometheus" => format = "prometheus",
            "--json" => format = "json",
            "--traces" => format = "traces",
            other => {
                eprintln!(
                    "unknown argument {other}; usage: obs-dump \
                     [--ops N] [--summary | --table | --prometheus | --json | --traces]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if format == "traces" {
        // The traced run is a separate experiment (one lane 10x slow)
        // so the untraced obs golden keeps its exact event counts.
        return match trace_experiment(ops) {
            Ok(report) => {
                println!("{}", report.sink.summary_json());
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("obs-dump failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match obs_experiment(ops) {
        Ok(snap) => {
            match format {
                "summary" => println!("{}", snap.event_summary_json()),
                "table" => println!("{}", snap.to_table()),
                "prometheus" => print!("{}", snap.to_prometheus()),
                _ => println!("{}", snap.to_json()),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs-dump failed: {e}");
            ExitCode::FAILURE
        }
    }
}
