//! Write-trace tooling: capture a workload's content-carrying block
//! write stream to a file, inspect it, and replay it against the
//! replication strategies without re-running the workload.
//!
//! ```text
//! trace capture tpcc-oracle /tmp/t.prt --ops 300 --block-size 8
//! trace inspect /tmp/t.prt
//! trace replay  /tmp/t.prt
//! ```

use std::process::ExitCode;

use prins_block::{BlockSize, Lba};
use prins_net::LinkModel;
use prins_parity::DeltaStats;
use prins_repl::ReplicationMode;
use prins_workloads::{capture_trace, RunConfig, Workload, WriteTrace};

fn parse_workload(name: &str) -> Option<Workload> {
    Workload::ALL.into_iter().find(|w| w.name() == name)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace capture <tpcc-oracle|tpcc-postgres|tpcw-mysql|fs-micro> <file> \
         [--ops N] [--block-size KB]\n  trace inspect <file>\n  trace replay <file>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("capture") => capture(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn capture(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (Some(workload), Some(path)) = (args.first(), args.get(1)) else {
        return Err("capture needs a workload and an output file".into());
    };
    let workload = parse_workload(workload).ok_or("unknown workload")?;
    let mut ops = 200usize;
    let mut block_kb = 8u32;
    let mut iter = args[2..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ops" => ops = iter.next().ok_or("--ops needs a value")?.parse()?,
            "--block-size" => {
                block_kb = iter.next().ok_or("--block-size needs a value")?.parse()?
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let mut config = RunConfig::bench(BlockSize::new(block_kb * 1024)?, ops);
    config.ops = ops;
    let trace = capture_trace(workload, &config)?;
    std::fs::write(path, trace.to_bytes())?;
    println!(
        "captured {} writes of {} blocks from {workload} into {path} ({} bytes)",
        trace.len(),
        trace.block_size(),
        std::fs::metadata(path)?.len()
    );
    Ok(())
}

fn load(args: &[String]) -> Result<WriteTrace, Box<dyn std::error::Error>> {
    let path = args.first().ok_or("need a trace file")?;
    let bytes = std::fs::read(path)?;
    Ok(WriteTrace::from_bytes(&bytes)?)
}

fn inspect(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let trace = load(args)?;
    let mut delta = DeltaStats::default();
    let mut lbas = std::collections::HashSet::new();
    trace.replay(|lba, old, new| {
        delta.merge(&DeltaStats::measure(old, new));
        lbas.insert(lba.index());
    });
    println!("block size:      {}", trace.block_size());
    println!("writes:          {}", trace.len());
    println!("distinct blocks: {}", lbas.len());
    println!(
        "change ratio:    {:.2}% mean ({} extents over {} writes)",
        delta.change_ratio() * 100.0,
        delta.changed_extents,
        trace.len()
    );
    Ok(())
}

fn replay(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let trace = load(args)?;
    let link = LinkModel::t1();
    println!(
        "{:>14} {:>14} {:>14} {:>10}",
        "strategy", "payload KB", "wire KB", "B/write"
    );
    for mode in ReplicationMode::ALL {
        let replicator = mode.replicator();
        let mut payload = 0u64;
        let mut wire = 0u64;
        trace.replay(|lba, old, new| {
            let bytes = replicator.encode_write(Lba(lba.index()), old, new);
            payload += bytes.len() as u64;
            wire += link.wire_bytes(bytes.len());
        });
        println!(
            "{:>14} {:>14.1} {:>14.1} {:>10.0}",
            mode.to_string(),
            payload as f64 / 1024.0,
            wire as f64 / 1024.0,
            payload as f64 / trace.len().max(1) as f64
        );
    }
    Ok(())
}
