//! Command-line harness printing every paper figure.
//!
//! ```text
//! figures all                 # every figure at default ops
//! figures fig4 --ops 400      # one figure, more transactions
//! figures fig8                # queueing figures (fed by a measured run)
//! figures overhead writerate  # the §4/§3.3 scalar measurements
//! figures resync              # replica catch-up traffic per resync strategy
//! figures pipeline            # pipelined vs serial replication throughput
//! figures ec                  # erasure-coded storage + repair-bandwidth economics
//! figures obs                 # metrics snapshot of a simulated TPC-C mirror
//! figures trace               # tail-latency attribution under a 10x-slow link
//! figures scale               # scale-out read throughput sweep vs. MVA prediction
//! figures adaptive            # adaptive policy vs every static strategy
//! figures --smoke all         # tiny databases (CI-friendly)
//! figures scale --no-run      # validate the selection without running it
//! ```

use std::process::ExitCode;

use prins_bench::{
    adaptive_figure, ec_experiment, fig10_router_saturation, fig4_tpcc_oracle, fig5_tpcc_postgres,
    fig6_tpcw, fig7_fs_micro, fig8_response_t1, fig9_response_t3, measure_traffic, obs_experiment,
    overhead_experiment, pipeline_experiment, pipeline_figure, resync_figure, scale_experiment,
    trace_experiment, write_rate_experiment, TrafficConfig,
};
use prins_block::BlockSize;
use prins_workloads::Workload;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ops: usize = 200;
    let mut bench_scale = true;
    let mut no_run = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ops" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => ops = v,
                None => {
                    eprintln!("--ops needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => bench_scale = false,
            "--no-run" => no_run = true,
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    const KNOWN: &[&str] = &[
        "all",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "resync",
        "pipeline",
        "overhead",
        "writerate",
        "ec",
        "obs",
        "trace",
        "scale",
        "adaptive",
    ];
    if no_run {
        // Smoke mode: validate the selection against the wiring above
        // without paying for any measurement.
        let unknown: Vec<&String> = wanted
            .iter()
            .filter(|w| !KNOWN.contains(&w.as_str()))
            .collect();
        if unknown.is_empty() {
            println!("would run: {}", wanted.join(" "));
            return ExitCode::SUCCESS;
        }
        eprintln!("unknown figure selection {unknown:?}; known: {KNOWN:?}");
        return ExitCode::FAILURE;
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    let mut ran_any = false;

    let result = (|| -> Result<(), Box<dyn std::error::Error>> {
        if want("fig4") {
            ran_any = true;
            println!("{}", fig4_tpcc_oracle(ops, bench_scale)?);
        }
        if want("fig5") {
            ran_any = true;
            println!("{}", fig5_tpcc_postgres(ops, bench_scale)?);
        }
        if want("fig6") {
            ran_any = true;
            println!("{}", fig6_tpcw(ops, bench_scale)?);
        }
        if want("fig7") {
            ran_any = true;
            println!("{}", fig7_fs_micro(ops.min(10), bench_scale)?);
        }
        if want("fig8") || want("fig9") || want("fig10") {
            ran_any = true;
            // Feed the queueing model with measured 8 KB TPC-C traffic.
            let mut config = if bench_scale {
                TrafficConfig::bench(BlockSize::kb8(), ops)
            } else {
                TrafficConfig::smoke(BlockSize::kb8())
            };
            config.ops = ops;
            let m = measure_traffic(Workload::TpccOracle, &config)?;
            println!(
                "(service times from measured TPC-C traffic at 8KB: \
                 traditional {:.0} B/write, compressed {:.0} B/write, prins {:.0} B/write)\n",
                m.traffic(prins_repl::ReplicationMode::Traditional)
                    .mean_payload(),
                m.traffic(prins_repl::ReplicationMode::Compressed)
                    .mean_payload(),
                m.traffic(prins_repl::ReplicationMode::Prins).mean_payload(),
            );
            if want("fig8") {
                println!("{}", fig8_response_t1(Some(&m)));
            }
            if want("fig9") {
                println!("{}", fig9_response_t3(Some(&m)));
            }
            if want("fig10") {
                println!("{}", fig10_router_saturation(Some(&m)));
            }
        }
        if want("resync") {
            ran_any = true;
            println!("{}", resync_figure(ops, bench_scale)?);
        }
        if want("pipeline") {
            ran_any = true;
            println!("{}\n", pipeline_experiment(ops, bench_scale)?);
            println!("{}", pipeline_figure(ops, bench_scale)?);
        }
        if want("overhead") {
            ran_any = true;
            println!("{}\n", overhead_experiment(5_000, BlockSize::kb8())?);
        }
        if want("writerate") {
            ran_any = true;
            println!("{}\n", write_rate_experiment(ops)?);
        }
        if want("ec") {
            ran_any = true;
            println!("{}\n", ec_experiment(ops, bench_scale)?);
        }
        if want("obs") {
            ran_any = true;
            let snap = obs_experiment(ops)?;
            println!("{}", snap.to_table());
            println!("{}", snap.to_json());
        }
        if want("trace") {
            ran_any = true;
            println!("{}", trace_experiment(ops)?);
        }
        if want("scale") {
            ran_any = true;
            println!("{}\n", scale_experiment(ops, bench_scale)?);
        }
        if want("adaptive") {
            ran_any = true;
            println!("{}", adaptive_figure(ops, bench_scale)?);
        }
        Ok(())
    })();

    if let Err(e) = result {
        eprintln!("figure generation failed: {e}");
        return ExitCode::FAILURE;
    }
    if !ran_any {
        eprintln!("unknown figure selection {wanted:?}; try: {KNOWN:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
