//! Per-strategy replication traffic measurement.

use std::sync::{Arc, Mutex};

use prins_block::BlockSize;
use prins_net::LinkModel;
use prins_repl::{ReplicationMode, Replicator};
use prins_workloads::{run, RunConfig, RunReport, Workload, WorkloadError};

/// Configuration for one traffic measurement.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Block size under test (the x-axis of Figures 4–7).
    pub block_size: BlockSize,
    /// Measured operations (transactions / interactions / tar rounds).
    pub ops: usize,
    /// RNG seed.
    pub seed: u64,
    /// Whether to use the laptop-scale bench databases (vs smoke).
    pub bench_scale: bool,
    /// Include the PRINS+LZSS ablation strategy.
    pub include_ablation: bool,
}

impl TrafficConfig {
    /// Sub-second smoke configuration (unit tests, doc examples).
    pub fn smoke(block_size: BlockSize) -> Self {
        Self {
            block_size,
            ops: 40,
            seed: 42,
            bench_scale: false,
            include_ablation: false,
        }
    }

    /// Benchmark configuration with `ops` measured operations.
    pub fn bench(block_size: BlockSize, ops: usize) -> Self {
        Self {
            block_size,
            ops,
            seed: 42,
            bench_scale: true,
            include_ablation: true,
        }
    }

    pub(crate) fn run_config(&self) -> RunConfig {
        let mut config = if self.bench_scale {
            RunConfig::bench(self.block_size, self.ops)
        } else {
            let mut c = RunConfig::smoke(self.block_size);
            c.ops = self.ops;
            c
        };
        config.seed = self.seed;
        config
    }
}

/// Accumulated traffic for one replication strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModeTraffic {
    /// Sum of encoded payload sizes (what the paper's bar charts show).
    pub payload_bytes: u64,
    /// Payload plus per-packet protocol headers on the paper's link
    /// model (1.5 KB MTU + 112 B headers).
    pub wire_bytes: u64,
    /// Number of replicated writes.
    pub writes: u64,
}

impl ModeTraffic {
    /// Mean payload bytes per replicated write.
    pub fn mean_payload(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.writes as f64
        }
    }
}

/// Result of one workload × block-size measurement.
#[derive(Clone, Debug)]
pub struct TrafficMeasurement {
    /// Workload that ran.
    pub workload: Workload,
    /// Block size used.
    pub block_size: BlockSize,
    /// Traffic per strategy, in [`ReplicationMode`] order as configured.
    pub per_mode: Vec<(ReplicationMode, ModeTraffic)>,
    /// The underlying workload report (writes, change ratios, timing).
    pub report: RunReport,
}

impl TrafficMeasurement {
    /// Payload bytes a strategy sent.
    ///
    /// # Panics
    ///
    /// Panics if `mode` was not measured.
    pub fn payload_bytes(&self, mode: ReplicationMode) -> u64 {
        self.traffic(mode).payload_bytes
    }

    /// Traffic details for a strategy.
    ///
    /// # Panics
    ///
    /// Panics if `mode` was not measured.
    pub fn traffic(&self, mode: ReplicationMode) -> ModeTraffic {
        self.per_mode
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| panic!("mode {mode} was not measured"))
    }

    /// Ratio of payload bytes between two strategies (`a / b`).
    ///
    /// # Panics
    ///
    /// Panics if either mode was not measured.
    pub fn ratio(&self, a: ReplicationMode, b: ReplicationMode) -> f64 {
        self.payload_bytes(a) as f64 / self.payload_bytes(b).max(1) as f64
    }
}

/// Runs `workload` once and measures the bytes each replication strategy
/// would send for the observed write stream.
///
/// # Errors
///
/// Propagates workload failures.
pub fn measure_traffic(
    workload: Workload,
    config: &TrafficConfig,
) -> Result<TrafficMeasurement, WorkloadError> {
    let mut modes: Vec<ReplicationMode> = ReplicationMode::PAPER.to_vec();
    if config.include_ablation {
        modes.push(ReplicationMode::PrinsCompressed);
    }
    let replicators: Vec<Box<dyn Replicator>> = modes.iter().map(|m| m.replicator()).collect();
    let link = LinkModel::t1();

    let totals: Arc<Mutex<Vec<ModeTraffic>>> =
        Arc::new(Mutex::new(vec![ModeTraffic::default(); modes.len()]));
    let sink = Arc::clone(&totals);
    let observer = Box::new(move |_seq: u64, lba, old: &[u8], new: &[u8]| {
        let mut totals = sink.lock().expect("traffic mutex");
        for (replicator, total) in replicators.iter().zip(totals.iter_mut()) {
            let payload = replicator.encode_write(lba, old, new);
            total.payload_bytes += payload.len() as u64;
            total.wire_bytes += link.wire_bytes(payload.len());
            total.writes += 1;
        }
    });

    let report = run(workload, &config.run_config(), Some(observer))?;
    let totals = Arc::try_unwrap(totals)
        .expect("observer dropped")
        .into_inner()
        .expect("traffic mutex");
    Ok(TrafficMeasurement {
        workload,
        block_size: config.block_size,
        per_mode: modes.into_iter().zip(totals).collect(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prins_beats_traditional_on_every_workload() {
        for workload in Workload::ALL {
            let m = measure_traffic(workload, &TrafficConfig::smoke(BlockSize::kb8())).unwrap();
            let ratio = m.ratio(ReplicationMode::Traditional, ReplicationMode::Prins);
            assert!(
                ratio > 2.0,
                "{workload}: traditional/prins ratio only {ratio:.2}"
            );
        }
    }

    #[test]
    fn traditional_payload_equals_blocks_plus_headers() {
        let m = measure_traffic(
            Workload::TpccOracle,
            &TrafficConfig::smoke(BlockSize::kb8()),
        )
        .unwrap();
        let t = m.traffic(ReplicationMode::Traditional);
        // Payload per write = block + small payload header.
        let per_write = t.payload_bytes as f64 / t.writes as f64;
        assert!((8192.0..8210.0).contains(&per_write), "{per_write}");
        assert!(t.wire_bytes > t.payload_bytes);
    }

    #[test]
    fn prins_payload_tracks_changed_bytes_not_block_size() {
        let m4 = measure_traffic(
            Workload::TpccOracle,
            &TrafficConfig::smoke(BlockSize::kb4()),
        )
        .unwrap();
        let m64 = measure_traffic(
            Workload::TpccOracle,
            &TrafficConfig::smoke(BlockSize::kb64()),
        )
        .unwrap();
        let p4 = m4.traffic(ReplicationMode::Prins).mean_payload();
        let p64 = m64.traffic(ReplicationMode::Prins).mean_payload();
        let t4 = m4.traffic(ReplicationMode::Traditional).mean_payload();
        let t64 = m64.traffic(ReplicationMode::Traditional).mean_payload();
        // Traditional scales 16x with block size; PRINS far less.
        assert!(t64 / t4 > 12.0);
        assert!(
            p64 / p4 < t64 / t4 / 2.0,
            "prins per-write grew {p4} -> {p64}, nearly like traditional"
        );
    }

    #[test]
    fn ablation_mode_is_included_when_asked() {
        let mut config = TrafficConfig::smoke(BlockSize::kb4());
        config.include_ablation = true;
        let m = measure_traffic(Workload::FsMicro, &config).unwrap();
        assert_eq!(m.per_mode.len(), 4);
        let prins = m.payload_bytes(ReplicationMode::Prins);
        let ablate = m.payload_bytes(ReplicationMode::PrinsCompressed);
        assert!(ablate <= prins + prins / 10, "{ablate} vs {prins}");
    }

    #[test]
    #[should_panic(expected = "not measured")]
    fn unmeasured_mode_panics() {
        let m =
            measure_traffic(Workload::FsMicro, &TrafficConfig::smoke(BlockSize::kb4())).unwrap();
        let _ = m.payload_bytes(ReplicationMode::PrinsCompressed);
    }
}
