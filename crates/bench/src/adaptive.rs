//! Adaptive-policy ablation: the policy engine versus every static
//! strategy, workload by workload.
//!
//! Each measurement runs one workload once and feeds every observed
//! block write through the four static replicators *and* one
//! [`AdaptiveReplicator`], accumulating the payload bytes each would
//! ship. Because all five see the identical write stream, the
//! comparison is exact — no run-to-run noise. The headline claim this
//! reproduces: on every workload the adaptive policy stays within a
//! rounding error of the *best* static strategy (which differs per
//! workload), and on the zoned hostile mix it beats all four, because
//! no single static choice is right in every zone.

use std::sync::{Arc, Mutex};

use prins_policy::{AdaptiveReplicator, CounterfactualMode, PolicyConfig};
use prins_repl::{ReplicationMode, Replicator};
use prins_workloads::{run, RunReport, Workload, WorkloadError};

use crate::figures::FigureTable;
use crate::TrafficConfig;

/// The four static strategies the policy engine chooses among, in
/// display order.
const STATICS: [ReplicationMode; 4] = [
    ReplicationMode::Traditional,
    ReplicationMode::Compressed,
    ReplicationMode::Prins,
    ReplicationMode::PrinsCompressed,
];

/// Result of one adaptive-vs-static measurement.
#[derive(Clone, Debug)]
pub struct AdaptiveMeasurement {
    /// Workload that ran.
    pub workload: Workload,
    /// Payload bytes per static strategy, in [`STATICS`] order
    /// (traditional, compressed, prins, prins+lzss).
    pub static_bytes: Vec<(ReplicationMode, u64)>,
    /// Payload bytes the adaptive policy shipped for the same stream.
    pub adaptive_bytes: u64,
    /// Decision counts: (parity, parity+lzss, full, compressed).
    pub picks: (u64, u64, u64, u64),
    /// The underlying workload report.
    pub report: RunReport,
}

impl AdaptiveMeasurement {
    /// The cheapest static strategy and its payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if no static strategy was measured (cannot happen via
    /// [`measure_adaptive`]).
    pub fn best_static(&self) -> (ReplicationMode, u64) {
        self.static_bytes
            .iter()
            .copied()
            .min_by_key(|(_, bytes)| *bytes)
            .expect("at least one static strategy")
    }

    /// Bytes of a specific static strategy.
    ///
    /// # Panics
    ///
    /// Panics if `mode` was not measured.
    pub fn static_of(&self, mode: ReplicationMode) -> u64 {
        self.static_bytes
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, b)| *b)
            .unwrap_or_else(|| panic!("mode {mode} was not measured"))
    }
}

/// Runs `workload` once and measures adaptive-vs-static payload bytes
/// for the identical write stream.
///
/// # Errors
///
/// Propagates workload failures.
pub fn measure_adaptive(
    workload: Workload,
    config: &TrafficConfig,
) -> Result<AdaptiveMeasurement, WorkloadError> {
    let replicators: Vec<Box<dyn Replicator>> = STATICS.iter().map(|m| m.replicator()).collect();
    // Counterfactual accounting off: this harness computes the statics
    // exactly itself, so the estimate counters would be redundant work.
    let adaptive = AdaptiveReplicator::new(PolicyConfig {
        counterfactual: CounterfactualMode::Off,
        ..PolicyConfig::default()
    });

    let totals: Arc<Mutex<(Vec<u64>, u64)>> = Arc::new(Mutex::new((vec![0u64; STATICS.len()], 0)));
    let sink = Arc::clone(&totals);
    let policy = Arc::new(adaptive);
    let encoder = Arc::clone(&policy);
    let observer = Box::new(move |_seq: u64, lba, old: &[u8], new: &[u8]| {
        let mut totals = sink.lock().expect("ablation mutex");
        for (replicator, total) in replicators.iter().zip(totals.0.iter_mut()) {
            *total += replicator.encode_write(lba, old, new).len() as u64;
        }
        totals.1 += encoder.encode_write(lba, old, new).len() as u64;
    });

    let report = run(workload, &config.run_config(), Some(observer))?;
    let (static_totals, adaptive_bytes) = Arc::try_unwrap(totals)
        .expect("observer dropped")
        .into_inner()
        .expect("ablation mutex");
    let counters = policy.counters();
    Ok(AdaptiveMeasurement {
        workload,
        static_bytes: STATICS.iter().copied().zip(static_totals).collect(),
        adaptive_bytes,
        picks: (
            counters.pick_parity.get(),
            counters.pick_parity_lzss.get(),
            counters.pick_full.get(),
            counters.pick_compressed.get(),
        ),
        report,
    })
}

/// The adaptive-policy ablation table: every workload (paper set plus
/// the synthetic `text` / `hostile-mixed` stressors) at one block size,
/// adaptive against all four statics.
///
/// # Errors
///
/// Propagates workload failures.
pub fn adaptive_figure(ops: usize, bench_scale: bool) -> Result<FigureTable, WorkloadError> {
    let block_size = prins_block::BlockSize::kb8();
    let mut rows = Vec::new();
    for workload in Workload::EXTENDED {
        let mut config = if bench_scale {
            TrafficConfig::bench(block_size, ops)
        } else {
            TrafficConfig::smoke(block_size)
        };
        config.ops = ops;
        let m = measure_adaptive(workload, &config)?;
        let (best_mode, best_bytes) = m.best_static();
        let (parity, plzss, full, comp) = m.picks;
        rows.push(vec![
            workload.to_string(),
            kb(m.static_of(ReplicationMode::Traditional)),
            kb(m.static_of(ReplicationMode::Compressed)),
            kb(m.static_of(ReplicationMode::Prins)),
            kb(m.static_of(ReplicationMode::PrinsCompressed)),
            kb(m.adaptive_bytes),
            best_mode.to_string(),
            format!("{:.3}x", m.adaptive_bytes as f64 / best_bytes.max(1) as f64),
            format!("{parity}/{plzss}/{full}/{comp}"),
        ]);
    }
    Ok(FigureTable {
        title: format!(
            "Adaptive policy ablation: payload KB vs static strategies, 8KB blocks ({ops} ops)"
        ),
        headers: [
            "workload",
            "full KB",
            "comp KB",
            "prins KB",
            "p+lzss KB",
            "adaptive KB",
            "best static",
            "adaptive/best",
            "picks p/pl/f/c",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    })
}

fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prins_block::BlockSize;

    #[test]
    fn hostile_mix_separates_the_statics() {
        // Sanity check on the workload itself: the hostile mix must
        // give each static strategy a zone it loses badly, otherwise
        // the headline ablation is vacuous.
        let m = measure_adaptive(
            Workload::HostileMixed,
            &TrafficConfig::smoke(BlockSize::kb4()),
        )
        .unwrap();
        let (_, best) = m.best_static();
        for (mode, bytes) in &m.static_bytes {
            assert!(*bytes > 0, "{mode} measured nothing");
        }
        // Adaptive never loses to the best static by more than 1%.
        assert!(
            m.adaptive_bytes as f64 <= best as f64 * 1.01,
            "adaptive {} vs best static {best}",
            m.adaptive_bytes
        );
    }

    /// The headline ablation claim, measured at smoke scale. The LZSS
    /// passes make this too slow for the debug profile.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "release-gated: run with --release")]
    fn adaptive_matches_best_static_everywhere_and_wins_on_hostile() {
        for workload in Workload::EXTENDED {
            let m = measure_adaptive(workload, &TrafficConfig::smoke(BlockSize::kb8())).unwrap();
            let (best_mode, best) = m.best_static();
            assert!(
                m.adaptive_bytes as f64 <= best as f64 * 1.01,
                "{workload}: adaptive {} > 1.01 x best static {best_mode} {best}",
                m.adaptive_bytes
            );
            if workload == Workload::HostileMixed {
                for (mode, bytes) in &m.static_bytes {
                    assert!(
                        m.adaptive_bytes < *bytes,
                        "hostile-mixed: adaptive {} not strictly under {mode} {bytes}",
                        m.adaptive_bytes
                    );
                }
            }
        }
    }

    #[test]
    fn figure_renders_every_workload() {
        let t = adaptive_figure(6, false).unwrap();
        assert_eq!(t.rows.len(), Workload::EXTENDED.len());
        let text = t.to_string();
        assert!(text.contains("hostile-mixed"), "{text}");
        assert!(text.contains("adaptive/best"), "{text}");
    }
}
