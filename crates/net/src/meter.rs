//! Wire-traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::LinkModel;

/// Atomic counters of traffic through one transport endpoint.
///
/// Shared (`Arc`) between a transport and the measurement harness; the
/// traffic figures of the paper (Figures 4–7) are read straight off these
/// counters.
///
/// # Example
///
/// ```
/// use prins_net::{LinkModel, TrafficMeter};
///
/// let meter = TrafficMeter::new(LinkModel::t1());
/// meter.record_send(8192);
/// assert_eq!(meter.payload_bytes_sent(), 8192);
/// assert_eq!(meter.packets_sent(), 6);
/// assert_eq!(meter.wire_bytes_sent(), 8192 + 6 * 112);
/// ```
#[derive(Debug)]
pub struct TrafficMeter {
    link: LinkModel,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    payload_sent: AtomicU64,
    payload_received: AtomicU64,
    wire_sent: AtomicU64,
    packets_sent: AtomicU64,
}

impl TrafficMeter {
    /// Creates a zeroed meter whose packetization follows `link`.
    pub fn new(link: LinkModel) -> Self {
        Self {
            link,
            messages_sent: AtomicU64::new(0),
            messages_received: AtomicU64::new(0),
            payload_sent: AtomicU64::new(0),
            payload_received: AtomicU64::new(0),
            wire_sent: AtomicU64::new(0),
            packets_sent: AtomicU64::new(0),
        }
    }

    /// Creates a shared meter.
    pub fn shared(link: LinkModel) -> Arc<Self> {
        Arc::new(Self::new(link))
    }

    /// The link model used for packetization.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// Accounts one outbound message of `payload_bytes`.
    pub fn record_send(&self, payload_bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.payload_sent
            .fetch_add(payload_bytes as u64, Ordering::Relaxed);
        self.wire_sent
            .fetch_add(self.link.wire_bytes(payload_bytes), Ordering::Relaxed);
        self.packets_sent
            .fetch_add(self.link.packets(payload_bytes), Ordering::Relaxed);
    }

    /// Accounts one inbound message of `payload_bytes`.
    pub fn record_recv(&self, payload_bytes: usize) {
        self.messages_received.fetch_add(1, Ordering::Relaxed);
        self.payload_received
            .fetch_add(payload_bytes as u64, Ordering::Relaxed);
    }

    /// Messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Messages received.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }

    /// Application payload bytes sent (before packetization).
    pub fn payload_bytes_sent(&self) -> u64 {
        self.payload_sent.load(Ordering::Relaxed)
    }

    /// Application payload bytes received.
    pub fn payload_bytes_received(&self) -> u64 {
        self.payload_received.load(Ordering::Relaxed)
    }

    /// Bytes on the wire including per-packet protocol headers.
    pub fn wire_bytes_sent(&self) -> u64 {
        self.wire_sent.load(Ordering::Relaxed)
    }

    /// Packets sent (per the link's MTU model).
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.messages_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
        self.payload_sent.store(0, Ordering::Relaxed);
        self.payload_received.store(0, Ordering::Relaxed);
        self.wire_sent.store(0, Ordering::Relaxed);
        self.packets_sent.store(0, Ordering::Relaxed);
    }

    /// Freezes the current counters. Two snapshots bracket a
    /// measurement window; [`MeterSnapshot::delta`] yields the
    /// traffic inside it without resetting the meter.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            messages_sent: self.messages_sent(),
            messages_received: self.messages_received(),
            payload_bytes_sent: self.payload_bytes_sent(),
            payload_bytes_received: self.payload_bytes_received(),
            wire_bytes_sent: self.wire_bytes_sent(),
            packets_sent: self.packets_sent(),
        }
    }
}

/// A point-in-time copy of a [`TrafficMeter`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Application payload bytes sent (before packetization).
    pub payload_bytes_sent: u64,
    /// Application payload bytes received.
    pub payload_bytes_received: u64,
    /// Bytes on the wire including per-packet protocol headers.
    pub wire_bytes_sent: u64,
    /// Packets sent.
    pub packets_sent: u64,
}

impl MeterSnapshot {
    /// The traffic between `earlier` and `self` (saturating, so a
    /// `reset()` inside the window yields zeros rather than wrapping).
    pub fn delta(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            messages_received: self
                .messages_received
                .saturating_sub(earlier.messages_received),
            payload_bytes_sent: self
                .payload_bytes_sent
                .saturating_sub(earlier.payload_bytes_sent),
            payload_bytes_received: self
                .payload_bytes_received
                .saturating_sub(earlier.payload_bytes_received),
            wire_bytes_sent: self.wire_bytes_sent.saturating_sub(earlier.wire_bytes_sent),
            packets_sent: self.packets_sent.saturating_sub(earlier.packets_sent),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = TrafficMeter::new(LinkModel::t1());
        m.record_send(100);
        m.record_send(2000);
        m.record_recv(50);
        assert_eq!(m.messages_sent(), 2);
        assert_eq!(m.messages_received(), 1);
        assert_eq!(m.payload_bytes_sent(), 2100);
        assert_eq!(m.payload_bytes_received(), 50);
        assert_eq!(m.packets_sent(), 1 + 2);
        assert_eq!(m.wire_bytes_sent(), 2100 + 3 * 112);
        m.reset();
        assert_eq!(m.messages_sent(), 0);
        assert_eq!(m.wire_bytes_sent(), 0);
    }

    #[test]
    fn zero_byte_message_still_costs_a_packet() {
        let m = TrafficMeter::new(LinkModel::t1());
        m.record_send(0);
        assert_eq!(m.packets_sent(), 1);
        assert_eq!(m.wire_bytes_sent(), 112);
    }

    #[test]
    fn snapshot_deltas_measure_a_window() {
        let m = TrafficMeter::new(LinkModel::t1());
        m.record_send(100);
        let before = m.snapshot();
        m.record_send(2000);
        m.record_recv(50);
        let after = m.snapshot();
        let window = after.delta(&before);
        assert_eq!(window.messages_sent, 1);
        assert_eq!(window.payload_bytes_sent, 2000);
        assert_eq!(window.messages_received, 1);
        assert_eq!(window.payload_bytes_received, 50);
        assert_eq!(window.packets_sent, 2);
        // A reset inside the window saturates to zero, not wraparound.
        m.reset();
        assert_eq!(m.snapshot().delta(&after).wire_bytes_sent, 0);
    }

    #[test]
    fn meter_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrafficMeter>();
    }
}
