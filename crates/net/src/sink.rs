//! A transport that discards sends and replays a scripted receive
//! stream — the measurement harness for allocation-budget tests.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{LinkModel, NetError, TrafficMeter, Transport};

/// A [`Transport`] whose sends vanish (metered, then dropped) and whose
/// receives pop from a pre-loaded script.
///
/// Real channel transports allocate per message (the delivered `Vec`,
/// queue nodes, wakeups), which would drown out the numbers an
/// allocation-budget test is after. `SinkTransport` keeps the wire out
/// of the measurement: the ack script is allocated *before* the
/// measured region, and the hot loop only pops pre-built replies.
///
/// # Example
///
/// ```
/// use prins_net::{SinkTransport, Transport};
///
/// let sink = SinkTransport::new();
/// sink.preload(vec![vec![1, 2], vec![3]]);
/// sink.send(b"discarded").unwrap();
/// assert_eq!(sink.recv().unwrap(), vec![1, 2]);
/// assert_eq!(sink.recv().unwrap(), vec![3]);
/// assert!(sink.recv().is_err(), "drained script disconnects");
/// assert_eq!(sink.meter().messages_sent(), 1);
/// ```
pub struct SinkTransport {
    script: Mutex<VecDeque<Vec<u8>>>,
    meter: Arc<TrafficMeter>,
}

impl SinkTransport {
    /// An empty sink: sends are discarded, receives disconnect until
    /// replies are [`preload`](Self::preload)ed.
    pub fn new() -> Self {
        Self {
            script: Mutex::new(VecDeque::new()),
            meter: TrafficMeter::shared(LinkModel::gigabit_lan()),
        }
    }

    /// Appends replies to the receive script, served in order.
    pub fn preload(&self, replies: impl IntoIterator<Item = Vec<u8>>) {
        self.script.lock().extend(replies);
    }

    /// Replies still queued.
    pub fn pending(&self) -> usize {
        self.script.lock().len()
    }
}

impl Default for SinkTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Transport for SinkTransport {
    fn send(&self, msg: &[u8]) -> Result<(), NetError> {
        self.meter.record_send(msg.len());
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, NetError> {
        match self.script.lock().pop_front() {
            Some(reply) => {
                self.meter.record_recv(reply.len());
                Ok(reply)
            }
            None => Err(NetError::Disconnected),
        }
    }

    fn recv_timeout(&self, _timeout: Duration) -> Result<Vec<u8>, NetError> {
        // The script is either ready or will never arrive; a sink never
        // actually waits.
        self.recv()
    }

    fn meter(&self) -> &Arc<TrafficMeter> {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_are_metered_and_dropped() {
        let sink = SinkTransport::new();
        sink.send(&[0u8; 100]).unwrap();
        sink.send(&[0u8; 50]).unwrap();
        assert_eq!(sink.meter().messages_sent(), 2);
        assert_eq!(sink.meter().payload_bytes_sent(), 150);
    }

    #[test]
    fn receives_replay_the_script_then_disconnect() {
        let sink = SinkTransport::new();
        sink.preload(vec![vec![9u8; 4], vec![8u8; 2]]);
        assert_eq!(sink.pending(), 2);
        assert_eq!(sink.recv().unwrap(), vec![9u8; 4]);
        assert_eq!(
            sink.recv_timeout(Duration::from_secs(1)).unwrap(),
            vec![8u8; 2]
        );
        assert!(matches!(sink.recv(), Err(NetError::Disconnected)));
        assert_eq!(sink.meter().messages_received(), 2);
    }
}
