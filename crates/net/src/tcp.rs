//! Length-prefix framed TCP transport.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{LinkModel, NetError, TrafficMeter, Transport};

/// Maximum frame size accepted on the wire (16 MiB — far above any block
/// size the workloads use, small enough to reject corrupt length
/// prefixes).
const MAX_FRAME: usize = 16 << 20;

/// A [`Transport`] over a TCP stream with 4-byte little-endian length
/// prefixes.
///
/// Used by the examples to run an iSCSI-lite initiator and target as two
/// actual endpoints over loopback, mirroring the paper's testbed setup.
///
/// # Example
///
/// ```no_run
/// use prins_net::{LinkModel, TcpTransport, Transport};
///
/// # fn main() -> Result<(), prins_net::NetError> {
/// // On the target host:
/// let listener = std::net::TcpListener::bind("127.0.0.1:13260")?;
/// // On the initiator host:
/// let t = TcpTransport::connect("127.0.0.1:13260", LinkModel::gigabit_lan())?;
/// t.send(b"login")?;
/// # Ok(())
/// # }
/// ```
pub struct TcpTransport {
    reader: Mutex<TcpStream>,
    writer: Mutex<TcpStream>,
    meter: Arc<TrafficMeter>,
}

impl TcpTransport {
    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the connect.
    pub fn connect<A: ToSocketAddrs>(addr: A, link: LinkModel) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, link)
    }

    /// Accepts one connection from `listener`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the accept.
    pub fn accept(listener: &TcpListener, link: LinkModel) -> Result<Self, NetError> {
        let (stream, _peer) = listener.accept()?;
        Self::from_stream(stream, link)
    }

    /// Wraps an already-connected stream.
    ///
    /// # Errors
    ///
    /// Fails if the stream cannot be duplicated for split read/write
    /// locking.
    pub fn from_stream(stream: TcpStream, link: LinkModel) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Self {
            reader: Mutex::new(reader),
            writer: Mutex::new(stream),
            meter: TrafficMeter::shared(link),
        })
    }

    fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>, NetError> {
        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge {
                size: len,
                max: MAX_FRAME,
            });
        }
        let mut buf = vec![0u8; len];
        stream.read_exact(&mut buf)?;
        Ok(buf)
    }
}

impl Transport for TcpTransport {
    fn send(&self, msg: &[u8]) -> Result<(), NetError> {
        if msg.len() > MAX_FRAME {
            return Err(NetError::FrameTooLarge {
                size: msg.len(),
                max: MAX_FRAME,
            });
        }
        let mut stream = self.writer.lock();
        stream.write_all(&(msg.len() as u32).to_le_bytes())?;
        stream.write_all(msg)?;
        self.meter.record_send(msg.len());
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, NetError> {
        let mut stream = self.reader.lock();
        stream.set_read_timeout(None)?;
        let msg = Self::read_frame(&mut stream)?;
        self.meter.record_recv(msg.len());
        Ok(msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        let mut stream = self.reader.lock();
        stream.set_read_timeout(Some(timeout))?;
        let result = Self::read_frame(&mut stream);
        stream.set_read_timeout(None)?;
        let msg = result?;
        self.meter.record_recv(msg.len());
        Ok(msg)
    }

    fn meter(&self) -> &Arc<TrafficMeter> {
        &self.meter
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            TcpTransport::accept(&listener, LinkModel::gigabit_lan()).unwrap()
        });
        let client = TcpTransport::connect(addr, LinkModel::gigabit_lan()).unwrap();
        (client, h.join().unwrap())
    }

    #[test]
    fn round_trip_over_loopback() {
        let (a, b) = pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
        assert_eq!(a.meter().messages_sent(), 1);
        assert_eq!(a.meter().messages_received(), 1);
    }

    #[test]
    fn large_and_empty_frames() {
        let (a, b) = pair();
        let big = vec![7u8; 1 << 20];
        a.send(&big).unwrap();
        a.send(&[]).unwrap();
        assert_eq!(b.recv().unwrap(), big);
        assert_eq!(b.recv().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_send_is_rejected_locally() {
        let (a, _b) = pair();
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(a.send(&huge), Err(NetError::FrameTooLarge { .. })));
    }

    #[test]
    fn recv_timeout_fires() {
        let (a, _b) = pair();
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(20)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn peer_drop_disconnects() {
        let (a, b) = pair();
        drop(b);
        assert!(matches!(a.recv(), Err(NetError::Disconnected)));
    }
}
