//! Link-fault injection: a transport wrapper whose link can be severed
//! and restored from outside.
//!
//! Cluster experiments need to take a replica's WAN link down mid-trace
//! and bring it back later (the outage → degraded mode → resync cycle).
//! [`FaultTransport`] wraps any [`Transport`]; its paired [`LinkHandle`]
//! flips the link state from the test harness while the replication
//! engine owns the transport.
//!
//! While severed, every operation fails with [`NetError::Disconnected`]
//! — exactly what a dropped TCP connection looks like to the engine.
//! Frames already queued by the peer are *not* discarded; like a
//! reconnecting TCP endpoint, the engine is expected to drain or
//! reconcile them on restore.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{NetError, TrafficMeter, Transport};

/// Shared switch controlling a [`FaultTransport`]'s link state.
#[derive(Clone, Debug)]
pub struct LinkHandle {
    up: Arc<AtomicBool>,
}

impl LinkHandle {
    /// Cuts the link: all transport operations fail until restored.
    pub fn sever(&self) {
        self.up.store(false, Ordering::SeqCst);
    }

    /// Brings the link back up.
    pub fn restore(&self) {
        self.up.store(true, Ordering::SeqCst);
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }
}

/// A [`Transport`] wrapper with an externally controlled kill switch.
#[derive(Debug)]
pub struct FaultTransport<T> {
    inner: T,
    up: Arc<AtomicBool>,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` (link initially up) and returns the control handle.
    pub fn new(inner: T) -> (Self, LinkHandle) {
        let up = Arc::new(AtomicBool::new(true));
        let handle = LinkHandle {
            up: Arc::clone(&up),
        };
        (Self { inner, up }, handle)
    }

    fn check_up(&self) -> Result<(), NetError> {
        if self.up.load(Ordering::SeqCst) {
            Ok(())
        } else {
            Err(NetError::Disconnected)
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&self, msg: &[u8]) -> Result<(), NetError> {
        self.check_up()?;
        self.inner.send(msg)
    }

    fn recv(&self) -> Result<Vec<u8>, NetError> {
        self.check_up()?;
        self.inner.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.check_up()?;
        self.inner.recv_timeout(timeout)
    }

    fn meter(&self) -> &Arc<TrafficMeter> {
        self.inner.meter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{channel_pair, LinkModel};

    #[test]
    fn severed_link_fails_both_directions() {
        let (a, b) = channel_pair(LinkModel::t1());
        let (faulty, link) = FaultTransport::new(a);
        faulty.send(b"before").unwrap();
        assert_eq!(b.recv().unwrap(), b"before");

        link.sever();
        assert!(!link.is_up());
        assert!(matches!(faulty.send(b"x"), Err(NetError::Disconnected)));
        assert!(matches!(
            faulty.recv_timeout(Duration::from_millis(1)),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn restore_resumes_and_preserves_queued_frames() {
        let (a, b) = channel_pair(LinkModel::t1());
        let (faulty, link) = FaultTransport::new(a);
        link.sever();
        // Peer keeps talking into the void; the frame queues.
        b.send(b"queued during outage").unwrap();
        assert!(faulty.recv().is_err());

        link.restore();
        assert_eq!(faulty.recv().unwrap(), b"queued during outage");
        faulty.send(b"back").unwrap();
        assert_eq!(b.recv().unwrap(), b"back");
    }

    #[test]
    fn meter_passes_through_to_inner() {
        let (a, b) = channel_pair(LinkModel::t1());
        let (faulty, _link) = FaultTransport::new(a);
        faulty.send(b"abcd").unwrap();
        let _ = b.recv().unwrap();
        assert_eq!(faulty.meter().messages_sent(), 1);
        assert_eq!(faulty.meter().payload_bytes_sent(), 4);
    }
}
